# Empty compiler generated dependencies file for rc11-refine.
# This may be replaced when dependencies are built.
