
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assertions/assertions.cpp" "src/CMakeFiles/rc11.dir/assertions/assertions.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/assertions/assertions.cpp.o.d"
  "/root/repo/src/explore/dot.cpp" "src/CMakeFiles/rc11.dir/explore/dot.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/explore/dot.cpp.o.d"
  "/root/repo/src/explore/explorer.cpp" "src/CMakeFiles/rc11.dir/explore/explorer.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/explore/explorer.cpp.o.d"
  "/root/repo/src/lang/expr.cpp" "src/CMakeFiles/rc11.dir/lang/expr.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/lang/expr.cpp.o.d"
  "/root/repo/src/lang/step.cpp" "src/CMakeFiles/rc11.dir/lang/step.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/lang/step.cpp.o.d"
  "/root/repo/src/lang/system.cpp" "src/CMakeFiles/rc11.dir/lang/system.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/lang/system.cpp.o.d"
  "/root/repo/src/litmus/case_studies.cpp" "src/CMakeFiles/rc11.dir/litmus/case_studies.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/litmus/case_studies.cpp.o.d"
  "/root/repo/src/litmus/litmus.cpp" "src/CMakeFiles/rc11.dir/litmus/litmus.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/litmus/litmus.cpp.o.d"
  "/root/repo/src/locks/clients.cpp" "src/CMakeFiles/rc11.dir/locks/clients.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/locks/clients.cpp.o.d"
  "/root/repo/src/locks/lock_objects.cpp" "src/CMakeFiles/rc11.dir/locks/lock_objects.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/locks/lock_objects.cpp.o.d"
  "/root/repo/src/memsem/state.cpp" "src/CMakeFiles/rc11.dir/memsem/state.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/memsem/state.cpp.o.d"
  "/root/repo/src/memsem/validate.cpp" "src/CMakeFiles/rc11.dir/memsem/validate.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/memsem/validate.cpp.o.d"
  "/root/repo/src/objects/lock.cpp" "src/CMakeFiles/rc11.dir/objects/lock.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/objects/lock.cpp.o.d"
  "/root/repo/src/objects/queue.cpp" "src/CMakeFiles/rc11.dir/objects/queue.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/objects/queue.cpp.o.d"
  "/root/repo/src/objects/stack.cpp" "src/CMakeFiles/rc11.dir/objects/stack.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/objects/stack.cpp.o.d"
  "/root/repo/src/og/catalog.cpp" "src/CMakeFiles/rc11.dir/og/catalog.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/og/catalog.cpp.o.d"
  "/root/repo/src/og/lemma3.cpp" "src/CMakeFiles/rc11.dir/og/lemma3.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/og/lemma3.cpp.o.d"
  "/root/repo/src/og/memrules.cpp" "src/CMakeFiles/rc11.dir/og/memrules.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/og/memrules.cpp.o.d"
  "/root/repo/src/og/proof_outline.cpp" "src/CMakeFiles/rc11.dir/og/proof_outline.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/og/proof_outline.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/CMakeFiles/rc11.dir/parser/parser.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/parser/parser.cpp.o.d"
  "/root/repo/src/queues/queue_objects.cpp" "src/CMakeFiles/rc11.dir/queues/queue_objects.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/queues/queue_objects.cpp.o.d"
  "/root/repo/src/refinement/refinement.cpp" "src/CMakeFiles/rc11.dir/refinement/refinement.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/refinement/refinement.cpp.o.d"
  "/root/repo/src/stacks/stack_objects.cpp" "src/CMakeFiles/rc11.dir/stacks/stack_objects.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/stacks/stack_objects.cpp.o.d"
  "/root/repo/src/support/rational.cpp" "src/CMakeFiles/rc11.dir/support/rational.cpp.o" "gcc" "src/CMakeFiles/rc11.dir/support/rational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
