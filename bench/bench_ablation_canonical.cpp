// Experiment A3: ablation of canonical timestamp renumbering.  The paper's
// timestamps are rationals; only their *order* is semantically meaningful.
// The engine therefore hashes states modulo order-isomorphism.  Shape:
// hashing raw rationals instead inflates the visited-state count (different
// interleavings produce order-isomorphic but numerically different
// timestamps) while leaving outcome sets unchanged — canonicalisation is a
// pure quotient that finite exploration needs.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace rc11;

std::uint64_t states_for(std::size_t litmus_idx, bool canonical) {
  auto tests = litmus::all_tests();
  auto& test = tests.at(litmus_idx);
  memsem::SemanticsOptions opts;
  opts.canonical_timestamps = canonical;
  test.sys.set_options(opts);
  return explore::explore(test.sys).stats.states;
}

void BM_Canonical(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  std::uint64_t canon = 0, raw = 0;
  for (auto _ : state) {
    canon = states_for(idx, true);
    raw = states_for(idx, false);
    benchmark::DoNotOptimize(canon + raw);
  }
  state.counters["canonical_states"] = static_cast<double>(canon);
  state.counters["raw_states"] = static_cast<double>(raw);
  state.counters["inflation"] =
      canon ? static_cast<double>(raw) / static_cast<double>(canon) : 0;
  auto tests = litmus::all_tests();
  state.SetLabel(tests.at(idx).name);
}
BENCHMARK(BM_Canonical)->DenseRange(0, 9);

}  // namespace

int main(int argc, char** argv) {
  {
    bool inflated_somewhere = false;
    bool outcomes_stable = true;
    auto tests = rc11::litmus::all_tests();
    for (std::size_t i = 0; i < tests.size(); ++i) {
      const auto canon = states_for(i, true);
      const auto raw = states_for(i, false);
      if (raw > canon) inflated_somewhere = true;
      // Outcome sets must be identical regardless of encoding.
      auto raw_test = rc11::litmus::all_tests().at(i);
      rc11::memsem::SemanticsOptions opts;
      opts.canonical_timestamps = false;
      raw_test.sys.set_options(opts);
      const auto result = rc11::explore::explore(raw_test.sys);
      const auto outcomes = rc11::explore::final_register_values(
          raw_test.sys, result, raw_test.observed);
      if (outcomes != raw_test.allowed) outcomes_stable = false;
    }
    rc11::bench::verdict(
        "A3", inflated_somewhere && outcomes_stable,
        "raw-timestamp hashing inflates state counts on at least one litmus "
        "test while outcome sets stay identical — canonicalisation is a pure "
        "quotient");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
