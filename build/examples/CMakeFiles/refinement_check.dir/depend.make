# Empty dependencies file for refinement_check.
# This may be replaced when dependencies are built.
