file(REMOVE_RECURSE
  "CMakeFiles/bench_semantics_throughput.dir/bench_semantics_throughput.cpp.o"
  "CMakeFiles/bench_semantics_throughput.dir/bench_semantics_throughput.cpp.o.d"
  "bench_semantics_throughput"
  "bench_semantics_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantics_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
