# Empty compiler generated dependencies file for test_memsem.
# This may be replaced when dependencies are built.
