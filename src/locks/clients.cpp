#include "locks/clients.hpp"

#include "support/diagnostics.hpp"

namespace rc11::locks {

using lang::c;
using lang::Expr;

ClientProgram fig7_client(ClientArtifacts* artifacts) {
  return [artifacts](System& sys, LockObject& lock) {
    const auto d1 = sys.client_var("d1", 0);
    const auto d2 = sys.client_var("d2", 0);

    auto t0 = sys.thread();
    auto ok0 = t0.reg("ok0");
    lock.emit_acquire(t0, ok0);
    t0.store(d1, c(5), "d1 := 5");
    t0.store(d2, c(5), "d2 := 5");
    lock.emit_release(t0);

    auto t1 = sys.thread();
    auto ok1 = t1.reg("ok1");
    auto r1 = t1.reg("r1");
    auto r2 = t1.reg("r2");
    lock.emit_acquire(t1, ok1);
    t1.load(r1, d1, "r1 <- d1");
    t1.load(r2, d2, "r2 <- d2");
    lock.emit_release(t1);

    if (artifacts != nullptr) {
      artifacts->vars = {d1, d2};
      artifacts->regs = {ok0, ok1, r1, r2};
    }
  };
}

ClientProgram mgc_client(unsigned threads, unsigned rounds,
                         ClientArtifacts* artifacts) {
  support::require(threads >= 1 && rounds >= 1,
                   "mgc_client needs at least one thread and one round");
  return [threads, rounds, artifacts](System& sys, LockObject& lock) {
    const auto x = sys.client_var("x", 0);
    if (artifacts != nullptr) {
      artifacts->vars = {x};
      artifacts->regs.clear();
    }
    for (unsigned t = 0; t < threads; ++t) {
      auto tb = sys.thread();
      auto ok = tb.reg("ok");
      auto r = tb.reg("r");
      if (artifacts != nullptr) {
        artifacts->regs.push_back(ok);
        artifacts->regs.push_back(r);
      }
      for (unsigned k = 0; k < rounds; ++k) {
        lock.emit_acquire(tb, ok);
        const auto v = static_cast<Value>(t * 100 + k + 1);
        tb.store(x, c(v), "x := unique");
        tb.load(r, x, "r <- x");
        lock.emit_release(tb);
      }
    }
  };
}

ClientProgram counter_client(unsigned threads, unsigned rounds,
                             ClientArtifacts* artifacts) {
  support::require(threads >= 1 && rounds >= 1,
                   "counter_client needs at least one thread and one round");
  return [threads, rounds, artifacts](System& sys, LockObject& lock) {
    const auto x = sys.client_var("x", 0);
    if (artifacts != nullptr) {
      artifacts->vars = {x};
      artifacts->regs.clear();
    }
    for (unsigned t = 0; t < threads; ++t) {
      auto tb = sys.thread();
      auto ok = tb.reg("ok");
      auto r = tb.reg("r");
      if (artifacts != nullptr) {
        artifacts->regs.push_back(r);
      }
      for (unsigned k = 0; k < rounds; ++k) {
        lock.emit_acquire(tb, ok);
        tb.load(r, x, "r <- x");
        tb.store(x, Expr{r} + c(1), "x := r + 1");
        lock.emit_release(tb);
      }
    }
  };
}

ClientProgram worker_client(unsigned threads, unsigned rounds, unsigned work,
                            ClientArtifacts* artifacts) {
  support::require(threads >= 1 && rounds >= 1 && work >= 1,
                   "worker_client needs threads, rounds and work >= 1");
  return [threads, rounds, work, artifacts](System& sys, LockObject& lock) {
    const auto x = sys.client_var("x", 0);
    if (artifacts != nullptr) {
      artifacts->vars = {x};
      artifacts->regs.clear();
    }
    for (unsigned t = 0; t < threads; ++t) {
      auto tb = sys.thread();
      auto ok = tb.reg("ok");
      auto r = tb.reg("r");
      auto v = tb.reg("v");
      if (artifacts != nullptr) {
        artifacts->regs.push_back(r);
      }
      for (unsigned k = 0; k < rounds; ++k) {
        lock.emit_acquire(tb, ok);
        tb.load(r, x, "r <- x");
        tb.assign(v, Expr{r} + c(1), "v := r + 1");
        for (unsigned w = 1; w < work; ++w) {
          tb.assign(v, Expr{v} + c(0), "v := v");
        }
        tb.store(x, Expr{v}, "x := v");
        lock.emit_release(tb);
      }
    }
  };
}

}  // namespace rc11::locks
