// Experiment P10 (Proposition 10): forward simulation between the abstract
// lock and the ticket lock (§6.3), plus — answering the paper's question (3)
// — the CAS spinlock against the *same* abstract specification.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "refinement/refinement.hpp"

namespace {

using namespace rc11;

void BM_TicketLockSimulation(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto rounds = static_cast<unsigned>(state.range(1));
  refinement::SimulationResult result;
  for (auto _ : state) {
    locks::AbstractLock abs;
    const auto abs_sys =
        locks::instantiate(locks::mgc_client(threads, rounds), abs);
    locks::TicketLock conc;
    const auto conc_sys =
        locks::instantiate(locks::mgc_client(threads, rounds), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["abs_states"] = static_cast<double>(result.abstract_states);
  state.counters["conc_states"] = static_cast<double>(result.concrete_states);
  state.counters["pairs"] = static_cast<double>(result.candidate_pairs);
  state.counters["holds"] = result.holds ? 1 : 0;
  state.SetLabel(std::to_string(threads) + " threads x " +
                 std::to_string(rounds) + " rounds");
}
BENCHMARK(BM_TicketLockSimulation)->Args({2, 1})->Args({2, 2})->Args({3, 1});

void BM_CasSpinLockSimulation(benchmark::State& state) {
  refinement::SimulationResult result;
  for (auto _ : state) {
    locks::AbstractLock abs;
    const auto abs_sys = locks::instantiate(locks::fig7_client(), abs);
    locks::CasSpinLock conc;
    const auto conc_sys = locks::instantiate(locks::fig7_client(), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["holds"] = result.holds ? 1 : 0;
}
BENCHMARK(BM_CasSpinLockSimulation);

}  // namespace

int main(int argc, char** argv) {
  {
    rc11::locks::AbstractLock abs;
    const auto abs_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), abs);
    rc11::locks::TicketLock conc;
    const auto conc_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), conc);
    const auto r = rc11::refinement::check_forward_simulation(abs_sys, conc_sys);
    rc11::bench::verdict(
        "P10", r.holds,
        "ticket lock forward-simulates the abstract lock (abs states " +
            std::to_string(r.abstract_states) + ", conc states " +
            std::to_string(r.concrete_states) + ")");

    rc11::locks::TicketLock broken{/*releasing_release=*/false};
    const auto broken_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), broken);
    const auto rb =
        rc11::refinement::check_forward_simulation(abs_sys, broken_sys);
    rc11::bench::verdict("P10-neg", !rb.holds,
                         "ticket lock with relaxed release rejected");

    rc11::locks::CasSpinLock spin;
    const auto spin_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), spin);
    const auto rs =
        rc11::refinement::check_forward_simulation(abs_sys, spin_sys);
    rc11::bench::verdict("P10-extra", rs.holds,
                         "CAS spinlock implements the same abstract "
                         "specification (paper question 3)");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
