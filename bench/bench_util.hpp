// Shared helpers for the experiment benchmarks: formatting of outcome sets
// and a uniform "[exp-id] ..." verdict line so bench output doubles as the
// reproduction record collected into bench_output.txt / EXPERIMENTS.md.

#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"

namespace rc11::bench {

inline std::string outcomes_to_string(
    const std::vector<std::vector<lang::Value>>& outcomes) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    os << (i ? " " : "") << "(";
    for (std::size_t j = 0; j < outcomes[i].size(); ++j) {
      os << (j ? "," : "") << outcomes[i][j];
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

inline void verdict(const std::string& exp, bool ok, const std::string& detail) {
  std::cout << "[" << exp << "] " << (ok ? "REPRODUCED" : "MISMATCH") << " — "
            << detail << "\n";
}

/// Explores a litmus test and prints whether the reachable outcome set
/// matches the RC11 RAR prediction; returns the explore result for counters.
inline explore::ExploreResult run_litmus(const std::string& exp,
                                         litmus::LitmusTest& test) {
  auto result = explore::explore(test.sys);
  const auto outcomes =
      explore::final_register_values(test.sys, result, test.observed);
  verdict(exp, outcomes == test.allowed,
          test.name + ": outcomes " + outcomes_to_string(outcomes) +
              " expected " + outcomes_to_string(test.allowed));
  return result;
}

}  // namespace rc11::bench
