// rc11lib/lang/expr.hpp
//
// Expressions of the programming language of Section 3.1.  Per the grammar,
// expressions range over *local* variables only (Exp_L): all interaction with
// shared state happens through the explicit read/write/update/method-call
// instructions, which is what makes each instruction a single atomic step of
// the operational semantics.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "memsem/types.hpp"

namespace rc11::lang {

using memsem::Value;

/// Register (local variable) identifier, dense per thread.
using RegId = std::uint32_t;

enum class UnOp : std::uint8_t { Neg, Not };

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};

namespace detail {
struct ExprNode;
}  // namespace detail

/// Immutable expression tree.  Shared ownership keeps builder code natural
/// (subexpressions can be reused) while evaluation stays allocation-free.
class Expr {
 public:
  /// Constructs an *empty* expression (valid() is false); evaluating it is an
  /// internal error.  Exists so Instr can hold optional expression slots.
  Expr() = default;

  /// Constant n.
  static Expr constant(Value v);
  /// Local register r.
  static Expr reg(RegId r);

  static Expr unary(UnOp op, Expr operand);
  static Expr binary(BinOp op, Expr lhs, Expr rhs);

  /// Evaluates over a register file (index = RegId).  Boolean results are
  /// encoded as 0/1; any nonzero value is truthy.
  [[nodiscard]] Value eval(const std::vector<Value>& regs) const;

  /// The largest register id referenced, or -1 if none (used for validation).
  [[nodiscard]] std::int64_t max_reg() const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

 private:
  explicit Expr(std::shared_ptr<const detail::ExprNode> node)
      : node_(std::move(node)) {}
  std::shared_ptr<const detail::ExprNode> node_;
};

// Operator sugar so builder code reads like the paper's programs.
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator%(Expr a, Expr b);
Expr operator==(Expr a, Expr b);
Expr operator!=(Expr a, Expr b);
Expr operator<(Expr a, Expr b);
Expr operator<=(Expr a, Expr b);
Expr operator>(Expr a, Expr b);
Expr operator>=(Expr a, Expr b);
Expr operator&&(Expr a, Expr b);
Expr operator||(Expr a, Expr b);
Expr operator!(Expr a);

/// even(r) — used by the sequence lock's acquire loop (§6.2).
Expr is_even(Expr a);

}  // namespace rc11::lang
