#include "witness/witness.hpp"

#include <algorithm>
#include <charconv>
#include <deque>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/text.hpp"
#include "witness/json.hpp"

namespace rc11::witness {

/// Digests travel as fixed-width hex strings: JSON numbers cannot hold a full
/// uint64 portably, and the string form is greppable against renderer output.
std::string digest_to_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(digest >> shift) & 0xF]);
  }
  return out;
}

std::uint64_t digest_from_hex(const std::string& text) {
  support::require(text.size() >= 3 && text.size() <= 18 && text[0] == '0' &&
                       (text[1] == 'x' || text[1] == 'X'),
                   "witness: malformed digest '", text, "'");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data() + 2, text.data() + text.size(), value, 16);
  support::require(ec == std::errc{} && ptr == text.data() + text.size(),
                   "witness: malformed digest '", text, "'");
  return value;
}

namespace {

std::string short_digest(std::uint64_t digest) {
  return digest_to_hex(digest).substr(0, 8);  // "0x" + 6 nibbles
}

}  // namespace

std::uint64_t config_digest(const lang::Config& cfg) {
  const std::vector<std::uint64_t> words = cfg.encode();
  return support::hash_words(words);
}

std::string to_json(const Witness& w) {
  Json doc = Json::object();
  doc.set("format", Json::string("rc11-witness"));
  doc.set("version", Json::integer(w.version));
  doc.set("kind", Json::string(w.kind));
  doc.set("source", Json::string(w.source));
  doc.set("what", Json::string(w.what));
  doc.set("initial_digest", Json::string(digest_to_hex(w.initial_digest)));
  Json steps = Json::array();
  for (const WitnessStep& s : w.steps) {
    Json step = Json::object();
    if (s.thread == kAnyThread) {
      step.set("thread", Json::null());
    } else {
      step.set("thread", Json::integer(static_cast<std::int64_t>(s.thread)));
    }
    step.set("label", Json::string(s.label));
    step.set("after_digest", Json::string(digest_to_hex(s.after_digest)));
    steps.push(std::move(step));
  }
  doc.set("steps", std::move(steps));
  doc.set("state_dump", Json::string(w.state_dump));
  return doc.dump();
}

Witness from_json(std::string_view text) {
  const Json doc = Json::parse(text);
  support::require(doc.is(Json::Kind::Object),
                   "witness: document is not a JSON object");
  support::require(doc.at("format").as_string() == "rc11-witness",
                   "witness: not an rc11-witness document");
  Witness w;
  w.version = doc.at("version").as_int();
  support::require(w.version == kFormatVersion,
                   "witness: unsupported format version ", w.version,
                   " (this build reads version ", kFormatVersion, ")");
  w.kind = doc.at("kind").as_string();
  support::require(
      w.kind == "invariant" || w.kind == "outline" ||
          w.kind == "refinement" || w.kind == "race",
      "witness: unknown kind '", w.kind, "'");
  w.source = doc.at("source").as_string();
  w.what = doc.at("what").as_string();
  w.initial_digest = digest_from_hex(doc.at("initial_digest").as_string());
  w.state_dump = doc.at("state_dump").as_string();
  for (const Json& step : doc.at("steps").items()) {
    support::require(step.is(Json::Kind::Object),
                     "witness: step is not an object");
    WitnessStep s;
    const Json& thread = step.at("thread");
    if (!thread.is(Json::Kind::Null)) {
      const std::int64_t t = thread.as_int();
      support::require(t >= 0 && t < UINT32_MAX, "witness: bad thread id ", t);
      s.thread = static_cast<std::uint32_t>(t);
    }
    s.label = step.at("label").as_string();
    s.after_digest = digest_from_hex(step.at("after_digest").as_string());
    w.steps.push_back(std::move(s));
  }
  return w;
}

void save(const Witness& w, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  support::require(out.good(), "witness: cannot open '", path, "' for writing");
  out << to_json(w);
  out.close();
  support::require(out.good(), "witness: write to '", path, "' failed");
}

Witness load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  support::require(in.good(), "witness: cannot open '", path, "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  support::require(!in.bad(), "witness: read from '", path, "' failed");
  return from_json(buf.str());
}

ReplayResult replay(const lang::System& sys, const Witness& w) {
  ReplayResult result;
  lang::Config cur = lang::initial_config(sys);
  const std::uint64_t init = config_digest(cur);
  if (init != w.initial_digest) {
    result.error = support::concat(
        "initial state mismatch: witness recorded ",
        digest_to_hex(w.initial_digest), " but the program's initial state is ",
        digest_to_hex(init), " (wrong program or semantics options?)");
    return result;
  }
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    const WitnessStep& step = w.steps[i];
    const std::vector<lang::Step> succs =
        lang::successors(sys, cur, /*want_labels=*/true);
    const lang::Step* match = nullptr;
    for (const lang::Step& s : succs) {
      if (step.thread != kAnyThread && s.thread != step.thread) continue;
      if (config_digest(s.after) != step.after_digest) continue;
      match = &s;
      break;
    }
    if (match == nullptr) {
      std::string enabled;
      for (const lang::Step& s : succs) {
        enabled += support::concat("\n    thread ", s.thread, ": ", s.label,
                                   " -> ", digest_to_hex(config_digest(s.after)));
      }
      result.error = support::concat(
          "step ", i + 1, "/", w.steps.size(), " (thread ",
          step.thread == kAnyThread ? std::string("any")
                                    : std::to_string(step.thread),
          ", \"", step.label, "\") has no matching enabled transition to ",
          digest_to_hex(step.after_digest), "; enabled here:",
          succs.empty() ? "\n    (none — state is final or blocked)" : enabled);
      return result;
    }
    cur = match->after;
    result.steps_applied = i + 1;
  }
  result.ok = true;
  result.final_config = std::move(cur);
  return result;
}

namespace {

/// True iff thread t's next instruction is local (deterministic, no memory
/// effect): the fuse_local_steps reduction used by minimize().  Mirrors the
/// explorer's reduction; kept here so witness does not depend on explore.
bool next_instr_is_local(const lang::System& sys, const lang::Config& cfg,
                         lang::ThreadId t) {
  const auto& code = sys.code(t);
  if (cfg.pc[t] >= code.size()) return false;
  switch (code[cfg.pc[t]].kind) {
    case lang::IKind::Assign:
    case lang::IKind::Branch:
    case lang::IKind::Jump:
      return true;
    default:
      return false;
  }
}

/// First thread whose next instruction is local, or nullopt.
std::optional<lang::ThreadId> fusible_thread(const lang::System& sys,
                                             const lang::Config& cfg) {
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    if (next_instr_is_local(sys, cfg, t)) return t;
  }
  return std::nullopt;
}

/// BFS for a shortest path from the initial configuration to `target_digest`,
/// expanding only states whose digest is in `touched` (the subgraph induced
/// by the witness's own states).  When `fuse` is set, states with an enabled
/// local step expand only that thread — a sound reduction, but the reduced
/// graph may not contain the target inside `touched`, hence the caller's
/// fallback.  Returns nullopt when the target is unreachable in the
/// restricted graph.
std::optional<std::vector<WitnessStep>> restricted_bfs(
    const lang::System& sys, const std::unordered_set<std::uint64_t>& touched,
    std::uint64_t target_digest, bool fuse) {
  struct Node {
    lang::Config cfg;
    std::size_t parent;  ///< index into nodes (self-index for the root)
    WitnessStep step;    ///< edge from parent (empty for the root)
  };
  std::vector<Node> nodes;
  nodes.push_back({lang::initial_config(sys), 0, {}});
  std::unordered_map<std::uint64_t, std::size_t> seen;
  seen.emplace(support::hash_words(nodes[0].cfg.encode()), 0);
  std::deque<std::size_t> frontier{0};

  const auto build_path = [&](std::size_t idx) {
    std::vector<WitnessStep> steps;
    while (nodes[idx].parent != idx) {
      steps.push_back(nodes[idx].step);
      idx = nodes[idx].parent;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  };

  if (support::hash_words(nodes[0].cfg.encode()) == target_digest) {
    return std::vector<WitnessStep>{};
  }
  while (!frontier.empty()) {
    const std::size_t idx = frontier.front();
    frontier.pop_front();
    // Copy: nodes may reallocate while we push successors.
    const lang::Config cur = nodes[idx].cfg;
    const std::optional<lang::ThreadId> fused =
        fuse ? fusible_thread(sys, cur) : std::nullopt;
    const std::vector<lang::Step> succs =
        fused ? lang::thread_successors(sys, cur, *fused, /*want_labels=*/true)
              : lang::successors(sys, cur, /*want_labels=*/true);
    for (const lang::Step& s : succs) {
      const std::uint64_t digest = support::hash_words(s.after.encode());
      if (!touched.contains(digest)) continue;
      if (!seen.emplace(digest, nodes.size()).second) continue;
      nodes.push_back({s.after, idx, {s.thread, s.label, digest}});
      if (digest == target_digest) return build_path(nodes.size() - 1);
      frontier.push_back(nodes.size() - 1);
    }
  }
  return std::nullopt;
}

}  // namespace

Witness minimize(const lang::System& sys, const Witness& w,
                 const MinimizeOptions& options) {
  if (!options.shortest_path || w.steps.empty()) return w;
  // The input must be a real run (it supplies the touched-state set).
  const ReplayResult check = replay(sys, w);
  if (!check.ok) return w;

  std::unordered_set<std::uint64_t> touched;
  touched.insert(w.initial_digest);
  for (const WitnessStep& s : w.steps) touched.insert(s.after_digest);

  std::optional<std::vector<WitnessStep>> best;
  if (options.elide_local_steps) {
    best = restricted_bfs(sys, touched, w.final_digest(), /*fuse=*/true);
  }
  if (!best) {
    best = restricted_bfs(sys, touched, w.final_digest(), /*fuse=*/false);
  }
  // The original run lives inside the restricted graph, so the unfused search
  // cannot fail; guard anyway rather than crash on a digest-collision fluke.
  if (!best || best->size() >= w.steps.size()) return w;

  Witness out = w;
  out.steps = std::move(*best);
  return out;
}

std::string to_text(const Witness& w) {
  std::string out = support::concat(
      "witness (", w.kind, ", from ", w.source, ")\n",
      "violation: ", w.what, "\n",
      "run (", w.steps.size(), " steps from ", short_digest(w.initial_digest),
      "):\n");
  if (w.steps.empty()) {
    out += "  (violation at the initial state)\n";
  }
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    const WitnessStep& s = w.steps[i];
    out += support::concat(
        "  ", i + 1, ". [T",
        s.thread == kAnyThread ? std::string("?") : std::to_string(s.thread),
        "] ", s.label, "  -> ", short_digest(s.after_digest), "\n");
  }
  if (!w.state_dump.empty()) {
    out += "violating state:\n";
    std::istringstream dump(w.state_dump);
    for (std::string line; std::getline(dump, line);) {
      out += support::concat("  ", line, "\n");
    }
  }
  return out;
}

std::string to_dot(const Witness& w) {
  std::string out = "digraph witness {\n  rankdir=LR;\n  node [shape=box];\n";
  out += support::concat("  s0 [label=\"init\\n",
                         support::dot_escape(short_digest(w.initial_digest)),
                         "\"];\n");
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    const WitnessStep& s = w.steps[i];
    const bool last = i + 1 == w.steps.size();
    out += support::concat(
        "  s", i + 1, " [label=\"",
        support::dot_escape(short_digest(s.after_digest)), "\"",
        last ? ", color=red, penwidth=2" : "", "];\n");
    const std::string thread_tag =
        s.thread == kAnyThread ? std::string("T?")
                               : support::concat("T", s.thread);
    out += support::concat("  s", i, " -> s", i + 1, " [label=\"", thread_tag,
                           ": ", support::dot_escape(s.label), "\"];\n");
  }
  if (!w.what.empty()) {
    out += support::concat("  violation [shape=note, color=red, label=\"",
                           support::dot_escape(w.what), "\"];\n");
    out += support::concat("  s", w.steps.size(),
                           " -> violation [style=dashed, color=red];\n");
  }
  out += "}\n";
  return out;
}

}  // namespace rc11::witness
