// State-representation exactness: the interned visited set (and its
// lock-striped wrapper) must be indistinguishable from a reference
// std::set<std::vector<uint64_t>> oracle — over full explorations of every
// sample program and litmus test, over adversarial randomized inserts, and
// under forced digest collisions.  Also pins down the encode()/encode_into
// equivalence and the pooled-StepBuffer/vector successor equivalence the
// hot-path rewiring relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "engine/sharded_visited.hpp"
#include "lang/config.hpp"
#include "litmus/litmus.hpp"
#include "parser/parser.hpp"
#include "support/intern.hpp"

namespace {

using namespace rc11;
using lang::Config;
using lang::System;
using support::InternedWordSet;

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

const char* kPrograms[] = {
    "lock_client_abstract.rc11", "lock_client_broken.rc11",
    "lock_client_seqlock.rc11",  "mp_broken_outline.rc11",
    "mp_stack.rc11",             "mp_verified.rc11",
    "sb.rc11",                   "ticket_lock.rc11",
};

/// Explores `sys` by BFS, deduplicating with the std::set oracle while
/// mirroring every insert into an InternedWordSet and a ShardedVisitedSet.
/// Every novelty verdict must agree with the oracle's, for every state the
/// semantics can reach in `sys` (bounded for safety).
void check_oracle_equivalence(const System& sys, const std::string& what) {
  std::set<std::vector<std::uint64_t>> oracle;
  InternedWordSet interned;
  engine::ShardedVisitedSet sharded(8);

  const auto insert_all = [&](const Config& cfg) {
    const auto enc = cfg.encode();
    const bool fresh = oracle.insert(enc).second;
    EXPECT_EQ(interned.insert(enc), fresh) << what;
    EXPECT_EQ(sharded.insert(enc), fresh) << what;
    return fresh;
  };

  std::deque<Config> frontier;
  {
    Config init = lang::initial_config(sys);
    insert_all(init);
    frontier.push_back(std::move(init));
  }
  std::uint64_t expanded = 0;
  while (!frontier.empty() && expanded < 200'000) {
    Config cfg = std::move(frontier.front());
    frontier.pop_front();
    expanded += 1;
    for (auto& step : lang::successors(sys, cfg)) {
      // Duplicates are re-offered on purpose: the visited sets must refuse
      // them exactly when the oracle does.
      if (insert_all(step.after)) frontier.push_back(std::move(step.after));
    }
  }
  EXPECT_EQ(interned.size(), oracle.size()) << what;
  EXPECT_EQ(sharded.size(), oracle.size()) << what;
  EXPECT_GT(interned.bytes(), 0u) << what;
  for (const auto& enc : oracle) {
    EXPECT_TRUE(interned.contains(enc)) << what;
  }
}

TEST(StateRepr, OracleEquivalenceOverSamplePrograms) {
  for (const auto* name : kPrograms) {
    const auto program = parser::parse_file(prog(name));
    check_oracle_equivalence(program.sys, name);
  }
}

TEST(StateRepr, OracleEquivalenceOverLitmusTests) {
  for (auto& test : litmus::all_tests()) {
    check_oracle_equivalence(test.sys, test.name);
  }
}

TEST(StateRepr, EncodeIntoMatchesEncode) {
  for (auto& test : litmus::all_tests()) {
    std::vector<std::uint64_t> scratch;
    std::deque<Config> frontier;
    std::set<std::vector<std::uint64_t>> seen;
    frontier.push_back(lang::initial_config(test.sys));
    while (!frontier.empty() && seen.size() < 500) {
      Config cfg = std::move(frontier.front());
      frontier.pop_front();
      const auto fresh_vec = cfg.encode();
      scratch.clear();
      cfg.encode_into(scratch);
      EXPECT_EQ(scratch, fresh_vec) << test.name;
      // encode_into appends: a second call must yield the concatenation.
      cfg.encode_into(scratch);
      ASSERT_EQ(scratch.size(), 2 * fresh_vec.size()) << test.name;
      EXPECT_TRUE(std::equal(fresh_vec.begin(), fresh_vec.end(),
                             scratch.begin() + static_cast<std::ptrdiff_t>(
                                                   fresh_vec.size())))
          << test.name;
      if (!seen.insert(fresh_vec).second) continue;
      for (auto& step : lang::successors(test.sys, cfg)) {
        frontier.push_back(std::move(step.after));
      }
    }
  }
}

TEST(StateRepr, PooledSuccessorsMatchVectorSuccessors) {
  for (auto& test : litmus::all_tests()) {
    lang::StepBuffer buf;  // deliberately reused across states and tests
    std::deque<Config> frontier;
    std::set<std::vector<std::uint64_t>> seen;
    frontier.push_back(lang::initial_config(test.sys));
    while (!frontier.empty() && seen.size() < 300) {
      Config cfg = std::move(frontier.front());
      frontier.pop_front();
      if (!seen.insert(cfg.encode()).second) continue;
      const auto fresh = lang::successors(test.sys, cfg, /*want_labels=*/true);
      lang::successors(test.sys, cfg, buf, /*want_labels=*/true);
      ASSERT_EQ(buf.size(), fresh.size()) << test.name;
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        const auto& pooled = buf.steps()[i];
        EXPECT_EQ(pooled.thread, fresh[i].thread) << test.name;
        EXPECT_EQ(pooled.label, fresh[i].label) << test.name;
        EXPECT_EQ(pooled.after.encode(), fresh[i].after.encode()) << test.name;
      }
      for (const auto& step : fresh) frontier.push_back(step.after);
    }
  }
}

TEST(StateRepr, ForcedDigestCollisionsStayExact) {
  InternedWordSet set;
  // Adversarial digests: every sequence claims the same fingerprint, so
  // novelty must be decided by the stored encodings alone.
  const std::uint64_t digest = 0xdeadbeefULL;
  std::vector<std::vector<std::uint64_t>> seqs = {
      {}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {1ULL << 40}, {0x7f}, {0x80},
      {0x7f, 0x80}, {~0ULL}, {~0ULL, ~0ULL},
  };
  for (const auto& s : seqs) EXPECT_TRUE(set.insert(s, digest)) << s.size();
  for (const auto& s : seqs) EXPECT_FALSE(set.insert(s, digest)) << s.size();
  EXPECT_EQ(set.size(), seqs.size());
}

TEST(StateRepr, RandomizedInsertsMatchOracle) {
  std::mt19937_64 rng(0xc0ffee);  // fixed seed: reproducible
  std::set<std::vector<std::uint64_t>> oracle;
  InternedWordSet interned;
  engine::ShardedVisitedSet sharded(4);
  for (int round = 0; round < 20'000; ++round) {
    std::vector<std::uint64_t> words(rng() % 12);
    for (auto& w : words) {
      // Mix tiny values (one varint byte) with full-width ones so every
      // varint length is exercised.
      const auto shift = rng() % 64;
      w = rng() >> shift;
    }
    const bool fresh = oracle.insert(words).second;
    ASSERT_EQ(interned.insert(words), fresh) << "round " << round;
    ASSERT_EQ(sharded.insert(words), fresh) << "round " << round;
  }
  EXPECT_EQ(interned.size(), oracle.size());
  EXPECT_EQ(sharded.size(), oracle.size());
  for (const auto& words : oracle) EXPECT_TRUE(interned.contains(words));
}

}  // namespace
