// Experiment F5 (part 1): microbenchmarks of the Figure 5 memory-semantics
// transitions — READ (relaxed and synchronising), WRITE, UPDATE — and of the
// view-merge operator ⊗ that every synchronisation applies.  These are the
// primitive costs every verification run is built from.

#include <benchmark/benchmark.h>

#include "memsem/location.hpp"
#include "memsem/state.hpp"

namespace {

using namespace rc11::memsem;

LocationTable make_locs(std::size_t vars) {
  LocationTable locs;
  for (std::size_t i = 0; i < vars; ++i) {
    locs.add_var("x" + std::to_string(i),
                 i % 2 == 0 ? Component::Client : Component::Library, 0);
  }
  return locs;
}

void BM_WriteTransition(benchmark::State& state) {
  const auto locs = make_locs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    MemState m{locs, 2};
    state.ResumeTiming();
    OpId last = m.mo(0)[0];
    for (int i = 0; i < 64; ++i) {
      last = m.write(0, 0, i, MemOrder::Relaxed, last);
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WriteTransition)->Arg(2)->Arg(8)->Arg(32);

void BM_RelaxedReadTransition(benchmark::State& state) {
  const auto locs = make_locs(static_cast<std::size_t>(state.range(0)));
  MemState m{locs, 2};
  OpId w = m.write(0, 0, 1, MemOrder::Relaxed, m.mo(0)[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.read(1, 0, w, MemOrder::Relaxed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelaxedReadTransition)->Arg(2)->Arg(8)->Arg(32);

void BM_SynchronisingReadTransition(benchmark::State& state) {
  // The acquiring read of a releasing write merges the full mview — cost is
  // linear in the number of locations (both components).
  const auto locs = make_locs(static_cast<std::size_t>(state.range(0)));
  MemState m{locs, 2};
  OpId w = m.write(0, 0, 1, MemOrder::Release, m.mo(0)[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.read(1, 0, w, MemOrder::Acquire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynchronisingReadTransition)->Arg(2)->Arg(8)->Arg(32);

void BM_UpdateTransition(benchmark::State& state) {
  const auto locs = make_locs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    MemState m{locs, 2};
    state.ResumeTiming();
    OpId cur = m.mo(0)[0];
    for (int i = 1; i <= 64; ++i) {
      cur = m.update(static_cast<ThreadId>(i % 2), 0, cur, i);
    }
    benchmark::DoNotOptimize(cur);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_UpdateTransition)->Arg(2)->Arg(8)->Arg(32);

void BM_StateEncode(benchmark::State& state) {
  const auto locs = make_locs(8);
  MemState m{locs, 2};
  OpId last = m.mo(0)[0];
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    last = m.write(0, 0, i, MemOrder::Relaxed, last);
  }
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    out.clear();
    m.encode(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel("history length " + std::to_string(state.range(0)));
}
BENCHMARK(BM_StateEncode)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
