#include "engine/transition_system.hpp"

namespace rc11::engine {

using lang::IKind;
using lang::Instr;
using memsem::AccessKind;
using memsem::Component;
using memsem::MemOrder;

namespace {

constexpr std::uint64_t bit(ThreadId t) noexcept { return 1ULL << t; }

}  // namespace

SystemTransitions::SystemTransitions(const System& sys, AmplePolicy policy)
    : sys_(&sys), policy_(policy) {
  masks_valid_ = sys.num_threads() <= 64;
  if (!masks_valid_) return;
  loc_writers_.assign(sys.locations().size(), 0);
  loc_accessors_.assign(sys.locations().size(), 0);
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (const Instr& in : sys.code(t)) {
      const auto meta = lang::access_footprint(in);
      if (meta.access == AccessKind::Local) continue;
      loc_accessors_[meta.loc] |= bit(t);
      if (memsem::writes_location(meta.access)) loc_writers_[meta.loc] |= bit(t);
      if (meta.sync) sync_threads_ |= bit(t);
    }
  }
}

Config SystemTransitions::initial() const { return lang::initial_config(*sys_); }

void SystemTransitions::successors_into(const Config& cfg, StepBuffer& out,
                                        bool want_labels) const {
  lang::successors(*sys_, cfg, out, want_labels);
}

void SystemTransitions::thread_successors_into(const Config& cfg, ThreadId t,
                                               StepBuffer& out,
                                               bool want_labels) const {
  lang::thread_successors(*sys_, cfg, t, out, want_labels);
}

bool SystemTransitions::ample_eligible(const Config& cfg, ThreadId t) const {
  const System& sys = *sys_;
  const Instr& in = sys.code(t)[cfg.pc[t]];
  switch (in.kind) {
    case IKind::Assign:
      // Local and deterministic; pc always advances.  Under ClientInvisible
      // the destination must be a library register (client registers are
      // part of the client projection).
      return policy_ == AmplePolicy::FinalState ||
             sys.reg_component(t, in.dst) == Component::Library;
    case IKind::Jump:
      return in.target > cfg.pc[t];  // proviso: pc must strictly increase
    case IKind::Branch: {
      const std::uint32_t next =
          in.e1.eval(cfg.regs[t]) != 0 ? in.target : cfg.pc[t] + 1;
      return next > cfg.pc[t];
    }
    case IKind::Load:
    case IKind::Store: {
      // Private relaxed/non-atomic access: independent of every other-thread
      // step iff no other thread conflicts on the location (writes it for a
      // load; touches it at all for a store) and no other thread carries sync
      // flags anywhere (clause (2) of the dependence relation).  A private
      // access also never races (races need a conflicting other-thread
      // access), so deferring it preserves race reports.
      if (!masks_valid_ || (in.order != MemOrder::Relaxed &&
                            in.order != MemOrder::NonAtomic)) {
        return false;
      }
      if (policy_ == AmplePolicy::ClientInvisible &&
          sys.locations().component(in.loc) != Component::Library) {
        return false;
      }
      const std::uint64_t others = ~bit(t);
      const std::uint64_t conflict = in.kind == IKind::Load
                                         ? loc_writers_[in.loc]
                                         : loc_accessors_[in.loc];
      return (conflict & others) == 0 && (sync_threads_ & others) == 0;
    }
    default:
      // RMWs and object method calls always synchronise; never ample.
      return false;
  }
}

std::optional<ThreadId> SystemTransitions::ample_thread(const Config& cfg) const {
  // Lowest eligible thread id: deterministic, so the reduced graph is the
  // same for every worker count, search strategy and trace mode.
  for (ThreadId t = 0; t < sys_->num_threads(); ++t) {
    if (cfg.thread_done(*sys_, t)) continue;
    if (ample_eligible(cfg, t)) return t;
  }
  return std::nullopt;
}

std::optional<ThreadId> SystemTransitions::fusible_thread(const Config& cfg) const {
  for (ThreadId t = 0; t < sys_->num_threads(); ++t) {
    if (cfg.thread_done(*sys_, t)) continue;
    const auto kind = sys_->code(t)[cfg.pc[t]].kind;
    if (kind == IKind::Assign || kind == IKind::Branch || kind == IKind::Jump) {
      return t;
    }
  }
  return std::nullopt;
}

}  // namespace rc11::engine
