// rc11-run — command-line driver: parse a program file, exhaustively explore
// its RC11 RAR behaviours and print the final outcome set.
//
// Usage:
//   rc11-run [options] program.rc11
//
// Options:
//   --max-states N      exploration bound (default 1000000)
//   --threads N         exploration workers (0 = hardware, default 1)
//   --stats             also print peak frontier / visited-set memory
//   --disassemble       print the compiled per-thread code first
//   --no-ctview         ablation A1: disable cross-component view transfer
//   --no-covered        ablation A2: disable covered-set enforcement
//   --raw-timestamps    ablation A3: hash raw rational timestamps
//   --invariant EXPR    check an assertion (outline grammar) at every state
//   --witness FILE      write the first violation as a JSON witness (implies
//                       trace tracking; minimized before emission)
//   --replay FILE       re-execute a JSON witness against the program instead
//                       of exploring; exit 0 iff every step replays
//
// Exit status: 0 on success, 1 on usage/parse errors, 2 if exploration was
// truncated, an --invariant violation was found, or a --replay diverged.

#include <charconv>
#include <cstring>
#include <iostream>
#include <string>

#include <fstream>

#include "explore/dot.hpp"
#include "explore/explorer.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-run [--max-states N] [--threads N] [--stats] "
               "[--disassemble] [--no-ctview] [--no-covered] "
               "[--raw-timestamps] [--dot FILE] [--invariant EXPR] "
               "[--witness FILE] [--replay FILE] program.rc11\n";
  return 1;
}

/// Whole-string numeric parse; rejects "abc", "8x", "" instead of aborting.
template <typename T>
bool parse_num(const std::string& s, T& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  explore::ExploreOptions opts;
  memsem::SemanticsOptions sem;
  bool disassemble = false;
  bool stats = false;
  std::string dot_path;
  std::string invariant_src;
  std::string witness_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-states") {
      if (++i >= argc || !parse_num(argv[i], opts.max_states)) return usage();
    } else if (arg == "--threads") {
      if (++i >= argc || !parse_num(argv[i], opts.num_threads)) return usage();
    } else if (arg == "--disassemble") {
      disassemble = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--no-ctview") {
      sem.cross_component_view_transfer = false;
    } else if (arg == "--no-covered") {
      sem.enforce_covered = false;
    } else if (arg == "--raw-timestamps") {
      sem.canonical_timestamps = false;
    } else if (arg == "--dot") {
      if (++i >= argc) return usage();
      dot_path = argv[i];
    } else if (arg == "--invariant") {
      if (++i >= argc) return usage();
      invariant_src = argv[i];
    } else if (arg == "--witness") {
      if (++i >= argc) return usage();
      witness_path = argv[i];
    } else if (arg == "--replay") {
      if (++i >= argc) return usage();
      replay_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    auto program = parser::parse_file(path);
    program.sys.set_options(sem);

    if (!replay_path.empty()) {
      const auto w = witness::load(replay_path);
      const auto r = witness::replay(program.sys, w);
      if (r.ok) {
        std::cout << "replay OK: " << w.steps.size()
                  << " step(s) re-executed, final digest matches\n";
        return 0;
      }
      std::cout << "replay FAILED after " << r.steps_applied
                << " step(s): " << r.error << "\n";
      return 2;
    }

    if (disassemble) {
      std::cout << program.sys.disassemble() << "\n";
    }

    explore::Invariant invariant;
    if (!invariant_src.empty()) {
      const auto assertion = parser::parse_assertion(program, invariant_src);
      invariant = [assertion, invariant_src](
                      const lang::System& s,
                      const lang::Config& c) -> std::optional<std::string> {
        if (assertion.eval(s, c)) return std::nullopt;
        return "invariant " + invariant_src + " violated";
      };
      // A witness needs parent links; traces are how the explorer builds them.
      if (!witness_path.empty()) opts.track_traces = true;
    }

    if (!dot_path.empty()) {
      const auto graph =
          refinement::build_graph(program.sys, opts.max_states,
                                  /*want_labels=*/true, opts.num_threads);
      std::ofstream out{dot_path};
      out << explore::to_dot(program.sys, graph);
      std::cout << "state graph (" << graph.num_states()
                << " states) written to " << dot_path << "\n";
    }

    const auto result = explore::explore(program.sys, opts, invariant);
    std::cout << "states:      " << result.stats.states << "\n"
              << "transitions: " << result.stats.transitions << "\n"
              << "finals:      " << result.stats.finals << "\n"
              << "blocked:     " << result.stats.blocked << "\n";
    if (stats) {
      const auto per_state =
          result.stats.states
              ? result.stats.visited_bytes / result.stats.states
              : 0;
      std::cout << "peak frontier:  " << result.stats.peak_frontier << "\n"
                << "visited bytes:  " << result.stats.visited_bytes << " ("
                << per_state << " B/state)\n";
    }
    if (result.truncated) {
      std::cout << "WARNING: exploration truncated at " << opts.max_states
                << " states; results are a lower bound\n";
    }

    // Print the outcome set over all registers, in declaration order.
    std::vector<lang::Reg> regs;
    std::vector<std::string> names;
    for (lang::ThreadId t = 0; t < program.sys.num_threads(); ++t) {
      for (lang::RegId r = 0; r < program.sys.num_regs(t); ++r) {
        regs.push_back(lang::Reg{t, r});
        names.push_back(program.sys.reg_name(t, r));
      }
    }
    const auto outcomes = explore::final_register_values(program.sys, result, regs);
    std::cout << "\nfinal register outcomes (" << outcomes.size() << "):\n";
    for (const auto& tuple : outcomes) {
      std::cout << "  ";
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        std::cout << (i ? ", " : "") << names[i] << "=" << tuple[i];
      }
      std::cout << "\n";
    }

    if (!result.violations.empty()) {
      const auto& v = result.violations.front();
      std::cout << "\nVIOLATION: " << v.what << "\n";
      for (const auto& step : v.trace) {
        std::cout << "  " << step << "\n";
      }
      if (!witness_path.empty()) {
        if (v.witness) {
          const auto w = witness::minimize(program.sys, *v.witness);
          witness::save(w, witness_path);
          std::cout << "witness (" << w.steps.size() << " step(s)) written to "
                    << witness_path << "\n";
        } else {
          std::cout << "no witness recorded (trace tracking was off)\n";
        }
      }
      return 2;
    }
    if (!witness_path.empty()) {
      std::cout << "no violation found; " << witness_path << " not written\n";
    }
    return result.truncated ? 2 : 0;
  } catch (const std::exception& e) {
    std::cerr << "rc11-run: " << e.what() << "\n";
    return 1;
  }
}
