#include "refinement/refinement.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "engine/reach.hpp"
#include "engine/symmetry.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace rc11::refinement {

using memsem::Component;
using memsem::LocId;
using memsem::OpId;

ClientProjection project_client(const System& sys, const Config& cfg) {
  ClientProjection proj;
  // Client registers (Def. 5's ls_|C, including the rval of every method).
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < cfg.regs[t].size(); ++r) {
      if (sys.reg_component(t, r) == Component::Client) {
        proj.exact.push_back(static_cast<std::uint64_t>(cfg.regs[t][r]));
      }
    }
  }
  // Client-variable histories: kind, writer, value, covered, in mo order.
  const auto& locs = sys.locations();
  for (LocId loc = 0; loc < locs.size(); ++loc) {
    if (locs.component(loc) != Component::Client) continue;
    const auto order = cfg.mem.mo(loc);
    proj.exact.push_back(order.size());
    for (const OpId w : order) {
      const auto& op = cfg.mem.op(w);
      std::uint64_t tag = static_cast<std::uint64_t>(op.kind);
      tag |= static_cast<std::uint64_t>(op.thread) << 8;
      tag |= static_cast<std::uint64_t>(op.covered) << 40;
      tag |= static_cast<std::uint64_t>(op.releasing) << 41;
      proj.exact.push_back(tag);
      proj.exact.push_back(static_cast<std::uint64_t>(op.value));
    }
    for (ThreadId t = 0; t < sys.num_threads(); ++t) {
      proj.view_ranks.push_back(cfg.mem.rank(cfg.mem.view_front(t, loc)));
    }
  }
  return proj;
}

bool client_refines(const ClientProjection& abs, const ClientProjection& conc) {
  if (abs.exact != conc.exact) return false;
  RC11_REQUIRE(abs.view_ranks.size() == conc.view_ranks.size(),
               "client projections over different systems");
  for (std::size_t i = 0; i < abs.view_ranks.size(); ++i) {
    // Obs_C(t, x) ⊆ Obs_A(t, x): the concrete viewfront is at least as far
    // along modification order.
    if (conc.view_ranks[i] < abs.view_ranks[i]) return false;
  }
  return true;
}

namespace {

std::uint64_t hash_words(const std::vector<std::uint64_t>& words) {
  support::WordHasher h;
  for (const auto w : words) h.add(w);
  return h.digest();
}

}  // namespace

StateGraph build_graph(const System& sys, const GraphOptions& options) {
  // Two-phase construction on the shared reachability driver, for every
  // thread count.  Phase 1 collects every reachable configuration; states
  // are then sorted by canonical encoding so indices are
  // schedule-independent.  Phase 2 recomputes each state's successors —
  // through engine::expand_steps, so edges mirror exactly the (possibly
  // POR-reduced) relation phase 1 explored — and resolves them against the
  // sorted encoding index by binary search: purely read-only lookups, so no
  // locking is needed.
  StateGraph graph;
  const engine::SystemTransitions ts(sys, engine::AmplePolicy::ClientInvisible);
  const bool want_labels = options.want_labels;
  const unsigned num_threads = options.num_threads;

  struct Keyed {
    std::vector<std::uint64_t> enc;
    Config cfg;
  };
  std::vector<Keyed> collected;
  std::mutex mu;
  engine::ReachOptions ropts;
  ropts.budget.max_states = options.max_states;
  ropts.budget.max_visited_bytes = options.max_visited_bytes;
  ropts.budget.deadline_ms = options.deadline_ms;
  ropts.num_threads = num_threads;
  ropts.por = options.por;
  ropts.mode = options.mode;
  ropts.sample = options.sample;
  ropts.cancel = options.cancel;
  ropts.fault = options.fault;
  const auto reach = engine::visit_reachable(
      ts, ropts,
      [&](const Config& cfg, std::uint64_t /*id*/,
          std::span<const lang::Step>) -> bool {
        Keyed k{cfg.encode(), cfg};
        std::lock_guard<std::mutex> lock(mu);
        collected.push_back(std::move(k));
        return true;
      });
  graph.stop = reach.stop;
  graph.truncated = reach.truncated();

  std::sort(collected.begin(), collected.end(),
            [](const Keyed& a, const Keyed& b) { return a.enc < b.enc; });

  const std::size_t n = collected.size();
  graph.states.reserve(n);
  for (auto& k : collected) graph.states.push_back(std::move(k.cfg));
  graph.succ.assign(n, {});
  if (want_labels) {
    graph.labels.assign(n, {});
    graph.threads.assign(n, {});
  }

  const auto index_of = [&](const std::vector<std::uint64_t>& enc)
      -> std::optional<std::uint32_t> {
    const auto it = std::lower_bound(
        collected.begin(), collected.end(), enc,
        [](const Keyed& k, const std::vector<std::uint64_t>& e) {
          return k.enc < e;
        });
    if (it == collected.end() || it->enc != enc) return std::nullopt;
    return static_cast<std::uint32_t>(it - collected.begin());
  };

  {
    const auto init = index_of(lang::initial_config(sys).encode());
    RC11_REQUIRE(init.has_value(), "initial state missing from state graph");
    graph.initial = *init;
  }

  support::parallel_for(n, num_threads, [&](std::size_t i) {
    // Worker-local pooled buffers (parallel_for hands out bare indices, so
    // thread_local is the per-worker hook).
    thread_local lang::StepBuffer steps;
    thread_local std::vector<std::uint64_t> scratch;
    engine::expand_steps(ts, graph.states[i], ropts, steps, want_labels);
    for (auto& step : steps.steps()) {
      scratch.clear();
      step.after.encode_into(scratch);
      const auto idx = index_of(scratch);
      // A missing successor can only happen on a truncated build (its target
      // was never claimed); the graph is already flagged unreliable then.
      if (!idx.has_value()) continue;
      graph.succ[i].push_back(*idx);
      if (want_labels) {
        graph.labels[i].push_back(std::move(step.label));
        graph.threads[i].push_back(step.thread);
      }
    }
  });

  return graph;
}

StateGraph build_graph(const System& sys, std::uint64_t max_states,
                       bool want_labels, unsigned num_threads, bool por) {
  GraphOptions options;
  options.max_states = max_states;
  options.want_labels = want_labels;
  options.num_threads = num_threads;
  options.por = por;
  return build_graph(sys, options);
}

namespace {

/// Diagnosis for an incomplete graph build: says *which* graph (abstract vs
/// concrete) stopped on *which* bound, with the matching remedy — sourced
/// from StopReason instead of the old generic "state graph truncated".
std::string truncation_diagnosis(const StateGraph& abs, const StateGraph& conc) {
  const auto describe = [](const char* which,
                           engine::StopReason stop) -> std::string {
    const char* hint = nullptr;
    switch (stop) {
      case engine::StopReason::Complete:
        return {};
      case engine::StopReason::StateCap:
        hint = "hit the state cap; increase max_states";
        break;
      case engine::StopReason::MemCap:
        hint = "hit the memory budget; raise --mem-budget";
        break;
      case engine::StopReason::Deadline:
        hint = "hit the deadline; raise --deadline-ms";
        break;
      case engine::StopReason::Interrupted:
        hint = "was interrupted before completing";
        break;
      case engine::StopReason::InjectedFault:
        hint = "stopped on an injected fault (RC11_FAULT)";
        break;
      case engine::StopReason::EpisodeCap:
        hint =
            "is a sampled subgraph (episode budget exhausted); coverage is a "
            "lower bound — raise --strategy sample:N for more episodes";
        break;
      case engine::StopReason::WorkerLost:
        hint =
            "lost a worker process for good (supervised run); rerun "
            "single-process or raise RC11_DIST_RETRIES";
        break;
    }
    return support::concat(which, " state graph ", hint);
  };
  std::string msg = describe("abstract", abs.stop);
  const std::string conc_msg = describe("concrete", conc.stop);
  if (!msg.empty() && !conc_msg.empty()) msg += "; ";
  return msg + conc_msg;
}

/// Forwards the shared resource-governance knobs of the two checker option
/// structs into a GraphOptions.  `apply_sampling` gates the coverage mode:
/// only the concrete graph is ever sampled — the abstract graph is the
/// specification, and a sampled (incomplete) spec would manufacture false
/// violations, so the abstract build always enumerates exhaustively.
template <typename CheckOptions>
GraphOptions graph_options(const CheckOptions& options, bool want_labels,
                           bool apply_sampling) {
  GraphOptions gopts;
  gopts.max_states = options.max_states;
  gopts.want_labels = want_labels;
  gopts.num_threads = options.num_threads;
  gopts.por = options.por;
  gopts.max_visited_bytes = options.max_visited_bytes;
  gopts.deadline_ms = options.deadline_ms;
  gopts.cancel = options.cancel;
  gopts.fault = options.fault;
  if (apply_sampling) {
    gopts.mode = options.mode;
    gopts.sample = options.sample;
  }
  return gopts;
}

}  // namespace

SimulationResult check_forward_simulation(const System& abstract_sys,
                                          const System& concrete_sys,
                                          const SimulationOptions& options) {
  SimulationResult result;
  const StateGraph abs = build_graph(
      abstract_sys,
      graph_options(options, /*want_labels=*/false, /*apply_sampling=*/false));
  const StateGraph conc = build_graph(
      concrete_sys,
      graph_options(options, /*want_labels=*/true, /*apply_sampling=*/true));
  result.abstract_states = abs.num_states();
  result.concrete_states = conc.num_states();
  result.truncated = abs.truncated || conc.truncated;
  if (result.truncated) {
    result.diagnosis = truncation_diagnosis(abs, conc);
    return result;
  }

  // Project every state once (embarrassingly parallel: one slot per state).
  std::vector<ClientProjection> abs_proj(abs.num_states());
  support::parallel_for(abs.num_states(), options.num_threads, [&](std::size_t i) {
    abs_proj[i] = project_client(abstract_sys, abs.states[i]);
  });
  std::vector<ClientProjection> conc_proj(conc.num_states());
  support::parallel_for(conc.num_states(), options.num_threads, [&](std::size_t i) {
    conc_proj[i] = project_client(concrete_sys, conc.states[i]);
  });

  // Group abstract states by the exact-match part so candidate generation is
  // linear in matching states rather than quadratic overall.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> abs_by_key;
  for (std::uint32_t a = 0; a < abs_proj.size(); ++a) {
    abs_by_key[hash_words(abs_proj[a].exact)].push_back(a);
  }

  // Candidate pairs, stored per concrete state.
  std::vector<std::vector<std::uint32_t>> pairs_of(conc.num_states());
  const auto pair_key = [&](std::uint32_t a, std::uint32_t cidx) {
    return static_cast<std::uint64_t>(a) * conc.num_states() + cidx;
  };
  std::unordered_set<std::uint64_t> alive;
  for (std::uint32_t cidx = 0; cidx < conc_proj.size(); ++cidx) {
    const auto it = abs_by_key.find(hash_words(conc_proj[cidx].exact));
    if (it == abs_by_key.end()) continue;
    for (const auto a : it->second) {
      if (client_refines(abs_proj[a], conc_proj[cidx])) {
        pairs_of[cidx].push_back(a);
        alive.insert(pair_key(a, cidx));
      }
    }
  }
  result.candidate_pairs = alive.size();

  // Greatest fixpoint: repeatedly delete pairs with an unmatchable concrete
  // step.  (Simple sweep iteration; graphs are small.)  For diagnosis, the
  // concrete edge that killed each pair is recorded so a failure can be
  // replayed as a step chain from the initial pair.
  std::unordered_set<std::uint64_t> ever_candidate = alive;
  std::unordered_map<std::uint64_t, std::uint32_t> killer_edge;
  bool changed = true;
  while (changed) {
    changed = false;
    result.refinement_iterations += 1;
    for (std::uint32_t cidx = 0; cidx < conc_proj.size(); ++cidx) {
      auto& candidates = pairs_of[cidx];
      for (std::size_t i = 0; i < candidates.size();) {
        const auto a = candidates[i];
        bool ok = true;
        std::uint32_t offending_edge = 0;
        for (std::uint32_t e = 0; e < conc.succ[cidx].size(); ++e) {
          const auto csucc = conc.succ[cidx][e];
          // Stuttering: same abstract state still paired with the successor.
          if (alive.count(pair_key(a, csucc)) > 0) continue;
          // Non-stuttering: one abstract step.
          bool matched = false;
          for (const auto asucc : abs.succ[a]) {
            if (alive.count(pair_key(asucc, csucc)) > 0) {
              matched = true;
              break;
            }
          }
          if (!matched) {
            ok = false;
            offending_edge = e;
            break;
          }
        }
        if (ok) {
          ++i;
        } else {
          alive.erase(pair_key(a, cidx));
          killer_edge.emplace(pair_key(a, cidx), offending_edge);
          candidates[i] = candidates.back();
          candidates.pop_back();
          changed = true;
        }
      }
    }
  }
  result.surviving_pairs = alive.size();

  result.holds = alive.count(pair_key(abs.initial, conc.initial)) > 0;
  if (!result.holds) {
    result.diagnosis =
        result.candidate_pairs == 0
            ? "no client-compatible state pairs at all"
            : "initial pair eliminated: some concrete client step cannot be "
              "matched by the abstract object";
    // Replay the elimination chain: each eliminated pair knows the concrete
    // step none of the abstract responses could match; following such steps
    // bottoms out at a concrete state that is client-incompatible with every
    // abstract option — the real divergence.
    if (ever_candidate.count(pair_key(abs.initial, conc.initial)) > 0) {
      std::uint32_t a = abs.initial;
      std::uint32_t cidx = conc.initial;
      std::uint32_t final_c = conc.initial;
      witness::Witness w;
      w.kind = "refinement";
      w.source = "refinement::check_forward_simulation";
      w.initial_digest = witness::config_digest(conc.states[conc.initial]);
      for (int guard = 0; guard < 10000; ++guard) {
        const auto it = killer_edge.find(pair_key(a, cidx));
        if (it == killer_edge.end()) break;  // pair survived: chain complete
        const auto edge = it->second;
        const auto csucc = conc.succ[cidx][edge];
        result.counterexample.push_back(conc.labels[cidx][edge]);
        w.steps.push_back({conc.threads[cidx][edge], conc.labels[cidx][edge],
                           witness::config_digest(conc.states[csucc])});
        final_c = csucc;
        // Continue through an abstract response that was once a candidate
        // (its own elimination explains why the response fails), preferring
        // the stutter.
        std::int64_t next_a = -1;
        if (ever_candidate.count(pair_key(a, csucc)) > 0) {
          next_a = a;
        } else {
          for (const auto asucc : abs.succ[a]) {
            if (ever_candidate.count(pair_key(asucc, csucc)) > 0) {
              next_a = asucc;
              break;
            }
          }
        }
        if (next_a < 0) {
          result.counterexample.push_back(
              "-- divergence: this concrete state is client-incompatible "
              "with every abstract continuation");
          break;
        }
        a = static_cast<std::uint32_t>(next_a);
        cidx = csucc;
      }
      if (!w.steps.empty()) {
        // The witness is the concrete half of the failed game: a real run of
        // concrete_sys into the diverging state (the sentinel note above is
        // commentary, not a step, so it only appears in `counterexample`).
        w.what = result.diagnosis;
        w.state_dump = conc.states[final_c].to_string(concrete_sys);
        result.witness = std::move(w);
      }
    }
  }
  return result;
}

TraceInclusionResult check_trace_inclusion(const System& abstract_sys,
                                           const System& concrete_sys,
                                           const TraceInclusionOptions& options) {
  TraceInclusionResult result;
  const StateGraph abs = build_graph(
      abstract_sys,
      graph_options(options, /*want_labels=*/false, /*apply_sampling=*/false));
  // The concrete graph carries labels and threads so an unmatchable step can
  // be reported as a replayable run, not just a state dump.
  const StateGraph conc = build_graph(
      concrete_sys,
      graph_options(options, /*want_labels=*/true, /*apply_sampling=*/true));
  // A sampled concrete graph (EpisodeCap) still plays the game: every
  // covered concrete state and edge is a real execution and the abstract
  // graph is complete, so an empty match set found below is a *definite*
  // refinement violation.  The result stays marked truncated — "no
  // violation" on a sample is a lower bound, never a proof.  Any other
  // truncation (either graph) leaves the game meaningless, as before.
  const bool sampled_concrete =
      conc.truncated && conc.stop == engine::StopReason::EpisodeCap;
  if (abs.truncated || (conc.truncated && !sampled_concrete)) {
    result.truncated = true;
    result.what = truncation_diagnosis(abs, conc);
    return result;
  }
  result.truncated = sampled_concrete;
  // Pre-seed the diagnosis; a found violation overwrites it with specifics.
  if (sampled_concrete) result.what = truncation_diagnosis(abs, conc);

  std::vector<ClientProjection> abs_proj(abs.num_states());
  support::parallel_for(abs.num_states(), options.num_threads, [&](std::size_t i) {
    abs_proj[i] = project_client(abstract_sys, abs.states[i]);
  });
  std::vector<ClientProjection> conc_proj(conc.num_states());
  support::parallel_for(conc.num_states(), options.num_threads, [&](std::size_t i) {
    conc_proj[i] = project_client(concrete_sys, conc.states[i]);
  });

  // Thread-symmetry quotient of the product (see TraceInclusionOptions):
  // enumerate the shared permutation group and precompute, per permutation,
  // the state-index image in each graph (graph states are encoding-sorted,
  // so images resolve by binary search over re-encoded states; on a
  // complete graph every image is present by equivariance).
  std::vector<engine::ThreadPerm> perms;  // non-identity group elements
  std::vector<std::vector<std::uint32_t>> abs_maps, conc_maps;  // per perm
  if (options.symmetry && !sampled_concrete) {
    const engine::SymmetryReducer abs_red(abstract_sys);
    const engine::SymmetryReducer conc_red(concrete_sys);
    if (abs_red.symmetric() && conc_red.symmetric() &&
        abs_red.classes() == conc_red.classes()) {
      conc_red.for_each_perm([&](const engine::ThreadPerm& p) {
        for (std::size_t t = 0; t < p.size(); ++t) {
          if (p[t] != t) {
            perms.push_back(p);
            return;
          }
        }
      });
      const auto build_maps = [&perms](const engine::SymmetryReducer& red,
                                       const StateGraph& g) {
        std::vector<std::vector<std::uint64_t>> encs(g.num_states());
        for (std::size_t i = 0; i < g.num_states(); ++i) {
          encs[i] = g.states[i].encode();
        }
        std::vector<std::vector<std::uint32_t>> maps(
            perms.size(), std::vector<std::uint32_t>(g.num_states()));
        for (std::size_t p = 0; p < perms.size(); ++p) {
          for (std::size_t i = 0; i < g.num_states(); ++i) {
            const auto enc = red.permuted(g.states[i], perms[p]).encode();
            const auto it = std::lower_bound(encs.begin(), encs.end(), enc);
            RC11_REQUIRE(it != encs.end() && *it == enc,
                         "permuted state missing from a complete state graph "
                         "(symmetry classes are not sound for this system)");
            maps[p][i] =
                static_cast<std::uint32_t>(it - encs.begin());
          }
        }
        return maps;
      };
      abs_maps = build_maps(abs_red, abs);
      conc_maps = build_maps(conc_red, conc);
    }
  }
  const bool quotient = !perms.empty();
  using NodeForm = std::pair<std::uint32_t, std::vector<std::uint32_t>>;
  // Lexicographically minimal simultaneous permutation image of a product
  // node — a pure function of the node's orbit, used as the dedup key.
  const auto canonical_form = [&](std::uint32_t c,
                                  const std::vector<std::uint32_t>& match) {
    NodeForm best{c, match};
    std::vector<std::uint32_t> m;
    for (std::size_t p = 0; p < perms.size(); ++p) {
      const std::uint32_t pc = conc_maps[p][c];
      if (pc > best.first) continue;
      m.clear();
      for (const auto a : match) m.push_back(abs_maps[p][a]);
      std::sort(m.begin(), m.end());
      if (pc < best.first || m < best.second) {
        best.first = pc;
        best.second = m;
      }
    }
    return best;
  };

  // Subset construction: a node is (concrete state, sorted set of abstract
  // states whose runs pointwise refine the concrete prefix so far).  Nodes
  // live in an arena with parent back-pointers so a violation can replay the
  // concrete prefix that led to it.
  struct Node {
    std::uint32_t c;
    std::vector<std::uint32_t> match;  // sorted
    std::size_t parent;                // arena index (self-index for the root)
    std::uint32_t via_edge = 0;        // edge in conc.succ[nodes[parent].c]
  };
  std::vector<Node> nodes;
  // Dedup is by *canonical form* under the symmetry quotient (the identity
  // form otherwise); arena nodes keep the concrete successor actually
  // reached, so parent chains remain real runs and witnesses replay.
  std::vector<NodeForm> forms;  // parallel to nodes
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> visited;
  const auto node_key = [](const NodeForm& form) {
    support::WordHasher h;
    h.add(form.first);
    for (const auto a : form.second) h.add(a);
    return h.digest();
  };
  const auto visit = [&](Node n) -> bool {
    NodeForm form =
        quotient ? canonical_form(n.c, n.match) : NodeForm{n.c, n.match};
    auto& bucket = visited[node_key(form)];
    for (const auto existing : bucket) {
      if (forms[existing] == form) return false;
    }
    bucket.push_back(nodes.size());
    forms.push_back(std::move(form));
    nodes.push_back(std::move(n));
    return true;
  };

  /// Replayable concrete run: the arena chain root -> `node_idx`, plus the
  /// final unmatchable edge `edge` out of nodes[node_idx].c.
  const auto build_witness = [&](std::size_t node_idx, std::uint32_t edge) {
    witness::Witness w;
    w.kind = "refinement";
    w.source = "refinement::check_trace_inclusion";
    w.initial_digest = witness::config_digest(conc.states[conc.initial]);
    std::vector<std::size_t> chain;
    for (std::size_t n = node_idx; nodes[n].parent != n; n = nodes[n].parent) {
      chain.push_back(n);
    }
    std::reverse(chain.begin(), chain.end());
    for (const auto n : chain) {
      const std::uint32_t from = nodes[nodes[n].parent].c;
      const std::uint32_t e = nodes[n].via_edge;
      w.steps.push_back({conc.threads[from][e], conc.labels[from][e],
                         witness::config_digest(conc.states[nodes[n].c])});
    }
    const std::uint32_t from = nodes[node_idx].c;
    const std::uint32_t to = conc.succ[from][edge];
    w.steps.push_back({conc.threads[from][edge], conc.labels[from][edge],
                       witness::config_digest(conc.states[to])});
    w.state_dump = conc.states[to].to_string(concrete_sys);
    return w;
  };

  std::deque<std::size_t> work;
  {
    Node init{conc.initial, {}, 0, 0};
    if (client_refines(abs_proj[abs.initial], conc_proj[conc.initial])) {
      init.match.push_back(abs.initial);
    }
    if (init.match.empty()) {
      result.what = "initial concrete state refines no abstract state";
      return result;
    }
    visit(std::move(init));
    work.push_back(0);
  }

  result.holds = true;
  while (!work.empty()) {
    if (result.product_nodes >= options.max_product_nodes) {
      result.truncated = true;
      result.what = "product exploration truncated";
      break;
    }
    const std::size_t node_idx = work.front();
    work.pop_front();
    result.product_nodes += 1;
    // Copy out: the arena may reallocate while successors are inserted.
    const std::uint32_t node_c = nodes[node_idx].c;
    const std::vector<std::uint32_t> node_match = nodes[node_idx].match;

    for (std::uint32_t e = 0; e < conc.succ[node_c].size(); ++e) {
      const auto csucc = conc.succ[node_c][e];
      Node next{csucc, {}, node_idx, e};
      for (const auto a : node_match) {
        // Abstract stutter.
        if (client_refines(abs_proj[a], conc_proj[csucc])) {
          next.match.push_back(a);
        }
        // One abstract step.
        for (const auto asucc : abs.succ[a]) {
          if (client_refines(abs_proj[asucc], conc_proj[csucc])) {
            next.match.push_back(asucc);
          }
        }
      }
      std::sort(next.match.begin(), next.match.end());
      next.match.erase(std::unique(next.match.begin(), next.match.end()),
                       next.match.end());
      if (next.match.empty()) {
        result.holds = false;
        result.what = support::concat(
            "concrete step into state ", csucc,
            " cannot be matched by any abstract run:\n",
            conc.states[csucc].to_string(concrete_sys));
        witness::Witness w = build_witness(node_idx, e);
        w.what = support::concat("concrete step into state ", csucc,
                                 " cannot be matched by any abstract run");
        result.witness = std::move(w);
        return result;
      }
      if (visit(std::move(next))) {
        work.push_back(nodes.size() - 1);
      }
    }
  }
  return result;
}

}  // namespace rc11::refinement
