// Experiment B1 (baseline): the same programs under the SC baseline vs the
// paper's RC11 RAR model.  Shape: SC outcome sets are subsets of the RC11
// ones (the difference is exactly the weak behaviours), and SC state spaces
// are no larger.  This quantifies what the weak-memory machinery buys and
// costs.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace rc11;

struct Comparison {
  std::uint64_t rc11_states = 0;
  std::uint64_t sc_states = 0;
  std::size_t rc11_outcomes = 0;
  std::size_t sc_outcomes = 0;
};

Comparison compare(std::size_t idx) {
  Comparison cmp;
  {
    auto t = litmus::all_tests().at(idx);
    const auto result = explore::explore(t.sys);
    cmp.rc11_states = result.stats.states;
    cmp.rc11_outcomes =
        explore::final_register_values(t.sys, result, t.observed).size();
  }
  {
    auto t = litmus::all_tests().at(idx);
    memsem::SemanticsOptions opts;
    opts.model = memsem::MemoryModel::SC;
    t.sys.set_options(opts);
    const auto result = explore::explore(t.sys);
    cmp.sc_states = result.stats.states;
    cmp.sc_outcomes =
        explore::final_register_values(t.sys, result, t.observed).size();
  }
  return cmp;
}

void BM_ScVsRC11(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  Comparison cmp;
  for (auto _ : state) {
    cmp = compare(idx);
    benchmark::DoNotOptimize(cmp.rc11_states);
  }
  state.counters["rc11_states"] = static_cast<double>(cmp.rc11_states);
  state.counters["sc_states"] = static_cast<double>(cmp.sc_states);
  state.counters["rc11_outcomes"] = static_cast<double>(cmp.rc11_outcomes);
  state.counters["sc_outcomes"] = static_cast<double>(cmp.sc_outcomes);
  state.SetLabel(litmus::all_tests().at(idx).name);
}
BENCHMARK(BM_ScVsRC11)->DenseRange(0, 11);

}  // namespace

int main(int argc, char** argv) {
  {
    bool subset_everywhere = true;
    int strictly_weaker = 0;
    for (std::size_t i = 0; i < litmus::all_tests().size(); ++i) {
      const auto cmp = compare(i);
      if (cmp.sc_outcomes > cmp.rc11_outcomes) subset_everywhere = false;
      if (cmp.sc_outcomes < cmp.rc11_outcomes) ++strictly_weaker;
    }
    bench::verdict("B1", subset_everywhere && strictly_weaker >= 3,
                   "SC baseline: outcome sets shrink on " +
                       std::to_string(strictly_weaker) +
                       " litmus tests (the weak behaviours), never grow");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
