# Empty compiler generated dependencies file for bench_ablation_covered.
# This may be replaced when dependencies are built.
