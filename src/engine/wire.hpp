// rc11lib/engine/wire.hpp
//
// Length-prefixed frame codec for the supervised multi-process driver
// (engine/supervise.hpp).  Frontier batches and their acks travel over
// anonymous pipes between the supervisor and its worker processes; the
// payloads are JSON records derived from the checkpoint v1 wire format
// (docs/FORMAT.md), and this layer wraps each payload in a self-validating
// frame so the supervisor can detect a corrupt, truncated or garbage stream
// *before* any of it influences a verdict:
//
//   offset  size  field
//   0       4     magic "RC4W"
//   4       4     payload length, u32 little-endian (<= kMaxFramePayload)
//   8       4     CRC-32 (IEEE 802.3) of the payload, u32 little-endian
//   12      len   payload bytes (UTF-8 JSON)
//
// A pipe is a byte stream: once one frame fails validation there is no
// reliable way to re-synchronise, so FrameReader is sticky-corrupt — the
// supervisor's only sound response is to kill the worker, restart it and
// resend the unacknowledged batch (engine/supervise.cpp does exactly that).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "witness/json.hpp"

namespace rc11::engine::wire {

/// Frame magic: "RC4W" (rc11 wire, version-bumped with the schema).
inline constexpr char kMagic[4] = {'R', 'C', '4', 'W'};

/// Header bytes before the payload (magic + length + CRC).
inline constexpr std::size_t kHeaderBytes = 12;

/// Hard cap on one frame's payload.  A batch of frontier paths on any real
/// program is a few KiB; anything near this cap is a corrupted length field.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// Wraps `payload` in a frame (header + bytes, ready to write to a pipe).
/// Throws support::Error if the payload exceeds kMaxFramePayload.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame parser over a byte stream delivered in arbitrary
/// chunks.  feed() appends raw bytes; next() pops the earliest complete
/// frame.  Any validation failure (bad magic, oversized length, CRC
/// mismatch) poisons the reader permanently: the stream cannot be
/// re-synchronised, so every later next() reports Corrupt too.
class FrameReader {
 public:
  enum class Status : std::uint8_t {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< `payload` holds the next frame's payload
    Corrupt,   ///< stream failed validation (sticky); `error` says why
  };

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Pops the next frame into `payload`, or explains why it cannot.
  [[nodiscard]] Status next(std::string& payload, std::string& error);

  /// Bytes buffered but not yet consumed (diagnostics).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool corrupt_ = false;
  std::string error_;
};

/// Encodes a word vector (a state encoding or abstraction key) as a JSON
/// array of "0x..." digests — the same representation checkpoint v1 uses
/// for state encodings, so the batch schema stays a strict derivative of
/// the checkpoint format.
[[nodiscard]] witness::Json words_json(std::span<const std::uint64_t> words);

/// Parses words_json output back; throws support::Error on malformed input.
[[nodiscard]] std::vector<std::uint64_t> words_from_json(
    const witness::Json& array);

}  // namespace rc11::engine::wire
