// rc11lib/engine/abstraction.hpp
//
// The pluggable state-equivalence layer of the reachability engine: what it
// means for two configurations to be "the same" for visited-set purposes.
// The driver (engine/reach.hpp) deduplicates states by an *abstract key*
// computed here; everything downstream of the key — frontier ownership,
// sleep-mask storage, budget accounting — is abstraction-agnostic.  Trace
// sinks, witnesses and checkpoints always stay concrete: the abstraction
// only decides which arrivals are folded together, never what a recorded
// step looks like.
//
// Three implementations:
//
//   * Concrete — the identity abstraction: the key is the configuration's
//     canonical encoding (Config::encode_into).  Used by the driver's
//     sleep-set-only reduced path, and the baseline every quotient's
//     exactness is cross-checked against.
//
//   * Symmetry — the thread-permutation orbit quotient of PR 7
//     (engine/symmetry.hpp): the key is the lexicographically minimal
//     encoding over the interchangeable-thread permutations, with the
//     achieving permutations reported so per-thread sleep masks can be
//     transported into and out of canonical coordinates.
//
//   * RfQuotient — the execution-graph quotient (--rf-quotient): the key is
//     [pcs, registers, rf/mo projection] where the projection
//     (memsem::MemState::encode_quotient) keeps the full modification
//     order — reads-from (Update read values), mo positions, covering,
//     releasing bits, executing threads — plus exactly the view state a
//     continuation can still observe, and drops the rest:
//
//       - a thread's viewfront entry for location l is kept iff the thread
//         can still reach an instruction accessing l (its enabled reads,
//         writes and RMWs on l are constrained by that entry), or the
//         thread can still reach a *view-exporting* instruction — a
//         releasing store, an RMW, or any object-method call — each of
//         which snapshots the whole viewfront row into a kept modification
//         view, or the entry is pinned by the caller (assertion
//         footprints; see RfPins);
//
//       - a non-releasing plain-variable operation's modification view is
//         dropped: under RC11 RAR no synchronisation path ever merges it
//         (reads and updates only synchronise with releasing writes, and
//         object synchronisation only targets object locations).
//
//     Two states with equal keys therefore have identical program state,
//     identical execution graphs and identical observable views, so their
//     enabled steps coincide and every step leads to equal-keyed states
//     again (the keep mask only shrinks along transitions — reachability is
//     closed under predecessors): the quotient is a bisimulation for final
//     outcomes, invariant/obligation verdicts over pinned footprints, and
//     race sets (clocks are part of the key).  Interleavings that build the
//     same graph differ only in dead view history and are merged — the
//     CDSChecker-style reduction the ROADMAP's reads-from item asks for —
//     which is what cuts store-heavy *asymmetric* programs where --symmetry
//     has no orbit to quotient.  DESIGN.md (StateAbstraction section) gives
//     the full soundness argument; the --rf-quotient flag is rejected under
//     MemoryModel::SC (every access synchronises there, so dropped entries
//     would be observable) and may not be combined with --symmetry (v1).

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "engine/symmetry.hpp"
#include "lang/config.hpp"

namespace rc11::engine {

/// The abstract key of one configuration: the encoding the visited set
/// deduplicates by, plus the concrete-to-canonical thread permutations when
/// the abstraction has any (empty means the identity — Concrete and
/// RfQuotient keys are already in concrete thread coordinates).
struct AbstractKey {
  std::vector<std::uint64_t> encoding;
  /// Every permutation achieving `encoding` (see SymmetryReducer::Canonical);
  /// empty for abstractions whose keys keep concrete thread coordinates.
  std::vector<ThreadPerm> perms;
  /// False when the permutation set may be incomplete (capped tie
  /// enumeration): sleep masks attached to this key must degrade to empty.
  bool complete = true;
};

/// A state-equivalence policy.  key() may reuse per-instance mutable
/// scratch, so an instance must not be shared across workers — drivers keep
/// one per worker via clone().
class StateAbstraction {
 public:
  enum class Kind : std::uint8_t { Concrete, Symmetry, RfQuotient };

  virtual ~StateAbstraction() = default;

  [[nodiscard]] virtual Kind kind() const noexcept = 0;

  /// True iff the key can differ from the concrete encoding (e.g. a
  /// symmetry abstraction over a system with no interchangeable threads is
  /// trivial and the driver falls back to its plain path).
  [[nodiscard]] virtual bool nontrivial() const noexcept = 0;

  /// Computes the key of `cfg` into `out` (all fields overwritten).
  virtual void key(const Config& cfg, AbstractKey& out) const = 0;

  /// A fresh instance over the same system (for per-worker scratch).
  [[nodiscard]] virtual std::unique_ptr<StateAbstraction> clone() const = 0;
};

/// True iff the key's reported permutation is the identity (always true for
/// abstractions that report no permutations).
[[nodiscard]] bool key_is_identity(const AbstractKey& key);

/// Transports a per-thread bitmask into the key's canonical coordinates
/// (identity when the key reports no permutations).  See
/// SymmetryReducer::mask_to_canonical for the stabiliser-intersection rule.
[[nodiscard]] std::uint64_t mask_to_abstract(std::uint64_t mask,
                                             const AbstractKey& key);

/// Inverse transport through the key's first reported permutation.
[[nodiscard]] std::uint64_t mask_from_abstract(std::uint64_t mask,
                                               const AbstractKey& key);

/// Extra (thread, location) viewfront entries the rf quotient key must keep
/// even where liveness analysis would drop them: the view footprints of the
/// assertions a checker evaluates per state (assertions::Assertion::
/// footprint()).  Checkers that evaluate footprint-less predicates under
/// --rf-quotient must reject the combination instead.
struct RfPins {
  std::vector<std::pair<lang::ThreadId, lang::LocId>> entries;
};

[[nodiscard]] std::unique_ptr<StateAbstraction> make_concrete_abstraction();
[[nodiscard]] std::unique_ptr<StateAbstraction> make_symmetry_abstraction(
    const System& sys);
[[nodiscard]] std::unique_ptr<StateAbstraction> make_rf_quotient_abstraction(
    const System& sys, const RfPins& pins);

}  // namespace rc11::engine
