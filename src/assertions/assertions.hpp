// rc11lib/assertions/assertions.hpp
//
// The observability assertion language of Section 5.1, as executable
// predicates over configurations (ρ, γ, β):
//
//   * possible observation   ⟨x = u⟩ₜ, ⟨o.m⟩ₜ
//   * definite observation   [x = u]ₜ, [o.m]ₜ
//   * conditional observation ⟨x = u⟩[y = v]ₜ and the object-to-client form
//     ⟨o.m⟩[y = v]ₜ that the paper uses to carry library synchronisation
//     guarantees into the client
//   * covered C and hidden H assertions
//
// plus program predicates (pc and register valuations, cf. the pc₁/pc₂ and rl
// conjuncts of Fig. 7) and the usual boolean combinators.  Because the
// operational state is explicit, every assertion is directly decidable per
// configuration; the og module quantifies them over reachable state spaces.
//
// The client/library superscripts of the paper (⟨p⟩ᶜ vs ⟨p⟩ᴸ) are implicit
// here: each location knows its component, so an assertion about a client
// variable *is* a client-state assertion.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lang/config.hpp"
#include "lang/system.hpp"

namespace rc11::assertions {

using lang::Config;
using lang::LocId;
using lang::Reg;
using lang::System;
using lang::ThreadId;
using lang::Value;
using memsem::OpKind;

/// The viewfront entries an assertion's predicate may depend on, beyond the
/// modification orders, covered bits, values, pcs and registers every
/// predicate may read freely (all of those are part of every visited-set
/// key).  Checkers running under the execution-graph quotient
/// (--rf-quotient) pin these (thread, location) entries into the quotient
/// key so the predicate stays a function of the key; `everything` marks a
/// predicate with an unknown footprint (pred(), the generic constructor),
/// which those checkers must reject instead of pinning.
struct ViewFootprint {
  bool everything = false;
  std::vector<std::pair<ThreadId, LocId>> entries;
};

/// A named boolean predicate over configurations.  Immutable and cheaply
/// copyable; combinators build formula trees whose names pretty-print the
/// formula (used in Owicki-Gries failure reports).
class Assertion {
 public:
  using Fn = std::function<bool(const System&, const Config&)>;

  Assertion();  ///< `true`
  /// Ad-hoc predicate: the footprint is unknown (ViewFootprint::everything).
  Assertion(std::string name, Fn fn);
  /// Predicate with a known view footprint (what the factories below use).
  Assertion(std::string name, Fn fn, ViewFootprint footprint);

  [[nodiscard]] bool eval(const System& sys, const Config& cfg) const;
  [[nodiscard]] const std::string& name() const;
  /// The viewfront entries eval() may read (see ViewFootprint).
  [[nodiscard]] const ViewFootprint& footprint() const;

  /// The constant-true assertion (annotation of uninteresting points).
  static Assertion always();

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

Assertion operator&&(Assertion a, Assertion b);
Assertion operator||(Assertion a, Assertion b);
Assertion operator!(Assertion a);
/// a ⇒ b.
Assertion implies(Assertion a, Assertion b);
/// Escape hatch for ad-hoc predicates.
Assertion pred(std::string name, Assertion::Fn fn);

// --- variable observability (Section 5.1) -----------------------------------

/// ⟨x = v⟩ₜ: some write of v to x is observable to t.
Assertion possible_obs(ThreadId t, LocId x, Value v);

/// [x = v]ₜ: t's viewfront for x is the mo-maximal write and it wrote v
/// (t can only read v).
Assertion definite_obs(ThreadId t, LocId x, Value v);

/// ⟨x = u⟩[y = v]ₜ: every observable write of u to x is releasing and its
/// modification view definitely observes y = v — reading x = u with an
/// acquire therefore establishes [y = v]ₜ.
Assertion cond_obs(ThreadId t, LocId x, Value u, LocId y, Value v);

/// C: the only uncovered write to x is the mo-maximal one and it wrote u.
Assertion covered_var(LocId x, Value u);

/// H: a write of u to x exists and every such write is covered.
Assertion hidden_var(LocId x, Value u);

// --- lock observability (Sections 4 and 5.2) --------------------------------

/// ⟨l.release_u⟩ₜ: a release with version u is observable to t on l.
Assertion lock_possible_release(ThreadId t, LocId l, Value u);

/// [l.m_u]ₜ: t's viewfront on l is the maximal operation, which is m_u
/// (kind ∈ {LockAcquire, LockRelease, Init}).
Assertion lock_definite(ThreadId t, LocId l, OpKind kind, Value u);

/// ⟨l.release_u⟩[y = v]ₜ: every observable release_u carries a modification
/// view that definitely observes y = v (rule (6) of Lemma 3 establishes it,
/// rule (5) consumes it).
Assertion lock_cond_obs(ThreadId t, LocId l, Value u, LocId y, Value v);

/// C_{l.m_u}: the only uncovered operation on l is m_u and it is maximal.
Assertion lock_covered(LocId l, OpKind kind, Value u);

/// H_{l.m_u}: m_u exists on l and every instance is covered.
Assertion lock_hidden(LocId l, OpKind kind, Value u);

/// H_{l.init_0} — the special case used throughout Fig. 7.
Assertion lock_hidden_init(LocId l);

/// true iff thread t currently holds l (a derived mutual-exclusion helper).
Assertion lock_held_by(ThreadId t, LocId l);

// --- stack observability (Figs. 1-3; our stack semantics) -------------------

/// ⟨s.pop_v⟩: a pop would currently return v (the latest uncovered push has
/// value v).
Assertion stack_can_pop(LocId s, Value v);

/// [s.pop_emp]: a pop can only return Empty (no uncovered push).
Assertion stack_pop_empty_only(LocId s);

/// ⟨s.pop_v⟩[y = n]ₜ: if a pop would return v, the matched push is releasing
/// and its modification view definitely observes y = n — an acquiring pop of
/// v therefore establishes [y = n]ₜ.
Assertion stack_cond_obs(LocId s, Value v, LocId y, Value n);

// --- program predicates ------------------------------------------------------

/// pcₜ = pc (program points as in the paper's proof outlines).
Assertion at_pc(ThreadId t, std::uint32_t pc);

/// pcₜ ∈ set.
Assertion pc_in(ThreadId t, std::set<std::uint32_t> pcs);

/// pcₜ past the end of the thread's code (thread terminated).
Assertion thread_done(ThreadId t);

/// r = v.
Assertion reg_eq(Reg r, Value v);

/// r ∈ set.
Assertion reg_in(Reg r, std::set<Value> values);

}  // namespace rc11::assertions
