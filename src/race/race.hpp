// rc11lib/race/race.hpp
//
// Data-race detection over the shared reachability engine.
//
// RC11 declares a program racy when two conflicting accesses — same
// location, at least one a write, at least one non-atomic — are unordered
// by happens-before.  The paper's semantics never needed this judgement
// (its case studies are all-atomic), but any C11-style library that mixes
// plain fields with atomics does: a race means undefined behaviour, so the
// verdict gates every other property.
//
// The detection itself lives inside the memory semantics (memsem/state.cpp)
// behind SemanticsOptions::race_detection: each thread carries a vector
// clock advanced at releasing operations and joined at genuine
// synchronisation edges, and each (location, thread, access-category) cell
// remembers the epoch of its last access, FastTrack-style.  A step whose
// access is concurrent (by those clocks) with a recorded conflicting access
// deposits a RaceRecord on the post-state.  This module is the thin checker
// on top: it drives engine::visit_reachable over the system (with the flag
// forced on), harvests each step's records, canonicalises and deduplicates
// them, orbit-closes under thread symmetry, and attaches replayable
// witnesses naming both access sites.
//
// Soundness under the reductions mirrors the other checkers (DESIGN.md):
// ample steps are local or private relaxed/non-atomic accesses, which
// neither synchronise nor conflict with another thread, so deferring them
// changes no clock and no contested summary cell — the reduced graph
// reports the same race set.  Under the symmetry quotient a permuted
// execution reports the thread-permuted record, so the full set is restored
// by closing each record under the group (a permuted execution of a racy
// trace is itself a real racy execution).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/reach.hpp"
#include "engine/supervise.hpp"
#include "lang/config.hpp"
#include "memsem/state.hpp"
#include "witness/witness.hpp"

namespace rc11::race {

using lang::Config;
using lang::System;
using memsem::RaceAccess;
using memsem::RaceCat;
using memsem::RaceRecord;

/// Human name of an access category ("non-atomic write", …).
[[nodiscard]] const char* access_name(RaceCat cat) noexcept;

struct RaceOptions {
  /// Hard cap on distinct states; the check reports truncation beyond it.
  std::uint64_t max_states = 1'000'000;
  engine::SearchStrategy strategy = engine::SearchStrategy::Dfs;
  /// Worker threads (see explore::ExploreOptions::num_threads).  The *set*
  /// of reported races is identical for every thread count; only traces,
  /// state dumps and witness choice may differ between runs.
  unsigned num_threads = 1;
  /// Sound reductions, same semantics as the explorer's flags.  Race
  /// reports survive both: see the soundness note in the header comment.
  bool fuse_local_steps = false;
  bool por = false;
  bool symmetry = false;
  /// Execution-graph quotient (see explore::ExploreOptions::rf_quotient).
  /// Exact for the race set without any pinning: race clocks, summary cells
  /// and per-op messages are part of the quotient key whenever
  /// race_detection is on (memsem encodes them alongside the modification
  /// orders), and records surface on step post-states, which pair up
  /// class-by-class.  Rejected with --symmetry (v1), under Strategy::Sample
  /// and under the SC model.
  bool rf_quotient = false;
  /// Exhaustive (default) or Sample coverage; under Sample the race set is
  /// a lower bound and checkpoint/resume are rejected.
  engine::Strategy mode = engine::Strategy::Exhaustive;
  engine::SampleOptions sample;
  /// Stop at the first race (default off: cross-checks compare full sets).
  bool stop_on_race = false;
  /// Record parent links so each race carries a trace and a replayable
  /// witness covering both access sites.  NOTE: witnesses from a race run
  /// replay only against a System whose SemanticsOptions::race_detection is
  /// true (the clocks are part of the state encoding the digests cover).
  bool track_traces = false;
  std::uint64_t max_visited_bytes = 0;  ///< visited-set budget (0 = none)
  std::uint64_t deadline_ms = 0;        ///< wall-clock budget (0 = none)
  const engine::CancelToken* cancel = nullptr;
  engine::FaultPlan fault;
  /// Resume from a checkpoint of an earlier stopped race run.
  const engine::Checkpoint* resume = nullptr;
  /// Write a checkpoint here when the run stops early (implies traces).
  std::string checkpoint_path;
  /// Supervised multi-process checking (engine/supervise.hpp; same contract
  /// as explore::ExploreOptions::workers): 0 stays in-process.  Rejected
  /// with symmetry, Strategy::Sample, num_threads > 1 and resume.
  unsigned workers = 0;
};

/// One data race.  `record` is an *unordered* pair in canonical order (the
/// two sides sorted by thread, pc, category): which access the detector saw
/// first depends on the interleaving, so the report must not.
struct ReportedRace {
  RaceRecord record;
  std::string location;    ///< location name (record.loc resolved)
  std::string what;        ///< one-line description naming both sites
  std::string state_dump;  ///< configuration right after the racing step
  std::vector<std::string> trace;  ///< step labels (iff track_traces)
  /// Replayable witness whose final step performs the racing access
  /// (present iff track_traces and this record was directly observed —
  /// symmetry-closed siblings reuse the representative's trace, flagged by
  /// a trailing note, and carry no witness of their own).
  std::optional<witness::Witness> witness;
};

struct RaceResult {
  engine::ExploreStats stats;
  /// Deduplicated and sorted by (location, both sites), so the set compares
  /// equal across thread counts, strategies and reductions.
  std::vector<ReportedRace> races;
  engine::StopReason stop = engine::StopReason::Complete;
  bool truncated = false;  ///< stop != Complete: the race set is a lower bound
  /// Robustness counters of a supervised (--workers) run; all zero
  /// otherwise.  Kept out of `stats` so recovered runs stay byte-identical
  /// to undisturbed ones in verdict-bearing output.
  engine::DistTelemetry dist;

  [[nodiscard]] bool racy() const { return !races.empty(); }
  /// Race-free and the search completed: a definitive clean verdict.
  [[nodiscard]] bool clean() const { return races.empty() && !truncated; }
};

/// Checks `sys` for data races.  Runs on a copy with race_detection forced
/// on, so callers keep their zero-overhead encodings; `sys` itself is not
/// modified.
[[nodiscard]] RaceResult check(const System& sys, const RaceOptions& options = {});

}  // namespace rc11::race
