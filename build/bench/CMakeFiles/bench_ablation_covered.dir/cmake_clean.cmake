file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_covered.dir/bench_ablation_covered.cpp.o"
  "CMakeFiles/bench_ablation_covered.dir/bench_ablation_covered.cpp.o.d"
  "bench_ablation_covered"
  "bench_ablation_covered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_covered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
