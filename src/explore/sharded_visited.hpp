// rc11lib/explore/sharded_visited.hpp
//
// A lock-striped visited set over canonical state encodings, shared by the
// parallel exploration engine (explorer.cpp), the parallel proof-outline
// checker and the parallel refinement graph builder.
//
// Layout: N shards (N a power of two), each an independently locked hash
// table.  A state is routed to the shard named by the *top* bits of its
// 64-bit encoding hash, and the full hash then indexes buckets inside the
// shard, so the two levels consume disjoint bits and states spread evenly.
//
// Soundness: exactly like the sequential VisitedSet, a bucket hit is
// confirmed against the complete encoding before an insert is refused —
// a hash collision can never make exploration drop a genuinely new state,
// it only costs an extra vector comparison.  Because each encoding maps to
// exactly one shard, the per-shard mutex makes insert() linearisable: of two
// racing inserts of the same encoding exactly one returns true, which is the
// property the exploration engine needs (every reachable state is expanded
// exactly once, regardless of which worker discovered it).

#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/hash.hpp"

namespace rc11::explore {

class ShardedVisitedSet {
 public:
  /// `shard_count` is rounded up to a power of two (at least 1).  64 shards
  /// keep the expected queue depth per mutex negligible for any realistic
  /// worker count while costing only a few KiB empty.
  explicit ShardedVisitedSet(unsigned shard_count = 64) {
    unsigned n = 1;
    while (n < shard_count && n < (1U << 16)) n <<= 1;
    shards_ = std::vector<Shard>(n);
    shard_shift_ = 64U;
    for (unsigned v = n; v > 1; v >>= 1) shard_shift_ -= 1;
  }

  /// Returns true iff the encoding was newly inserted.  Thread-safe.
  bool insert(std::vector<std::uint64_t> encoding) {
    support::WordHasher h;
    for (const auto w : encoding) h.add(w);
    const std::uint64_t digest = h.digest();
    Shard& shard = shards_[shard_of(digest)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& bucket = shard.buckets[digest];
    for (const auto idx : bucket) {
      if (shard.encodings[idx] == encoding) return false;
    }
    bucket.push_back(shard.encodings.size());
    shard.encodings.push_back(std::move(encoding));
    return true;
  }

  /// Total states inserted.  Exact only while no insert is in flight
  /// (callers read it after workers have joined).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard.encodings.size();
    return total;
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    std::vector<std::vector<std::uint64_t>> encodings;
  };

  [[nodiscard]] std::size_t shard_of(std::uint64_t digest) const noexcept {
    return shard_shift_ >= 64U ? 0 : static_cast<std::size_t>(digest >> shard_shift_);
  }

  std::vector<Shard> shards_;
  unsigned shard_shift_ = 64;
};

}  // namespace rc11::explore
