// Experiment F3: the Figure 3 proof outline for message passing through the
// synchronising stack.  Paper shape: the outline is valid (possible /
// definite / conditional observation assertions carry the publication
// argument), and a broken outline is rejected.  The benchmark measures the
// cost of outline checking with and without the Owicki-Gries interference
// side condition.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "og/catalog.hpp"

namespace {

using namespace rc11;

void BM_Fig3_Validity(benchmark::State& state) {
  for (auto _ : state) {
    auto ex = og::make_fig3();
    og::OutlineCheckOptions opts;
    opts.check_interference = false;
    const auto result = og::check_outline(ex.sys, ex.outline, opts);
    benchmark::DoNotOptimize(result.valid);
    state.counters["states"] = static_cast<double>(result.stats.states);
    state.counters["obligations"] =
        static_cast<double>(result.obligations_checked);
  }
}
BENCHMARK(BM_Fig3_Validity);

void BM_Fig3_WithInterference(benchmark::State& state) {
  for (auto _ : state) {
    auto ex = og::make_fig3();
    og::OutlineCheckOptions opts;
    opts.check_interference = true;
    const auto result = og::check_outline(ex.sys, ex.outline, opts);
    benchmark::DoNotOptimize(result.valid);
    state.counters["obligations"] =
        static_cast<double>(result.obligations_checked);
  }
}
BENCHMARK(BM_Fig3_WithInterference);

void BM_Fig3_BrokenRejection(benchmark::State& state) {
  for (auto _ : state) {
    auto ex = og::make_fig3_broken();
    const auto result = og::check_outline(ex.sys, ex.outline);
    benchmark::DoNotOptimize(result.valid);
  }
}
BENCHMARK(BM_Fig3_BrokenRejection);

}  // namespace

int main(int argc, char** argv) {
  {
    auto ex = rc11::og::make_fig3();
    rc11::og::OutlineCheckOptions opts;
    opts.check_interference = true;
    const auto result = rc11::og::check_outline(ex.sys, ex.outline, opts);
    rc11::bench::verdict(
        "F3", result.valid,
        "Fig. 3 outline valid over " + std::to_string(result.stats.states) +
            " states, " + std::to_string(result.obligations_checked) +
            " obligations");
    auto broken = rc11::og::make_fig3_broken();
    const auto broken_result = rc11::og::check_outline(broken.sys, broken.outline);
    rc11::bench::verdict("F3-neg", !broken_result.valid,
                         "broken Fig. 3 outline rejected");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
