#include "support/rational.hpp"

#include <numeric>
#include <ostream>
#include <stdexcept>

namespace rc11::support {

namespace {

using Wide = __int128;

std::int64_t narrow_checked(Wide v) {
  if (v > Wide(INT64_MAX) || v < Wide(INT64_MIN)) {
    throw RationalOverflow{};
  }
  return static_cast<std::int64_t>(v);
}

Wide wide_gcd(Wide a, Wide b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Wide t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0) {
    throw std::invalid_argument("rc11::support::Rational: zero denominator");
  }
  Wide n = num;
  Wide d = den;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  if (n == 0) {
    num_ = 0;
    den_ = 1;
    return;
  }
  const Wide g = wide_gcd(n, d);
  num_ = narrow_checked(n / g);
  den_ = narrow_checked(d / g);
}

namespace {

Rational make_reduced(Wide n, Wide d) {
  if (d < 0) {
    n = -n;
    d = -d;
  }
  if (n == 0) {
    return Rational{};
  }
  const Wide g = wide_gcd(n, d);
  n /= g;
  d /= g;
  if (n > Wide(INT64_MAX) || n < Wide(INT64_MIN) || d > Wide(INT64_MAX)) {
    throw RationalOverflow{};
  }
  return Rational{static_cast<std::int64_t>(n), static_cast<std::int64_t>(d)};
}

}  // namespace

Rational Rational::operator+(const Rational& rhs) const {
  return make_reduced(Wide(num_) * rhs.den_ + Wide(rhs.num_) * den_,
                      Wide(den_) * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  return make_reduced(Wide(num_) * rhs.den_ - Wide(rhs.num_) * den_,
                      Wide(den_) * rhs.den_);
}

Rational Rational::operator*(const Rational& rhs) const {
  return make_reduced(Wide(num_) * rhs.num_, Wide(den_) * rhs.den_);
}

Rational Rational::operator/(const Rational& rhs) const {
  if (rhs.num_ == 0) {
    throw std::invalid_argument("rc11::support::Rational: division by zero");
  }
  return make_reduced(Wide(num_) * rhs.den_, Wide(den_) * rhs.num_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;  // |num_| <= INT64_MAX after reduction, so negation is safe
  r.den_ = den_;
  return r;
}

std::strong_ordering Rational::operator<=>(const Rational& rhs) const noexcept {
  const Wide lhs_scaled = Wide(num_) * rhs.den_;
  const Wide rhs_scaled = Wide(rhs.num_) * den_;
  if (lhs_scaled < rhs_scaled) return std::strong_ordering::less;
  if (lhs_scaled > rhs_scaled) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Rational Rational::midpoint(const Rational& a, const Rational& b) {
  return (a + b) / Rational{2};
}

Rational Rational::mediant(const Rational& a, const Rational& b) {
  return make_reduced(Wide(a.num_) + b.num_, Wide(a.den_) + b.den_);
}

Rational Rational::successor() const { return *this + Rational{1}; }

std::string Rational::to_string() const {
  if (den_ == 1) {
    return std::to_string(num_);
  }
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace rc11::support
