#include "memsem/validate.hpp"

#include "support/diagnostics.hpp"

namespace rc11::memsem {

namespace {

std::optional<std::string> check_mo(const MemState& m, LocId loc) {
  const auto order = m.mo(loc);
  if (order.empty()) return support::concat("loc ", loc, ": empty mo");
  if (m.op(order[0]).kind != OpKind::Init) {
    return support::concat("loc ", loc, ": mo does not start with init");
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Op& op = m.op(order[i]);
    if (op.loc != loc) {
      return support::concat("loc ", loc, ": op at rank ", i,
                             " belongs to loc ", op.loc);
    }
    if (op.mo_pos != i) {
      return support::concat("loc ", loc, ": cached rank ", op.mo_pos,
                             " != position ", i);
    }
    if (i > 0 && !(m.op(order[i - 1]).ts < op.ts)) {
      return support::concat("loc ", loc,
                             ": timestamps not strictly increasing at rank ", i);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_views(const MemState& m) {
  const auto num_locs = m.locations().size();
  for (ThreadId t = 0; t < m.num_threads(); ++t) {
    for (LocId loc = 0; loc < num_locs; ++loc) {
      const OpId front = m.view_front(t, loc);
      if (m.op(front).loc != loc) {
        return support::concat("tview of t", t, " at loc ", loc,
                               " points to loc ", m.op(front).loc);
      }
    }
  }
  for (LocId loc = 0; loc < num_locs; ++loc) {
    for (const OpId id : m.mo(loc)) {
      const Op& op = m.op(id);
      if (op.mview.size() != num_locs) {
        return support::concat("op at loc ", loc, " rank ", op.mo_pos,
                               ": mview has ", op.mview.size(), " entries");
      }
      for (LocId l2 = 0; l2 < num_locs; ++l2) {
        if (m.op(op.mview[l2]).loc != l2) {
          return support::concat("mview entry for loc ", l2,
                                 " points to the wrong location");
        }
      }
      if (op.mview[loc] != id) {
        return support::concat("op at loc ", loc, " rank ", op.mo_pos,
                               ": mview does not include the op itself");
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_updates(const MemState& m, LocId loc) {
  const auto order = m.mo(loc);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Op& op = m.op(order[i]);
    if (op.kind != OpKind::Update) continue;
    if (i == 0) return "update at rank 0";
    const Op& prev = m.op(order[i - 1]);
    if (!prev.covered) {
      return support::concat("loc ", loc, ": update at rank ", i,
                             " follows an uncovered op");
    }
    if (prev.value != op.read_value) {
      return support::concat("loc ", loc, ": update at rank ", i, " read ",
                             op.read_value, " but predecessor wrote ",
                             prev.value);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_lock_history(const MemState& m, LocId loc) {
  const auto order = m.mo(loc);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Op& op = m.op(order[i]);
    const bool expect_acquire = i % 2 == 1;
    if (i == 0) {
      if (op.kind != OpKind::Init) return "lock history must start with init";
    } else if (expect_acquire && op.kind != OpKind::LockAcquire) {
      return support::concat("lock rank ", i, ": expected acquire");
    } else if (!expect_acquire && i > 0 && op.kind != OpKind::LockRelease) {
      return support::concat("lock rank ", i, ": expected release");
    }
    if (static_cast<std::size_t>(op.value) != i) {
      return support::concat("lock rank ", i, ": version ", op.value);
    }
    const bool is_last = i + 1 == order.size();
    const bool is_sync_source =
        op.kind == OpKind::Init || op.kind == OpKind::LockRelease;
    if (is_sync_source && !is_last && !op.covered) {
      return support::concat("lock rank ", i,
                             ": init/release followed by an acquire must be "
                             "covered");
    }
    if (op.kind == OpKind::LockAcquire && op.covered) {
      return support::concat("lock rank ", i, ": acquires are never covered");
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_covered_vars(const MemState& m, LocId loc) {
  const auto order = m.mo(loc);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (m.op(order[i]).covered && i + 1 == order.size()) {
      return support::concat("loc ", loc,
                             ": covered variable write at the end of mo");
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate(const MemState& m) {
  const auto num_locs = m.locations().size();
  for (LocId loc = 0; loc < num_locs; ++loc) {
    if (auto err = check_mo(m, loc)) return err;
    switch (m.locations().kind(loc)) {
      case LocKind::Var:
        if (auto err = check_updates(m, loc)) return err;
        if (auto err = check_covered_vars(m, loc)) return err;
        break;
      case LocKind::Lock:
        if (auto err = check_lock_history(m, loc)) return err;
        break;
      case LocKind::Stack:
      case LocKind::Queue:
        break;  // consumed (covered) entries may sit anywhere
    }
  }
  return check_views(m);
}

std::optional<std::string> validate_view_monotone(const MemState& before,
                                                  const MemState& after) {
  RC11_REQUIRE(before.num_threads() == after.num_threads() &&
                   before.locations().size() == after.locations().size(),
               "validate_view_monotone over different systems");
  for (ThreadId t = 0; t < before.num_threads(); ++t) {
    for (LocId loc = 0; loc < before.locations().size(); ++loc) {
      // Compare rational timestamps: ranks shift under insertion, timestamps
      // never do.
      const auto& before_ts = before.op(before.view_front(t, loc)).ts;
      const auto& after_ts = after.op(after.view_front(t, loc)).ts;
      if (after_ts < before_ts) {
        return support::concat("view of t", t, " for loc ", loc,
                               " moved backwards");
      }
    }
  }
  return std::nullopt;
}

}  // namespace rc11::memsem
