# Empty dependencies file for bench_ablation_ctview.
# This may be replaced when dependencies are built.
