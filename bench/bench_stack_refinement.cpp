// Experiment S1 (extension — the paper's future-work direction): contextual
// refinement for a second data type.  The lock-protected bounded vector
// stack must forward-simulate the abstract synchronising stack of
// Figures 1-3; the variant with a relaxed unlock must fail, since it loses
// the pushR/popA publication guarantee.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "refinement/refinement.hpp"
#include "stacks/stack_objects.hpp"

namespace {

using namespace rc11;

void BM_StackSimulation_Publication(benchmark::State& state) {
  refinement::SimulationResult result;
  for (auto _ : state) {
    stacks::AbstractStack abs;
    const auto abs_sys = stacks::instantiate(stacks::publication_client(), abs);
    stacks::LockedVectorStack conc;
    const auto conc_sys =
        stacks::instantiate(stacks::publication_client(), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["abs_states"] = static_cast<double>(result.abstract_states);
  state.counters["conc_states"] = static_cast<double>(result.concrete_states);
  state.counters["holds"] = result.holds ? 1 : 0;
}
BENCHMARK(BM_StackSimulation_Publication);

void BM_StackSimulation_ProducerConsumer(benchmark::State& state) {
  const auto pushes = static_cast<unsigned>(state.range(0));
  refinement::SimulationResult result;
  for (auto _ : state) {
    stacks::AbstractStack abs;
    const auto abs_sys =
        stacks::instantiate(stacks::producer_consumer_client(pushes), abs);
    stacks::LockedVectorStack conc{pushes};
    const auto conc_sys =
        stacks::instantiate(stacks::producer_consumer_client(pushes), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["abs_states"] = static_cast<double>(result.abstract_states);
  state.counters["conc_states"] = static_cast<double>(result.concrete_states);
  state.counters["holds"] = result.holds ? 1 : 0;
  state.SetLabel(std::to_string(pushes) + " pushes");
}
BENCHMARK(BM_StackSimulation_ProducerConsumer)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  {
    stacks::AbstractStack abs;
    const auto abs_sys = stacks::instantiate(stacks::publication_client(), abs);
    stacks::LockedVectorStack conc;
    const auto conc_sys =
        stacks::instantiate(stacks::publication_client(), conc);
    const auto r = refinement::check_forward_simulation(abs_sys, conc_sys);
    bench::verdict("S1", r.holds,
                   "locked vector stack forward-simulates the abstract "
                   "synchronising stack (abs " +
                       std::to_string(r.abstract_states) + " states, conc " +
                       std::to_string(r.concrete_states) + " states)");

    stacks::LockedVectorStack broken{2, /*releasing_unlock=*/false};
    const auto broken_sys =
        stacks::instantiate(stacks::publication_client(), broken);
    const auto rb = refinement::check_forward_simulation(abs_sys, broken_sys);
    bench::verdict("S1-neg", !rb.holds,
                   "relaxed-unlock variant rejected: " + rb.diagnosis);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
