file(REMOVE_RECURSE
  "CMakeFiles/bench_stack_refinement.dir/bench_stack_refinement.cpp.o"
  "CMakeFiles/bench_stack_refinement.dir/bench_stack_refinement.cpp.o.d"
  "bench_stack_refinement"
  "bench_stack_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
