file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_outline.dir/bench_fig3_outline.cpp.o"
  "CMakeFiles/bench_fig3_outline.dir/bench_fig3_outline.cpp.o.d"
  "bench_fig3_outline"
  "bench_fig3_outline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_outline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
