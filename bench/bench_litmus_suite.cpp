// Experiment F5 (part 2): the litmus suite as a whole — every classic RC11
// RAR shape must produce exactly its allowed outcome set (allowed weak
// behaviours are found; forbidden ones — LB cycles, coherence violations,
// non-atomic CAS — are excluded).  One benchmark per test, reporting the
// explored state-space size.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace rc11;

void BM_Litmus(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto tests = litmus::all_tests();
    auto& test = tests.at(idx);
    auto result = explore::explore(test.sys);
    benchmark::DoNotOptimize(result.stats.states);
    state.counters["states"] = static_cast<double>(result.stats.states);
    state.counters["transitions"] = static_cast<double>(result.stats.transitions);
  }
  auto tests = litmus::all_tests();
  state.SetLabel(tests.at(idx).name);
}
BENCHMARK(BM_Litmus)->DenseRange(0, 11);

}  // namespace

int main(int argc, char** argv) {
  auto tests = rc11::litmus::all_tests();
  for (auto& test : tests) {
    rc11::bench::run_litmus("F5/" + test.name, test);
  }
  for (auto& test : rc11::litmus::all_causality_tests()) {
    const auto result = rc11::explore::explore(test.sys);
    bool ok = true;
    for (const auto& o : test.must_allow) {
      ok = ok && rc11::explore::outcome_reachable(test.sys, result,
                                                  test.observed, o);
    }
    for (const auto& o : test.must_forbid) {
      ok = ok && !rc11::explore::outcome_reachable(test.sys, result,
                                                   test.observed, o);
    }
    rc11::bench::verdict("F5/" + test.name, ok,
                         test.description + " (" +
                             std::to_string(result.stats.states) + " states)");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
