// rc11lib/engine/transition_system.hpp
//
// The shared transition-system abstraction all four checkers sit on.  A
// TransitionSystem produces, for any configuration, the enabled steps of the
// combined operational semantics — each tagged with independence metadata
// (acting thread, accessed location, read/write/RMW/object kind, sync flag;
// see lang::StepMeta) — plus the two state-local reductions the generic
// reachability driver (engine/reach.hpp) can apply: local-step fusion and
// ample-set partial-order reduction.
//
// SystemTransitions is the one implementation, covering client-only systems,
// clients over abstract objects and clients over inlined library
// implementations uniformly: lang::successors already dispatches on
// instruction and location kinds, so the three system shapes differ only in
// which instruction kinds their code contains, not in how successors are
// produced or classified.
//
// --- the independence relation -----------------------------------------------
//
// Two steps a, b of *different* threads are treated as dependent iff
//
//   (1) both access a location, the location is the same, and at least one
//       of them writes it (plain write, RMW, or object method call), or
//   (2) either step carries a sync (rel/acq) flag — non-relaxed plain
//       access, RMW (always RA), or object method call.
//
// Same-thread steps are always dependent (program order).  Steps of *local*
// instructions (Assign / Branch / Jump) touch no location and carry no
// flags, so they are independent of every other-thread step: they read and
// write only the acting thread's registers and pc, and no other thread's
// step can read or write those — in the RC11 RAR semantics view transfer
// happens exclusively through memory operations (docs/SEMANTICS.md §9).
// This relation over-approximates true dependence (e.g. two acquiring loads
// of distinct locations commute in the semantics but are declared
// dependent), which is the safe direction for the reduction.
//
// --- ample sets --------------------------------------------------------------
//
// ample_thread() returns a thread t whose full enabled-step set at cfg is a
// *persistent* set under the relation above, subject to the cycle proviso
// that every ample step strictly increases t's program counter:
//
//   * t's next instruction is local (always, modulo policy/proviso below), or
//   * t's next instruction is a relaxed plain access to a location no other
//     thread ever conflicts with (no other writer for a load; no other
//     accessor for a store) *and* no other thread's code contains any
//     sync-flagged instruction (clause (2) makes sync steps dependent on
//     everything, so their mere existence blocks non-local ample sets).
//
// Eligibility is decided from static per-location footprint masks computed
// once per system, so ample selection is a pure function of the
// configuration: the reduced state graph is identical for every worker count
// and trace mode.  The pc-progress proviso makes a cycle consisting solely
// of ample transitions impossible (the sum of pcs strictly increases along
// ample edges and no ample step decreases any pc), which defuses the
// ignoring problem.  Soundness: reduced and full exploration reach exactly
// the same final and blocked states; see docs/SEMANTICS.md §9 for the
// argument and the caveat on per-state invariants.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lang/config.hpp"

namespace rc11::engine {

using lang::Config;
using lang::StepBuffer;
using lang::System;
using lang::ThreadId;

/// Which steps an ample set may be built from.
enum class AmplePolicy : std::uint8_t {
  /// Sound for final/blocked-state properties (outcome sets, deadlocks,
  /// outline postconditions): any local step, any private relaxed access.
  FinalState,
  /// Additionally requires ample steps to be invisible to the client
  /// projection of refinement.hpp (Branch/Jump; Assign only to
  /// Library-component registers; private relaxed accesses only to
  /// Library-component locations), so reduced state graphs preserve the
  /// stutter-reduced projection traces the refinement checkers compare.
  ClientInvisible,
};

/// The driver-level independence relation over step footprints (see the
/// header comment): true iff steps with these metadata, taken by *different*
/// threads, commute and preserve each other's step sets.  Local steps are
/// independent of every other-thread step; otherwise either sync flag or a
/// same-location conflict with at least one writer makes the pair dependent.
/// Shared by ample-set eligibility reasoning and the driver's sleep-set
/// pruning (ReachOptions::sleep_sets).
[[nodiscard]] constexpr bool steps_independent(const lang::StepMeta& a,
                                               const lang::StepMeta& b) noexcept {
  if (a.access == memsem::AccessKind::Local ||
      b.access == memsem::AccessKind::Local) {
    return true;
  }
  if (a.sync || b.sync) return false;
  if (a.loc != b.loc) return true;
  return !memsem::writes_location(a.access) &&
         !memsem::writes_location(b.access);
}

/// Successor production + reduction eligibility for one system.
class TransitionSystem {
 public:
  virtual ~TransitionSystem() = default;

  [[nodiscard]] virtual const System& system() const = 0;
  [[nodiscard]] virtual Config initial() const = 0;

  /// Clears `out` and fills it with every enabled step of every thread,
  /// tagged with independence metadata (Step::meta).
  virtual void successors_into(const Config& cfg, StepBuffer& out,
                               bool want_labels) const = 0;

  /// Clears `out` and fills it with thread t's enabled steps only.
  virtual void thread_successors_into(const Config& cfg, ThreadId t,
                                      StepBuffer& out,
                                      bool want_labels) const = 0;

  /// A thread whose enabled steps form a valid ample set at `cfg` (see the
  /// header comment), or nullopt when only full expansion is sound.  Must be
  /// a pure function of `cfg` and thread-safe.
  [[nodiscard]] virtual std::optional<ThreadId> ample_thread(
      const Config& cfg) const = 0;

  /// The thread to expand exclusively under local-step fusion (the weaker,
  /// historic reduction of ExploreOptions::fuse_local_steps), if any.
  [[nodiscard]] virtual std::optional<ThreadId> fusible_thread(
      const Config& cfg) const = 0;

  /// Whether the reachability driver may additionally *collapse*
  /// deterministic local ample chains under POR: when a state's ample thread
  /// is at a local instruction, that single successor is fast-forwarded
  /// until the first state with no such step, and the intermediate states
  /// are never visited (they are still interned in a trace sink, as real
  /// single steps, so witnesses replay unchanged).  This is where most of
  /// the visited-state reduction comes from — ample pruning alone only
  /// removes transitions whose target states usually stay reachable through
  /// other interleavings.  Sound for final/blocked-state properties (chain
  /// states always have an enabled step, so no final or blocked state is
  /// ever skipped); off under ClientInvisible because graph builders need
  /// single-step edges between the states they collect.
  [[nodiscard]] virtual bool collapse_chains() const = 0;
};

/// The lang::System-backed implementation (the only one; see header).
class SystemTransitions final : public TransitionSystem {
 public:
  explicit SystemTransitions(const System& sys,
                             AmplePolicy policy = AmplePolicy::FinalState);

  [[nodiscard]] const System& system() const override { return *sys_; }
  [[nodiscard]] Config initial() const override;
  void successors_into(const Config& cfg, StepBuffer& out,
                       bool want_labels) const override;
  void thread_successors_into(const Config& cfg, ThreadId t, StepBuffer& out,
                              bool want_labels) const override;
  [[nodiscard]] std::optional<ThreadId> ample_thread(
      const Config& cfg) const override;
  [[nodiscard]] std::optional<ThreadId> fusible_thread(
      const Config& cfg) const override;
  [[nodiscard]] bool collapse_chains() const override {
    return policy_ == AmplePolicy::FinalState;
  }

 private:
  [[nodiscard]] bool ample_eligible(const Config& cfg, ThreadId t) const;

  const System* sys_;
  AmplePolicy policy_;
  // Static footprint masks (bit t set = thread t has such an instruction),
  // valid only when num_threads <= 64 (masks_valid_); larger systems fall
  // back to local-step ample sets only.
  std::vector<std::uint64_t> loc_writers_;    ///< per loc: threads writing it
  std::vector<std::uint64_t> loc_accessors_;  ///< per loc: threads touching it
  std::uint64_t sync_threads_ = 0;  ///< threads with any sync instruction
  bool masks_valid_ = false;
};

}  // namespace rc11::engine
