// rc11lib/support/diagnostics.hpp
//
// Error-reporting helpers.  The library reports *user* errors (ill-formed
// programs, invalid proof outlines, misconfigured experiments) via
// rc11::support::Error exceptions with contextual messages; *internal*
// invariant violations use RC11_REQUIRE, which throws InternalError so that
// tests can assert on them (the checker itself must never abort the process
// of a host application).

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace rc11::support {

/// A user-facing error: the input (program, outline, experiment config) is
/// ill-formed.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// An internal invariant of the engine was violated (a bug in rc11lib).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(std::string msg) : std::logic_error(std::move(msg)) {}
};

/// Builds a message from stream-insertable pieces.
template <typename... Parts>
[[nodiscard]] std::string concat(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

template <typename... Parts>
[[noreturn]] void fail(const Parts&... parts) {
  throw Error{concat(parts...)};
}

template <typename... Parts>
void require(bool condition, const Parts&... parts) {
  if (!condition) {
    fail(parts...);
  }
}

}  // namespace rc11::support

/// Internal invariant check; cheap enough to keep enabled in release builds.
#define RC11_REQUIRE(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::rc11::support::InternalError(                                \
          ::rc11::support::concat("internal invariant violated at ",       \
                                  __FILE__, ":", __LINE__, ": ", (msg)));  \
    }                                                                      \
  } while (false)
