// Tests for Graphviz DOT emission: the shared support::dot_escape helper
// (quote/backslash/control/non-ASCII robustness) and the state-graph and
// witness DOT renderers built on it.

#include <gtest/gtest.h>

#include <string>

#include "explore/dot.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "support/text.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using support::dot_escape;

TEST(DotEscape, PassesPlainTextThrough) {
  EXPECT_EQ(dot_escape("t0: x :=R 1"), "t0: x :=R 1");
  EXPECT_EQ(dot_escape(""), "");
}

TEST(DotEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(dot_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(dot_escape("a\\b"), "a\\\\b");
  // A label ending in a backslash must not swallow the closing quote.
  EXPECT_EQ(dot_escape("trailing\\"), "trailing\\\\");
}

TEST(DotEscape, TurnsNewlinesIntoDotBreaks) {
  EXPECT_EQ(dot_escape("two\nlines"), "two\\nlines");
}

TEST(DotEscape, RendersControlAndNonAsciiBytesVisibly) {
  EXPECT_EQ(dot_escape(std::string{"a\tb"}), "a\\\\x09b");
  EXPECT_EQ(dot_escape(std::string{"\x01"}), "\\\\x01");
  EXPECT_EQ(dot_escape(std::string{"\x7F"}), "\\\\x7F");
  EXPECT_EQ(dot_escape(std::string{"\xC3\xA9"}), "\\\\xC3\\\\xA9");
}

TEST(DotEscape, EscapedOutputNeverBreaksOutOfAQuotedLabel) {
  // Property: the escaped form contains no raw quote (every " is preceded by
  // a backslash that itself is not escaped away) and no raw newline.
  const std::string hostile = "\"]; evil [label=\"\n\\\"";
  const auto escaped = dot_escape(hostile);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '"') continue;
    std::size_t backslashes = 0;
    for (std::size_t j = i; j-- > 0 && escaped[j] == '\\';) ++backslashes;
    EXPECT_EQ(backslashes % 2, 1u) << "unescaped quote at index " << i;
  }
}

TEST(DotExport, StateGraphUsesEscapedMultiLineCaptions) {
  const auto program = parser::parse_program(R"(
var x = 0;
thread t1 { reg r1; r1 <- x; }
)");
  const auto graph = refinement::build_graph(program.sys, 1'000,
                                             /*want_labels=*/true);
  const auto dot = explore::to_dot(program.sys, graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Register captions are multi-line; the newline must arrive as the DOT
  // escape, never as a raw byte inside the quoted label.
  EXPECT_NE(dot.find("\\n"), std::string::npos);
  for (std::size_t pos = dot.find("label=\""); pos != std::string::npos;
       pos = dot.find("label=\"", pos + 1)) {
    const auto end = dot.find('"', pos + 7);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(dot.substr(pos, end - pos).find('\n'), std::string::npos);
  }
}

TEST(DotExport, WitnessRendererEscapesHostileStrings) {
  witness::Witness w;
  w.kind = "invariant";
  w.what = "bad \"label\"\nwith newline";
  w.state_dump = "dump\nline";
  w.steps.push_back({0, "step \\ with \"stuff\"", 42});
  const auto dot = witness::to_dot(w);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  std::size_t raw_quotes = 0;
  for (std::size_t i = 1; i < dot.size(); ++i) {
    if (dot[i] == '"' && dot[i - 1] == '\\') ++raw_quotes;
  }
  EXPECT_GT(raw_quotes, 0u) << "hostile quotes must be escaped";
}

}  // namespace
