#include "cli_common.hpp"

#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>

namespace rc11::cli {

// The single source of truth for the sound state-space reductions.  A new
// reduction needs exactly one row here (plus its engine plumbing): parsing,
// the sampling conflicts and the mutual exclusions all follow from the table.
const ReductionFlag kReductionFlags[kNumReductionFlags] = {
    {"--por", &CommonOptions::por, /*checkpoint_pinned=*/true,
     "--por cannot be combined with --strategy sample; pick one coverage "
     "strategy",
     nullptr},
    {"--symmetry", &CommonOptions::symmetry, /*checkpoint_pinned=*/true,
     "--symmetry cannot be combined with --strategy sample: the sampling "
     "strategy replays concrete schedules and cannot quotient states (drop "
     "one of the two)",
     nullptr},
    {"--rf-quotient", &CommonOptions::rf_quotient, /*checkpoint_pinned=*/true,
     "--rf-quotient cannot be combined with --strategy sample: the sampling "
     "strategy replays concrete schedules and cannot quotient states (drop "
     "one of the two)",
     "--symmetry"},
};

namespace {

/// The process-wide cancellation token tripped by SIGINT/SIGTERM.
engine::CancelToken g_signal_cancel;

void handle_cancel_signal(int sig) {
  // Only async-signal-safe work here: a relaxed atomic store plus re-arming
  // the default disposition so a second signal terminates immediately.
  g_signal_cancel.cancel();
  std::signal(sig, SIG_DFL);
}

}  // namespace

const engine::CancelToken* install_signal_cancel() {
  std::signal(SIGINT, &handle_cancel_signal);
  std::signal(SIGTERM, &handle_cancel_signal);
  return &g_signal_cancel;
}

bool parse_bytes(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t mult = 1;
  switch (s.back()) {
    case 'k': case 'K': mult = std::uint64_t{1} << 10; break;
    case 'm': case 'M': mult = std::uint64_t{1} << 20; break;
    case 'g': case 'G': mult = std::uint64_t{1} << 30; break;
    default: break;
  }
  const std::string digits = mult == 1 ? s : s.substr(0, s.size() - 1);
  std::uint64_t value = 0;
  if (!parse_num(digits, value)) return false;
  if (value > std::numeric_limits<std::uint64_t>::max() / mult) return false;
  out = value * mult;
  return true;
}

std::string describe_stop(engine::StopReason stop) {
  switch (stop) {
    case engine::StopReason::Complete:
      return "the state space was exhausted";
    case engine::StopReason::StateCap:
      return "the state cap was reached (raise --max-states)";
    case engine::StopReason::MemCap:
      return "the visited-set memory budget was exhausted (raise --mem-budget)";
    case engine::StopReason::Deadline:
      return "the wall-clock deadline expired (raise --deadline-ms)";
    case engine::StopReason::Interrupted:
      return "the run was interrupted (SIGINT/SIGTERM)";
    case engine::StopReason::InjectedFault:
      return "an injected fault stopped the run (RC11_FAULT)";
    case engine::StopReason::EpisodeCap:
      return "the sampling episode budget ran out (raise --strategy "
             "sample:N or vary --seed)";
    case engine::StopReason::WorkerLost:
      return "a worker process was lost for good (retry budget exhausted; "
             "raise RC11_DIST_RETRIES or rerun with --workers 1)";
  }
  return "unknown stop reason";
}

FlagStatus parse_common_flag(int argc, char** argv, int& i,
                             CommonOptions& out) {
  const std::string arg = argv[i];
  const auto value = [&](std::string& dst) {
    if (++i >= argc) return false;
    dst = argv[i];
    return true;
  };
  if (arg == "--max-states") {
    return ++i < argc && parse_num(argv[i], out.max_states)
               ? FlagStatus::Consumed
               : FlagStatus::Error;
  }
  if (arg == "--threads") {
    return ++i < argc && parse_num(argv[i], out.num_threads)
               ? FlagStatus::Consumed
               : FlagStatus::Error;
  }
  if (arg == "--workers") {
    return ++i < argc && parse_num(argv[i], out.workers)
               ? FlagStatus::Consumed
               : FlagStatus::Error;
  }
  for (const auto& rf : kReductionFlags) {
    if (arg == rf.flag) {
      out.*rf.member = true;
      return FlagStatus::Consumed;
    }
  }
  if (arg == "--stats") {
    out.stats = true;
    return FlagStatus::Consumed;
  }
  if (arg == "--json") {
    return value(out.json_path) ? FlagStatus::Consumed : FlagStatus::Error;
  }
  if (arg == "--witness") {
    return value(out.witness_path) ? FlagStatus::Consumed : FlagStatus::Error;
  }
  if (arg == "--replay") {
    return value(out.replay_path) ? FlagStatus::Consumed : FlagStatus::Error;
  }
  if (arg == "--deadline-ms") {
    return ++i < argc && parse_num(argv[i], out.deadline_ms)
               ? FlagStatus::Consumed
               : FlagStatus::Error;
  }
  if (arg == "--mem-budget") {
    return ++i < argc && parse_bytes(argv[i], out.max_visited_bytes)
               ? FlagStatus::Consumed
               : FlagStatus::Error;
  }
  if (arg == "--checkpoint") {
    return value(out.checkpoint_path) ? FlagStatus::Consumed
                                      : FlagStatus::Error;
  }
  if (arg == "--resume") {
    return value(out.resume_path) ? FlagStatus::Consumed : FlagStatus::Error;
  }
  if (arg == "--strategy") {
    return ++i < argc &&
                   engine::parse_strategy(argv[i], out.mode,
                                          out.sample.episodes)
               ? FlagStatus::Consumed
               : FlagStatus::Error;
  }
  if (arg == "--seed") {
    if (++i >= argc || !parse_num(argv[i], out.sample.seed)) {
      return FlagStatus::Error;
    }
    out.seed_set = true;
    return FlagStatus::Consumed;
  }
  return FlagStatus::NotMine;
}

std::string resolve_strategy(CommonOptions& opts) {
  // Mutual exclusions between reductions hold under every strategy.
  for (const auto& rf : kReductionFlags) {
    if (rf.excludes == nullptr || !(opts.*rf.member)) continue;
    for (const auto& other : kReductionFlags) {
      if (std::string{rf.excludes} == other.flag && opts.*other.member) {
        return std::string{other.flag} + " and " + rf.flag +
               " cannot be combined: the engine cannot transport sleep "
               "masks through two state quotients at once — pick one "
               "reduction";
      }
    }
  }
  if (opts.mode == engine::Strategy::Sample) {
    for (const auto& rf : kReductionFlags) {
      if (opts.*rf.member && rf.sample_conflict != nullptr) {
        return rf.sample_conflict;
      }
    }
    if (!opts.checkpoint_path.empty()) {
      return "--checkpoint is not supported under --strategy sample: a "
             "sampling run has no frontier to save";
    }
    if (!opts.resume_path.empty()) {
      return "--resume is not supported under --strategy sample: a sampling "
             "run has no frontier to continue from (re-run with a fresh "
             "--seed instead)";
    }
    return {};
  }
  if (opts.seed_set) {
    return "--seed only applies to --strategy sample";
  }
  // --por and --strategy por are one setting; normalise both ways.
  if (opts.mode == engine::Strategy::Por) opts.por = true;
  if (opts.por) opts.mode = engine::Strategy::Por;
  return {};
}

int run_replay(const lang::System& sys, const CommonOptions& opts) {
  const auto w = witness::load(opts.replay_path);
  const auto r = witness::replay(sys, w);
  if (r.ok) {
    std::cout << "replay OK: " << w.steps.size()
              << " step(s) re-executed, final digest matches\n";
    return kExitOk;
  }
  std::cout << "replay FAILED after " << r.steps_applied
            << " step(s): " << r.error << "\n";
  return kExitFail;
}

void print_stats(const engine::ExploreStats& stats, bool por, bool symmetry,
                 bool rf_quotient, double wall_s) {
  const auto per_state =
      stats.states ? stats.visited_bytes / stats.states : 0;
  std::cout << "peak frontier:  " << stats.peak_frontier << "\n"
            << "visited bytes:  " << stats.visited_bytes << " (" << per_state
            << " B/state)\n";
  if (por) {
    std::cout << "por reduced:    " << stats.por_reduced
              << " state(s) expanded with an ample set\n"
              << "por chained:    " << stats.por_chained
              << " local step(s) collapsed (states never visited)\n";
  }
  if (symmetry) {
    std::cout << "symmetry hits:  " << stats.symmetry_hits
              << " orbit-duplicate arrival(s) merged\n"
              << "sleep skips:    " << stats.sleep_set_skips
              << " step(s) pruned by sleep sets\n";
    if (stats.states != 0) {
      // Arrivals at already-interned representatives under a non-identity
      // permutation count the orbit mass the quotient absorbed; the ratio
      // understates the saving (pruned subtrees never arrive at all).
      const double ratio =
          static_cast<double>(stats.states + stats.symmetry_hits) /
          static_cast<double>(stats.states);
      std::cout << "quotient ratio: " << ratio
                << "x orbit arrivals per visited state (lower bound)\n";
    }
  }
  if (rf_quotient) {
    // rf_merges counts concrete arrivals absorbed into an already-visited
    // quotient class; the engine only tells concrete-new arrivals apart when
    // a trace sink is attached, so the counter reads 0 in trace-free runs
    // (the visited-state count is the reduction measure either way).
    std::cout << "rf merges:      " << stats.rf_merges
              << " concrete arrival(s) merged into visited classes\n"
              << "sleep skips:    " << stats.sleep_set_skips
              << " step(s) pruned by sleep sets\n";
  }
  if (stats.episodes != 0) {
    std::cout << "episodes:       " << stats.episodes << "\n";
    if (wall_s > 0) {
      std::cout << "episodes/s:     "
                << static_cast<std::uint64_t>(
                       static_cast<double>(stats.episodes) / wall_s)
                << "\n";
    }
    std::cout << "coverage:       " << stats.states
              << " distinct state(s) crossed (sampled lower bound)\n";
  }
}

void print_dist_stats(const engine::DistTelemetry& dist) {
  std::cout << "restarts:       " << dist.worker_restarts
            << " worker process(es) killed and re-forked\n"
            << "retried:        " << dist.batches_retried
            << " batch(es) resent after a recovery\n"
            << "corrupt frames: " << dist.frames_corrupt
            << " frame(s) rejected by CRC/schema validation\n"
            << "orphaned:       " << dist.states_orphaned
            << " state(s) quarantined after retry exhaustion\n";
}

witness::Json stats_json(const engine::ExploreStats& stats) {
  auto j = witness::Json::object();
  j.set("states", witness::Json::integer(static_cast<std::int64_t>(stats.states)));
  j.set("transitions",
        witness::Json::integer(static_cast<std::int64_t>(stats.transitions)));
  j.set("finals", witness::Json::integer(static_cast<std::int64_t>(stats.finals)));
  j.set("blocked",
        witness::Json::integer(static_cast<std::int64_t>(stats.blocked)));
  j.set("peak_frontier",
        witness::Json::integer(static_cast<std::int64_t>(stats.peak_frontier)));
  j.set("visited_bytes",
        witness::Json::integer(static_cast<std::int64_t>(stats.visited_bytes)));
  if (stats.por_reduced != 0 || stats.por_chained != 0) {
    j.set("por_reduced",
          witness::Json::integer(static_cast<std::int64_t>(stats.por_reduced)));
    j.set("por_chained",
          witness::Json::integer(static_cast<std::int64_t>(stats.por_chained)));
  }
  if (stats.symmetry_hits != 0 || stats.sleep_set_skips != 0) {
    j.set("symmetry_hits",
          witness::Json::integer(
              static_cast<std::int64_t>(stats.symmetry_hits)));
    j.set("sleep_set_skips",
          witness::Json::integer(
              static_cast<std::int64_t>(stats.sleep_set_skips)));
  }
  if (stats.rf_merges != 0) {
    j.set("rf_merges",
          witness::Json::integer(static_cast<std::int64_t>(stats.rf_merges)));
  }
  if (stats.episodes != 0) {
    j.set("episodes",
          witness::Json::integer(static_cast<std::int64_t>(stats.episodes)));
  }
  return j;
}

void write_json_summary(const witness::Json& summary, const std::string& path) {
  std::ofstream out{path};
  out << summary.dump() << "\n";
  std::cout << "json summary written to " << path << "\n";
}

void write_witness(const lang::System& sys, const witness::Witness& w,
                   const std::string& path) {
  const auto minimized = witness::minimize(sys, w);
  witness::save(minimized, path);
  std::cout << "witness (" << minimized.steps.size()
            << " step(s)) written to " << path << "\n";
}

}  // namespace rc11::cli
