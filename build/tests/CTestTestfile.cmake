# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_memsem[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_objects[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_og[1]_include.cmake")
include("/root/repo/build/tests/test_refinement[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_stacks[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_sc_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_case_studies[1]_include.cmake")
include("/root/repo/build/tests/test_queues[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
