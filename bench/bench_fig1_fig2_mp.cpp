// Experiments F1 and F2 (DESIGN.md): the paper's motivating message-passing
// programs through a library stack (Figures 1 and 2).
//
// Paper shape to reproduce:
//   Fig. 1 (relaxed push/pop):  r2 ∈ {0, 5} — the stale read is observable.
//   Fig. 2 (pushR/popA):        r2 = 5 only — synchronisation publishes d.
//
// The benchmark measures full state-space exploration of each program and
// reports states/transitions as counters.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace rc11;

void BM_Fig1_RelaxedStackMP(benchmark::State& state) {
  for (auto _ : state) {
    auto test = litmus::fig1_stack_mp_relaxed();
    auto result = explore::explore(test.sys);
    benchmark::DoNotOptimize(result.stats.states);
    state.counters["states"] = static_cast<double>(result.stats.states);
    state.counters["transitions"] = static_cast<double>(result.stats.transitions);
    state.counters["final_outcomes"] = static_cast<double>(
        explore::final_register_values(test.sys, result, test.observed).size());
  }
}
BENCHMARK(BM_Fig1_RelaxedStackMP);

void BM_Fig2_SyncStackMP(benchmark::State& state) {
  for (auto _ : state) {
    auto test = litmus::fig2_stack_mp_sync();
    auto result = explore::explore(test.sys);
    benchmark::DoNotOptimize(result.stats.states);
    state.counters["states"] = static_cast<double>(result.stats.states);
    state.counters["transitions"] = static_cast<double>(result.stats.transitions);
    state.counters["final_outcomes"] = static_cast<double>(
        explore::final_register_values(test.sys, result, test.observed).size());
  }
}
BENCHMARK(BM_Fig2_SyncStackMP);

}  // namespace

int main(int argc, char** argv) {
  {
    auto fig1 = rc11::litmus::fig1_stack_mp_relaxed();
    rc11::bench::run_litmus("F1", fig1);
    auto fig2 = rc11::litmus::fig2_stack_mp_sync();
    rc11::bench::run_litmus("F2", fig2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
