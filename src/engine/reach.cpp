#include "engine/reach.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "engine/checkpoint.hpp"
#include "support/diagnostics.hpp"
#include "support/intern.hpp"
#include "support/parallel.hpp"

namespace rc11::engine {

namespace {

/// Sequential visited set: one interned word set (open-addressing
/// fingerprint table over a varint arena — see support/intern.hpp), kept
/// lock-free for the num_threads == 1 paths.  Exact for the same reason as
/// ShardedVisitedSet: fingerprint hits are confirmed against the full
/// stored encoding.
using VisitedSet = support::InternedWordSet;

/// A frontier entry: the configuration plus its id in the trace sink (the
/// id stays kNoState when no sink is attached).
struct Frontier {
  Config cfg;
  std::uint64_t id = ShardedVisitedSet::kNoState;
};

/// Seeds a run from a checkpoint (ReachOptions::resume): every checkpointed
/// state enters the visited set — the trace sink when one is attached (with
/// its recorded parent link and enqueued flag, so a later checkpoint of the
/// resumed run is still faithful), the plain set otherwise — and every
/// *enqueued* state goes on the frontier for (re-)expansion.  Chain-internal
/// POR states are interned but never enqueued, exactly as the original run
/// left them.  Works for both drivers: `untraced` is the sequential
/// InternedWordSet or the parallel ShardedVisitedSet.
template <typename UntracedSet>
void seed_from_checkpoint(const TransitionSystem& ts, const Checkpoint& ckpt,
                          ShardedVisitedSet* trace, UntracedSet& untraced,
                          std::deque<Frontier>& frontier) {
  std::vector<Config> configs = restore_states(ts, ckpt);
  std::vector<std::uint64_t> ids;
  if (trace != nullptr) {
    ids.assign(configs.size(), ShardedVisitedSet::kNoState);
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Checkpoint::State& state = ckpt.states[i];
    if (trace != nullptr) {
      const std::uint64_t parent =
          state.parent < 0 ? ShardedVisitedSet::kNoState
                           : ids[static_cast<std::size_t>(state.parent)];
      const auto ins =
          trace->insert_traced(state.encoding, parent, state.thread,
                               std::string(state.label), state.enqueued);
      RC11_REQUIRE(ins.inserted,
                   "resume requires an empty trace sink and a duplicate-free "
                   "checkpoint");
      ids[i] = ins.id;
      if (state.enqueued) frontier.push_back({std::move(configs[i]), ins.id});
    } else if (state.enqueued) {
      // Untraced runs never intern chain-internal states; seeding only the
      // enqueued ones reproduces an uninterrupted untraced visited set.
      untraced.insert(state.encoding);
      frontier.push_back({std::move(configs[i]), ShardedVisitedSet::kNoState});
    }
  }
}

// --- POR chain collapse ------------------------------------------------------

/// The thread whose single deterministic local step chain collapse may
/// fast-forward at `cfg`: the ample thread, when its next instruction is
/// local (Assign / Branch / Jump — exactly one successor, no memory effect).
/// A pure function of `cfg`, so every worker, strategy and trace mode
/// collapses identically.  Chains terminate because every chain step
/// strictly increases the acting thread's pc (the ample proviso) and touches
/// no other thread's pc.
std::optional<lang::ThreadId> chain_thread(const TransitionSystem& ts,
                                           const Config& cfg) {
  const auto t = ts.ample_thread(cfg);
  if (!t) return std::nullopt;
  switch (ts.system().code(*t)[cfg.pc[*t]].kind) {
    case lang::IKind::Assign:
    case lang::IKind::Branch:
    case lang::IKind::Jump:
      return t;
    default:
      return std::nullopt;
  }
}

/// Fast-forwards `cfg` through its deterministic local ample chain without
/// recording the intermediate states; bumps `chained` once per skipped step.
void collapse_untraced(const TransitionSystem& ts, Config& cfg,
                       StepBuffer& buf, std::uint64_t& chained) {
  while (const auto t = chain_thread(ts, cfg)) {
    ts.thread_successors_into(cfg, *t, buf, /*want_labels=*/false);
    cfg = std::move(buf.steps()[0].after);
    chained += 1;
  }
}

/// Traced variant: interns every intermediate chain state into the sink as a
/// real single-step edge (so path_to / witness replay see ordinary
/// transitions) and advances `cfg` / `id` to the chain's stable end.
/// Returns false when an intermediate state was already interned — whichever
/// expansion interned it first also interned and enqueued the same
/// deterministic suffix, so the caller drops this duplicate branch.
bool collapse_traced(const TransitionSystem& ts, ShardedVisitedSet& sink,
                     Config& cfg, std::uint64_t& id, StepBuffer& buf,
                     std::vector<std::uint64_t>& scratch,
                     std::uint64_t& chained) {
  auto t = chain_thread(ts, cfg);
  while (t) {
    ts.thread_successors_into(cfg, *t, buf, /*want_labels=*/true);
    auto& step = buf.steps()[0];
    // Chain-internal states are interned (witnesses need the edges) but
    // never enqueued — a checkpoint must not resurrect them as frontier
    // work.  Only the chain's stable end, which the caller pushes onto the
    // frontier, is marked enqueued.
    const auto next = chain_thread(ts, step.after);
    scratch.clear();
    step.after.encode_into(scratch);
    const auto ins =
        sink.insert_traced(scratch, id, step.thread, std::move(step.label),
                           /*enqueued=*/!next.has_value());
    if (!ins.inserted) return false;
    id = ins.id;
    cfg = std::move(step.after);
    chained += 1;
    t = next;
  }
  return true;
}

// --- parallel reachability engine -------------------------------------------

/// Shared frontier of the worker pool.  A single deque behind one mutex is
/// deliberately simple: state *expansion* (successor computation + canonical
/// encoding) dominates queue traffic by orders of magnitude, and workers pop
/// and push in batches, so the lock is cold.  The visited set, where every
/// generated successor lands, is the contended structure — and that one is
/// sharded (see sharded_visited.hpp).
struct SharedFrontier {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frontier> items;
  unsigned working = 0;  ///< workers currently expanding a batch
  bool stop = false;     ///< cooperative stop (visitor veto or truncation)
  std::uint64_t max_size = 0;
};

ReachResult parallel_reach(const TransitionSystem& ts,
                           const ReachOptions& options,
                           const StateVisitor& visitor, unsigned workers) {
  const System& sys = ts.system();
  ReachResult result;
  ShardedVisitedSet local_visited;
  // With a trace sink the sink doubles as the visited set, so parent
  // recording and the once-only insert decision are one atomic step.
  ShardedVisitedSet& visited = options.trace ? *options.trace : local_visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  const bool collapse = options.por && ts.collapse_chains();
  SharedFrontier frontier;
  // Every popped state claims one index from the budget enforcer; claims
  // beyond a limit mark the stop reason instead of being expanded.  This is
  // the cooperative-parallel analogue of the sequential pre-pop bound check.
  BudgetEnforcer enforcer(options.budget, options.cancel, options.fault,
                          [&visited] { return visited.bytes(); });
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> finals{0};
  std::atomic<std::uint64_t> blocked{0};
  std::atomic<std::uint64_t> por_reduced{0};
  std::atomic<std::uint64_t> por_chained{0};

  if (options.resume != nullptr) {
    seed_from_checkpoint(ts, *options.resume, options.trace, visited,
                         frontier.items);
    frontier.max_size = frontier.items.size();
  } else {
    Config init = ts.initial();
    std::uint64_t id = ShardedVisitedSet::kNoState;
    if (options.trace) {
      id = options.trace
               ->insert_traced(init.encode(), ShardedVisitedSet::kNoState, 0,
                               "init")
               .id;
    } else {
      visited.insert(init.encode());
    }
    frontier.items.push_back({std::move(init), id});
    frontier.max_size = 1;
  }

  const bool bfs = options.strategy == SearchStrategy::Bfs;
  constexpr std::size_t kMaxBatch = 32;

  const auto worker = [&] {
    std::vector<Frontier> batch;
    std::vector<Frontier> discovered;
    lang::StepBuffer steps;                // pooled successor storage
    lang::StepBuffer chain_steps;          // separate pool for chain collapse
    std::vector<std::uint64_t> scratch;    // reusable encoding buffer
    std::uint64_t chained = 0;             // batched into por_chained below
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(frontier.mu);
        frontier.cv.wait(lock, [&] {
          return frontier.stop || !frontier.items.empty() ||
                 frontier.working == 0;
        });
        if (frontier.stop || (frontier.items.empty() && frontier.working == 0)) {
          frontier.cv.notify_all();
          return;
        }
        // Leave work for idle peers: take at most a 1/workers share.
        const std::size_t take = std::min(
            kMaxBatch,
            std::max<std::size_t>(1, frontier.items.size() / workers));
        for (std::size_t i = 0; i < take && !frontier.items.empty(); ++i) {
          if (bfs) {
            batch.push_back(std::move(frontier.items.front()));
            frontier.items.pop_front();
          } else {
            batch.push_back(std::move(frontier.items.back()));
            frontier.items.pop_back();
          }
        }
        frontier.working += 1;
      }

      discovered.clear();
      bool request_stop = false;
      for (const Frontier& item : batch) {
        const Config& cfg = item.cfg;
        if (enforcer.claim() != StopReason::Complete) {
          // Remaining batch items are dropped without being expanded; they
          // stay recoverable through a checkpoint (they are interned and
          // marked enqueued, and resume re-expands every enqueued state).
          request_stop = true;
          break;
        }
        states.fetch_add(1, std::memory_order_relaxed);
        if (expand_steps(ts, cfg, options, steps, want_labels)) {
          por_reduced.fetch_add(1, std::memory_order_relaxed);
        }
        if (steps.empty()) {
          (cfg.all_done(sys) ? finals : blocked)
              .fetch_add(1, std::memory_order_relaxed);
        }
        transitions.fetch_add(steps.size(), std::memory_order_relaxed);
        const bool keep_going = visitor(cfg, item.id, steps.steps());
        for (auto& step : steps.steps()) {
          Config after = std::move(step.after);
          if (options.trace) {
            // A successor that opens a deterministic chain is itself
            // chain-internal: collapse will fast-forward through it and
            // enqueue the chain's end instead.
            const bool chain_start =
                collapse && chain_thread(ts, after).has_value();
            scratch.clear();
            after.encode_into(scratch);
            const auto ins = options.trace->insert_traced(
                scratch, item.id, step.thread, std::move(step.label),
                /*enqueued=*/!chain_start);
            if (!ins.inserted) continue;
            std::uint64_t id = ins.id;
            if (collapse &&
                !collapse_traced(ts, *options.trace, after, id, chain_steps,
                                 scratch, chained)) {
              continue;
            }
            discovered.push_back({std::move(after), id});
          } else {
            if (collapse) collapse_untraced(ts, after, chain_steps, chained);
            scratch.clear();
            after.encode_into(scratch);
            if (visited.insert(scratch)) {
              discovered.push_back({std::move(after), ShardedVisitedSet::kNoState});
            }
          }
        }
        if (!keep_going) {
          request_stop = true;
          break;
        }
      }
      if (chained != 0) {
        por_chained.fetch_add(chained, std::memory_order_relaxed);
        chained = 0;
      }

      {
        std::lock_guard<std::mutex> lock(frontier.mu);
        frontier.working -= 1;
        if (request_stop) frontier.stop = true;
        for (auto& item : discovered) {
          frontier.items.push_back(std::move(item));
        }
        frontier.max_size =
            std::max<std::uint64_t>(frontier.max_size, frontier.items.size());
      }
      frontier.cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  result.stats.states = states.load();
  result.stats.transitions = transitions.load();
  result.stats.finals = finals.load();
  result.stats.blocked = blocked.load();
  result.stats.peak_frontier = frontier.max_size;
  result.stats.visited_bytes = visited.bytes();
  result.stats.por_reduced = por_reduced.load();
  result.stats.por_chained = por_chained.load();
  result.stop = enforcer.reason();
  return result;
}

ReachResult sequential_reach(const TransitionSystem& ts,
                             const ReachOptions& options,
                             const StateVisitor& visitor) {
  const System& sys = ts.system();
  ReachResult result;
  // Untraced runs keep the single lock-free interned set; a trace sink
  // replaces it (insert_traced assigns ids and records parent links).
  VisitedSet visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  const bool collapse = options.por && ts.collapse_chains();
  BudgetEnforcer enforcer(options.budget, options.cancel, options.fault,
                          [&]() -> std::uint64_t {
                            return options.trace ? options.trace->bytes()
                                                 : visited.bytes();
                          });
  std::deque<Frontier> frontier;
  lang::StepBuffer steps;
  lang::StepBuffer chain_steps;  // separate pool: collapse runs mid-iteration
  std::vector<std::uint64_t> scratch;
  if (options.resume != nullptr) {
    seed_from_checkpoint(ts, *options.resume, options.trace, visited,
                         frontier);
  } else {
    Config init = ts.initial();
    std::uint64_t id = ShardedVisitedSet::kNoState;
    if (options.trace) {
      id = options.trace
               ->insert_traced(init.encode(), ShardedVisitedSet::kNoState, 0,
                               "init")
               .id;
    } else {
      visited.insert(init.encode());
    }
    frontier.push_back({std::move(init), id});
  }
  const bool bfs = options.strategy == SearchStrategy::Bfs;
  while (!frontier.empty()) {
    if (const StopReason gate = enforcer.claim();
        gate != StopReason::Complete) {
      result.stop = gate;
      break;
    }
    result.stats.peak_frontier =
        std::max<std::uint64_t>(result.stats.peak_frontier, frontier.size());
    Frontier item = bfs ? std::move(frontier.front()) : std::move(frontier.back());
    if (bfs) {
      frontier.pop_front();
    } else {
      frontier.pop_back();
    }
    const Config& cfg = item.cfg;
    result.stats.states += 1;
    if (expand_steps(ts, cfg, options, steps, want_labels)) {
      result.stats.por_reduced += 1;
    }
    if (steps.empty()) {
      if (cfg.all_done(sys)) {
        result.stats.finals += 1;
      } else {
        result.stats.blocked += 1;
      }
    }
    result.stats.transitions += steps.size();
    const bool keep_going = visitor(cfg, item.id, steps.steps());
    for (auto& step : steps.steps()) {
      Config after = std::move(step.after);
      if (options.trace) {
        // Same chain-start rule as the parallel driver: see above.
        const bool chain_start =
            collapse && chain_thread(ts, after).has_value();
        scratch.clear();
        after.encode_into(scratch);
        const auto ins = options.trace->insert_traced(
            scratch, item.id, step.thread, std::move(step.label),
            /*enqueued=*/!chain_start);
        if (!ins.inserted) continue;
        std::uint64_t id = ins.id;
        if (collapse &&
            !collapse_traced(ts, *options.trace, after, id, chain_steps,
                             scratch, result.stats.por_chained)) {
          continue;
        }
        frontier.push_back({std::move(after), id});
      } else {
        if (collapse) {
          collapse_untraced(ts, after, chain_steps, result.stats.por_chained);
        }
        scratch.clear();
        after.encode_into(scratch);
        if (visited.insert(scratch)) {
          frontier.push_back({std::move(after), ShardedVisitedSet::kNoState});
        }
      }
    }
    if (!keep_going) break;
  }
  result.stats.visited_bytes =
      options.trace ? options.trace->bytes() : visited.bytes();
  return result;
}

}  // namespace

bool expand_steps(const TransitionSystem& ts, const Config& cfg,
                  const ReachOptions& options, StepBuffer& out,
                  bool want_labels) {
  if (options.por) {
    if (const auto t = ts.ample_thread(cfg)) {
      ts.thread_successors_into(cfg, *t, out, want_labels);
      // An empty ample set (the eligible thread's step turned out disabled)
      // must not hide the other threads' steps: fall through to full
      // expansion.  Cannot happen for the current eligibility rules (local
      // steps and plain accesses are always enabled), but stays sound if
      // they ever widen.
      if (!out.empty()) return true;
    }
  }
  if (options.fuse_local_steps) {
    if (const auto t = ts.fusible_thread(cfg)) {
      ts.thread_successors_into(cfg, *t, out, want_labels);
      return false;
    }
  }
  ts.successors_into(cfg, out, want_labels);
  return false;
}

ReachResult visit_reachable(const TransitionSystem& ts,
                            const ReachOptions& options,
                            const StateVisitor& visitor) {
  // Strategy::Por and the historic `por` flag are one setting: normalise
  // both ways so callers may set either and stats/report code can key off
  // whichever it likes.
  if (options.mode == Strategy::Por || options.por) {
    ReachOptions normalised = options;
    normalised.mode = Strategy::Por;
    normalised.por = true;
    if (normalised.mode != options.mode || normalised.por != options.por) {
      return visit_reachable(ts, normalised, visitor);
    }
  }
  if (options.mode == Strategy::Sample) {
    return sample_reach(ts, options, visitor);
  }
  if (options.resume != nullptr) {
    // The enqueued set is a function of the reduction: a checkpoint taken
    // under POR seeds a different frontier than a full run needs (and vice
    // versa), so the settings must agree.  Thread count and strategy are
    // free to change — they never affect which states are enqueued.
    support::require(
        options.resume->por == options.por,
        "checkpoint was recorded with --por ",
        options.resume->por ? "on" : "off", " but this run has it ",
        options.por ? "on" : "off",
        "; resume must use the same reduction setting");
  }
  const unsigned workers = support::resolve_num_threads(options.num_threads);
  if (workers <= 1) return sequential_reach(ts, options, visitor);
  return parallel_reach(ts, options, visitor, workers);
}

ReachResult visit_reachable(const System& sys, const ReachOptions& options,
                            const StateVisitor& visitor) {
  const SystemTransitions ts(sys);
  return visit_reachable(ts, options, visitor);
}

}  // namespace rc11::engine
