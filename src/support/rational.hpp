// rc11lib/support/rational.hpp
//
// Exact rational arithmetic used for the timestamp domain of the RC11 RAR
// memory semantics (Dalvandi & Dongol, "Verifying C11-Style Weak Memory
// Libraries", Section 3.3).  The paper models each global write as a pair
// (a, q) in Act x Q, where q is a rational timestamp ordered by modification
// order.  Fresh timestamps are chosen *between* existing ones
// (fresh(q, q') requires q < q' and that no existing timestamp lies between
// them), so the timestamp domain must be dense: integers do not suffice for a
// faithful representation.
//
// The engine also keeps an order-canonical integer renumbering for state
// hashing (see memsem/state.hpp); this class is the faithful representation
// and is exercised directly by the A3 ablation benchmark.

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace rc11::support {

/// Exact rational number with 64-bit numerator/denominator.
///
/// Invariants (enforced by every constructor and operation):
///   * denominator > 0
///   * gcd(|numerator|, denominator) == 1  (fully reduced)
///   * zero is represented as 0/1
///
/// All arithmetic is performed in 128-bit intermediates and the result is
/// reduced before being narrowed back to 64 bits.  If a reduced result does
/// not fit in 64 bits the operation throws RationalOverflow.  In practice the
/// semantics only ever takes midpoints and successor values of timestamps,
/// which keeps magnitudes tiny; the overflow check is a safety net, not a
/// limitation that is hit.
class Rational {
 public:
  /// Constructs zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Constructs the integer value n.
  constexpr explicit Rational(std::int64_t n) noexcept : num_(n), den_(1) {}

  /// Constructs num/den (den != 0); normalises sign and reduces.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t numerator() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t denominator() const noexcept { return den_; }

  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }

  Rational operator+(const Rational& rhs) const;
  Rational operator-(const Rational& rhs) const;
  Rational operator*(const Rational& rhs) const;
  Rational operator/(const Rational& rhs) const;  ///< throws on rhs == 0
  Rational operator-() const;

  Rational& operator+=(const Rational& rhs) { return *this = *this + rhs; }
  Rational& operator-=(const Rational& rhs) { return *this = *this - rhs; }
  Rational& operator*=(const Rational& rhs) { return *this = *this * rhs; }
  Rational& operator/=(const Rational& rhs) { return *this = *this / rhs; }

  /// Exact comparison via 128-bit cross multiplication (never overflows).
  [[nodiscard]] std::strong_ordering operator<=>(const Rational& rhs) const noexcept;
  [[nodiscard]] bool operator==(const Rational& rhs) const noexcept = default;

  /// The arithmetic midpoint (a+b)/2 — strictly between a and b when a < b.
  /// This is how the engine realises the paper's fresh-timestamp rule when a
  /// write must be inserted between two existing modification-order
  /// neighbours.
  [[nodiscard]] static Rational midpoint(const Rational& a, const Rational& b);

  /// The mediant (p1+p2)/(q1+q2) — also strictly between a and b, with
  /// smaller magnitudes than repeated midpoints (Stern-Brocot insertion).
  /// Used by the timestamp allocator to keep denominators small.
  [[nodiscard]] static Rational mediant(const Rational& a, const Rational& b);

  /// a + 1: a timestamp strictly after a with nothing required beyond it.
  [[nodiscard]] Rational successor() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t num_;
  std::int64_t den_;
};

/// Thrown when a reduced result exceeds 64-bit numerator/denominator range.
class RationalOverflow : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "rc11::support::Rational: arithmetic overflow";
  }
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace rc11::support

template <>
struct std::hash<rc11::support::Rational> {
  std::size_t operator()(const rc11::support::Rational& r) const noexcept {
    const std::size_t h1 = std::hash<std::int64_t>{}(r.numerator());
    const std::size_t h2 = std::hash<std::int64_t>{}(r.denominator());
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
