#include "og/proof_outline.hpp"

#include <atomic>
#include <mutex>
#include <optional>
#include <span>

#include "engine/checkpoint.hpp"
#include "engine/symmetry.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::og {

using lang::Step;

ProofOutline::ProofOutline(const System& sys) {
  annotations_.resize(sys.num_threads());
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    annotations_[t].assign(sys.code(t).size() + 1, Assertion::always());
  }
}

void ProofOutline::annotate(ThreadId t, std::uint32_t pc, Assertion a) {
  support::require(t < annotations_.size(), "annotate: thread out of range");
  support::require(pc < annotations_[t].size(),
                   "annotate: pc out of range for thread ", t);
  annotations_[t][pc] = std::move(a);
}

void ProofOutline::postcondition(ThreadId t, Assertion a) {
  annotate(t, terminal_pc(t), std::move(a));
}

const Assertion& ProofOutline::at(ThreadId t, std::uint32_t pc) const {
  const auto& anns = annotations_.at(t);
  // Control never moves past the terminal pc, but clamp defensively.
  return anns[pc < anns.size() ? pc : anns.size() - 1];
}

std::uint32_t ProofOutline::terminal_pc(ThreadId t) const {
  return static_cast<std::uint32_t>(annotations_.at(t).size() - 1);
}

namespace {

/// Evaluates every outline obligation at one reachable configuration —
/// validity (global invariant + the annotation at every thread's current pc)
/// and, when enabled, interference freedom over the enabled steps (the
/// classic {A ∧ pre(S)} S {A} side condition restricted to reachable
/// states; the step's precondition holds by the validity check).  Invokes
/// `fail(obligation)` per failed obligation, stopping after the first when
/// stop_at_first_failure.  Returns the number of obligations evaluated.
/// Shared by the sequential and parallel checkers so the obligation set can
/// never diverge between them.
template <typename FailFn>
std::uint64_t evaluate_obligations(const System& sys,
                                   const ProofOutline& outline,
                                   const OutlineCheckOptions& options,
                                   const Config& cfg,
                                   std::span<const Step> steps,
                                   const FailFn& fail) {
  std::uint64_t checked = 0;
  bool failed = false;

  checked += 1;
  if (!outline.global_invariant().eval(sys, cfg)) {
    fail("global invariant " + outline.global_invariant().name());
    failed = true;
  }
  if (!(failed && options.stop_at_first_failure)) {
    for (ThreadId t = 0; t < sys.num_threads(); ++t) {
      checked += 1;
      const Assertion& ann = outline.at(t, cfg.pc[t]);
      if (!ann.eval(sys, cfg)) {
        fail(support::concat("annotation at t", t, " pc=", cfg.pc[t], ": ",
                             ann.name()));
        failed = true;
        if (options.stop_at_first_failure) break;
      }
    }
  }
  if (options.check_interference && !(failed && options.stop_at_first_failure)) {
    for (const auto& step : steps) {
      for (ThreadId t = 0; t < sys.num_threads(); ++t) {
        if (t == step.thread) continue;
        for (std::uint32_t pc = 0; pc <= outline.terminal_pc(t); ++pc) {
          const Assertion& ann = outline.at(t, pc);
          checked += 1;
          if (ann.eval(sys, cfg) && !ann.eval(sys, step.after)) {
            fail(support::concat("interference: step [", step.label,
                                 "] breaks t", t, " pc=", pc, ": ",
                                 ann.name()));
            failed = true;
            if (options.stop_at_first_failure) break;
          }
        }
        if (failed && options.stop_at_first_failure) break;
      }
      if (failed && options.stop_at_first_failure) break;
    }
  }
  return checked;
}

/// Pins every annotation's view footprint into the rf-quotient key so each
/// obligation is a function of the key and verdicts are class-invariant;
/// rejects assertions with unknown footprints.  Shared by the in-process and
/// supervised checkers.
void collect_rf_pins(const System& sys, const ProofOutline& outline,
                     engine::RfPins& pins) {
  const auto collect = [&](const Assertion& a) {
    const auto& fp = a.footprint();
    support::require(
        !fp.everything, "--rf-quotient cannot check assertion '", a.name(),
        "': its view footprint is unknown (ad-hoc predicate); drop "
        "--rf-quotient or express it with the footprinted assertion "
        "factories");
    for (const auto& e : fp.entries) pins.entries.push_back(e);
  };
  collect(outline.global_invariant());
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (std::uint32_t pc = 0; pc <= outline.terminal_pc(t); ++pc) {
      collect(outline.at(t, pc));
    }
  }
}

/// The outline checker's two supervised halves: evaluate() runs the full
/// obligation set in the worker and ships failures (plus the obligation
/// count) as events; absorb() rebuilds ObligationFailures with traces and
/// witnesses from the shared sink, in deterministic state order.
class OutlineDelegate final : public engine::DistDelegate {
 public:
  OutlineDelegate(const System& sys, const ProofOutline& outline,
                  const OutlineCheckOptions& options)
      : sys_(sys),
        outline_(outline),
        options_(options),
        init_digest_(options.track_traces
                         ? witness::config_digest(lang::initial_config(sys))
                         : 0) {}

  bool evaluate(const Config& cfg, std::span<const Step> steps,
                std::vector<witness::Json>& events) override {
    std::vector<std::string> local_failures;
    const std::uint64_t checked = evaluate_obligations(
        sys_, outline_, options_, cfg, steps, [&](std::string obligation) {
          local_failures.push_back(std::move(obligation));
        });
    witness::Json obls = witness::Json::object();
    obls.set("kind", witness::Json::string("obls"));
    obls.set("n", witness::Json::integer(static_cast<std::int64_t>(checked)));
    events.push_back(std::move(obls));
    if (local_failures.empty()) return true;
    const std::string dump = cfg.to_string(sys_);
    for (std::string& obligation : local_failures) {
      witness::Json e = witness::Json::object();
      e.set("kind", witness::Json::string("fail"));
      e.set("obligation", witness::Json::string(std::move(obligation)));
      e.set("dump", witness::Json::string(dump));
      events.push_back(std::move(e));
    }
    return !options_.stop_at_first_failure;
  }

  bool absorb(const witness::Json& event, std::uint64_t id,
              const explore::ShardedVisitedSet& sink) override {
    const std::string& kind = event.at("kind").as_string();
    if (kind == "obls") {
      obligations += static_cast<std::uint64_t>(event.at("n").as_int());
      return true;
    }
    if (kind != "fail") return true;
    valid = false;
    ObligationFailure failure;
    failure.obligation = event.at("obligation").as_string();
    failure.state_dump = event.at("dump").as_string();
    if (options_.track_traces) {
      const auto edges = sink.path_to(id);
      failure.trace.reserve(edges.size() + 1);
      failure.trace.emplace_back("init");
      witness::Witness w;
      w.kind = "outline";
      w.source = "og::check_outline";
      w.what = failure.obligation;
      w.state_dump = failure.state_dump;
      w.initial_digest = init_digest_;
      w.steps.reserve(edges.size());
      std::vector<std::uint64_t> enc;
      for (const auto& e : edges) {
        failure.trace.push_back(e.label);
        enc.clear();
        sink.decode_state(e.state, enc);
        w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
      }
      failure.witness = std::move(w);
    }
    failures.push_back(std::move(failure));
    return !options_.stop_at_first_failure;
  }

  std::vector<ObligationFailure> failures;
  std::uint64_t obligations = 0;
  bool valid = true;

 private:
  const System& sys_;
  const ProofOutline& outline_;
  const OutlineCheckOptions& options_;
  const std::uint64_t init_digest_;
};

/// The --workers path of check_outline: identical obligation logic, run
/// through the supervised multi-process driver.
OutlineCheckResult check_outline_dist(const System& sys,
                                      const ProofOutline& outline,
                                      const OutlineCheckOptions& options) {
  support::require(!options.symmetry,
                   "--workers cannot be combined with --symmetry");
  support::require(options.mode != engine::Strategy::Sample,
                   "--workers cannot be combined with --strategy sample");
  support::require(options.num_threads <= 1,
                   "--workers runs worker processes; combine with --threads 1");
  support::require(options.resume == nullptr,
                   "--workers cannot resume a checkpoint; resume runs "
                   "single-process (the checkpoint it writes is compatible)");

  engine::SystemTransitions ts(sys);
  engine::ShardedVisitedSet sink;
  OutlineDelegate delegate(sys, outline, options);

  engine::DistOptions dopts;
  dopts.workers = options.workers;
  dopts.budget.max_states = options.max_states;
  dopts.budget.max_visited_bytes = options.max_visited_bytes;
  dopts.budget.deadline_ms = options.deadline_ms;
  dopts.por = options.por;
  dopts.rf_quotient = options.rf_quotient;
  if (options.rf_quotient) collect_rf_pins(sys, outline, dopts.rf_pins);
  dopts.cancel = options.cancel;
  dopts.fault = options.fault;

  const auto dres = engine::supervise_reach(ts, dopts, delegate, sink);

  OutlineCheckResult result;
  result.valid = delegate.valid;
  result.failures = std::move(delegate.failures);
  result.stats = dres.stats;
  result.stop = dres.stop;
  result.obligations_checked = delegate.obligations;
  result.dist = dres.telemetry;
  if (!options.checkpoint_path.empty() && dres.truncated()) {
    engine::save_checkpoint(
        engine::make_checkpoint(sink, dres.stats, dres.stop, options.por,
                                /*symmetry=*/false, options.rf_quotient),
        options.checkpoint_path);
  }
  return result;
}

}  // namespace

OutlineCheckResult check_outline(const System& sys, const ProofOutline& outline,
                                 OutlineCheckOptions options) {
  if (options.workers > 0) return check_outline_dist(sys, outline, options);
  // One implementation for every thread count, on the shared reachability
  // driver.  With track_traces the driver records parent links in the trace
  // sink, so failures carry traces and replayable witnesses even from a
  // worker pool; the verdict and the set of failed obligations are
  // thread-count-independent (failures arrive unordered when parallel).
  OutlineCheckResult result;
  if (options.mode == engine::Strategy::Sample) {
    support::require(options.checkpoint_path.empty(),
                     "--checkpoint is not supported under --strategy sample: "
                     "a sampling run has no frontier to save");
    support::require(options.resume == nullptr,
                     "--resume is not supported under --strategy sample: a "
                     "sampling run has no frontier to continue from");
  }
  std::optional<explore::ShardedVisitedSet> trace_store;
  // Checkpoints are built from the trace sink, so requesting one implies
  // trace recording.
  if (options.track_traces || !options.checkpoint_path.empty()) {
    trace_store.emplace();
  }
  std::atomic<std::uint64_t> obligations{0};
  std::atomic<bool> valid{true};
  std::mutex failures_mu;

  // Under the symmetry quotient the driver visits one representative per
  // orbit; exactness of the Owicki–Gries obligations is restored here by
  // evaluating them at every orbit member, against the member's enabled
  // steps (the representative's steps pushed through the permutation — the
  // group action commutes with the successor relation).
  std::optional<engine::SymmetryReducer> reducer;
  if (options.symmetry) reducer.emplace(sys);
  const bool orbit = reducer.has_value() && reducer->symmetric();

  explore::ReachOptions ropts;
  ropts.budget.max_states = options.max_states;
  ropts.budget.max_visited_bytes = options.max_visited_bytes;
  ropts.budget.deadline_ms = options.deadline_ms;
  ropts.num_threads = options.num_threads;
  ropts.por = options.por;
  ropts.symmetry = options.symmetry;
  ropts.rf_quotient = options.rf_quotient;
  ropts.sleep_sets = options.symmetry || options.rf_quotient;
  if (options.rf_quotient) collect_rf_pins(sys, outline, ropts.rf_pins);
  ropts.mode = options.mode;
  ropts.sample = options.sample;
  ropts.want_labels = true;  // interference messages cite the step label
  ropts.trace = trace_store ? &*trace_store : nullptr;
  ropts.cancel = options.cancel;
  ropts.fault = options.fault;
  ropts.resume = options.resume;

  const std::uint64_t init_digest =
      options.track_traces ? witness::config_digest(lang::initial_config(sys))
                           : 0;

  const auto reach = explore::visit_reachable(
      sys, ropts,
      [&](const Config& cfg, std::uint64_t id,
          std::span<const lang::Step> steps) -> bool {
        std::uint64_t local_obligations = 0;
        bool stop = false;
        const auto check_member = [&](const Config& member,
                                      std::span<const lang::Step> msteps,
                                      bool is_rep) {
          std::vector<std::string> local_failures;
          local_obligations += evaluate_obligations(
              sys, outline, options, member, msteps,
              [&](std::string obligation) {
                local_failures.push_back(std::move(obligation));
              });
          if (local_failures.empty()) return;
          valid.store(false, std::memory_order_relaxed);
          const auto dump = member.to_string(sys);
          std::vector<std::string> trace;
          std::optional<witness::Witness> wit;
          if (trace_store) {
            const auto edges = trace_store->path_to(id);
            trace.reserve(edges.size() + 2);
            trace.emplace_back("init");
            witness::Witness w;
            w.kind = "outline";
            w.source = "og::check_outline";
            w.state_dump = dump;
            w.initial_digest = init_digest;
            w.steps.reserve(edges.size());
            std::vector<std::uint64_t> enc;
            for (const auto& e : edges) {
              trace.push_back(e.label);
              enc.clear();
              trace_store->decode_state(e.state, enc);
              w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
            }
            if (!is_rep) {
              trace.emplace_back(
                  "(failing state is a thread permutation of the state this "
                  "trace reaches)");
            }
            wit = std::move(w);
          }
          {
            std::lock_guard<std::mutex> lock(failures_mu);
            for (auto& obligation : local_failures) {
              ObligationFailure failure;
              failure.obligation = std::move(obligation);
              failure.state_dump = dump;
              failure.trace = trace;
              if (wit) {
                failure.witness = *wit;
                failure.witness->what = failure.obligation;
              }
              result.failures.push_back(std::move(failure));
            }
          }
          if (options.stop_at_first_failure) stop = true;
        };
        if (orbit) {
          std::vector<lang::Step> psteps;
          bool is_rep = true;
          reducer->for_each_orbit(
              cfg, [&](const Config& member, const engine::ThreadPerm& perm) {
                if (stop) return;
                if (is_rep) {
                  is_rep = false;
                  check_member(member, steps, /*is_rep=*/true);
                  return;
                }
                psteps.clear();
                psteps.reserve(steps.size());
                for (const auto& step : steps) {
                  psteps.push_back(lang::Step{
                      perm[step.thread], step.label,
                      reducer->permuted(step.after, perm), step.meta});
                }
                check_member(member, psteps, /*is_rep=*/false);
              });
        } else {
          check_member(cfg, steps, /*is_rep=*/true);
        }
        obligations.fetch_add(local_obligations, std::memory_order_relaxed);
        return !stop;
      });

  result.valid = valid.load();
  result.stats = reach.stats;
  result.stop = reach.stop;
  result.obligations_checked = obligations.load();
  if (!options.checkpoint_path.empty() && reach.truncated()) {
    engine::save_checkpoint(
        engine::make_checkpoint(*trace_store, reach.stats, reach.stop,
                                options.por, options.symmetry,
                                options.rf_quotient),
        options.checkpoint_path);
  }
  return result;
}

TripleCheckResult check_triple(const System& sys, const Assertion& pre,
                               const StatementFilter& filter,
                               const TriplePost& post,
                               std::uint64_t max_states) {
  // The triple quantifies over every reachable instance of the filtered
  // statement, so the full (unreduced) driver enumerates states and hands
  // each one its enabled steps — no private successor loop.
  TripleCheckResult result;
  explore::ReachOptions ropts;
  ropts.budget.max_states = max_states;
  ropts.want_labels = true;  // failure messages cite the step label
  (void)explore::visit_reachable(
      sys, ropts,
      [&](const Config& cfg, std::uint64_t /*id*/,
          std::span<const Step> steps) -> bool {
        if (!pre.eval(sys, cfg)) return true;
        for (const auto& step : steps) {
          const Instr& in = sys.code(step.thread)[cfg.pc[step.thread]];
          if (!filter(step.thread, in)) continue;
          result.instances_checked += 1;
          if (!post(sys, cfg, step.after)) {
            result.valid = false;
            ObligationFailure failure;
            failure.obligation =
                support::concat("triple violated by step [", step.label, "]");
            failure.state_dump = cfg.to_string(sys) + "-- after --\n" +
                                 step.after.to_string(sys);
            result.failures.push_back(std::move(failure));
          }
        }
        return true;
      });
  return result;
}

}  // namespace rc11::og
