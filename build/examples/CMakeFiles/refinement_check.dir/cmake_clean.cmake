file(REMOVE_RECURSE
  "CMakeFiles/refinement_check.dir/refinement_check.cpp.o"
  "CMakeFiles/refinement_check.dir/refinement_check.cpp.o.d"
  "refinement_check"
  "refinement_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
