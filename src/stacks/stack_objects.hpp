// rc11lib/stacks/stack_objects.hpp
//
// Contextual refinement for a second object type — the synchronising stack.
// The paper works out its refinement theory on the lock and notes that "the
// theory itself is generic and can be applied to concurrent objects in
// general" and that investigating "implementations of other concurrent data
// types ... within this operational framework" is future work; this module
// is that exercise.
//
// A StackObject fills a client's push/pop holes with either the abstract
// stack semantics (objects/stack.hpp) or a concrete implementation.  The
// provided implementation is a bounded, spinlock-protected vector stack:
//
//   Push(v):  lock(); c <- cnt; slot_c := v; cnt := c + 1; unlock()
//   Pop():    lock(); c <- cnt;
//             if c = 0 { return Empty }
//             else     { r <- slot_{c-1}; cnt := c - 1; return r }
//             unlock()
//
// where lock()/unlock() is a CAS spinlock whose releasing unlock is the
// source of the publication guarantee: an acquiring pop of a releasing push
// must transfer the pusher's client views, and here it does because the
// popper's lock-acquire CAS synchronises with the pusher's lock release,
// whose modification view is at least as recent as the push's.  The broken
// variant unlocks with a relaxed write and must fail refinement.
//
// Capacity is a compile-time bound (slots are scalar library variables; the
// language deliberately has no arrays).  Clients must not exceed it; the
// implementation asserts this via a poison slot write that would show up as
// a client-visible divergence in refinement checking.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lang/system.hpp"
#include "og/catalog.hpp"

namespace rc11::stacks {

using lang::Expr;
using lang::LocId;
using lang::Reg;
using lang::System;
using lang::ThreadBuilder;

/// Interface for anything that can fill a client's stack holes.
class StackObject {
 public:
  virtual ~StackObject() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  virtual void declare(System& sys) = 0;
  /// Emits push(value); releasing selects push^R.
  virtual void emit_push(ThreadBuilder& tb, Expr value, bool releasing) = 0;
  /// Emits dst <- pop(); acquiring selects pop^A.  dst receives the popped
  /// value or memsem::kStackEmpty.
  virtual void emit_pop(ThreadBuilder& tb, Reg dst, bool acquiring) = 0;
};

/// The abstract synchronising stack of Figures 1-3.
class AbstractStack final : public StackObject {
 public:
  [[nodiscard]] std::string name() const override { return "abstract-stack"; }
  void declare(System& sys) override;
  void emit_push(ThreadBuilder& tb, Expr value, bool releasing) override;
  void emit_pop(ThreadBuilder& tb, Reg dst, bool acquiring) override;

  [[nodiscard]] LocId stack_loc() const { return s_; }

 private:
  LocId s_ = 0;
};

/// Bounded spinlock-protected vector stack (see file comment).
class LockedVectorStack final : public StackObject {
 public:
  explicit LockedVectorStack(unsigned capacity = 2,
                             bool releasing_unlock = true)
      : capacity_(capacity), releasing_unlock_(releasing_unlock) {}

  [[nodiscard]] std::string name() const override {
    return releasing_unlock_ ? "locked-vector-stack"
                             : "locked-vector-stack-broken-relaxed-unlock";
  }
  void declare(System& sys) override;
  void emit_push(ThreadBuilder& tb, Expr value, bool releasing) override;
  void emit_pop(ThreadBuilder& tb, Reg dst, bool acquiring) override;

 private:
  struct ThreadRegs {
    Reg loc;  ///< spinlock CAS flag
    Reg cnt;  ///< local copy of the element count
  };
  ThreadRegs& regs_for(ThreadBuilder& tb);
  void emit_lock(ThreadBuilder& tb);
  void emit_unlock(ThreadBuilder& tb);

  unsigned capacity_;
  bool releasing_unlock_;
  LocId lk_ = 0;
  LocId cnt_ = 0;
  std::vector<LocId> slots_;
  og::PerThreadRegs<ThreadRegs> regs_;
};

/// A client program over stack holes (the analogue of locks::ClientProgram).
using StackClientProgram = std::function<void(System&, StackObject&)>;

/// Builds C[O] for a stack object.
[[nodiscard]] System instantiate(const StackClientProgram& client,
                                 StackObject& object);

/// Handles to a client's observable artifacts.
struct StackClientArtifacts {
  std::vector<LocId> vars;
  std::vector<Reg> regs;
};

/// The Fig. 2-shaped publication client: t0 writes d := 5 then pushes the
/// message (releasing); t1 pops (acquiring, once — it may see Empty) and
/// then reads d.
StackClientProgram publication_client(StackClientArtifacts* artifacts = nullptr);

/// A two-thread producer/consumer: t0 pushes `pushes` distinct values;
/// t1 pops the same number of times (each pop may return Empty).
StackClientProgram producer_consumer_client(
    unsigned pushes, StackClientArtifacts* artifacts = nullptr);

}  // namespace rc11::stacks
