# Empty compiler generated dependencies file for bench_litmus_suite.
# This may be replaced when dependencies are built.
