// rc11lib/locks/lock_objects.hpp
//
// Lock objects for the contextual-refinement framework (Section 6): the
// abstract lock specification and its implementations — the sequence lock
// (§6.2), the ticket lock (§6.3) and, answering the paper's question (3)
// ("can the same abstract library specify multiple implementations?"), an
// additional CAS spinlock.  Deliberately broken variants are provided for
// negative testing: refinement checking must reject them.
//
// A LockObject fills the holes of a client program (the • of the Com grammar
// in Section 3.1).  Instantiating the same client with the abstract object
// yields C[AO], with an implementation C[CO] (Definition 7).  Implementation
// code uses Library-tagged registers so that the client projection of
// Definition 5 is identical across instantiations; the client-visible return
// value of Acquire (true) is delivered through the client's destination
// register in both cases.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "lang/system.hpp"
#include "og/catalog.hpp"

namespace rc11::locks {

using lang::LocId;
using lang::Reg;
using lang::System;
using lang::ThreadBuilder;

/// Interface for anything that can fill a client's lock holes.
class LockObject {
 public:
  virtual ~LockObject() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Declares the object's library locations on the system (called once,
  /// before any thread is built).
  virtual void declare(System& sys) = 0;

  /// Emits the Acquire() hole filling for the builder's thread.  On return
  /// from the method the client register `dst` holds true (the abstract
  /// Acquire's return value).
  virtual void emit_acquire(ThreadBuilder& tb, Reg dst) = 0;

  /// Emits the Release() hole filling.
  virtual void emit_release(ThreadBuilder& tb) = 0;
};

/// The abstract lock of Section 4 / Fig. 6.
class AbstractLock final : public LockObject {
 public:
  [[nodiscard]] std::string name() const override { return "abstract-lock"; }
  void declare(System& sys) override;
  void emit_acquire(ThreadBuilder& tb, Reg dst) override;
  void emit_release(ThreadBuilder& tb) override;

  [[nodiscard]] LocId lock_loc() const { return l_; }

 private:
  LocId l_ = 0;
};

/// The sequence lock of Section 6.2:
///   Acquire: do { do r <-A glb until even(r); loc <- CAS(glb, r, r+1)^RA }
///            until loc
///   Release: glb :=R r + 2
class SeqLock final : public LockObject {
 public:
  /// `releasing_release` exists for the broken variant: when false, the
  /// Release write is relaxed, destroying the release-acquire synchronisation
  /// the specification promises (refinement must fail).
  explicit SeqLock(bool releasing_release = true)
      : releasing_release_(releasing_release) {}

  [[nodiscard]] std::string name() const override {
    return releasing_release_ ? "seqlock" : "seqlock-broken-relaxed-release";
  }
  void declare(System& sys) override;
  void emit_acquire(ThreadBuilder& tb, Reg dst) override;
  void emit_release(ThreadBuilder& tb) override;

  [[nodiscard]] LocId glb() const { return glb_; }

 private:
  struct ThreadRegs {
    Reg r;    ///< last even value read (also used by Release)
    Reg loc;  ///< CAS success flag
  };
  ThreadRegs& regs_for(ThreadBuilder& tb);

  LocId glb_ = 0;
  bool releasing_release_;
  og::PerThreadRegs<ThreadRegs> regs_;
};

/// The ticket lock of Section 6.3:
///   Acquire: m_t <- FAI(nt)^RA; do s_n <-A sn until m_t = s_n
///   Release: sn :=R s_n + 1
class TicketLock final : public LockObject {
 public:
  explicit TicketLock(bool releasing_release = true)
      : releasing_release_(releasing_release) {}

  [[nodiscard]] std::string name() const override {
    return releasing_release_ ? "ticketlock" : "ticketlock-broken-relaxed-release";
  }
  void declare(System& sys) override;
  void emit_acquire(ThreadBuilder& tb, Reg dst) override;
  void emit_release(ThreadBuilder& tb) override;

 private:
  struct ThreadRegs {
    Reg my_ticket;  ///< m_t
    Reg serving;    ///< s_n
  };
  ThreadRegs& regs_for(ThreadBuilder& tb);

  LocId nt_ = 0;  ///< next ticket
  LocId sn_ = 0;  ///< serving now
  bool releasing_release_;
  og::PerThreadRegs<ThreadRegs> regs_;
};

/// A test-and-set spinlock (extra implementation of the same specification):
///   Acquire: do loc <- CAS(glb, 0, 1)^RA until loc
///   Release: glb :=R 0
class CasSpinLock final : public LockObject {
 public:
  [[nodiscard]] std::string name() const override { return "cas-spinlock"; }
  void declare(System& sys) override;
  void emit_acquire(ThreadBuilder& tb, Reg dst) override;
  void emit_release(ThreadBuilder& tb) override;

 private:
  struct ThreadRegs {
    Reg loc;
  };
  ThreadRegs& regs_for(ThreadBuilder& tb);

  LocId glb_ = 0;
  og::PerThreadRegs<ThreadRegs> regs_;
};

/// A test-and-test-and-set spinlock: spins on a relaxed-free read loop and
/// only then attempts the RA CAS (the classic contention optimisation):
///   Acquire: do { do r <-A glb until r == 0; loc <- CAS(glb, 0, 1)^RA }
///            until loc
///   Release: glb :=R 0
class TTASLock final : public LockObject {
 public:
  [[nodiscard]] std::string name() const override { return "ttas-lock"; }
  void declare(System& sys) override;
  void emit_acquire(ThreadBuilder& tb, Reg dst) override;
  void emit_release(ThreadBuilder& tb) override;

 private:
  struct ThreadRegs {
    Reg r;
    Reg loc;
  };
  ThreadRegs& regs_for(ThreadBuilder& tb);

  LocId glb_ = 0;
  og::PerThreadRegs<ThreadRegs> regs_;
};

/// A client program parameterised by the object that fills its holes
/// (the paper's C[·]).  The callable must declare identical client locations
/// and registers regardless of the object — library state is the object's
/// own business.
using ClientProgram = std::function<void(System&, LockObject&)>;

/// Builds C[O]: a fresh System on which `client` is run with `object`
/// filling the lock holes.
[[nodiscard]] System instantiate(const ClientProgram& client, LockObject& object);

}  // namespace rc11::locks
