file(REMOVE_RECURSE
  "CMakeFiles/bench_litmus_suite.dir/bench_litmus_suite.cpp.o"
  "CMakeFiles/bench_litmus_suite.dir/bench_litmus_suite.cpp.o.d"
  "bench_litmus_suite"
  "bench_litmus_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_litmus_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
