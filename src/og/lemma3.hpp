// rc11lib/og/lemma3.hpp
//
// The six Hoare rules of Lemma 3 for abstract-lock method calls, packaged as
// checkable experiments over a configurable lock-client harness.  The paper
// verifies these rules once and for all in Isabelle/HOL; here each rule is
// checked against every reachable instance in the harness (the substitution
// documented in DESIGN.md), with vacuity guarded by instance counts.

#pragma once

#include <string>
#include <vector>

#include "og/proof_outline.hpp"

namespace rc11::og {

struct Lemma3RuleResult {
  int rule = 0;               ///< 1..6, numbering of Lemma 3
  std::string description;    ///< the triple, paper notation
  bool valid = false;
  std::uint64_t instances = 0;  ///< non-vacuous (state, step) pairs checked
};

/// The harness: `writer_rounds` lock-protected writes by thread 0 and one
/// lock-protected read by thread 1 (two threads; richer histories with more
/// rounds).  Returns one result per rule, in paper order.
std::vector<Lemma3RuleResult> check_lemma3_rules(unsigned writer_rounds = 2);

}  // namespace rc11::og
