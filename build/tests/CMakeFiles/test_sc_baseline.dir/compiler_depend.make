# Empty compiler generated dependencies file for test_sc_baseline.
# This may be replaced when dependencies are built.
