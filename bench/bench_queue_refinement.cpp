// Experiment Q1 (extension): contextual refinement for the FIFO queue — the
// third data type through the Section 6 machinery.  The lock-protected ring
// buffer must forward-simulate the abstract synchronising queue; the
// relaxed-unlock variant must fail.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "queues/queue_objects.hpp"
#include "refinement/refinement.hpp"

namespace {

using namespace rc11;

void BM_QueueSimulation_Publication(benchmark::State& state) {
  refinement::SimulationResult result;
  for (auto _ : state) {
    queues::AbstractQueue abs;
    const auto abs_sys =
        queues::instantiate(queues::publication_client(), abs);
    queues::LockedRingQueue conc;
    const auto conc_sys =
        queues::instantiate(queues::publication_client(), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["abs_states"] = static_cast<double>(result.abstract_states);
  state.counters["conc_states"] = static_cast<double>(result.concrete_states);
  state.counters["holds"] = result.holds ? 1 : 0;
}
BENCHMARK(BM_QueueSimulation_Publication);

void BM_QueueSimulation_Pipeline(benchmark::State& state) {
  const auto count = static_cast<unsigned>(state.range(0));
  refinement::SimulationResult result;
  for (auto _ : state) {
    queues::AbstractQueue abs;
    const auto abs_sys =
        queues::instantiate(queues::pipeline_client(count), abs);
    queues::LockedRingQueue conc{count};
    const auto conc_sys =
        queues::instantiate(queues::pipeline_client(count), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["abs_states"] = static_cast<double>(result.abstract_states);
  state.counters["conc_states"] = static_cast<double>(result.concrete_states);
  state.counters["holds"] = result.holds ? 1 : 0;
  state.SetLabel(std::to_string(count) + " elements");
}
BENCHMARK(BM_QueueSimulation_Pipeline)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  {
    queues::AbstractQueue abs;
    const auto abs_sys =
        queues::instantiate(queues::publication_client(), abs);
    queues::LockedRingQueue conc;
    const auto conc_sys =
        queues::instantiate(queues::publication_client(), conc);
    const auto r = refinement::check_forward_simulation(abs_sys, conc_sys);
    bench::verdict("Q1", r.holds,
                   "locked ring queue forward-simulates the abstract FIFO "
                   "queue (abs " +
                       std::to_string(r.abstract_states) + " states, conc " +
                       std::to_string(r.concrete_states) + " states)");

    queues::LockedRingQueue broken{2, /*releasing_unlock=*/false};
    const auto broken_sys =
        queues::instantiate(queues::publication_client(), broken);
    const auto rb = refinement::check_forward_simulation(abs_sys, broken_sys);
    bench::verdict("Q1-neg", !rb.holds,
                   "relaxed-unlock ring queue rejected: " + rb.diagnosis);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
