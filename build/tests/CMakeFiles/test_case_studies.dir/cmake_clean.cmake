file(REMOVE_RECURSE
  "CMakeFiles/test_case_studies.dir/test_case_studies.cpp.o"
  "CMakeFiles/test_case_studies.dir/test_case_studies.cpp.o.d"
  "test_case_studies"
  "test_case_studies.pdb"
  "test_case_studies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
