// rc11lib/engine/budget.hpp
//
// Resource governance for the shared reachability engine: every exploration
// the library runs — the explorer, the outline checker, the refinement graph
// builder — goes through one cooperative budget layer that can stop it
// early, *honestly* (the result names exactly which limit was hit), and
// without losing the work done so far (engine/checkpoint.hpp serialises a
// stopped run; ReachOptions::resume continues it).
//
//   * Budget      — the three exploration limits: distinct-state cap,
//                   visited-set memory cap, wall-clock deadline.
//   * StopReason  — why a run ended; replaces the old lone `truncated` bit
//                   so callers can distinguish "state cap" from "deadline"
//                   from "Ctrl-C" (ReachResult keeps a truncated() compat
//                   accessor).
//   * CancelToken — cooperative cancellation: an async-signal-safe flag the
//                   CLI layer flips from SIGINT/SIGTERM handlers; workers
//                   poll it once per claimed state, drain, and the tools
//                   emit a partial report + exit 3 instead of dying.
//   * FaultPlan   — deterministic fault injection (env RC11_FAULT) used by
//                   the robustness tests and CI to prove every degradation
//                   path reports its StopReason and never deadlocks.
//   * BudgetEnforcer — the hot-path check itself, shared by the sequential
//                   and parallel drivers: one relaxed atomic increment and a
//                   couple of predictable branches per state; the expensive
//                   probes (steady_clock::now, visited-set bytes) run every
//                   kBudgetCheckInterval claims only.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

namespace rc11::engine {

/// Why a reachability run ended.  Complete covers both full enumeration and
/// a visitor-requested stop (a visitor veto is a *decision*, not resource
/// exhaustion — e.g. stop-at-first-violation — and the results are as
/// complete as the visitor wanted them).  Every other value means the state
/// space was only partially enumerated and verdicts are a lower bound.
enum class StopReason : std::uint8_t {
  Complete,       ///< frontier drained (or the visitor asked to stop)
  StateCap,       ///< Budget::max_states distinct states were claimed
  MemCap,         ///< visited set exceeded Budget::max_visited_bytes
  Deadline,       ///< Budget::deadline_ms of wall clock elapsed
  Interrupted,    ///< CancelToken fired (SIGINT/SIGTERM or caller cancel)
  InjectedFault,  ///< a FaultPlan tripped (tests/CI only)
  /// The sampling strategy ran its full episode budget (engine/sample.hpp).
  /// This is how every sampling run that finds no violation ends: the
  /// coverage is a sample, so results are a lower bound by construction.
  EpisodeCap,
  /// A distributed run (engine/supervise.hpp) lost a worker process for
  /// good: the per-worker restart/retry budget was exhausted (repeated
  /// crashes, hangs or corrupt batches), survivors were drained, and the
  /// report covers only the states whose results arrived.  Like every other
  /// truncation the verdict is a lower bound, never a lie.
  WorkerLost,
};

/// Stable lower-case names ("complete", "state-cap", ...) for reports,
/// JSON summaries and the checkpoint schema.
[[nodiscard]] const char* to_string(StopReason reason) noexcept;

/// Parses a to_string name back; throws support::Error on unknown input.
[[nodiscard]] StopReason stop_reason_from_string(std::string_view name);

/// The exploration limits.  max_states keeps its historic default; the two
/// new dimensions default to "unlimited" (0) so existing callers are
/// unaffected.
struct Budget {
  std::uint64_t max_states = 1'000'000;
  std::uint64_t max_visited_bytes = 0;  ///< 0 = no memory budget
  std::uint64_t deadline_ms = 0;        ///< 0 = no deadline
};

/// Cooperative cancellation flag.  cancel() is async-signal-safe (one
/// relaxed atomic store), so the CLI layer can call it straight from a
/// SIGINT handler; workers poll cancelled() once per claimed state.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (tests reuse one token across runs).
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A deterministic fault to inject into the driver, for tests and the CI
/// robustness matrix.  Parsed from the RC11_FAULT environment variable as a
/// comma-separated list of specs (at most one state-level spec and at most
/// one spec per process-level kind):
///
///   state-level (fire at the Nth visited-state claim, 1-based, global
///   across worker threads):
///   RC11_FAULT=insert:N     fail the Nth visited-state claim (the insert
///                           that would admit the Nth state) -> InjectedFault
///   RC11_FAULT=stall:N:MS   stall the worker claiming the Nth state for MS
///                           milliseconds (proves peers keep draining and a
///                           later stop still terminates cleanly)
///   RC11_FAULT=mem:N        behave as if the memory budget tripped at the
///                           Nth claim -> MemCap
///
///   process-level (fire in the worker *process* handling the batch with
///   the Nth global dispatch index, 1-based; engine/supervise.hpp — no
///   effect on single-process runs; ":K" repeats the fault for K
///   consecutive dispatches, default 1, so small K exercises
///   crash->restart->replay recovery and a large K exhausts the retry
///   budget into StopReason::WorkerLost):
///   RC11_FAULT=crash:N[:K]    _exit(2) mid-batch
///   RC11_FAULT=hang:N[:K]     stop reading/acking (supervisor hang timeout)
///   RC11_FAULT=corrupt:N[:K]  flip bytes in the outbound ack frame so CRC
///                             validation rejects it
///
///   e.g. RC11_FAULT=crash:3,stall:200:50
struct FaultPlan {
  enum class Kind : std::uint8_t {
    None, FailInsert, Stall, TripMem, Crash, Hang, Corrupt
  };
  Kind kind = Kind::None;      ///< state-level fault (FailInsert/Stall/TripMem)
  std::uint64_t at_state = 0;  ///< 1-based claim index the fault fires at
  std::uint64_t stall_ms = 0;  ///< Stall only

  /// One process-level fault (Crash/Hang/Corrupt), armed for the batches
  /// with global dispatch index in [at_batch, at_batch + count).
  struct ProcessFault {
    Kind kind = Kind::None;
    std::uint64_t at_batch = 0;  ///< 1-based dispatch index
    std::uint64_t count = 1;     ///< consecutive dispatches affected
  };
  std::vector<ProcessFault> process;  ///< at most one entry per kind

  [[nodiscard]] bool armed() const noexcept {
    return kind != Kind::None || !process.empty();
  }

  /// The process-level fault armed for dispatch index `dispatch`, or
  /// nullptr.  Dispatch indices count every send, including resends after a
  /// restart — a recovered batch arrives under a fresh (higher) index, so a
  /// single-shot fault fires exactly once.
  [[nodiscard]] const ProcessFault* process_fault_at(
      std::uint64_t dispatch) const noexcept {
    for (const auto& pf : process) {
      if (dispatch >= pf.at_batch && dispatch < pf.at_batch + pf.count) {
        return &pf;
      }
    }
    return nullptr;
  }

  /// Parses a comma-separated fault list ("insert:N" / "stall:N:MS" /
  /// "mem:N" / "crash:N[:K]" / "hang:N[:K]" / "corrupt:N[:K]"); throws
  /// support::Error on malformed input (including N == 0), on a duplicated
  /// kind and on a second state-level spec.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// FaultPlan::parse(getenv("RC11_FAULT")), or an unarmed plan when the
  /// variable is unset or empty.
  [[nodiscard]] static FaultPlan from_env();
};

/// Claims between the expensive probes (clock + visited bytes).  Small
/// enough that a tiny memory budget trips within the first few dozen states
/// (the truncation-exactness tests rely on this), large enough that the
/// probes stay off the hot path.
inline constexpr std::uint64_t kBudgetCheckInterval = 32;

/// Once a probe observes the deadline this close (or the run starts with a
/// deadline this tight), every claim probes the clock: the every-32-claims
/// cadence alone would let one slow stretch of claims overshoot
/// --deadline-ms by an unbounded amount, so the enforcer escalates to
/// per-claim probing for the deadline's final window.  One clock read per
/// claim only inside that window — the hot path keeps its counter-only cost.
inline constexpr std::uint64_t kDeadlineUrgentWindowMs = 50;

/// An injected stall sleeps in slices of this size, probing the deadline
/// between slices, so even a stall much longer than --deadline-ms cannot
/// delay the Deadline decision past one slice.
inline constexpr std::uint64_t kStallSliceMs = 5;

/// The per-state gate both reachability drivers run: claim() is called once
/// per state about to be expanded and returns Complete to proceed or the
/// sticky reason to stop.  Thread-safe; the first non-Complete decision
/// wins, every later claim returns it immediately (so draining workers bail
/// per item without re-probing).
class BudgetEnforcer {
 public:
  /// `visited_bytes` is probed every kBudgetCheckInterval claims when a
  /// memory budget is set; it must be safe to call from any worker.
  BudgetEnforcer(const Budget& budget, const CancelToken* cancel,
                 const FaultPlan& fault,
                 std::function<std::uint64_t()> visited_bytes)
      : budget_(budget),
        cancel_(cancel),
        fault_(fault),
        visited_bytes_(std::move(visited_bytes)),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] StopReason claim() {
    // Sticky fast path: somebody already decided.
    StopReason sticky = reason_.load(std::memory_order_relaxed);
    if (sticky != StopReason::Complete) return sticky;

    const std::uint64_t n = claimed_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool probe = (n % kBudgetCheckInterval) == 0;
    // Deadline escalation: the first claim probes (so a deadline tighter
    // than the urgent window arms per-claim probing immediately), and once
    // any probe has seen the deadline inside the urgent window, every claim
    // probes — the counter cadence alone would overshoot --deadline-ms by
    // however long 31 claims happen to take.
    if (!probe && budget_.deadline_ms != 0 &&
        (n == 1 || urgent_.load(std::memory_order_relaxed))) {
      probe = true;
    }
    if (fault_.kind != FaultPlan::Kind::None && n == fault_.at_state) {
      switch (fault_.kind) {
        case FaultPlan::Kind::FailInsert:
          return decide(StopReason::InjectedFault);
        case FaultPlan::Kind::TripMem:
          return decide(StopReason::MemCap);
        case FaultPlan::Kind::Stall: {
          // Sleep in slices, honouring the deadline between slices: a stall
          // must not carry the run past --deadline-ms by more than one
          // slice.  "stall + deadline" therefore trips deterministically,
          // and promptly.
          std::uint64_t left = fault_.stall_ms;
          while (left > 0) {
            const std::uint64_t slice = left < kStallSliceMs ? left : kStallSliceMs;
            std::this_thread::sleep_for(std::chrono::milliseconds(slice));
            left -= slice;
            if (budget_.deadline_ms != 0 &&
                std::chrono::steady_clock::now() - start_ >=
                    std::chrono::milliseconds(budget_.deadline_ms)) {
              return decide(StopReason::Deadline);
            }
          }
          probe = true;
          break;
        }
        case FaultPlan::Kind::None:
        case FaultPlan::Kind::Crash:
        case FaultPlan::Kind::Hang:
        case FaultPlan::Kind::Corrupt:
          // Process-level kinds never occupy the state-level slot.
          break;
      }
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return decide(StopReason::Interrupted);
    }
    if (n > budget_.max_states) return decide(StopReason::StateCap);
    if (probe) {
      if (budget_.deadline_ms != 0) {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        if (elapsed >= std::chrono::milliseconds(budget_.deadline_ms)) {
          return decide(StopReason::Deadline);
        }
        if (elapsed + std::chrono::milliseconds(kDeadlineUrgentWindowMs) >=
            std::chrono::milliseconds(budget_.deadline_ms)) {
          urgent_.store(true, std::memory_order_relaxed);
        }
      }
      if (budget_.max_visited_bytes != 0 &&
          visited_bytes_() > budget_.max_visited_bytes) {
        return decide(StopReason::MemCap);
      }
    }
    return StopReason::Complete;
  }

  /// Non-claiming gate for drivers whose progress is not measured in
  /// distinct states: the sampling engine revisits states for most of its
  /// steps, so it calls probe() periodically mid-episode to honour
  /// cancellation, the deadline and the memory budget without consuming a
  /// state claim (the state cap stays a distinct-state bound, enforced by
  /// claim() on first visits only).  Sticky like claim().
  [[nodiscard]] StopReason probe() {
    StopReason sticky = reason_.load(std::memory_order_relaxed);
    if (sticky != StopReason::Complete) return sticky;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return decide(StopReason::Interrupted);
    }
    if (budget_.deadline_ms != 0) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      if (elapsed >= std::chrono::milliseconds(budget_.deadline_ms)) {
        return decide(StopReason::Deadline);
      }
      if (elapsed + std::chrono::milliseconds(kDeadlineUrgentWindowMs) >=
          std::chrono::milliseconds(budget_.deadline_ms)) {
        urgent_.store(true, std::memory_order_relaxed);
      }
    }
    if (budget_.max_visited_bytes != 0 &&
        visited_bytes_() > budget_.max_visited_bytes) {
      return decide(StopReason::MemCap);
    }
    return StopReason::Complete;
  }

  /// The sticky decision (Complete while the run is still within budget).
  [[nodiscard]] StopReason reason() const noexcept {
    return reason_.load(std::memory_order_relaxed);
  }

 private:
  StopReason decide(StopReason reason) noexcept {
    StopReason expected = StopReason::Complete;
    // First decision wins; on a lost race return the winner so every worker
    // reports the same reason.
    if (reason_.compare_exchange_strong(expected, reason,
                                        std::memory_order_relaxed)) {
      return reason;
    }
    return expected;
  }

  Budget budget_;
  const CancelToken* cancel_;
  FaultPlan fault_;
  std::function<std::uint64_t()> visited_bytes_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> claimed_{0};
  std::atomic<StopReason> reason_{StopReason::Complete};
  /// Set once a probe sees the deadline within kDeadlineUrgentWindowMs;
  /// from then on every claim probes the clock.
  std::atomic<bool> urgent_{false};
};

}  // namespace rc11::engine
