// rc11lib/parser/parser.hpp
//
// A text front end for the programming language of Section 3.1, so that
// litmus tests and client-library programs can be written as plain files
// instead of builder code.  The concrete syntax mirrors the paper's
// notation:
//
//   // declarations (client is the default component)
//   var d = 0;
//   var library glb = 0;
//   lock library l;
//   stack library s;
//
//   thread producer {
//     d := 5;              // relaxed write
//     s.pushR(1);          // releasing push
//   }
//
//   thread consumer {
//     reg r1;              // local register (initial value 0)
//     reg r2 = 7;          // ... or with an initial value
//     reg library tmp;     // implementation-internal register (invisible
//                          // to refinement's client projection)
//     do { r1 <-A s.pop(); } until (r1 == 1);
//     r2 <- d;             // relaxed read
//   }
//
// Statements:
//   x := e;        x :=R e;          relaxed / releasing write
//   r <- x;        r <-A x;          relaxed / acquiring read
//   r := e;                          local assignment (r a register)
//   r <- CAS(x, e1, e2);             compare-and-swap (RA)
//   r <- FAI(x);                     fetch-and-increment (RA)
//   l.acquire();   r <- l.acquire(); abstract lock methods
//   l.release();
//   s.push(e);     s.pushR(e);       abstract stack methods
//   r <- s.pop();  r <-A s.pop();
//   if (b) { ... } [else { ... }]
//   while (b) { ... }
//   do { ... } until (b);
//
// Expressions range over registers and literals with the usual C operator
// precedence plus the paper's even(e) predicate.  Register names must be
// unique across the whole program so results can be queried by name.

// An optional `outline { ... }` block after the threads attaches a proof
// outline (Section 5.2) to the program, checkable with og::check_outline or
// the rc11-verify tool:
//
//   outline {
//     invariant !(pc(writer) in {1, 2, 3} && pc(reader) in {1, 2, 3});
//     at reader 1: held(reader, l) && definite(reader, d1, 5);
//     post reader: r1 == 0 || r1 == 5;
//   }
//
// Assertion atoms: true, false, possible(T, x, v), definite(T, x, v),
// cond(T, x, u, y, v), covered(x, v), hidden(x, v), held(T, l),
// canpop(s, v), popempty(s), pc(T) == n, pc(T) in {..}, done(T), and
// register comparisons r == n / r != n / r in {..}.  Connectives:
// ! && || ==> with the usual precedence.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "og/proof_outline.hpp"
#include "lang/system.hpp"

namespace rc11::parser {

/// The result of parsing: the system plus name lookup tables.
struct ParsedProgram {
  lang::System sys;
  std::unordered_map<std::string, lang::LocId> locations;
  std::unordered_map<std::string, lang::Reg> registers;  ///< globally unique
  std::vector<std::string> thread_names;                 ///< in thread order
  /// The program's outline block, if it has one.
  std::optional<og::ProofOutline> outline;

  [[nodiscard]] lang::LocId loc(std::string_view name) const;
  [[nodiscard]] lang::Reg reg(std::string_view name) const;
};

/// Parses a program text.  Throws support::Error with a line:column position
/// on syntax or semantic errors (unknown names, duplicate declarations,
/// kind mismatches such as pushing to a lock).
[[nodiscard]] ParsedProgram parse_program(std::string_view source);

/// Reads and parses a file.
[[nodiscard]] ParsedProgram parse_file(const std::string& path);

/// Parses a standalone assertion expression (the outline-block grammar)
/// against an already-parsed program's name tables, e.g. for ad-hoc
/// invariants supplied on a command line.  Thread, location and register
/// names resolve exactly as they would inside the program's own
/// `outline { ... }` block.  Throws support::Error on syntax errors,
/// unknown names, or trailing input.
[[nodiscard]] assertions::Assertion parse_assertion(const ParsedProgram& program,
                                                    std::string_view source);

}  // namespace rc11::parser
