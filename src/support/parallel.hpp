// rc11lib/support/parallel.hpp
//
// Small parallel-execution helpers shared by the explorer, the proof-outline
// checker and the refinement graph builder.  The convention across the
// library is `num_threads == 1` for the exact sequential algorithms (the
// default everywhere; required for BFS shortest-trace guarantees and trace
// arenas), `0` for "use all hardware threads", and `N > 1` for an explicit
// worker count.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace rc11::support {

/// Resolves a user-facing thread-count option: 0 means hardware concurrency
/// (at least 1), anything else is taken literally.
[[nodiscard]] inline unsigned resolve_num_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Runs `body(i)` for every i in [0, n), splitting the index space over
/// `num_threads` workers via an atomic cursor (chunked to amortise the
/// fetch_add).  Falls back to a plain loop when one worker resolves.
/// `body` must be safe to call concurrently for distinct indices.
inline void parallel_for(std::size_t n, unsigned num_threads,
                         const std::function<void(std::size_t)>& body) {
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(resolve_num_threads(num_threads), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Chunk so each fetch_add claims a contiguous run of indices.
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8U));
  std::atomic<std::size_t> cursor{0};
  const auto run = [&] {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(run);
  run();
  for (auto& t : pool) t.join();
}

}  // namespace rc11::support
