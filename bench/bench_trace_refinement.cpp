// Experiment D5-7: contextual refinement via the trace-inclusion game of
// Definitions 5-7, as an independent oracle alongside the Def. 8 simulation.
// Paper shape: C[AO] ⊑ C[CO] for the correct implementations; violations for
// the broken ones.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "refinement/refinement.hpp"

namespace {

using namespace rc11;

template <typename MakeLock>
void run_inclusion(benchmark::State& state, MakeLock make_lock) {
  refinement::TraceInclusionResult result;
  for (auto _ : state) {
    locks::AbstractLock abs;
    const auto abs_sys = locks::instantiate(locks::fig7_client(), abs);
    auto lock = make_lock();
    const auto conc_sys = locks::instantiate(locks::fig7_client(), *lock);
    result = refinement::check_trace_inclusion(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["product_nodes"] = static_cast<double>(result.product_nodes);
  state.counters["holds"] = result.holds ? 1 : 0;
}

void BM_TraceInclusion_SeqLock(benchmark::State& state) {
  run_inclusion(state, [] { return std::make_unique<locks::SeqLock>(); });
}
BENCHMARK(BM_TraceInclusion_SeqLock);

void BM_TraceInclusion_TicketLock(benchmark::State& state) {
  run_inclusion(state, [] { return std::make_unique<locks::TicketLock>(); });
}
BENCHMARK(BM_TraceInclusion_TicketLock);

void BM_TraceInclusion_BrokenSeqLock(benchmark::State& state) {
  run_inclusion(state,
                [] { return std::make_unique<locks::SeqLock>(false); });
}
BENCHMARK(BM_TraceInclusion_BrokenSeqLock);

}  // namespace

int main(int argc, char** argv) {
  {
    rc11::locks::AbstractLock abs;
    const auto abs_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), abs);
    const auto check = [&](rc11::locks::LockObject& lock, const char* exp,
                           bool expect_holds) {
      const auto conc_sys =
          rc11::locks::instantiate(rc11::locks::fig7_client(), lock);
      const auto r = rc11::refinement::check_trace_inclusion(abs_sys, conc_sys);
      rc11::bench::verdict(exp, r.holds == expect_holds,
                           std::string(expect_holds
                                           ? "trace inclusion holds ("
                                           : "trace inclusion refuted (") +
                               std::to_string(r.product_nodes) +
                               " product nodes)");
    };
    rc11::locks::SeqLock seq;
    check(seq, "D5-7/seqlock", true);
    rc11::locks::TicketLock ticket;
    check(ticket, "D5-7/ticketlock", true);
    rc11::locks::SeqLock broken{false};
    check(broken, "D5-7/broken-seqlock", false);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
