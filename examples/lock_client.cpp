// lock_client — the paper's Section 5.3 case study (Figure 7 and Lemma 4):
// two threads exchange data under an *abstract* lock object, and the proof
// outline establishes mutual exclusion plus write visibility.  Also checks
// the six Hoare rules of Lemma 3 that the outline's reasoning rests on.

#include <iostream>

#include "explore/explorer.hpp"
#include "og/catalog.hpp"
#include "og/lemma3.hpp"

int main() {
  using namespace rc11;

  auto ex = og::make_fig7();
  std::cout << "Figure 7 program:\n" << ex.sys.disassemble() << "\n";

  // Every reachable behaviour: thread 2 reads (0,0) if it acquired first
  // (rl = 1) and (5,5) if second (rl = 3) — never a mix.
  const auto run = explore::explore(ex.sys);
  const auto outcomes =
      explore::final_register_values(ex.sys, run, {ex.rl, ex.r1, ex.r2});
  std::cout << "Final (rl, r1, r2) outcomes over " << run.stats.states
            << " states:\n";
  for (const auto& o : outcomes) {
    std::cout << "  rl = " << o[0] << ": r1 = " << o[1] << ", r2 = " << o[2]
              << "\n";
  }

  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto check = og::check_outline(ex.sys, ex.outline, opts);
  std::cout << "\nFig. 7 proof outline (incl. invariant Inv and interference "
               "freedom): "
            << (check.valid ? "VALID" : "INVALID") << " ("
            << check.obligations_checked << " obligations over "
            << check.stats.states << " states)\n";

  std::cout << "\nLemma 3 rules over a lock-client harness:\n";
  bool all_rules = true;
  for (const auto& rule : og::check_lemma3_rules()) {
    std::cout << "  (" << rule.rule << ") " << rule.description << " : "
              << (rule.valid ? "holds" : "FAILS") << " (" << rule.instances
              << " instances)\n";
    all_rules = all_rules && rule.valid && rule.instances > 0;
  }
  return (check.valid && all_rules) ? 0 : 1;
}
