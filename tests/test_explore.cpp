// Tests for the explicit-state explorer and the litmus suite: every litmus
// test's reachable outcome set must equal its allowed set exactly (both the
// presence of weak behaviours and the absence of forbidden ones), and the
// explorer's bookkeeping (dedup, truncation, violations, traces) must hold.

#include <gtest/gtest.h>

#include <sstream>

#include "explore/dot.hpp"
#include "explore/explorer.hpp"
#include "refinement/refinement.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;
using explore::ExploreOptions;
using explore::explore;
using lang::c;
using lang::Config;
using lang::System;
using lang::Value;

std::string outcomes_to_string(const std::vector<std::vector<Value>>& v) {
  std::ostringstream os;
  for (const auto& tuple : v) {
    os << "(";
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      os << (i ? "," : "") << tuple[i];
    }
    os << ") ";
  }
  return os.str();
}

// --- litmus suite (parameterised) -------------------------------------------

class LitmusSuite : public ::testing::TestWithParam<int> {};

TEST_P(LitmusSuite, OutcomeSetMatchesRC11Exactly) {
  auto tests = litmus::all_tests();
  auto& t = tests.at(static_cast<std::size_t>(GetParam()));
  const auto result = explore(t.sys);
  ASSERT_FALSE(result.truncated);
  const auto outcomes =
      explore::final_register_values(t.sys, result, t.observed);
  EXPECT_EQ(outcomes, t.allowed)
      << t.name << ": got " << outcomes_to_string(outcomes) << " expected "
      << outcomes_to_string(t.allowed);
}

INSTANTIATE_TEST_SUITE_P(AllTests, LitmusSuite,
                         ::testing::Range(0, 12),
                         [](const ::testing::TestParamInfo<int>& info) {
                           auto tests = litmus::all_tests();
                           std::string name =
                               tests.at(static_cast<std::size_t>(info.param)).name;
                           for (auto& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(LitmusRegistry, CountMatchesParameterisation) {
  EXPECT_EQ(litmus::all_tests().size(), 12u);
}

// --- explorer bookkeeping ---------------------------------------------------

TEST(Explorer, SingleThreadProgramHasLinearStateSpace) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1));
  t0.store(x, c(2));
  const auto result = explore(sys);
  EXPECT_EQ(result.stats.states, 3u);
  EXPECT_EQ(result.stats.finals, 1u);
  EXPECT_EQ(result.stats.blocked, 0u);
  EXPECT_TRUE(result.ok());
}

TEST(Explorer, DeduplicatesConfluentInterleavings) {
  // Two threads each doing one local assignment commute: the diamond must
  // be explored as 4 states, not 4 paths.
  System sys;
  auto t0 = sys.thread();
  auto a = t0.reg("a");
  t0.assign(a, c(1));
  auto t1 = sys.thread();
  auto b = t1.reg("b");
  t1.assign(b, c(1));
  const auto result = explore(sys);
  EXPECT_EQ(result.stats.states, 4u);
  EXPECT_EQ(result.stats.transitions, 4u);
  EXPECT_EQ(result.stats.finals, 1u);
}

TEST(Explorer, ReportsDeadlockAsBlocked) {
  System sys;
  auto l = sys.library_lock("l");
  auto t0 = sys.thread();
  t0.acquire(l);
  t0.acquire(l);  // self-deadlock
  const auto result = explore(sys);
  EXPECT_EQ(result.stats.blocked, 1u);
  EXPECT_EQ(result.stats.finals, 0u);
}

TEST(Explorer, TruncationIsReported) {
  System sys;
  auto x = sys.client_var("x", 0);
  for (int t = 0; t < 3; ++t) {
    auto tb = sys.thread();
    tb.store(x, c(t + 1));
    tb.store(x, c(t + 10));
  }
  ExploreOptions opts;
  opts.max_states = 5;
  const auto result = explore(sys, opts);
  EXPECT_TRUE(result.truncated);
  EXPECT_FALSE(result.ok());
}

TEST(Explorer, InvariantViolationCarriesTrace) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1), "x := 1");
  t0.store(x, c(2), "x := 2");
  ExploreOptions opts;
  opts.track_traces = true;
  const auto result = explore(
      sys, opts, [&](const System& s, const Config& cfg) -> std::optional<std::string> {
        (void)s;
        if (cfg.mem.op(cfg.mem.last_op(x)).value == 2) {
          return "x reached 2";
        }
        return std::nullopt;
      });
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].what, "x reached 2");
  ASSERT_EQ(result.violations[0].trace.size(), 3u);  // init, x:=1, x:=2
  EXPECT_NE(result.violations[0].trace[2].find("x := 2"), std::string::npos);
  EXPECT_FALSE(result.violations[0].state_dump.empty());
}

TEST(Explorer, InvariantCanCollectAllViolations) {
  System sys;
  auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1));
  auto t1 = sys.thread();
  t1.store(x, c(2));
  ExploreOptions opts;
  opts.stop_on_violation = false;
  const auto result = explore(
      sys, opts, [&](const System&, const Config& cfg) -> std::optional<std::string> {
        if (cfg.mem.mo(x).size() == 3) return "both writes placed";
        return std::nullopt;
      });
  // Two placement orders for the concurrent writes reach mo-size 3, and the
  // interleaving diamond gives several distinct full configurations.
  EXPECT_GE(result.violations.size(), 2u);
}

TEST(Explorer, OutcomeHelpersAgree) {
  auto t = litmus::mp_release_acquire();
  const auto result = explore(t.sys);
  EXPECT_TRUE(explore::outcome_reachable(t.sys, result, t.observed, {1, 5}));
  EXPECT_FALSE(explore::outcome_reachable(t.sys, result, t.observed, {1, 0}));
}

// --- ablation A1: no cross-component transfer ⇒ Fig. 2 breaks ---------------

TEST(AblationA1, SynchronisingStackStopsPassingMessages) {
  auto t = litmus::fig2_stack_mp_sync();
  rc11::memsem::SemanticsOptions opts;
  opts.cross_component_view_transfer = false;
  t.sys.set_options(opts);
  const auto result = explore(t.sys);
  // The forbidden stale outcome (r1 = 1, r2 = 0) becomes reachable.
  EXPECT_TRUE(explore::outcome_reachable(t.sys, result, t.observed, {1, 0}))
      << "without ctview transfer the library cannot publish client writes";
}

// --- ablation A2: no covered-set enforcement ⇒ CAS atomicity breaks ----------

TEST(AblationA2, CompetingCasBothSucceed) {
  auto t = litmus::cas_agreement();
  rc11::memsem::SemanticsOptions opts;
  opts.enforce_covered = false;
  t.sys.set_options(opts);
  const auto result = explore(t.sys);
  EXPECT_TRUE(explore::outcome_reachable(t.sys, result, t.observed, {1, 1}))
      << "without cvd both CASes can read the same write and succeed";
}

// --- ablation A3: raw timestamps inflate the state space --------------------

TEST(AblationA3, NonCanonicalTimestampsInflateStateCount) {
  // two_writers is the shape whose order-isomorphic states carry different
  // raw timestamps depending on which writer inserted first.
  auto canon = litmus::two_writers();
  const auto canon_result = explore(canon.sys);

  auto raw = litmus::two_writers();
  rc11::memsem::SemanticsOptions opts;
  opts.canonical_timestamps = false;
  raw.sys.set_options(opts);
  const auto raw_result = explore(raw.sys);

  EXPECT_GT(raw_result.stats.states, canon_result.stats.states)
      << "raw timestamps must strictly inflate the two-writer state space";
  // Outcomes are unaffected — canonicalisation is a pure quotient.
  EXPECT_EQ(explore::final_register_values(raw.sys, raw_result, raw.observed),
            raw.allowed);
}


// --- causality-chain tests (partial expectations) -----------------------------

class CausalitySuite : public ::testing::TestWithParam<int> {};

TEST_P(CausalitySuite, KeyOutcomesMatchRC11) {
  auto tests = litmus::all_causality_tests();
  auto& t = tests.at(static_cast<std::size_t>(GetParam()));
  const auto result = explore(t.sys);
  ASSERT_FALSE(result.truncated);
  for (const auto& outcome : t.must_allow) {
    EXPECT_TRUE(explore::outcome_reachable(t.sys, result, t.observed, outcome))
        << t.name << ": outcome " << outcomes_to_string({outcome})
        << "must be reachable";
  }
  for (const auto& outcome : t.must_forbid) {
    EXPECT_FALSE(explore::outcome_reachable(t.sys, result, t.observed, outcome))
        << t.name << ": outcome " << outcomes_to_string({outcome})
        << "must be forbidden";
  }
}

INSTANTIATE_TEST_SUITE_P(AllCausality, CausalitySuite, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           auto tests = litmus::all_causality_tests();
                           std::string name =
                               tests.at(static_cast<std::size_t>(info.param)).name;
                           for (auto& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });


// --- search strategy & DOT export --------------------------------------------

TEST(Explorer, BfsAndDfsVisitTheSameStates) {
  for (auto& t : litmus::all_tests()) {
    ExploreOptions dfs;
    dfs.strategy = explore::SearchStrategy::Dfs;
    ExploreOptions bfs;
    bfs.strategy = explore::SearchStrategy::Bfs;
    const auto rd = explore(t.sys, dfs);
    const auto rb = explore(t.sys, bfs);
    EXPECT_EQ(rd.stats.states, rb.stats.states) << t.name;
    EXPECT_EQ(rd.stats.transitions, rb.stats.transitions) << t.name;
    EXPECT_EQ(rd.stats.finals, rb.stats.finals) << t.name;
    EXPECT_EQ(explore::final_register_values(t.sys, rd, t.observed),
              explore::final_register_values(t.sys, rb, t.observed))
        << t.name;
  }
}

TEST(DotExport, ProducesWellFormedGraph) {
  auto t = litmus::mp_release_acquire();
  const auto graph =
      refinement::build_graph(t.sys, 100000, /*want_labels=*/true);
  const auto dot = explore::to_dot(t.sys, graph);
  EXPECT_NE(dot.find("digraph rc11 {"), std::string::npos);
  EXPECT_NE(dot.find("s0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("r1 <-A f"), std::string::npos) << "edge labels present";
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos) << "finals marked";
  // Every state appears as a node.
  for (std::uint32_t i = 0; i < graph.num_states(); ++i) {
    EXPECT_NE(dot.find("s" + std::to_string(i) + " ["), std::string::npos);
  }
}

TEST(DotExport, EscapesQuotes) {
  lang::System sys;
  const auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, lang::c(1), "say \"hi\"");
  const auto graph = refinement::build_graph(sys, 1000, true);
  const auto dot = explore::to_dot(sys, graph);
  EXPECT_EQ(dot.find("\"hi\""), std::string::npos)
      << "raw quotes must not appear unescaped";
}


TEST(Explorer, AbbaDeadlockDetected) {
  // The classic lock-ordering deadlock: t0 takes l1 then l2, t1 takes l2
  // then l1.  The explorer must report the stuck interleaving as blocked
  // while still finding the successful serialisations.
  System sys;
  const auto l1 = sys.library_lock("l1");
  const auto l2 = sys.library_lock("l2");
  auto t0 = sys.thread();
  t0.acquire(l1, std::nullopt, "t0: acquire l1");
  t0.acquire(l2, std::nullopt, "t0: acquire l2");
  t0.release(l2);
  t0.release(l1);
  auto t1 = sys.thread();
  t1.acquire(l2, std::nullopt, "t1: acquire l2");
  t1.acquire(l1, std::nullopt, "t1: acquire l1");
  t1.release(l1);
  t1.release(l2);
  const auto result = explore(sys);
  EXPECT_EQ(result.stats.blocked, 1u) << "exactly the ABBA state deadlocks";
  EXPECT_GT(result.stats.finals, 0u) << "serial executions still complete";
}

TEST(Explorer, ConsistentLockOrderHasNoDeadlock) {
  System sys;
  const auto l1 = sys.library_lock("l1");
  const auto l2 = sys.library_lock("l2");
  for (int t = 0; t < 2; ++t) {
    auto tb = sys.thread();
    tb.acquire(l1);
    tb.acquire(l2);
    tb.release(l2);
    tb.release(l1);
  }
  const auto result = explore(sys);
  EXPECT_EQ(result.stats.blocked, 0u);
  EXPECT_GT(result.stats.finals, 0u);
}


TEST(Reduction, LocalStepFusionPreservesOutcomes) {
  for (auto& t : litmus::all_tests()) {
    const auto full = explore(t.sys);
    ExploreOptions opts;
    opts.fuse_local_steps = true;
    const auto fused = explore(t.sys, opts);
    EXPECT_EQ(explore::final_register_values(t.sys, fused, t.observed),
              t.allowed)
        << t.name;
    EXPECT_LE(fused.stats.states, full.stats.states) << t.name;
    EXPECT_EQ(fused.stats.finals > 0, full.stats.finals > 0) << t.name;
  }
}

TEST(Reduction, FusionShrinksLoopHeavyStateSpaces) {
  // The seqlock client is full of Branch/Assign steps: fusion must prune a
  // meaningful fraction of intermediate interleavings.
  rc11::locks::SeqLock lock;
  const auto sys =
      rc11::locks::instantiate(rc11::locks::fig7_client(), lock);
  const auto full = explore(sys);
  ExploreOptions opts;
  opts.fuse_local_steps = true;
  const auto fused = explore(sys, opts);
  EXPECT_LT(fused.stats.states, full.stats.states);
  // Outcomes (via final configs) must agree.
  const auto x1 = explore::final_register_values(
      sys, full, {lang::Reg{1, 1}, lang::Reg{1, 2}});
  const auto x2 = explore::final_register_values(
      sys, fused, {lang::Reg{1, 1}, lang::Reg{1, 2}});
  EXPECT_EQ(x1, x2);
}

}  // namespace
