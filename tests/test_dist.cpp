// Supervised multi-process exploration (engine/supervise.hpp): verdicts,
// stats and outcome sets must be byte-identical for every worker count, a
// crashed/hung/corrupted worker must be recovered without changing any
// result, retry exhaustion must degrade to an honest partial report
// (StopReason::WorkerLost) instead of a wrong verdict or a hang, and the
// flag combinations the supervisor cannot honour must be rejected loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/budget.hpp"
#include "engine/checkpoint.hpp"
#include "explore/explorer.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "race/race.hpp"
#include "support/diagnostics.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using engine::StopReason;
using explore::ExploreOptions;

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

/// A temp-file path that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

/// Scoped environment override for the RC11_DIST_* tuning knobs.
struct EnvVar {
  std::string name;
  bool had;
  std::string old;
  EnvVar(const char* n, const char* v) : name(n) {
    const char* o = std::getenv(n);
    had = o != nullptr;
    if (had) old = o;
    ::setenv(n, v, 1);
  }
  ~EnvVar() {
    if (had) {
      ::setenv(name.c_str(), old.c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

std::vector<lang::Reg> all_regs(const lang::System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

/// The fields the --workers contract promises are byte-identical across
/// worker counts *and* across disturbed/undisturbed runs (DistTelemetry is
/// deliberately outside this set).
void expect_identical(const explore::ExploreResult& a,
                      const explore::ExploreResult& b, const lang::System& sys,
                      const std::string& what) {
  EXPECT_EQ(a.stats.states, b.stats.states) << what;
  EXPECT_EQ(a.stats.transitions, b.stats.transitions) << what;
  EXPECT_EQ(a.stats.finals, b.stats.finals) << what;
  EXPECT_EQ(a.stats.blocked, b.stats.blocked) << what;
  EXPECT_EQ(a.stats.peak_frontier, b.stats.peak_frontier) << what;
  EXPECT_EQ(a.stats.visited_bytes, b.stats.visited_bytes) << what;
  EXPECT_EQ(a.stats.por_reduced, b.stats.por_reduced) << what;
  EXPECT_EQ(a.stats.por_chained, b.stats.por_chained) << what;
  EXPECT_EQ(a.stats.rf_merges, b.stats.rf_merges) << what;
  EXPECT_EQ(a.stop, b.stop) << what;
  EXPECT_EQ(a.violations.size(), b.violations.size()) << what;
  const auto regs = all_regs(sys);
  EXPECT_EQ(explore::final_register_values(sys, a, regs),
            explore::final_register_values(sys, b, regs))
      << what;
}

// --- Flag-combination rejections ---------------------------------------------

TEST(Dist, RejectsUnsupportedCombinations) {
  const auto program = parser::parse_file(prog("sb.rc11"));

  ExploreOptions sym;
  sym.workers = 2;
  sym.symmetry = true;
  EXPECT_THROW((void)explore::explore(program.sys, sym), support::Error);

  ExploreOptions sample;
  sample.workers = 2;
  sample.mode = engine::Strategy::Sample;
  EXPECT_THROW((void)explore::explore(program.sys, sample), support::Error);

  ExploreOptions threads;
  threads.workers = 2;
  threads.num_threads = 4;
  EXPECT_THROW((void)explore::explore(program.sys, threads), support::Error);

  const engine::Checkpoint cp;
  ExploreOptions resume;
  resume.workers = 2;
  resume.resume = &cp;
  EXPECT_THROW((void)explore::explore(program.sys, resume), support::Error);

  race::RaceOptions ropts;
  ropts.workers = 2;
  ropts.symmetry = true;
  EXPECT_THROW((void)race::check(program.sys, ropts), support::Error);

  const auto outlined = parser::parse_file(prog("mp_verified.rc11"));
  ASSERT_TRUE(outlined.outline.has_value());
  og::OutlineCheckOptions oopts;
  oopts.workers = 2;
  oopts.num_threads = 3;
  EXPECT_THROW(
      (void)og::check_outline(outlined.sys, *outlined.outline, oopts),
      support::Error);
}

// --- Worker-count independence -----------------------------------------------

TEST(Dist, ResultsIdenticalAcrossWorkerCounts) {
  for (const char* name :
       {"sb.rc11", "ticket_lock.rc11", "mp_stack.rc11", "dcl_init.rc11",
        "disjoint_na.rc11", "mp_verified.rc11"}) {
    const auto program = parser::parse_file(prog(name));
    ExploreOptions opts;
    opts.workers = 1;
    const auto one = explore::explore(program.sys, opts);
    EXPECT_EQ(one.stop, StopReason::Complete) << name;
    for (const unsigned n : {2u, 4u}) {
      opts.workers = n;
      const auto many = explore::explore(program.sys, opts);
      expect_identical(one, many, program.sys,
                       std::string(name) + " workers=" + std::to_string(n));
      EXPECT_EQ(many.dist.worker_restarts, 0u) << name;
    }
  }
}

TEST(Dist, MatchesSequentialVerdicts) {
  // Against the in-process driver only the verdict-bearing fields are
  // comparable (peak_frontier is frontier-definition dependent and
  // visited_bytes sink-dependent).
  for (const char* name :
       {"sb.rc11", "ticket_lock.rc11", "mp_stack.rc11", "dcl_broken.rc11"}) {
    const auto program = parser::parse_file(prog(name));
    const auto seq = explore::explore(program.sys, ExploreOptions{});
    ExploreOptions opts;
    opts.workers = 3;
    const auto dist = explore::explore(program.sys, opts);
    EXPECT_EQ(seq.stats.states, dist.stats.states) << name;
    EXPECT_EQ(seq.stats.transitions, dist.stats.transitions) << name;
    EXPECT_EQ(seq.stats.finals, dist.stats.finals) << name;
    EXPECT_EQ(seq.stats.blocked, dist.stats.blocked) << name;
    EXPECT_EQ(seq.stop, dist.stop) << name;
    const auto regs = all_regs(program.sys);
    EXPECT_EQ(explore::final_register_values(program.sys, seq, regs),
              explore::final_register_values(program.sys, dist, regs))
        << name;
  }
}

// --- Fault-injected recovery -------------------------------------------------

TEST(Dist, CrashRecoveryAtEveryBatchPosition) {
  // batch=1 makes the dispatch index a precise state counter, so the fault
  // matrix can target the first, a middle and the last batch exactly.
  const EnvVar batch("RC11_DIST_BATCH", "1");
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));

  struct Combo {
    bool por;
    bool rf;
  };
  for (const Combo combo : {Combo{false, false}, Combo{true, false},
                            Combo{false, true}}) {
    ExploreOptions base;
    base.workers = 2;
    base.por = combo.por;
    base.rf_quotient = combo.rf;
    const auto undisturbed = explore::explore(program.sys, base);
    ASSERT_EQ(undisturbed.stop, StopReason::Complete);
    const std::uint64_t batches = undisturbed.stats.states;
    for (const std::uint64_t at : {std::uint64_t{1}, batches / 2, batches}) {
      if (at == 0) continue;
      ExploreOptions faulted = base;
      faulted.fault =
          engine::FaultPlan::parse("crash:" + std::to_string(at));
      const auto recovered = explore::explore(program.sys, faulted);
      expect_identical(undisturbed, recovered, program.sys,
                       "crash at batch " + std::to_string(at) + " por=" +
                           std::to_string(combo.por) + " rf=" +
                           std::to_string(combo.rf));
      EXPECT_GE(recovered.dist.worker_restarts, 1u);
      EXPECT_GE(recovered.dist.batches_retried, 1u);
      EXPECT_EQ(recovered.dist.states_orphaned, 0u);
    }
  }
}

TEST(Dist, HangRecovery) {
  const EnvVar hang("RC11_DIST_HANG_MS", "100");
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  const auto program = parser::parse_file(prog("dcl_init.rc11"));
  ExploreOptions base;
  base.workers = 2;
  const auto undisturbed = explore::explore(program.sys, base);
  ExploreOptions faulted = base;
  faulted.fault = engine::FaultPlan::parse("hang:1");
  const auto recovered = explore::explore(program.sys, faulted);
  expect_identical(undisturbed, recovered, program.sys, "hang:1");
  EXPECT_GE(recovered.dist.worker_restarts, 1u);
}

TEST(Dist, CorruptFrameQuarantine) {
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  ExploreOptions base;
  base.workers = 2;
  const auto undisturbed = explore::explore(program.sys, base);
  ExploreOptions faulted = base;
  faulted.fault = engine::FaultPlan::parse("corrupt:1");
  const auto recovered = explore::explore(program.sys, faulted);
  expect_identical(undisturbed, recovered, program.sys, "corrupt:1");
  EXPECT_GE(recovered.dist.frames_corrupt, 1u);
  EXPECT_GE(recovered.dist.worker_restarts, 1u);
}

TEST(Dist, MixedFaultsAcrossWorkers) {
  const EnvVar hang("RC11_DIST_HANG_MS", "100");
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  ExploreOptions base;
  base.workers = 3;
  const auto undisturbed = explore::explore(program.sys, base);
  ExploreOptions faulted = base;
  faulted.fault = engine::FaultPlan::parse("crash:1,hang:3,corrupt:5");
  const auto recovered = explore::explore(program.sys, faulted);
  expect_identical(undisturbed, recovered, program.sys, "mixed faults");
  EXPECT_GE(recovered.dist.worker_restarts, 2u);
}

// --- Graceful degradation ----------------------------------------------------

TEST(Dist, RetryExhaustionReportsWorkerLost) {
  const EnvVar retries("RC11_DIST_RETRIES", "1");
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  const auto full = explore::explore(program.sys, ExploreOptions{});

  ExploreOptions opts;
  opts.workers = 2;
  // Every dispatch crashes: the first batch burns its retry budget and the
  // run must degrade to an honest partial report, never a wrong verdict.
  opts.fault = engine::FaultPlan::parse("crash:1:1000000");
  const auto lost = explore::explore(program.sys, opts);
  EXPECT_EQ(lost.stop, StopReason::WorkerLost);
  EXPECT_TRUE(lost.truncated);
  EXPECT_GE(lost.dist.states_orphaned, 1u);
  EXPECT_LT(lost.stats.states, full.stats.states);
  EXPECT_TRUE(lost.violations.empty());
}

TEST(Dist, DeadlineHoldsWhileEveryWorkerIsWedged) {
  const EnvVar hang("RC11_DIST_HANG_MS", "600000");  // never declare a hang
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  ExploreOptions opts;
  opts.workers = 2;
  opts.deadline_ms = 200;
  opts.fault = engine::FaultPlan::parse("hang:1:1000000");
  const auto result = explore::explore(program.sys, opts);
  EXPECT_EQ(result.stop, StopReason::Deadline);
  EXPECT_TRUE(result.truncated);
}

// --- Checker integration -----------------------------------------------------

TEST(Dist, OutlineVerdictsSurviveCrashes) {
  const EnvVar batch("RC11_DIST_BATCH", "1");
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");

  const auto good = parser::parse_file(prog("mp_verified.rc11"));
  ASSERT_TRUE(good.outline.has_value());
  og::OutlineCheckOptions gopts;
  gopts.workers = 2;
  gopts.fault = engine::FaultPlan::parse("crash:2");
  const auto valid = og::check_outline(good.sys, *good.outline, gopts);
  EXPECT_TRUE(valid.valid);
  EXPECT_EQ(valid.stop, StopReason::Complete);
  EXPECT_GE(valid.dist.worker_restarts, 1u);

  const auto bad = parser::parse_file(prog("mp_broken_outline.rc11"));
  ASSERT_TRUE(bad.outline.has_value());
  og::OutlineCheckOptions bopts;
  bopts.stop_at_first_failure = false;
  const auto seq = og::check_outline(bad.sys, *bad.outline, bopts);
  bopts.workers = 3;
  bopts.fault = engine::FaultPlan::parse("crash:1");
  const auto dist = og::check_outline(bad.sys, *bad.outline, bopts);
  EXPECT_FALSE(dist.valid);
  EXPECT_EQ(seq.valid, dist.valid);
  EXPECT_EQ(seq.obligations_checked, dist.obligations_checked);
  std::vector<std::string> seq_obls, dist_obls;
  for (const auto& f : seq.failures) seq_obls.push_back(f.obligation);
  for (const auto& f : dist.failures) dist_obls.push_back(f.obligation);
  std::sort(seq_obls.begin(), seq_obls.end());
  std::sort(dist_obls.begin(), dist_obls.end());
  EXPECT_EQ(seq_obls, dist_obls);
}

TEST(Dist, RaceSetsSurviveFaults) {
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  for (const char* name :
       {"mp_na_racy.rc11", "flag_spin_racy.rc11", "disjoint_na.rc11"}) {
    const auto program = parser::parse_file(prog(name));
    const auto seq = race::check(program.sys, race::RaceOptions{});
    race::RaceOptions dopts;
    dopts.workers = 2;
    dopts.fault = engine::FaultPlan::parse("crash:1");
    const auto dist = race::check(program.sys, dopts);
    ASSERT_EQ(seq.races.size(), dist.races.size()) << name;
    for (std::size_t i = 0; i < seq.races.size(); ++i) {
      EXPECT_EQ(seq.races[i].what, dist.races[i].what) << name;
      EXPECT_EQ(seq.races[i].location, dist.races[i].location) << name;
    }
    EXPECT_EQ(seq.stop, dist.stop) << name;
    EXPECT_EQ(seq.stats.states, dist.stats.states) << name;
  }
}

TEST(Dist, RaceWitnessesFromRecoveredRunsReplay) {
  const EnvVar backoff("RC11_DIST_BACKOFF_MS", "1");
  const auto program = parser::parse_file(prog("mp_na_racy.rc11"));
  race::RaceOptions opts;
  opts.workers = 2;
  opts.track_traces = true;
  opts.fault = engine::FaultPlan::parse("crash:1");
  const auto result = race::check(program.sys, opts);
  ASSERT_TRUE(result.racy());
  // Race witnesses digest the race-instrumented encoding.
  lang::System traced = program.sys;
  auto sem = traced.options();
  sem.race_detection = true;
  traced.set_options(sem);
  std::size_t replayed = 0;
  for (const auto& r : result.races) {
    if (!r.witness) continue;
    const auto rep = witness::replay(traced, *r.witness);
    EXPECT_TRUE(rep.ok) << rep.error;
    ++replayed;
  }
  EXPECT_GE(replayed, 1u);
}

// --- Checkpoint compatibility ------------------------------------------------

TEST(Dist, TruncatedSupervisedRunCheckpointsForSequentialResume) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  const auto full = explore::explore(program.sys, ExploreOptions{});
  const auto regs = all_regs(program.sys);

  TempFile ckpt("dist_resume.ckpt");
  ExploreOptions opts;
  opts.workers = 2;
  opts.max_states = 10;
  opts.checkpoint_path = ckpt.path;
  const auto partial = explore::explore(program.sys, opts);
  EXPECT_EQ(partial.stop, StopReason::StateCap);

  const auto cp = engine::load_checkpoint(ckpt.path);
  ExploreOptions resumed;
  resumed.resume = &cp;
  const auto rest = explore::explore(program.sys, resumed);
  EXPECT_EQ(rest.stop, StopReason::Complete);
  EXPECT_EQ(explore::final_register_values(program.sys, rest, regs),
            explore::final_register_values(program.sys, full, regs));
}

}  // namespace
