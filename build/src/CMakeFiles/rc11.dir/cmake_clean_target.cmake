file(REMOVE_RECURSE
  "librc11.a"
)
