// peterson — a case study the framework decides mechanically: Peterson's
// and Dekker's mutual-exclusion algorithms are *correct under sequential
// consistency but broken under RC11 release/acquire*.  The store-buffering
// shape between "flag[me] := 1" and "read flag[other]" needs SC fences,
// which the RAR fragment deliberately lacks; both threads can enter the
// critical section and an increment gets lost.
//
// The constructive counterpart: the same increment protected by a verified
// lock implementation stays exact under RC11 RAR — which is exactly why
// clients should rely on verified lock libraries instead of ad-hoc flag
// protocols.

#include <iostream>

#include "explore/explorer.hpp"
#include "litmus/case_studies.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

int main() {
  using namespace rc11;

  bool ok = true;
  for (const auto& study :
       {litmus::peterson_counter(), litmus::dekker_counter()}) {
    const bool broken_rc11 = litmus::increment_lost(study, {});
    memsem::SemanticsOptions sc;
    sc.model = memsem::MemoryModel::SC;
    const bool broken_sc = litmus::increment_lost(study, sc);
    std::cout << study.name << " guarding x++ (two threads):\n"
              << "  under RC11 RAR: increment lost in some run? "
              << (broken_rc11 ? "YES — mutual exclusion fails" : "no") << "\n"
              << "  under SC:       increment lost in some run? "
              << (broken_sc ? "YES (bug!)" : "no — correct SC algorithm")
              << "\n\n";
    ok = ok && broken_rc11 && !broken_sc;
  }

  locks::SeqLock lock;
  locks::ClientArtifacts art;
  const auto sys =
      locks::instantiate(locks::counter_client(2, 1, &art), lock);
  const auto result = explore::explore(sys);
  bool lock_lost = false;
  for (const auto& cfg : result.final_configs) {
    const auto x = sys.locations().find("x");
    if (cfg.mem.op(cfg.mem.last_op(x)).value != 2) lock_lost = true;
  }
  std::cout << "Same increment under the verified sequence lock (RC11 RAR): "
            << (lock_lost ? "increment lost (bug!)" : "always x = 2") << "\n";

  return (ok && !lock_lost) ? 0 : 1;
}
