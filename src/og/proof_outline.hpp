// rc11lib/og/proof_outline.hpp
//
// Owicki-Gries proof outlines and their checking (Sections 5.2-5.3).
//
// A proof outline annotates every program point of every thread (plus the
// terminal point) with an assertion, optionally together with a global
// invariant.  The paper establishes outline validity deductively (local
// correctness + interference freedom, mechanised in Isabelle/HOL); per the
// substitution documented in DESIGN.md we *check* the same obligations over
// the reachable state space of the finite instantiation:
//
//   * validity: the initial configuration satisfies all initial annotations,
//     and every reachable configuration satisfies the global invariant and,
//     for every thread, the annotation at that thread's current pc;
//   * interference freedom (the classic Owicki-Gries side condition
//     {A ∧ pre(S)} S {A}, restricted to reachable states): for every
//     reachable configuration, every annotation A of thread t that holds
//     there must still hold after any enabled step of any other thread.
//
// Validity of the conjunction-at-current-pc is what Lemma 4 / Fig. 7 assert;
// the interference check is strictly stronger (it also tests annotations at
// non-current program points) and corresponds to the actual OG obligations.
//
// The module also provides a Hoare-triple checker for single statements,
// used to reproduce the per-rule properties of Lemma 3.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "assertions/assertions.hpp"
#include "explore/explorer.hpp"

namespace rc11::og {

using assertions::Assertion;
using lang::Config;
using lang::Instr;
using lang::System;
using lang::ThreadId;

/// A proof outline: annotations[t][pc] for pc in [0, code-size], where index
/// code-size is the thread's postcondition.  Missing entries default to true.
class ProofOutline {
 public:
  explicit ProofOutline(const System& sys);

  /// Sets the assertion at one program point (fails on out-of-range pc).
  void annotate(ThreadId t, std::uint32_t pc, Assertion a);

  /// Sets the thread's postcondition (annotation at its terminal pc).
  void postcondition(ThreadId t, Assertion a);

  /// Sets the global invariant (Inv of Section 5.3), checked at every state.
  void invariant(Assertion a) { invariant_ = std::move(a); }

  [[nodiscard]] const Assertion& at(ThreadId t, std::uint32_t pc) const;
  [[nodiscard]] const Assertion& global_invariant() const { return invariant_; }
  [[nodiscard]] std::uint32_t terminal_pc(ThreadId t) const;

 private:
  std::vector<std::vector<Assertion>> annotations_;
  Assertion invariant_;
};

/// One failed proof obligation.
struct ObligationFailure {
  std::string obligation;  ///< which check failed, human-readable
  std::string state_dump;
  std::vector<std::string> trace;  ///< when trace tracking is enabled
  /// Structured, replayable counterexample (present iff track_traces):
  /// serialise with witness::to_json, validate with witness::replay.
  std::optional<witness::Witness> witness;
};

struct OutlineCheckResult {
  bool valid = true;
  std::vector<ObligationFailure> failures;
  explore::ExploreStats stats;  ///< size of the examined state space
  std::uint64_t obligations_checked = 0;
  /// Why the enumeration ended; anything but Complete means only part of
  /// the state space was checked and `valid` is not a proof (a
  /// stop_at_first_failure stop is Complete — the verdict is definite).
  engine::StopReason stop = engine::StopReason::Complete;
  /// Robustness counters of a supervised (--workers) run; all zero
  /// otherwise.  Kept out of `stats` so recovered runs stay byte-identical
  /// to undisturbed ones in verdict-bearing output.
  engine::DistTelemetry dist;
  [[nodiscard]] bool truncated() const {
    return stop != engine::StopReason::Complete;
  }
};

struct OutlineCheckOptions {
  std::uint64_t max_states = 1'000'000;
  bool check_interference = true;  ///< also run the pairwise OG side condition
  bool stop_at_first_failure = true;
  bool track_traces = false;
  /// Worker threads enumerating the reachable state space (same convention
  /// as explore::ExploreOptions::num_threads).  The default stays 1: outline
  /// checking is the substitution for the paper's Owicki–Gries proofs, and
  /// the sequential DFS gives reproducible failure order.  With N > 1
  /// validity/interference obligations are evaluated in parallel over the
  /// same state set — the verdict and the *set* of failed obligations are
  /// identical, but failures arrive unordered and the specific trace/witness
  /// attached to each may differ run to run (every recorded trace is still a
  /// real execution and replays — see witness::replay).
  unsigned num_threads = 1;
  /// Ample-set POR in the shared driver (see explore::ExploreOptions::por).
  /// Annotations and interference obligations are evaluated on the reduced
  /// state set: failures found are real, and failures at final/blocked
  /// states (postconditions, deadlocks) are never missed, but an obligation
  /// violated only at a pruned intermediate interleaving may be — POR trades
  /// the full quantification of the Owicki–Gries side conditions for
  /// outcome-level soundness.  The RC11_POR_CROSSCHECK suite checks exact
  /// verdict agreement on the outline corpus.  Default off.
  bool por = false;
  /// Thread-symmetry reduction (see explore::ExploreOptions::symmetry).
  /// Exactness is preserved: obligations are evaluated at every orbit member
  /// of each visited representative, with the member's enabled steps
  /// obtained by permuting the representative's (the group action commutes
  /// with the successor relation), so the verdict, the set of failed
  /// obligations and obligations_checked equal an unreduced run's.  Failure
  /// traces lead to the representative; a failure at a permuted member is
  /// flagged in its trace.  Sound no-op without interchangeable threads;
  /// rejected under Strategy::Sample.  Default off.
  bool symmetry = false;
  /// Execution-graph quotient (see explore::ExploreOptions::rf_quotient).
  /// check_outline pins the view footprint of every annotation and of the
  /// global invariant into the quotient key, which makes every obligation a
  /// function of the key — the verdict, the set of failed obligations and
  /// obligations-per-class equal an unreduced run's per merged class (the
  /// total obligations_checked count shrinks with the visited set).
  /// Rejected loudly when any annotation has an unknown footprint
  /// (assertions::pred), with --symmetry (v1), under Strategy::Sample and
  /// under the SC model.  Default off.
  bool rf_quotient = false;
  /// Coverage mode (engine/sample.hpp).  Under Strategy::Sample the
  /// obligations are evaluated on the states `sample.episodes` seeded random
  /// schedules cross: failures found are real, but `valid` is never a proof
  /// — the result stops with StopReason::EpisodeCap, so truncated() holds
  /// and callers already treat the verdict as a lower bound.
  /// checkpoint_path/resume are rejected loudly under sampling.
  engine::Strategy mode = engine::Strategy::Exhaustive;
  /// Tuning for mode == Strategy::Sample; ignored otherwise.
  engine::SampleOptions sample;
  /// Resource governance and resumability — same semantics as the matching
  /// explore::ExploreOptions fields.
  std::uint64_t max_visited_bytes = 0;  ///< bytes; 0 = unlimited
  std::uint64_t deadline_ms = 0;        ///< wall clock; 0 = none
  const engine::CancelToken* cancel = nullptr;
  engine::FaultPlan fault;
  const engine::Checkpoint* resume = nullptr;
  /// Written when the run stops early; implies trace recording.
  std::string checkpoint_path;
  /// Supervised multi-process checking (engine/supervise.hpp; same contract
  /// as explore::ExploreOptions::workers): 0 stays in-process.  Rejected
  /// with symmetry, Strategy::Sample, num_threads > 1 and resume.
  unsigned workers = 0;
};

/// Checks outline validity (and, optionally, interference freedom) over the
/// reachable state space.
[[nodiscard]] OutlineCheckResult check_outline(const System& sys,
                                               const ProofOutline& outline,
                                               OutlineCheckOptions options = {});

// --- Hoare triples for single statements (Lemma 3) ---------------------------

/// Selects the statements a triple is about, e.g. "any lock-acquire by
/// thread t on location l".
using StatementFilter = std::function<bool(ThreadId t, const Instr&)>;

/// Postcondition over (configuration before, configuration after) — binding
/// the paper's version variable v is done by inspecting `after` (e.g. the
/// version of the operation the statement created).
using TriplePost =
    std::function<bool(const System&, const Config& before, const Config& after)>;

struct TripleCheckResult {
  bool valid = true;
  std::uint64_t instances_checked = 0;  ///< (state, step) pairs examined
  std::vector<ObligationFailure> failures;
};

/// Checks {pre} S {post} for every reachable configuration of `sys` where
/// `pre` holds and an enabled step matches `filter`: every such step must
/// lead to a configuration satisfying `post`.  Vacuously valid (but reported
/// via instances_checked == 0) if no instance arises — callers should assert
/// on instances_checked to guard against vacuity.
[[nodiscard]] TripleCheckResult check_triple(const System& sys,
                                             const Assertion& pre,
                                             const StatementFilter& filter,
                                             const TriplePost& post,
                                             std::uint64_t max_states = 1'000'000);

}  // namespace rc11::og
