file(REMOVE_RECURSE
  "CMakeFiles/rc11-run.dir/rc11_run.cpp.o"
  "CMakeFiles/rc11-run.dir/rc11_run.cpp.o.d"
  "rc11-run"
  "rc11-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc11-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
