// refinement_check — the paper's Section 6: contextual refinement between
// the abstract lock specification and its implementations.
//
// Checks Proposition 9 (sequence lock), Proposition 10 (ticket lock), the
// extra CAS spinlock (paper question 3: one specification, many
// implementations), and shows that a subtly broken seqlock — its release
// write relaxed instead of releasing — is rejected by both the forward-
// simulation game (Def. 8) and the trace-inclusion game (Defs. 5-7).

#include <iostream>
#include <memory>

#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "refinement/refinement.hpp"

namespace {

int check(const char* what, rc11::locks::LockObject& impl, bool expect) {
  using namespace rc11;
  locks::AbstractLock abs;
  const auto abs_sys = locks::instantiate(locks::fig7_client(), abs);
  const auto conc_sys = locks::instantiate(locks::fig7_client(), impl);

  const auto sim = refinement::check_forward_simulation(abs_sys, conc_sys);
  const auto tr = refinement::check_trace_inclusion(abs_sys, conc_sys);

  std::cout << what << ":\n"
            << "  forward simulation (Def. 8):  "
            << (sim.holds ? "holds" : "fails") << "  [abs "
            << sim.abstract_states << " states, conc " << sim.concrete_states
            << " states, " << sim.surviving_pairs << "/" << sim.candidate_pairs
            << " pairs survive]\n"
            << "  trace inclusion  (Defs. 5-7): "
            << (tr.holds ? "holds" : "fails") << "  [" << tr.product_nodes
            << " product nodes]\n";
  if (!sim.holds) {
    std::cout << "  diagnosis: " << sim.diagnosis << "\n";
    if (!sim.counterexample.empty()) {
      std::cout << "  counterexample run:\n";
      for (const auto& step : sim.counterexample) {
        std::cout << "    " << step << "\n";
      }
    }
  }
  std::cout << "\n";
  return (sim.holds == expect && tr.holds == expect) ? 0 : 1;
}

}  // namespace

int main() {
  using namespace rc11::locks;
  int failures = 0;

  SeqLock seq;
  failures += check("Proposition 9 — sequence lock", seq, true);

  TicketLock ticket;
  failures += check("Proposition 10 — ticket lock", ticket, true);

  CasSpinLock spin;
  failures += check("Extra — CAS spinlock (same specification)", spin, true);

  SeqLock broken{/*releasing_release=*/false};
  failures += check("Negative — seqlock with relaxed release", broken, false);

  std::cout << (failures == 0 ? "All refinement verdicts as the paper predicts."
                              : "MISMATCH with the paper's predictions!")
            << "\n";
  return failures;
}
