// End-to-end tests of the command-line tools (rc11-run, rc11-refine) against
// the sample programs in tools/programs/, driven through std::system.  Paths
// are injected by CMake compile definitions.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string bin(const std::string& name) {
  return std::string(RC11_BIN_DIR) + "/tools/" + name;
}

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

int run(const std::string& cmd, std::string* output = nullptr) {
  const std::string redirected = cmd + " > /tmp/rc11_cli_test.out 2>&1";
  const int status = std::system(redirected.c_str());
  if (output != nullptr) {
    std::ifstream in{"/tmp/rc11_cli_test.out"};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *output = buffer.str();
  }
  return WEXITSTATUS(status);
}

TEST(Cli, RunExploresSampleProgram) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " " + prog("mp_stack.rc11"), &out), 0);
  EXPECT_NE(out.find("states:"), std::string::npos);
  EXPECT_NE(out.find("r1=1, r2=5"), std::string::npos)
      << "publication outcome expected:\n" << out;
}

TEST(Cli, RunAblationChangesOutcomes) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " --no-ctview " + prog("mp_stack.rc11"), &out),
            0);
  EXPECT_NE(out.find("r1=1, r2=0"), std::string::npos)
      << "A1 ablation must expose the stale read:\n" << out;
}

TEST(Cli, RunRejectsBadUsage) {
  EXPECT_EQ(run(bin("rc11-run") + " --bogus-flag whatever"), 1);
  EXPECT_EQ(run(bin("rc11-run") + " /nonexistent/file.rc11"), 1);
}

TEST(Cli, RunWritesDotFile) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " --dot /tmp/rc11_cli_graph.dot " +
                    prog("sb.rc11"),
                &out),
            0);
  std::ifstream dot{"/tmp/rc11_cli_graph.dot"};
  std::ostringstream buffer;
  buffer << dot.rdbuf();
  EXPECT_NE(buffer.str().find("digraph"), std::string::npos);
}

TEST(Cli, RefineAcceptsSeqlockPair) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-refine") + " " + prog("lock_client_abstract.rc11") +
                    " " + prog("lock_client_seqlock.rc11"),
                &out),
            0);
  EXPECT_NE(out.find("REFINES"), std::string::npos);
}

TEST(Cli, RefineRejectsBrokenPair) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-refine") + " " + prog("lock_client_abstract.rc11") +
                    " " + prog("lock_client_broken.rc11"),
                &out),
            2);
  EXPECT_NE(out.find("DOES NOT REFINE"), std::string::npos);
}

TEST(Cli, TicketLockSampleSerialises) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-run") + " " + prog("ticket_lock.rc11"), &out), 0);
  EXPECT_NE(out.find("finals:      2"), std::string::npos)
      << "two serialisation orders expected:\n" << out;
}


TEST(Cli, VerifyAcceptsFig3Outline) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-verify") + " " + prog("mp_verified.rc11"), &out), 0);
  EXPECT_NE(out.find("outline VALID"), std::string::npos) << out;
}

TEST(Cli, VerifyRejectsBrokenOutline) {
  std::string out;
  EXPECT_EQ(run(bin("rc11-verify") + " " + prog("mp_broken_outline.rc11"), &out),
            2);
  EXPECT_NE(out.find("outline INVALID"), std::string::npos) << out;
}

TEST(Cli, VerifyNeedsAnOutline) {
  EXPECT_EQ(run(bin("rc11-verify") + " " + prog("sb.rc11")), 1);
}

}  // namespace
