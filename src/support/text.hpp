// rc11lib/support/text.hpp
//
// Small text-escaping helpers shared by the diagnostic emitters (Graphviz
// DOT export and the witness renderers).  Kept in support so the witness
// subsystem and explore/dot.cpp share one robust implementation instead of
// drifting copies.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rc11::support {

/// Escapes a string for use inside a double-quoted DOT label.  Handles the
/// DOT metacharacters (quote, backslash), turns newlines into the DOT "\n"
/// escape, and renders every other control byte and every non-ASCII byte as
/// a visible \xNN hex escape — step labels and state dumps are generated
/// text today, but a witness label round-tripped through JSON (or a future
/// user-written annotation) must never be able to break out of the label
/// quoting or emit bytes Graphviz rejects.
[[nodiscard]] inline std::string dot_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    const auto byte = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (ch == '\n') {
      out += "\\n";
    } else if (byte < 0x20 || byte >= 0x7F) {
      // Rendered literally (the backslash is escaped), e.g. tab -> \x09.
      out += "\\\\x";
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xF]);
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace rc11::support
