// Experiment F6: the abstract lock semantics (Figure 6) under load — state
// spaces of lock clients as a function of thread count and rounds, plus the
// mutual-exclusion and blocking properties the rules encode.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "objects/lock.hpp"

namespace {

using namespace rc11;

void BM_AbstractLockClient(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto rounds = static_cast<unsigned>(state.range(1));
  std::uint64_t states = 0;
  for (auto _ : state) {
    locks::AbstractLock lock;
    const auto sys = locks::instantiate(locks::mgc_client(threads, rounds), lock);
    const auto result = explore::explore(sys);
    states = result.stats.states;
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(std::to_string(threads) + " threads x " +
                 std::to_string(rounds) + " rounds");
}
BENCHMARK(BM_AbstractLockClient)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({4, 1});

void BM_AbstractLockOpsDirect(benchmark::State& state) {
  // Raw Fig. 6 rule application rate (no exploration).
  memsem::LocationTable locs;
  const auto l = locs.add_object("l", memsem::Component::Library,
                                 memsem::LocKind::Lock);
  for (auto _ : state) {
    state.PauseTiming();
    memsem::MemState m{locs, 2};
    state.ResumeTiming();
    for (int k = 0; k < 32; ++k) {
      objects::lock_acquire(m, static_cast<memsem::ThreadId>(k % 2), l);
      objects::lock_release(m, static_cast<memsem::ThreadId>(k % 2), l);
    }
    benchmark::DoNotOptimize(m.num_ops());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AbstractLockOpsDirect);

}  // namespace

int main(int argc, char** argv) {
  {
    // Mutual exclusion for every swept client size.
    bool all_ok = true;
    for (const auto [threads, rounds] :
         {std::pair{2u, 1u}, {2u, 2u}, {3u, 1u}}) {
      rc11::locks::AbstractLock lock;
      const auto sys = rc11::locks::instantiate(
          rc11::locks::mgc_client(threads, rounds), lock);
      const auto result = rc11::explore::explore(
          sys, {},
          [](const rc11::lang::System& s, const rc11::lang::Config& cfg)
              -> std::optional<std::string> {
            // Between acquire-flag and release: detect two holders via the
            // lock history instead of pcs — the last op is at most one
            // acquire, so mutex violations would show as an acquire on a
            // held lock, which Fig. 6 makes impossible by construction;
            // instead check no deadlock-free blocked states are final.
            (void)s;
            (void)cfg;
            return std::nullopt;
          });
      all_ok = all_ok && result.stats.blocked == 0 && !result.truncated;
    }
    rc11::bench::verdict("F6", all_ok,
                         "abstract-lock clients: no deadlocks, all runs "
                         "terminate with the lock free");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
