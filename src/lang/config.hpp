// rc11lib/lang/config.hpp
//
// Runtime configurations and the combined transition relation of Section 3.2:
// the program semantics of Fig. 4 (per-thread control and local state)
// constrained by the memory semantics of Fig. 5 (for plain accesses) and the
// abstract object semantics of Section 4 (for method calls).
//
// A configuration is the tuple (P, ρ, γ, β) of the paper: per-thread program
// counters into the compiled CFG, per-thread register files, and the combined
// weak-memory state.  `successors` enumerates every transition of every
// thread, including all memory nondeterminism (the choice of write a read
// reads from, the placement choice for a write, and both CAS outcomes), which
// is exactly the branching that the paper's ==> relation exhibits.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lang/system.hpp"
#include "memsem/state.hpp"

namespace rc11::lang {

/// A configuration (P, ρ, γ, β).
struct Config {
  std::vector<std::uint32_t> pc;          ///< per-thread program counter
  std::vector<std::vector<Value>> regs;   ///< per-thread register files (ρ)
  memsem::MemState mem;                   ///< combined γ and β

  [[nodiscard]] bool thread_done(const System& sys, ThreadId t) const {
    return pc[t] >= sys.code(t).size();
  }

  [[nodiscard]] bool all_done(const System& sys) const {
    for (ThreadId t = 0; t < sys.num_threads(); ++t) {
      if (!thread_done(sys, t)) return false;
    }
    return true;
  }

  /// Canonical encoding (pcs, registers, memory); two configurations are
  /// semantically identical iff their encodings are equal.
  [[nodiscard]] std::vector<std::uint64_t> encode() const;

  /// Appends the canonical encoding to `out` without allocating a fresh
  /// vector — the hot-path form (callers keep one scratch buffer and
  /// `clear()` it between states).  Matches MemState::encode's out-param
  /// convention; encode() above is a convenience wrapper.
  void encode_into(std::vector<std::uint64_t>& out) const;

  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::string to_string(const System& sys) const;
};

/// One enabled transition and its result.
struct Step {
  ThreadId thread = 0;
  std::string label;  ///< populated only when requested (diagnostics cost)
  Config after;
};

/// A reusable pool of successor Steps.  clear() resets the logical size but
/// keeps every Step object (and, transitively, the heap capacity of its
/// Config's pc/regs/ops/mo/tview vectors) alive, so refilling the buffer for
/// the next base state copy-assigns into existing storage instead of
/// allocating a fresh Config per transition.  Steps whose `after` the caller
/// moves out (genuinely new states entering the frontier) simply rebuild
/// their capacity on the next reuse.
class StepBuffer {
 public:
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::span<Step> steps() noexcept { return {steps_.data(), size_}; }
  [[nodiscard]] std::span<const Step> steps() const noexcept {
    return {steps_.data(), size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Next pooled Step slot with `after` set to a copy of `proto`.  Reused
  /// slots copy-assign into existing heap capacity; a growing buffer
  /// copy-constructs (Config has no default state — MemState needs the
  /// location table).  The label may hold stale contents from a previous
  /// state; successor generation overwrites it.
  Step& push(const Config& proto) {
    if (size_ == steps_.size()) {
      steps_.push_back(Step{0, {}, proto});
    } else {
      steps_[size_].after = proto;
    }
    return steps_[size_++];
  }

  /// Scratch for MemState observability queries during generation (so
  /// Obs(t, x) does not allocate per instruction).
  [[nodiscard]] std::vector<memsem::OpId>& obs_scratch() noexcept { return obs_; }

 private:
  std::vector<Step> steps_;
  std::vector<memsem::OpId> obs_;
  std::size_t size_ = 0;
};

/// The initial configuration Γ_Init (locations initialised, registers at
/// their declared initial values, all pcs at 0).
[[nodiscard]] Config initial_config(const System& sys);

/// All transitions enabled in `cfg`, across every thread.  `want_labels`
/// fills Step::label with a human-readable description (slower; meant for
/// counterexample reporting).
[[nodiscard]] std::vector<Step> successors(const System& sys, const Config& cfg,
                                           bool want_labels = false);

/// All transitions of a single thread (used by the Owicki-Gries interference
/// checker and the refinement game to attribute steps).
[[nodiscard]] std::vector<Step> thread_successors(const System& sys,
                                                  const Config& cfg, ThreadId t,
                                                  bool want_labels = false);

/// Hot-path forms: clear `out` and fill it with the enabled transitions,
/// reusing the buffer's pooled Steps.  The vector-returning overloads above
/// are wrappers kept for tests and cold callers.
void successors(const System& sys, const Config& cfg, StepBuffer& out,
                bool want_labels = false);
void thread_successors(const System& sys, const Config& cfg, ThreadId t,
                       StepBuffer& out, bool want_labels = false);

}  // namespace rc11::lang
