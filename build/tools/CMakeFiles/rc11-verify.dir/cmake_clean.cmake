file(REMOVE_RECURSE
  "CMakeFiles/rc11-verify.dir/rc11_verify.cpp.o"
  "CMakeFiles/rc11-verify.dir/rc11_verify.cpp.o.d"
  "rc11-verify"
  "rc11-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc11-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
