#include "og/lemma3.hpp"

#include "assertions/assertions.hpp"
#include "lang/system.hpp"

namespace rc11::og {

namespace asrt = rc11::assertions;
using lang::c;
using lang::IKind;
using lang::Instr;
using lang::LocId;
using lang::System;
using memsem::OpKind;

namespace {

struct Harness {
  System sys;
  LocId x = 0;
  LocId l = 0;
};

Harness make_harness(unsigned writer_rounds) {
  Harness h;
  h.x = h.sys.client_var("x", 0);
  h.l = h.sys.library_lock("l");
  auto t0 = h.sys.thread();
  for (unsigned k = 0; k < writer_rounds; ++k) {
    t0.acquire(h.l, std::nullopt, "acquire");
    t0.store(h.x, c(static_cast<lang::Value>(k + 1)), "x := k+1");
    t0.release(h.l, "release");
  }
  auto t1 = h.sys.thread();
  auto r1 = t1.reg("r1");
  t1.acquire(h.l, std::nullopt, "acquire");
  t1.load(r1, h.x, "r1 <- x");
  t1.release(h.l, "release");
  return h;
}

bool any_acquire(lang::ThreadId, const Instr& in) {
  return in.kind == IKind::LockAcquire;
}

bool any_lock_method(lang::ThreadId, const Instr& in) {
  return in.kind == IKind::LockAcquire || in.kind == IKind::LockRelease;
}

lang::Value new_version(const lang::Config& after, LocId l) {
  return after.mem.op(after.mem.last_op(l)).value;
}

}  // namespace

std::vector<Lemma3RuleResult> check_lemma3_rules(unsigned writer_rounds) {
  Harness h = make_harness(writer_rounds);
  const auto l = h.l;
  const auto x = h.x;
  std::vector<Lemma3RuleResult> results;

  // Rule (1): {H_{l.release_2}} Acquire(v) {v > 3}.
  {
    const auto r = check_triple(
        h.sys, asrt::lock_hidden(l, OpKind::LockRelease, 2), any_acquire,
        [l](const System&, const lang::Config&, const lang::Config& after) {
          return new_version(after, l) > 3;
        });
    results.push_back({1, "{H_l.release_u} Acquire(v) {v > u+1}", r.valid,
                       r.instances_checked});
  }
  // Rule (2): {H_{l.release_2}} m(v) {H_{l.release_2}}.
  {
    const auto hidden = asrt::lock_hidden(l, OpKind::LockRelease, 2);
    const auto r = check_triple(
        h.sys, hidden, any_lock_method,
        [hidden](const System& s, const lang::Config&, const lang::Config& a) {
          return hidden.eval(s, a);
        });
    results.push_back({2, "{H_l.release_u} m(v) {H_l.release_u}", r.valid,
                       r.instances_checked});
  }
  // Rule (3): {[l.release_2]_0} Acquire(v)_0 {[l.acquire_3]_0}.
  {
    const auto r = check_triple(
        h.sys, asrt::lock_definite(0, l, OpKind::LockRelease, 2),
        [](lang::ThreadId t, const Instr& in) {
          return t == 0 && in.kind == IKind::LockAcquire;
        },
        [l](const System& s, const lang::Config&, const lang::Config& a) {
          return asrt::lock_definite(0, l, OpKind::LockAcquire, 3).eval(s, a);
        });
    results.push_back({3, "{[l.release_u]_t} Acquire(v)_t {[l.acquire_u+1]_t}",
                       r.valid, r.instances_checked});
  }
  // Rule (4): {[x = 1]_0} m(v)_1 {[x = 1]_0}.
  {
    const auto def = asrt::definite_obs(0, x, 1);
    const auto r = check_triple(
        h.sys, def,
        [](lang::ThreadId t, const Instr& in) {
          return t == 1 && (in.kind == IKind::LockAcquire ||
                            in.kind == IKind::LockRelease);
        },
        [def](const System& s, const lang::Config&, const lang::Config& a) {
          return def.eval(s, a);
        });
    results.push_back({4, "{[x = u]_t} m(v)_t' {[x = u]_t}", r.valid,
                       r.instances_checked});
  }
  // Rule (5): {⟨l.release_2⟩[x = 1]_1} Acquire(v)_1 {v = 3 ==> [x = 1]_1}.
  {
    const auto r = check_triple(
        h.sys, asrt::lock_cond_obs(1, l, 2, x, 1),
        [](lang::ThreadId t, const Instr& in) {
          return t == 1 && in.kind == IKind::LockAcquire;
        },
        [l, x](const System& s, const lang::Config&, const lang::Config& a) {
          return new_version(a, l) != 3 ||
                 asrt::definite_obs(1, x, 1).eval(s, a);
        });
    results.push_back(
        {5, "{<l.release_u>[x = n]_t} Acquire(v)_t {v = u+1 ==> [x = n]_t}",
         r.valid, r.instances_checked});
  }
  // Rule (6): {¬⟨l.release_2⟩_1 ∧ [x = 1]_0} Release(2)_0
  //           {⟨l.release_2⟩[x = 1]_1}.
  {
    const auto pre =
        !asrt::lock_possible_release(1, l, 2) && asrt::definite_obs(0, x, 1);
    const auto r = check_triple(
        h.sys, pre,
        [](lang::ThreadId t, const Instr& in) {
          return t == 0 && in.kind == IKind::LockRelease;
        },
        [l, x](const System& s, const lang::Config&, const lang::Config& a) {
          return new_version(a, l) != 2 ||
                 asrt::lock_cond_obs(1, l, 2, x, 1).eval(s, a);
        });
    results.push_back(
        {6, "{!<l.release_u>_t' && [x = v]_t} Release(u)_t {<l.release_u>[x = v]_t'}",
         r.valid, r.instances_checked});
  }
  return results;
}

}  // namespace rc11::og
