# Empty compiler generated dependencies file for rc11.
# This may be replaced when dependencies are built.
