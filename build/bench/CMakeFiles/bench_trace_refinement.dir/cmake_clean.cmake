file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_refinement.dir/bench_trace_refinement.cpp.o"
  "CMakeFiles/bench_trace_refinement.dir/bench_trace_refinement.cpp.o.d"
  "bench_trace_refinement"
  "bench_trace_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
