// rc11lib/lang/config.hpp
//
// Runtime configurations and the combined transition relation of Section 3.2:
// the program semantics of Fig. 4 (per-thread control and local state)
// constrained by the memory semantics of Fig. 5 (for plain accesses) and the
// abstract object semantics of Section 4 (for method calls).
//
// A configuration is the tuple (P, ρ, γ, β) of the paper: per-thread program
// counters into the compiled CFG, per-thread register files, and the combined
// weak-memory state.  `successors` enumerates every transition of every
// thread, including all memory nondeterminism (the choice of write a read
// reads from, the placement choice for a write, and both CAS outcomes), which
// is exactly the branching that the paper's ==> relation exhibits.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/system.hpp"
#include "memsem/state.hpp"

namespace rc11::lang {

/// A configuration (P, ρ, γ, β).
struct Config {
  std::vector<std::uint32_t> pc;          ///< per-thread program counter
  std::vector<std::vector<Value>> regs;   ///< per-thread register files (ρ)
  memsem::MemState mem;                   ///< combined γ and β

  [[nodiscard]] bool thread_done(const System& sys, ThreadId t) const {
    return pc[t] >= sys.code(t).size();
  }

  [[nodiscard]] bool all_done(const System& sys) const {
    for (ThreadId t = 0; t < sys.num_threads(); ++t) {
      if (!thread_done(sys, t)) return false;
    }
    return true;
  }

  /// Canonical encoding (pcs, registers, memory); two configurations are
  /// semantically identical iff their encodings are equal.
  [[nodiscard]] std::vector<std::uint64_t> encode() const;
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::string to_string(const System& sys) const;
};

/// One enabled transition and its result.
struct Step {
  ThreadId thread = 0;
  std::string label;  ///< populated only when requested (diagnostics cost)
  Config after;
};

/// The initial configuration Γ_Init (locations initialised, registers at
/// their declared initial values, all pcs at 0).
[[nodiscard]] Config initial_config(const System& sys);

/// All transitions enabled in `cfg`, across every thread.  `want_labels`
/// fills Step::label with a human-readable description (slower; meant for
/// counterexample reporting).
[[nodiscard]] std::vector<Step> successors(const System& sys, const Config& cfg,
                                           bool want_labels = false);

/// All transitions of a single thread (used by the Owicki-Gries interference
/// checker and the refinement game to attribute steps).
[[nodiscard]] std::vector<Step> thread_successors(const System& sys,
                                                  const Config& cfg, ThreadId t,
                                                  bool want_labels = false);

}  // namespace rc11::lang
