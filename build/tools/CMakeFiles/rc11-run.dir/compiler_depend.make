# Empty compiler generated dependencies file for rc11-run.
# This may be replaced when dependencies are built.
