// Experiment RD: data-race detection — classification of the race corpus,
// race-set agreement between the plain checker and the fully reduced one
// (POR + symmetry), instrumentation overhead against a detection-off
// exploration of the same program, and wall-clock for both configurations.
//
// Verdict lines assert that every corpus program classifies as expected and
// that the reduced run reports the exact same canonical race set.  With
// --json the numbers become BENCH_race.json, diffed by CI against
// bench/baseline_race.json (race and state counts exact, throughput within
// tolerance) — which also gates the detection-off control: the *_off cases
// must not move when the clock instrumentation evolves, pinning the
// zero-overhead promise for the non-race checkers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "race/race.hpp"

namespace {

using namespace rc11;

double timed_check(const lang::System& sys, const race::RaceOptions& opts,
                   race::RaceResult& result) {
  result = race::check(sys, opts);  // warm-up
  double best_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = race::check(sys, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

std::vector<std::string> race_names(const race::RaceResult& r) {
  std::vector<std::string> names;
  names.reserve(r.races.size());
  for (const auto& race : r.races) names.push_back(race.what);
  return names;
}

void report_race(rc11::bench::JsonReport& json) {
  for (const auto& test : litmus::all_race_tests()) {
    race::RaceOptions plain;
    race::RaceOptions reduced;
    reduced.por = true;
    reduced.symmetry = true;

    race::RaceResult base, red;
    const double plain_s = timed_check(test.sys, plain, base);
    const double reduced_s = timed_check(test.sys, reduced, red);

    // Detection-off control: the same program explored without clocks —
    // this is what every non-race checker pays, and the ratio against the
    // instrumented run is the overhead the subsystem charges for.
    explore::ExploreResult off;
    double off_s = 1e9;
    off = explore::explore(test.sys, {});
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      off = explore::explore(test.sys, {});
      const auto t1 = std::chrono::steady_clock::now();
      off_s = std::min(off_s,
                       std::chrono::duration<double>(t1 - t0).count());
    }

    const bool classified = base.racy() == test.racy && !base.truncated;
    const bool exact = race_names(base) == race_names(red);
    const bool ok = classified && exact;

    std::ostringstream detail;
    detail << test.name << ": " << (base.racy() ? "racy" : "race-free")
           << " (expected " << (test.racy ? "racy" : "race-free") << "), "
           << base.races.size() << " race(s), reduced set "
           << (exact ? "identical" : "DIFFERS") << ", " << base.stats.states
           << " -> " << red.stats.states << " states, off/on "
           << off_s * 1e3 << " / " << plain_s * 1e3 << " ms";
    rc11::bench::verdict("RD", ok, detail.str());

    json.add(test.name,
             {{"races", static_cast<double>(base.races.size())},
              {"states", static_cast<double>(base.stats.states)},
              {"wall_ms", plain_s * 1e3},
              {"states_per_s",
               static_cast<double>(base.stats.states) / plain_s}});
    json.add(test.name + "_reduced",
             {{"races", static_cast<double>(red.races.size())},
              {"states", static_cast<double>(red.stats.states)},
              {"wall_ms", reduced_s * 1e3},
              {"states_per_s",
               static_cast<double>(red.stats.states) / reduced_s}});
    json.add(test.name + "_off",
             {{"states", static_cast<double>(off.stats.states)},
              {"wall_ms", off_s * 1e3},
              {"states_per_s",
               static_cast<double>(off.stats.states) / off_s}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_race(json);
  if (!json.write("bench_race")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
