file(REMOVE_RECURSE
  "CMakeFiles/test_sc_baseline.dir/test_sc_baseline.cpp.o"
  "CMakeFiles/test_sc_baseline.dir/test_sc_baseline.cpp.o.d"
  "test_sc_baseline"
  "test_sc_baseline.pdb"
  "test_sc_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
