// rc11lib/memsem/state.hpp
//
// The weak-memory state of a combined client-library system and the
// transition rules of the paper:
//
//   * Section 3.3 / Figure 5: READ, WRITE and UPDATE transitions over
//     timestamped operation sets (ops), thread view fronts (tview),
//     per-write modification views (mview) and the covered set (cvd),
//     including the cross-component view transfer (ctview) that lets
//     synchronisation inside one component update a thread's view of the
//     other component.
//
//   * Section 4 / Figure 6: abstract object operations (lock acquire /
//     release; our stack push / pop) realised through the generic
//     append-at-maximal-timestamp + synchronise + cover primitives that
//     both rules of Fig. 6 instantiate.
//
// Representation notes (see DESIGN.md Section 4):
//
//   * The paper splits the state into a client state γ and a library state β
//     whose tviews range over their own component's variables, while mviews
//     range over *all* variables.  We store one operation arena and, per
//     thread, one view vector over all locations; entries at client locations
//     are exactly γ.tview_t and entries at library locations are β.tview_t.
//     With that representation the paper's two-sided rules (tview' and
//     ctview' computed separately) collapse into a single pointwise view
//     merge, which is easy to see equivalent and much harder to get wrong.
//
//   * Timestamps.  Modification order per location is an explicit sequence
//     (so the canonical "rank" of an operation is its position), and every
//     operation additionally carries a faithful rational timestamp assigned
//     by the paper's fresh-timestamp rule (midpoint insertion / successor at
//     the end).  State equality and hashing use the canonical ranks by
//     default; the A3 ablation switches to raw rationals to demonstrate why
//     canonicalisation is needed for finite exploration.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "memsem/location.hpp"
#include "memsem/types.hpp"
#include "support/rational.hpp"

namespace rc11::memsem {

/// A view: one operation per location ("viewfront").  Used both for thread
/// views (tview) and per-operation modification views (mview).
using View = std::vector<OpId>;

/// Sentinel "no program counter" for accesses performed outside a program
/// step (tests driving MemState directly, object operations).  Accesses with
/// this site are clock-maintained but never race-checked.
inline constexpr std::uint32_t kNoSite = 0xffffffffu;

/// Classification of a variable access for the race detector.  At least one
/// write and at least one non-atomic access make a conflicting pair racy, so
/// the detector keys its per-location summaries by this four-way split.
enum class RaceCat : std::uint8_t {
  NaRead = 0,       ///< non-atomic load
  AtomicRead = 1,   ///< relaxed/acquire (atomic) load
  NaWrite = 2,      ///< non-atomic store
  AtomicWrite = 3,  ///< relaxed/release store, CAS, FAI
};
inline constexpr std::size_t kNumRaceCats = 4;

/// One side of a reported race: which thread, at which program counter,
/// performed what kind of access.
struct RaceAccess {
  ThreadId thread = 0;
  std::uint32_t pc = kNoSite;
  RaceCat cat = RaceCat::NaRead;
  friend bool operator==(const RaceAccess&, const RaceAccess&) = default;
};

/// A happens-before data race: two conflicting accesses of `loc` (>= 1
/// write, >= 1 non-atomic) with neither ordered before the other.  `current`
/// is the access whose step detected the race; `prior` is the last
/// conflicting access recorded in the per-location summary.
struct RaceRecord {
  LocId loc = 0;
  RaceAccess prior;
  RaceAccess current;
  friend bool operator==(const RaceRecord&, const RaceRecord&) = default;
};

/// One modifying operation: the paper's (action, timestamp) pair plus the
/// modification view attached to it at creation time.
struct Op {
  LocId loc = 0;
  ThreadId thread = 0;     ///< executing thread (part of the action identity)
  OpKind kind = OpKind::Init;
  Value value = 0;         ///< written value / lock version / pushed value
  Value read_value = 0;    ///< for Update: the value read (m in upd(x, m, n))
  bool releasing = false;  ///< member of W_R: a later acquiring read of this
                           ///  operation synchronises (merges mview)
  bool covered = false;    ///< member of cvd
  std::uint32_t mo_pos = 0;  ///< current rank in the location's mo sequence
  support::Rational ts;      ///< faithful rational timestamp
  View mview;                ///< viewfront of the writer just after this op
};

/// Which memory model the transitions implement.
enum class MemoryModel : std::uint8_t {
  /// The paper's model: per-thread views, relaxed and release/acquire
  /// accesses, stale reads allowed.
  RC11RAR,
  /// Sequential consistency as a baseline comparator: every read returns the
  /// mo-maximal write and every access synchronises, so all threads share
  /// one up-to-date view.  Implemented in the *same* engine by restricting
  /// observability to the maximal write and forcing synchronisation — weak
  /// behaviours are exactly the outcomes RC11RAR adds over this mode.
  SC,
};

/// Tunable semantics switches.  The defaults implement the paper exactly;
/// the alternatives exist solely for the ablation experiments (DESIGN.md
/// experiments A1-A3) that demonstrate why each mechanism is necessary.
struct SemanticsOptions {
  /// A1: when false, a synchronising read merges the releasing write's mview
  /// into the executing component's locations only — the context component's
  /// thread view (the paper's ctview) is left unchanged.  Message passing
  /// through a library then fails to transfer client views.
  bool cross_component_view_transfer = true;

  /// A2: when false, the covered set is ignored when choosing the write an
  /// operation is placed after, breaking update atomicity (two CASes can both
  /// succeed on the same write).
  bool enforce_covered = true;

  /// Baseline selector (see MemoryModel).
  MemoryModel model = MemoryModel::RC11RAR;

  /// A3: when false, state encodings embed raw rational timestamps instead of
  /// canonical modification-order ranks, so order-isomorphic states are no
  /// longer identified and exploration blows up.
  bool canonical_timestamps = true;

  /// When true, the state additionally maintains FastTrack-style vector
  /// clocks deriving the C11 happens-before order from the synchronisation
  /// the views already perform (clocks join exactly where views merge), plus
  /// per-location last-access summaries, and flags hb-unordered conflicting
  /// access pairs as data races (src/race/).  Off by default: the non-race
  /// checkers pay zero overhead.
  bool race_detection = false;

  friend bool operator==(const SemanticsOptions&, const SemanticsOptions&) = default;
};

/// The combined client-library weak-memory state (γ and β of the paper).
class MemState {
 public:
  /// Builds the initial state Γ_Init of Section 3.3: one initialising write
  /// (timestamp 0) per variable and one init operation per object; every
  /// thread's view of every location is its init operation; every init
  /// operation's mview is the full initial viewfront; cvd is empty.
  MemState(const LocationTable& locs, ThreadId num_threads,
           SemanticsOptions options = {});

  // ------------------------------------------------------------------
  // Queries
  // ------------------------------------------------------------------

  [[nodiscard]] const LocationTable& locations() const { return *locs_; }
  [[nodiscard]] ThreadId num_threads() const { return num_threads_; }
  [[nodiscard]] const SemanticsOptions& options() const { return options_; }

  [[nodiscard]] const Op& op(OpId id) const { return ops_[id]; }
  [[nodiscard]] std::size_t num_ops() const noexcept { return ops_.size(); }

  /// Modification order of a location, ascending by timestamp.
  [[nodiscard]] std::span<const OpId> mo(LocId loc) const { return mo_[loc]; }

  /// The operation a thread's viewfront designates for a location
  /// (tview_t(x), resp. β.tview_t(y) — component determined by the location).
  [[nodiscard]] OpId view_front(ThreadId t, LocId loc) const {
    return tview_[t][loc];
  }

  /// Obs(t, x): the operations on `loc` that thread `t` may read from — all
  /// operations whose timestamp is at least the thread's viewfront (§3.3).
  [[nodiscard]] std::vector<OpId> observable(ThreadId t, LocId loc) const;

  /// Obs(t, x) \ cvd: the operations a new write/update may be placed after.
  [[nodiscard]] std::vector<OpId> observable_uncovered(ThreadId t, LocId loc) const;

  /// Scratch-buffer forms of the two queries above: clear `out` and fill it,
  /// so successor generation can reuse one buffer per exploration instead of
  /// allocating a vector per instruction.
  void observable_into(ThreadId t, LocId loc, std::vector<OpId>& out) const;
  void observable_uncovered_into(ThreadId t, LocId loc,
                                 std::vector<OpId>& out) const;

  /// The last (maximal-timestamp) operation of a location; maxTS of §4.
  [[nodiscard]] OpId last_op(LocId loc) const;

  /// The value a read of `w` returns (wrval: written value; for updates the
  /// value written, for a stack push the pushed value).
  [[nodiscard]] Value read_value_of(OpId w) const { return ops_[w].value; }

  /// Rank of `w` in its location's modification order.
  [[nodiscard]] std::uint32_t rank(OpId w) const { return ops_[w].mo_pos; }

  // ------------------------------------------------------------------
  // Figure 5 transitions
  // ------------------------------------------------------------------

  /// READ: thread `t` reads operation `w` (must be in Obs(t, loc)) with
  /// order `Relaxed`, `Acquire` or `NonAtomic`.  Returns the value read.  If
  /// `w` is releasing and the read acquires, the thread's view of *all*
  /// locations is merged with mview_w (this is simultaneously the paper's
  /// tview' ⊗ and ctview' ⊗ updates); otherwise only the viewfront of `loc`
  /// advances.  `site_pc` identifies the program counter of the access for
  /// race reporting (kNoSite disables the race check for this access).
  Value read(ThreadId t, LocId loc, OpId w, MemOrder order,
             std::uint32_t site_pc = kNoSite);

  /// WRITE: thread `t` writes `v` immediately after `after` (must be in
  /// Obs(t, loc) \ cvd) with order `Relaxed`, `Release` or `NonAtomic`.
  /// Returns the new operation.
  OpId write(ThreadId t, LocId loc, Value v, MemOrder order, OpId after,
             std::uint32_t site_pc = kNoSite);

  /// UPDATE: thread `t` performs upd^RA(loc, read_value_of(w), v): reads `w`
  /// (must be in Obs(t, loc) \ cvd), writes `v` immediately after it, covers
  /// `w`, and synchronises if `w` is releasing.  The new operation is
  /// releasing.  Returns the new operation.
  OpId update(ThreadId t, LocId loc, OpId w, Value v,
              std::uint32_t site_pc = kNoSite);

  // ------------------------------------------------------------------
  // Race detection (options().race_detection; src/race/)
  // ------------------------------------------------------------------

  /// Clears the per-step race buffer.  Called by the step layer before each
  /// program step mutates the state, so race_records() afterwards holds
  /// exactly the races that step introduced.  No-op when race detection is
  /// off.
  void race_begin_step() {
    if (race_) race_->pending.clear();
  }

  /// The races detected since the last race_begin_step().  Empty when race
  /// detection is off.
  [[nodiscard]] std::span<const RaceRecord> race_records() const {
    static const std::vector<RaceRecord> kEmpty;
    return race_ ? std::span<const RaceRecord>(race_->pending)
                 : std::span<const RaceRecord>(kEmpty);
  }

  // ------------------------------------------------------------------
  // Abstract object primitive (Section 4)
  // ------------------------------------------------------------------

  /// Appends an object operation with a maximal timestamp for `loc`
  /// (the ordering discipline of Fig. 6: "each new lock acquire and release
  /// must have a larger timestamp than all other existing operations").
  ///
  /// If `sync_with` is set, the executing thread first synchronises with that
  /// operation (merging its mview into the thread's view — the acquire case);
  /// if `cover` is additionally true, `sync_with` is added to cvd.  The new
  /// operation's mview is the thread's resulting viewfront (tview' ∪ ctview'
  /// in Fig. 6).
  OpId object_op(ThreadId t, LocId loc, OpKind kind, Value value,
                 bool releasing, std::optional<OpId> sync_with, bool cover);

  /// Covers an existing operation without adding a new one (used by the
  /// stack's pop, which consumes its matched push).  If `sync` is true the
  /// executing thread synchronises with `w` first.
  void consume(ThreadId t, LocId loc, OpId w, bool sync);

  // ------------------------------------------------------------------
  // Thread permutation (engine symmetry reduction)
  // ------------------------------------------------------------------

  /// Relabels threads in place under `slot_of` (thread t becomes
  /// slot_of[t], a permutation of [0, num_threads)): operation thread tags
  /// are remapped and thread viewfront rows reindexed.  Init operations keep
  /// their tag — they belong to the initial state, which every group element
  /// must fix (no execution ever re-attributes an init, so relabelling one
  /// would manufacture encodings no run reaches).  Modification order,
  /// values, timestamps, covered flags and per-operation mviews are
  /// thread-invariant and untouched.  For systems whose permuted threads run
  /// identical code this is the group action the symmetry quotient
  /// (engine/symmetry.hpp) explores modulo.
  void permute_threads(const std::vector<ThreadId>& slot_of);

  // ------------------------------------------------------------------
  // Encoding, equality, hashing
  // ------------------------------------------------------------------

  /// Appends a canonical encoding of this state to `out`.  Two states have
  /// equal encodings iff they are equal up to order-isomorphism of
  /// timestamps (with options().canonical_timestamps; otherwise raw rational
  /// timestamps are embedded, distinguishing isomorphic states).
  void encode(std::vector<std::uint64_t>& out) const;

  /// Appends the reads-from/modification-order *quotient* encoding (the
  /// engine's --rf-quotient state key; see engine/abstraction.hpp).  The
  /// modification-order block (operation kinds, executing threads, values,
  /// read values, covered flags, releasing bits) and — when race detection
  /// is on — the full clock block are emitted exactly as encode() does.
  /// What is projected away is view history that no continuation can
  /// observe:
  ///
  ///   * per-operation modification views are kept only for operations that
  ///     can still be merged into a thread view — releasing operations and
  ///     every object-location operation.  A non-releasing plain-variable
  ///     write's mview is dead: read-synchronisation requires the observed
  ///     write to be releasing (read()), update-synchronisation likewise
  ///     (update()), and object synchronisation only targets object
  ///     locations (object_op()/consume());
  ///
  ///   * thread-viewfront entries are kept only where
  ///     `tview_keep[t * num_locs + loc]` is nonzero.  The caller derives
  ///     the keep mask from the per-thread program counters (which access
  ///     and export reachability the thread still has), so the dropped-entry
  ///     shape is a pure function of state components encoded *before* this
  ///     block — equal quotient keys never conflate structurally different
  ///     states.
  void encode_quotient(std::vector<std::uint64_t>& out,
                       const std::uint8_t* tview_keep) const;

  [[nodiscard]] std::uint64_t hash() const;

  /// Human-readable dump for diagnostics and counterexamples.
  [[nodiscard]] std::string to_string() const;

 private:
  /// FastTrack-style clock state, engaged iff options().race_detection.
  /// Everything here is derived from the synchronisation structure the views
  /// already maintain: clock rows join exactly where merge_view_into runs for
  /// a genuine synchronisation, and messages attach exactly at releasing
  /// operations.  `pending` is per-step scratch and NOT part of the encoding.
  struct RaceClocks {
    /// T×T matrix, row t = C_t (thread t's vector clock).  C_t[t] starts at
    /// 1, everything else at 0: no cross-thread access is ordered until a
    /// real release/acquire chain carries the epoch over.
    std::vector<std::uint32_t> vc;
    /// Parallel to the op arena: the clock message a releasing operation
    /// carries (a copy of the writer's C_t at creation).  Empty for
    /// non-releasing operations — presence mirrors the `releasing` bit,
    /// which the canonical encoding already pins.
    std::vector<std::vector<std::uint32_t>> msg;
    /// Per (location, thread, RaceCat) last-access summary: the accessing
    /// thread's epoch C_t[t] at the access (0 = no such access yet) and the
    /// access's program counter for the report.  Keeps the race check
    /// O(threads) per step instead of O(history).
    struct Cell {
      std::uint32_t clock = 0;
      std::uint32_t pc = 0;
    };
    std::vector<Cell> summary;  // [(loc * T + t) * kNumRaceCats + cat]
    /// Races detected since race_begin_step().  Transient.
    std::vector<RaceRecord> pending;
  };

  /// Joins op `w`'s clock message into thread `t`'s clock row (the hb edge a
  /// synchronising read/acquire creates).  No-op if `w` carries no message.
  void race_join(ThreadId t, OpId w);
  /// Attaches thread `t`'s current clock row to operation `id` (which must
  /// be releasing) and then advances t's epoch.
  void race_attach(ThreadId t, OpId id);
  /// Race-checks one variable access against the location's summaries and
  /// records it there.  Called only for var locations with a real site.
  void race_access(ThreadId t, LocId loc, RaceCat cat, std::uint32_t pc);

  /// Pointwise-later merge: the paper's V1 ⊗ V2 (keeps the operation with the
  /// larger timestamp per location).  If `only` is set, locations of other
  /// components are skipped — this is the A1 ablation's crippled transfer
  /// that suppresses the paper's ctview update.
  void merge_view_into(View& target, const View& source,
                       std::optional<Component> only) const;

  /// Inserts a fresh operation right after `after` in `loc`'s modification
  /// order, assigning a fresh rational timestamp per fresh_γ(q, q').
  OpId insert_after(LocId loc, Op op, OpId after);

  const LocationTable* locs_;
  ThreadId num_threads_;
  SemanticsOptions options_;

  std::vector<Op> ops_;               // arena; OpId indexes this
  std::vector<std::vector<OpId>> mo_;  // per location, ascending timestamp
  std::vector<View> tview_;            // per thread, over all locations
  std::optional<RaceClocks> race_;     // engaged iff options_.race_detection
};

}  // namespace rc11::memsem
