// Parallel-vs-sequential equivalence of the explorer: for every sample
// program and every litmus test, explore() with 1, 2 and 8 workers must
// produce the same set of final configurations, the same outcome sets, the
// same statistics and the same truncation/violation verdicts.  The schedule
// may differ; the answers may not.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/sharded_visited.hpp"
#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "parser/parser.hpp"
#include "support/hash.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using explore::ExploreOptions;
using lang::Config;
using lang::System;

const unsigned kThreadCounts[] = {1, 2, 8};

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

const char* kPrograms[] = {
    "lock_client_abstract.rc11", "lock_client_broken.rc11",
    "lock_client_seqlock.rc11",  "mp_broken_outline.rc11",
    "mp_stack.rc11",             "mp_verified.rc11",
    "sb.rc11",                   "ticket_lock.rc11",
};

std::vector<lang::Reg> all_regs(const System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

/// Canonical fingerprint of the final-configuration set (already sorted by
/// the explorer, so equality is set equality).
std::vector<std::vector<std::uint64_t>> final_encodings(
    const explore::ExploreResult& result) {
  std::vector<std::vector<std::uint64_t>> encodings;
  encodings.reserve(result.final_configs.size());
  for (const auto& cfg : result.final_configs) {
    encodings.push_back(cfg.encode());
  }
  return encodings;
}

TEST(ParallelExplore, SampleProgramsMatchSequential) {
  for (const auto* name : kPrograms) {
    SCOPED_TRACE(name);
    const auto program = parser::parse_file(prog(name));
    const auto regs = all_regs(program.sys);

    ExploreOptions opts;
    opts.num_threads = 1;
    const auto baseline = explore::explore(program.sys, opts);
    const auto base_outcomes =
        explore::final_register_values(program.sys, baseline, regs);
    const auto base_finals = final_encodings(baseline);

    for (const unsigned workers : {2u, 8u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      opts.num_threads = workers;
      const auto result = explore::explore(program.sys, opts);
      EXPECT_EQ(result.stats.states, baseline.stats.states);
      EXPECT_EQ(result.stats.transitions, baseline.stats.transitions);
      EXPECT_EQ(result.stats.finals, baseline.stats.finals);
      EXPECT_EQ(result.stats.blocked, baseline.stats.blocked);
      EXPECT_EQ(result.truncated, baseline.truncated);
      EXPECT_EQ(final_encodings(result), base_finals);
      EXPECT_EQ(explore::final_register_values(program.sys, result, regs),
                base_outcomes);
    }
  }
}

TEST(ParallelExplore, LitmusSuiteOutcomeSetsIdentical) {
  for (const auto& test : litmus::all_tests()) {
    SCOPED_TRACE(test.name);
    for (const unsigned workers : kThreadCounts) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      EXPECT_EQ(litmus::reachable_outcomes(test, workers), test.allowed);
      EXPECT_TRUE(litmus::check(test, workers));
    }
  }
}

TEST(ParallelExplore, FuseLocalStepsMatchesToo) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  const auto regs = all_regs(program.sys);
  ExploreOptions opts;
  opts.fuse_local_steps = true;
  opts.num_threads = 1;
  const auto baseline = explore::explore(program.sys, opts);
  opts.num_threads = 8;
  const auto parallel = explore::explore(program.sys, opts);
  EXPECT_EQ(parallel.stats.states, baseline.stats.states);
  EXPECT_EQ(explore::final_register_values(program.sys, parallel, regs),
            explore::final_register_values(program.sys, baseline, regs));
}

TEST(ParallelExplore, BfsStrategyMatchesToo) {
  const auto program = parser::parse_file(prog("mp_stack.rc11"));
  ExploreOptions opts;
  opts.strategy = explore::SearchStrategy::Bfs;
  opts.num_threads = 1;
  const auto baseline = explore::explore(program.sys, opts);
  opts.num_threads = 8;
  const auto parallel = explore::explore(program.sys, opts);
  EXPECT_EQ(parallel.stats.states, baseline.stats.states);
  EXPECT_EQ(final_encodings(parallel), final_encodings(baseline));
}

// An invariant that fires somewhere in the middle of the state space: the
// protected counter x reaches 2 in every terminating run of the broken lock
// client, so every thread count must find *a* violation when stopping early
// and the *same full set* when collecting all of them.
TEST(ParallelExplore, ViolationPresenceIdentical) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  const auto invariant = [](const System& sys,
                            const Config& cfg) -> std::optional<std::string> {
    // Both threads terminated: flag every final state.
    if (cfg.all_done(sys)) return "final state reached";
    return std::nullopt;
  };

  for (const bool stop_early : {true, false}) {
    SCOPED_TRACE(stop_early ? "stop_on_violation" : "collect all");
    std::vector<std::vector<std::pair<std::string, std::string>>> reported;
    for (const unsigned workers : kThreadCounts) {
      ExploreOptions opts;
      opts.num_threads = workers;
      opts.stop_on_violation = stop_early;
      const auto result = explore::explore(program.sys, opts, invariant);
      EXPECT_FALSE(result.violations.empty())
          << "workers=" << workers << ": violation must be found";
      std::vector<std::pair<std::string, std::string>> pairs;
      for (const auto& v : result.violations) {
        pairs.emplace_back(v.what, v.state_dump);
      }
      reported.push_back(std::move(pairs));
    }
    if (!stop_early) {
      // Without early stop the full violation set is schedule-independent.
      EXPECT_EQ(reported[1], reported[0]);
      EXPECT_EQ(reported[2], reported[0]);
    }
  }
}

// Under a max_states budget different schedules visit different subsets, so
// identical outcomes cannot be demanded — but every thread count must report
// the truncation, and every truncated outcome set must be a subset of the
// full one.
TEST(ParallelExplore, TruncationReportedAndSound) {
  const auto program = parser::parse_file(prog("ticket_lock.rc11"));
  const auto regs = all_regs(program.sys);

  ExploreOptions full_opts;
  const auto full = explore::explore(program.sys, full_opts);
  ASSERT_FALSE(full.truncated);
  const auto full_outcomes =
      explore::final_register_values(program.sys, full, regs);

  for (const unsigned workers : kThreadCounts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExploreOptions opts;
    opts.num_threads = workers;
    opts.max_states = 20;  // well below the 47 reachable states
    const auto result = explore::explore(program.sys, opts);
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.stop, engine::StopReason::StateCap);
    EXPECT_LE(result.stats.states, opts.max_states);
    const auto outcomes =
        explore::final_register_values(program.sys, result, regs);
    EXPECT_TRUE(std::includes(full_outcomes.begin(), full_outcomes.end(),
                              outcomes.begin(), outcomes.end()))
        << "truncated outcomes must be a subset of the full outcome set";
  }
}

// The StopReason is schedule-independent: whichever worker trips the limit,
// every (threads, por) combination over every sample program reports the
// same reason for the same budget.
TEST(ParallelExplore, StopReasonIdenticalAcrossSchedules) {
  for (const auto* name : kPrograms) {
    SCOPED_TRACE(name);
    const auto program = parser::parse_file(prog(name));
    for (const bool por : {false, true}) {
      ExploreOptions base_opts;
      base_opts.por = por;
      const auto full = explore::explore(program.sys, base_opts);
      if (full.stats.states < 8) continue;  // too small to truncate honestly
      for (const unsigned workers : kThreadCounts) {
        SCOPED_TRACE("por=" + std::to_string(por) +
                     " workers=" + std::to_string(workers));
        ExploreOptions opts;
        opts.num_threads = workers;
        opts.por = por;
        opts.max_states = 5;
        const auto result = explore::explore(program.sys, opts);
        EXPECT_EQ(result.stop, engine::StopReason::StateCap);
        EXPECT_TRUE(result.truncated);
        EXPECT_LE(result.stats.states, opts.max_states);
      }
    }
  }
}

TEST(ParallelExplore, ZeroResolvesToHardwareConcurrency) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  ExploreOptions opts;
  opts.num_threads = 0;  // hardware concurrency, whatever it is
  const auto result = explore::explore(program.sys, opts);
  EXPECT_EQ(result.stats.states, 14u);
  EXPECT_EQ(result.stats.finals, 4u);
}

// Stress insert_traced/path_to under *real* contention: a single shard means
// every insert of every worker serialises on one mutex, which is the worst
// case for the id-assignment + parent-recording atomicity the witness
// subsystem depends on.  Eight workers race a hand-rolled BFS over the
// ticket-lock/most-general-client graph (331 states), then every interned
// state's reconstructed path must replay through the full semantics, step by
// step, onto the state it claims to reach.
TEST(ParallelExplore, TracedInsertsOnOneShardReplayUnderContention) {
  locks::TicketLock lock;
  const System sys = locks::instantiate(locks::mgc_client(2, 2), lock);

  engine::ShardedVisitedSet visited(1);  // force all workers onto one mutex

  const Config init = lang::initial_config(sys);
  std::vector<std::uint64_t> enc;
  init.encode_into(enc);
  const auto root = visited.insert_traced(
      enc, engine::ShardedVisitedSet::kNoState, 0, "");
  ASSERT_TRUE(root.inserted);

  std::mutex mu;
  std::vector<std::pair<Config, std::uint64_t>> frontier{{init, root.id}};
  std::vector<std::uint64_t> ids{root.id};
  std::atomic<unsigned> working{0};

  constexpr unsigned kWorkers = 8;
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      std::vector<std::uint64_t> scratch;
      for (;;) {
        std::pair<Config, std::uint64_t> item{init, 0};  // placeholder copy
        {
          std::lock_guard<std::mutex> lk(mu);
          if (frontier.empty()) {
            if (working.load() == 0) return;  // drained and nobody producing
            continue;
          }
          item = std::move(frontier.back());
          frontier.pop_back();
          working.fetch_add(1);
        }
        for (auto& step : lang::successors(sys, item.first, true)) {
          scratch.clear();
          step.after.encode_into(scratch);
          const auto ins = visited.insert_traced(
              scratch, item.second, step.thread, std::move(step.label));
          if (!ins.inserted) continue;
          std::lock_guard<std::mutex> lk(mu);
          ids.push_back(ins.id);
          frontier.emplace_back(std::move(step.after), ins.id);
        }
        working.fetch_sub(1);
      }
    });
  }
  for (auto& t : workers) t.join();

  // The racing BFS visited exactly the full reachable graph.
  const auto reference = explore::explore(sys, ExploreOptions{});
  EXPECT_EQ(ids.size(), reference.stats.states);
  EXPECT_EQ(visited.size(), reference.stats.states);

  // Every interned state gets a replayable path: wrap path_to's edges as a
  // witness (digests recovered from the interned encodings) and push it
  // through witness::replay, which re-executes against lang::successors.
  std::vector<std::uint64_t> words;
  for (const auto id : ids) {
    const auto edges = visited.path_to(id);
    witness::Witness w;
    w.kind = "invariant";
    w.source = "test";
    w.initial_digest = witness::config_digest(init);
    for (const auto& edge : edges) {
      words.clear();
      visited.decode_state(edge.state, words);
      w.steps.push_back({edge.thread, edge.label, support::hash_words(words)});
    }
    const auto r = witness::replay(sys, w);
    ASSERT_TRUE(r.ok) << "path to state " << id << ": " << r.error;
    ASSERT_EQ(r.steps_applied, edges.size());
  }
}

}  // namespace
