#include "witness/json.hpp"

#include <cctype>
#include <charconv>

#include "support/diagnostics.hpp"

namespace rc11::witness {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::integer(std::int64_t i) {
  Json j;
  j.kind_ = Kind::Int;
  j.int_ = i;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

bool Json::as_bool() const {
  support::require(kind_ == Kind::Bool, "json: expected a boolean");
  return bool_;
}

std::int64_t Json::as_int() const {
  support::require(kind_ == Kind::Int, "json: expected an integer");
  return int_;
}

const std::string& Json::as_string() const {
  support::require(kind_ == Kind::String, "json: expected a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  support::require(kind_ == Kind::Array, "json: expected an array");
  return items_;
}

bool Json::has(const std::string& key) const {
  support::require(kind_ == Kind::Object, "json: expected an object");
  for (const auto& [k, v] : fields_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  support::require(kind_ == Kind::Object, "json: expected an object");
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  support::fail("json: missing field '", key, "'");
}

void Json::set(std::string key, Json value) {
  support::require(kind_ == Kind::Object, "json: set on a non-object");
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  support::require(kind_ == Kind::Array, "json: push on a non-array");
  items_.push_back(std::move(value));
}

std::string json_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (byte < 0x20) {
          out += "\\u00";
          out.push_back(kHex[byte >> 4]);
          out.push_back(kHex[byte & 0xF]);
        } else {
          out.push_back(ch);  // UTF-8 payload bytes pass through
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent) const {
  const auto pad = [&](int n) { out.append(static_cast<std::size_t>(n) * 2, ' '); };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::String:
      out.push_back('"');
      out += json_escape(string_);
      out.push_back('"');
      break;
    case Kind::Array:
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        pad(indent + 1);
        items_[i].dump_to(out, indent + 1);
        if (i + 1 < items_.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(indent);
      out.push_back(']');
      break;
    case Kind::Object:
      if (fields_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        pad(indent + 1);
        out.push_back('"');
        out += json_escape(fields_[i].first);
        out += "\": ";
        fields_[i].second.dump_to(out, indent + 1);
        if (i + 1 < fields_.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(indent);
      out.push_back('}');
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

namespace {

/// Recursive-descent JSON parser with positional errors.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ < text_.size()) fail("trailing input after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        line += 1;
        col = 1;
      } else {
        col += 1;
      }
    }
    support::fail("json parse error at ", line, ":", col, ": ", what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool accept(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char ch) {
    if (!accept(ch)) fail(std::string("expected '") + ch + "'");
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
  }

  Json parse_value() {
    skip_ws();
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': expect_word("true"); return Json::boolean(true);
      case 'f': expect_word("false"); return Json::boolean(false);
      case 'n': expect_word("null"); return Json::null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (accept('}')) return obj;
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected a field name");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Json value = parse_value();
      if (obj.has(key)) fail("duplicate field '" + key + "'");
      obj.set(std::move(key), std::move(value));
      skip_ws();
      if (accept(',')) continue;
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (accept(']')) return arr;
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      if (accept(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("raw control character in string");
      }
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (surrogate pairs are rejected: witness content is
          // generated ASCII; reject rather than mis-decode).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (accept('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    // Accept (and truncate) a fractional/exponent tail so foreign documents
    // do not hard-fail; the witness schema itself never emits one.
    bool fractional = false;
    if (accept('.')) {
      fractional = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fail("exponent numbers unsupported in witness documents");
    }
    std::int64_t value = 0;
    const std::string_view digits =
        text_.substr(start, pos_ - start);
    const std::string_view integral =
        fractional ? digits.substr(0, digits.find('.')) : digits;
    const auto [ptr, ec] = std::from_chars(
        integral.data(), integral.data() + integral.size(), value);
    if (ec != std::errc{} || ptr != integral.data() + integral.size()) {
      fail("integer out of range");
    }
    return Json::integer(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return JsonParser{text}.run(); }

}  // namespace rc11::witness
