// rc11lib/witness/json.hpp
//
// A minimal, dependency-free JSON reader/writer for the witness subsystem.
// The repo ships structured artifacts (witness files, bench reports) but the
// toolchain deliberately has no third-party JSON dependency, so this module
// implements the subset the witness schema needs — objects, arrays, strings
// (with full escape handling), 64-bit integers, bools and null — as an exact
// recursive-descent parser with line/column errors.
//
// Numbers: witness digests are 64-bit and must round-trip exactly, so
// integers are kept as std::int64_t (digests themselves travel as hex
// *strings* — see witness.cpp — keeping every number in the schema small).
// Floating point input is accepted but truncated; the witness schema never
// emits it.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rc11::witness {

/// One JSON value.  A tagged tree; cheap enough for witness-sized documents
/// (a few thousand nodes), with ordered object keys so emission is
/// deterministic.
class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, String, Array, Object };

  Json() = default;  ///< null
  static Json null() { return Json{}; }
  static Json boolean(bool b);
  static Json integer(std::int64_t i);
  static Json string(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is(Kind k) const { return kind_ == k; }

  // Typed accessors; throw support::Error on kind mismatch (the caller's
  // schema validation surfaces as a parse rejection, not UB).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;  ///< array elements

  // Object access.
  [[nodiscard]] bool has(const std::string& key) const;
  /// Throws when the key is missing — witness schema fields are mandatory.
  [[nodiscard]] const Json& at(const std::string& key) const;
  void set(std::string key, Json value);  ///< object field (insertion order)
  void push(Json value);                  ///< array append

  /// Serialises with two-space indentation and "\n" line ends (stable for
  /// golden tests and diffs).
  [[nodiscard]] std::string dump() const;

  /// Parses a complete JSON document; trailing non-whitespace input is an
  /// error.  Throws support::Error with line:column on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

/// Escapes a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace rc11::witness
