// Experiment DW: supervised multi-process exploration (--workers) — the
// crash-tolerance headline in one diff.  Each workload is explored four
// ways: in-process sequential (the oracle), supervised at 2 and 4 workers,
// and supervised at 2 workers with a crash fault injected at a batch
// boundary (the supervisor SIGKILLs and re-forks the worker mid-run).  The
// verdict asserts the distributed contract from DESIGN.md:
//
//   * every supervised run — disturbed or not, at any worker count — is
//     byte-identical in all verdict-bearing stats (states, transitions,
//     finals, blocked, peak frontier, visited bytes) and final-config sets;
//   * the sequential oracle agrees on verdicts (states, transitions, final
//     configurations) — frontier-shape counters are driver-specific and
//     deliberately not compared;
//   * the injected crash actually fired (>= 1 restart, >= 1 retried batch)
//     and no state was orphaned.
//
// With --json the same numbers become BENCH_dist.json, diffed by CI against
// bench/baseline_dist.json (state counts exact, throughput within
// tolerance); states_per_s here prices the supervision tax — worker-side
// path replay plus frame encode/decode — against the in-process driver.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/budget.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

struct Workload {
  std::string name;
  lang::System sys;
  bool por = false;
  bool rf_quotient = false;
  bool with_w4 = true;  ///< also run the 4-worker point (skipped when slow)
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  locks::TicketLock lock;
  // Small plain workload: supervision overhead is mostly fork + pipe setup.
  w.push_back({"dist_ticket_mgc_2x2",
               locks::instantiate(locks::mgc_client(2, 2), lock),
               /*por=*/false, /*rf_quotient=*/false, /*with_w4=*/true});
  // Mid-size reduced workloads: worker-side path replay dominates, so these
  // price the supervision tax where it actually bites.  The rf point skips
  // the 4-worker run (replay under the quotient is the slowest path here).
  w.push_back({"dist_ticket_worker_2x4w8_por",
               locks::instantiate(locks::worker_client(2, 4, 8), lock),
               /*por=*/true, /*rf_quotient=*/false, /*with_w4=*/true});
  w.push_back({"dist_ticket_worker_2x4w8_rf",
               locks::instantiate(locks::worker_client(2, 4, 8), lock),
               /*por=*/false, /*rf_quotient=*/true, /*with_w4=*/false});
  return w;
}

explore::ExploreOptions base_options(const Workload& w) {
  explore::ExploreOptions opts;
  opts.por = w.por;
  opts.rf_quotient = w.rf_quotient;
  return opts;
}

std::vector<lang::Reg> all_regs(const lang::System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

/// Configs carry no operator==; the canonical comparable projection of the
/// final set is the sorted outcome list over every register.
std::vector<std::vector<lang::Value>> outcomes_of(
    const lang::System& sys, const explore::ExploreResult& result) {
  return explore::final_register_values(sys, result, all_regs(sys));
}

double timed_explore(const lang::System& sys,
                     const explore::ExploreOptions& opts,
                     explore::ExploreResult& result) {
  // One timed repetition: supervised runs take seconds and fork fresh
  // worker processes every time, so there is no cache to warm and the best
  // of N would mostly re-measure fork jitter CI's 30% tolerance absorbs.
  const auto t0 = std::chrono::steady_clock::now();
  result = explore::explore(sys, opts);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The byte-identity contract across supervised runs: every stats field.
bool same_supervised(const lang::System& sys, const explore::ExploreResult& a,
                     const explore::ExploreResult& b) {
  return a.stats.states == b.stats.states &&
         a.stats.transitions == b.stats.transitions &&
         a.stats.finals == b.stats.finals &&
         a.stats.blocked == b.stats.blocked &&
         a.stats.peak_frontier == b.stats.peak_frontier &&
         a.stats.visited_bytes == b.stats.visited_bytes &&
         outcomes_of(sys, a) == outcomes_of(sys, b) &&
         a.stop == engine::StopReason::Complete &&
         b.stop == engine::StopReason::Complete;
}

/// Sequential-oracle agreement: verdict-bearing fields only (frontier shape
/// and sink footprint are driver-specific — see DESIGN.md).
bool same_verdicts(const lang::System& sys, const explore::ExploreResult& a,
                   const explore::ExploreResult& b) {
  return a.stats.states == b.stats.states &&
         a.stats.transitions == b.stats.transitions &&
         a.stats.finals == b.stats.finals &&
         a.stats.blocked == b.stats.blocked &&
         outcomes_of(sys, a) == outcomes_of(sys, b) && a.stop == b.stop;
}

void add_case(rc11::bench::JsonReport& json, const std::string& name,
              const explore::ExploreResult& result, double wall_s) {
  json.add(name,
           {{"states", static_cast<double>(result.stats.states)},
            {"wall_ms", wall_s * 1e3},
            {"states_per_s",
             static_cast<double>(result.stats.states) / wall_s}});
}

void report_dist(rc11::bench::JsonReport& json) {
  for (const auto& w : workloads()) {
    explore::ExploreResult seq, w2, w4, crash;

    auto seq_opts = base_options(w);
    const double seq_s = timed_explore(w.sys, seq_opts, seq);

    auto w2_opts = base_options(w);
    w2_opts.workers = 2;
    const double w2_s = timed_explore(w.sys, w2_opts, w2);

    double w4_s = 0;
    if (w.with_w4) {
      auto w4_opts = base_options(w);
      w4_opts.workers = 4;
      w4_s = timed_explore(w.sys, w4_opts, w4);
    }

    // Kill worker 0's second dispatched batch; the supervisor re-forks the
    // slot and replays only the unacknowledged work.
    auto crash_opts = base_options(w);
    crash_opts.workers = 2;
    crash_opts.fault = engine::FaultPlan::parse("crash:2");
    const double crash_s = timed_explore(w.sys, crash_opts, crash);

    const bool identical = same_supervised(w.sys, w2, crash) &&
                           (!w.with_w4 || same_supervised(w.sys, w2, w4));
    const bool oracle_agrees = same_verdicts(w.sys, seq, w2);
    const bool recovered = crash.dist.worker_restarts >= 1 &&
                           crash.dist.batches_retried >= 1 &&
                           crash.dist.states_orphaned == 0;
    const bool ok = identical && oracle_agrees && recovered;

    std::ostringstream detail;
    detail << w.name << ": " << w2.stats.states << " states, seq "
           << seq_s * 1e3 << " ms vs 2-worker " << w2_s * 1e3
           << " ms, crash-recovered " << crash_s * 1e3 << " ms ("
           << crash.dist.worker_restarts << " restart(s), "
           << crash.dist.batches_retried << " batch(es) replayed), "
           << "supervised runs " << (identical ? "identical" : "DIFFER")
           << ", oracle " << (oracle_agrees ? "agrees" : "DISAGREES")
           << ", recovery " << (recovered ? "clean" : "DIRTY");
    rc11::bench::verdict("DW", ok, detail.str());

    add_case(json, w.name + "_seq", seq, seq_s);
    add_case(json, w.name + "_w2", w2, w2_s);
    if (w.with_w4) add_case(json, w.name + "_w4", w4, w4_s);
    add_case(json, w.name + "_w2_crash", crash, crash_s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_dist(json);
  if (!json.write("bench_dist")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
