// Tests for the text front end: round-trips through the paper's program
// syntax, semantic checks (unknown names, component/kind mismatches, the
// Exp_L locality restriction), and end-to-end agreement with the builder API
// on the litmus suite shapes.

#include <gtest/gtest.h>

#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"

namespace {

using namespace rc11;
using parser::parse_program;
using rc11::support::Error;

TEST(Parser, MinimalProgram) {
  const auto p = parse_program(R"(
    var x = 0;
    thread t {
      x := 1;
    }
  )");
  EXPECT_EQ(p.sys.num_threads(), 1u);
  EXPECT_EQ(p.thread_names, std::vector<std::string>{"t"});
  EXPECT_EQ(p.sys.code(0).size(), 1u);
  EXPECT_EQ(p.sys.locations().name(p.loc("x")), "x");
}

TEST(Parser, DeclarationsAndComponents) {
  const auto p = parse_program(R"(
    var client d = 5;
    var library glb = 0;
    lock library l;
    stack library s;
    thread t { d := 1; }
  )");
  EXPECT_EQ(p.sys.locations().component(p.loc("d")), memsem::Component::Client);
  EXPECT_EQ(p.sys.locations().component(p.loc("glb")),
            memsem::Component::Library);
  EXPECT_EQ(p.sys.locations().kind(p.loc("l")), memsem::LocKind::Lock);
  EXPECT_EQ(p.sys.locations().kind(p.loc("s")), memsem::LocKind::Stack);
  EXPECT_EQ(p.sys.locations().info(p.loc("d")).initial, 5);
}

TEST(Parser, NegativeInitialValues) {
  const auto p = parse_program(R"(
    var x = -3;
    thread t { reg r = -1; r := r + 1; }
  )");
  EXPECT_EQ(p.sys.locations().info(p.loc("x")).initial, -3);
  EXPECT_EQ(p.sys.reg_initial(0, p.reg("r").id), -1);
}

TEST(Parser, MessagePassingEndToEnd) {
  auto p = parse_program(R"(
    var d = 0;
    var f = 0;
    thread producer {
      d := 5;
      f :=R 1;
    }
    thread consumer {
      reg r1;
      reg r2;
      r1 <-A f;
      r2 <- d;
    }
  )");
  const auto result = explore::explore(p.sys);
  const auto outcomes = explore::final_register_values(
      p.sys, result, {p.reg("r1"), p.reg("r2")});
  const std::vector<std::vector<lang::Value>> expected{{0, 0}, {0, 5}, {1, 5}};
  EXPECT_EQ(outcomes, expected);
}

TEST(Parser, StackMessagePassingMatchesBuilderVersion) {
  auto p = parse_program(R"(
    var d = 0;
    stack library s;
    thread t1 {
      d := 5;
      s.pushR(1);
    }
    thread t2 {
      reg r1;
      reg r2;
      do { r1 <-A s.pop(); } until (r1 == 1);
      r2 <- d;
    }
  )");
  const auto parsed = explore::explore(p.sys);
  const auto parsed_outcomes = explore::final_register_values(
      p.sys, parsed, {p.reg("r1"), p.reg("r2")});

  auto builder_test = litmus::fig2_stack_mp_sync();
  const auto built = explore::explore(builder_test.sys);
  const auto built_outcomes = explore::final_register_values(
      builder_test.sys, built, builder_test.observed);

  EXPECT_EQ(parsed_outcomes, built_outcomes);
  EXPECT_EQ(parsed.stats.states, built.stats.states)
      << "parsed and built programs must induce identical state spaces";
}

TEST(Parser, CasAndFai) {
  auto p = parse_program(R"(
    var x = 0;
    thread t1 {
      reg ok;
      ok <- CAS(x, 0, 7);
    }
    thread t2 {
      reg old;
      old <- FAI(x);
    }
  )");
  const auto result = explore::explore(p.sys);
  const auto outcomes = explore::final_register_values(
      p.sys, result, {p.reg("ok"), p.reg("old")});
  // CAS first: ok=1, FAI returns 7.  FAI first: FAI returns 0, then CAS
  // fails (x=1).  Interleavings with failure reads of intermediate values.
  EXPECT_TRUE(explore::outcome_reachable(p.sys, result, {p.reg("ok"), p.reg("old")},
                                         {1, 7}));
  EXPECT_TRUE(explore::outcome_reachable(p.sys, result, {p.reg("ok"), p.reg("old")},
                                         {0, 0}));
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o[0] == 1 && o[1] == 0)
        << "CAS succeeded yet FAI saw the original 0 after it: impossible";
  }
}

TEST(Parser, LockMethods) {
  auto p = parse_program(R"(
    var d = 0;
    lock library l;
    thread t1 {
      l.acquire();
      d := 5;
      l.release();
    }
    thread t2 {
      reg ok;
      reg r;
      ok <- l.acquire();
      r <- d;
      l.release();
    }
  )");
  const auto result = explore::explore(p.sys);
  EXPECT_EQ(result.stats.blocked, 0u);
  const auto outcomes =
      explore::final_register_values(p.sys, result, {p.reg("r")});
  const std::vector<std::vector<lang::Value>> expected{{0}, {5}};
  EXPECT_EQ(outcomes, expected);
}

TEST(Parser, ControlFlow) {
  auto p = parse_program(R"(
    var x = 0;
    thread t {
      reg i = 3;
      reg sum;
      while (i > 0) {
        sum := sum + i;
        i := i - 1;
      }
      if (sum == 6) { x := 1; } else { x := 2; }
    }
  )");
  const auto result = explore::explore(p.sys);
  ASSERT_EQ(result.final_configs.size(), 1u);
  const auto& mem = result.final_configs[0].mem;
  EXPECT_EQ(mem.op(mem.last_op(p.loc("x"))).value, 1);
}

TEST(Parser, IfWithoutElse) {
  auto p = parse_program(R"(
    var x = 0;
    thread t {
      reg r = 1;
      if (r == 1) { x := 9; }
      r := 0;
    }
  )");
  const auto result = explore::explore(p.sys);
  ASSERT_EQ(result.final_configs.size(), 1u);
  const auto& mem = result.final_configs[0].mem;
  EXPECT_EQ(mem.op(mem.last_op(p.loc("x"))).value, 9);
}

TEST(Parser, ExpressionPrecedence) {
  auto p = parse_program(R"(
    thread t {
      reg a = 2;
      reg b = 3;
      reg r1;
      reg r2;
      reg r3;
      r1 := a + b * 2;
      r2 := (a + b) * 2;
      r3 := even(a) && !(b == 2) || a > b;
    }
  )");
  const auto result = explore::explore(p.sys);
  ASSERT_EQ(result.final_configs.size(), 1u);
  const auto& regs = result.final_configs[0].regs[0];
  EXPECT_EQ(regs[p.reg("r1").id], 8);
  EXPECT_EQ(regs[p.reg("r2").id], 10);
  EXPECT_EQ(regs[p.reg("r3").id], 1);
}

TEST(Parser, CommentsAreIgnored) {
  const auto p = parse_program(R"(
    // leading comment
    var x = 0;   // trailing comment
    thread t {
      x := 1;    // inside a thread
    }
  )");
  EXPECT_EQ(p.sys.code(0).size(), 1u);
}

// --- error reporting ----------------------------------------------------------

TEST(ParserErrors, UnknownRegister) {
  EXPECT_THROW(parse_program("var x = 0; thread t { r <- x; }"), Error);
}

TEST(ParserErrors, UnknownLocation) {
  EXPECT_THROW(parse_program("thread t { x := 1; }"), Error);
}

TEST(ParserErrors, DuplicateNames) {
  EXPECT_THROW(parse_program("var x = 0; var x = 1; thread t { x := 1; }"),
               Error);
  EXPECT_THROW(parse_program("var x = 0; thread t { reg x; x := 1; }"), Error);
}

TEST(ParserErrors, SharedVariableInExpression) {
  // The paper's Exp_L restriction: expressions are over locals only.
  EXPECT_THROW(parse_program(R"(
    var x = 0;
    var y = 0;
    thread t { y := x + 1; }
  )"),
               Error);
}

TEST(ParserErrors, KindMismatch) {
  EXPECT_THROW(parse_program(R"(
    lock library l;
    thread t { l := 1; }
  )"),
               Error);
  EXPECT_THROW(parse_program(R"(
    var x = 0;
    thread t { x.acquire(); }
  )"),
               Error);
  EXPECT_THROW(parse_program(R"(
    stack library s;
    thread t { s.release(); }
  )"),
               Error);
}

TEST(ParserErrors, ReleasingWriteToRegister) {
  EXPECT_THROW(parse_program("thread t { reg r; r :=R 1; }"), Error);
}

// --- memory-order annotations: the NA orders and their diagnostics ----------

TEST(Parser, NonAtomicAccessesParse) {
  const auto p = parse_program(R"(
    var x = 0;
    thread t {
      reg r;
      x :=NA 1;
      r <-NA x;
    }
  )");
  ASSERT_EQ(p.sys.code(0).size(), 2u);
  EXPECT_EQ(p.sys.code(0)[0].kind, lang::IKind::Store);
  EXPECT_EQ(p.sys.code(0)[0].order, memsem::MemOrder::NonAtomic);
  EXPECT_EQ(p.sys.code(0)[1].kind, lang::IKind::Load);
  EXPECT_EQ(p.sys.code(0)[1].order, memsem::MemOrder::NonAtomic);
}

namespace {

/// The malformed program must be rejected with a message that carries the
/// expected substring (the accepted-orders list, or the specific complaint)
/// and a line:col position.
void expect_order_error(const std::string& src, const std::string& needle) {
  try {
    (void)parse_program(src);
    FAIL() << "expected a parse error for: " << src;
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "'" << what << "' should mention '" << needle << "'";
    EXPECT_NE(what.find("3:"), std::string::npos)
        << "'" << what << "' should point at line 3";
  }
}

}  // namespace

TEST(ParserErrors, UnknownStoreOrderListsAcceptedOrders) {
  expect_order_error("var x = 0;\nthread t {\n  x :=RR 1;\n}",
                     "accepted orders are ':=' (relaxed)");
  expect_order_error("var x = 0;\nthread t {\n  x :=Q 1;\n}",
                     "unknown memory order ':=Q'");
}

TEST(ParserErrors, UnknownLoadOrderListsAcceptedOrders) {
  expect_order_error("var x = 0;\nthread t { reg r;\n  r <-B x;\n}",
                     "accepted orders are '<-' (relaxed)");
  expect_order_error("var x = 0;\nthread t { reg r;\n  r <-AA x;\n}",
                     "unknown memory order '<-AA'");
}

TEST(ParserErrors, MemoryOrderOnRegisterAssignment) {
  expect_order_error("thread t {\n  reg r;\n  r :=NA 1;\n}",
                     "register assignment takes no memory order");
}

TEST(ParserErrors, MemoryOrderOnRmwAndMethods) {
  expect_order_error(
      "var x = 0;\nthread t { reg r;\n  r <-A CAS(x, 0, 1);\n}",
      "CAS is always RA");
  expect_order_error("var x = 0;\nthread t { reg r;\n  r <-NA FAI(x);\n}",
                     "FAI is always RA");
  expect_order_error(
      "lock l;\nthread t { reg r;\n  r <-NA l.acquire();\n}",
      "lock methods take no <-NA annotation");
}

TEST(ParserErrors, PopOrderRestrictedToAcquire) {
  expect_order_error(
      "stack s;\nthread t { reg r;\n  r <-NA s.pop();\n}",
      "accepted orders are '<-' (relaxed) and '<-A'");
}

TEST(ParserErrors, PositionInMessage) {
  try {
    (void)parse_program("var x = 0;\nthread t {\n  x ::= 1;\n}");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos)
        << "error should point at line 3: " << e.what();
  }
}

TEST(ParserErrors, NoThreads) {
  EXPECT_THROW(parse_program("var x = 0;"), Error);
}

TEST(ParserErrors, MissingUntil) {
  EXPECT_THROW(parse_program(R"(
    thread t { reg r; do { r := 1; } while (r == 0); }
  )"),
               Error);
}


// --- library registers and text-level refinement ------------------------------

TEST(Parser, LibraryRegistersAreTagged) {
  const auto p = parse_program(R"(
    var x = 0;
    thread t {
      reg a;
      reg library b;
      a := 1;
      b := 2;
    }
  )");
  EXPECT_EQ(p.sys.reg_component(0, p.reg("a").id), memsem::Component::Client);
  EXPECT_EQ(p.sys.reg_component(0, p.reg("b").id), memsem::Component::Library);
}

TEST(Parser, TextLevelRefinementMatchesBuilderLevel) {
  // The same abstract-lock vs seqlock refinement question posed through the
  // text front end must agree with the builder-level answer (and even the
  // state counts, since the programs are instruction-for-instruction equal).
  const auto abs = parse_program(R"(
    var d1 = 0;
    var d2 = 0;
    lock library l;
    thread writer {
      reg ok0;
      ok0 <- l.acquire();
      d1 := 5;
      d2 := 5;
      l.release();
    }
    thread reader {
      reg ok1;
      reg r1;
      reg r2;
      ok1 <- l.acquire();
      r1 <- d1;
      r2 <- d2;
      l.release();
    }
  )");
  const auto conc = parse_program(R"(
    var d1 = 0;
    var d2 = 0;
    var library glb = 0;
    thread writer {
      reg ok0;
      reg library r0;
      reg library loc0;
      do {
        do { r0 <-A glb; } until (even(r0));
        loc0 <- CAS(glb, r0, r0 + 1);
      } until (loc0);
      ok0 := 1;
      d1 := 5;
      d2 := 5;
      glb :=R r0 + 2;
    }
    thread reader {
      reg ok1;
      reg r1;
      reg r2;
      reg library rr;
      reg library loc1;
      do {
        do { rr <-A glb; } until (even(rr));
        loc1 <- CAS(glb, rr, rr + 1);
      } until (loc1);
      ok1 := 1;
      r1 <- d1;
      r2 <- d2;
      glb :=R rr + 2;
    }
  )");
  const auto sim = rc11::refinement::check_forward_simulation(abs.sys, conc.sys);
  EXPECT_TRUE(sim.holds) << sim.diagnosis;

  // Cross-check against the builder-level systems.
  rc11::locks::AbstractLock abs_lock;
  const auto abs_built =
      rc11::locks::instantiate(rc11::locks::fig7_client(), abs_lock);
  rc11::locks::SeqLock seq;
  const auto conc_built =
      rc11::locks::instantiate(rc11::locks::fig7_client(), seq);
  const auto sim_built =
      rc11::refinement::check_forward_simulation(abs_built, conc_built);
  EXPECT_EQ(sim.abstract_states, sim_built.abstract_states);
  EXPECT_EQ(sim.concrete_states, sim_built.concrete_states);
  EXPECT_EQ(sim.candidate_pairs, sim_built.candidate_pairs);
}


// --- outline blocks -------------------------------------------------------------

TEST(OutlineParser, Fig3OutlineFromTextIsValid) {
  auto p = parse_program(R"(
    var d = 0;
    stack library s;
    thread producer {
      d := 5;
      s.pushR(1);
    }
    thread consumer {
      reg r1;
      reg r2;
      do { r1 <-A s.pop(); } until (r1 == 1);
      r2 <- d;
    }
    outline {
      at producer 0: !canpop(s, 1) && definite(producer, d, 0) && popempty(s);
      at producer 1: !canpop(s, 1) && definite(producer, d, 5);
      at consumer 1: r1 == 1 ==> definite(consumer, d, 5);
      at consumer 2: definite(consumer, d, 5);
      post consumer: r2 == 5;
    }
  )");
  ASSERT_TRUE(p.outline.has_value());
  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto result = og::check_outline(p.sys, *p.outline, opts);
  EXPECT_TRUE(result.valid) << (result.failures.empty()
                                    ? ""
                                    : result.failures[0].obligation);
}

TEST(OutlineParser, BrokenOutlineFromTextIsRejected) {
  auto p = parse_program(R"(
    var d = 0;
    thread t0 { d := 1; }
    outline { post t0: done(t0) ==> false; }
  )");
  ASSERT_TRUE(p.outline.has_value());
  const auto result = og::check_outline(p.sys, *p.outline);
  EXPECT_FALSE(result.valid);
}

TEST(OutlineParser, InvariantAndPcAtoms) {
  auto p = parse_program(R"(
    var x = 0;
    lock library l;
    thread a {
      l.acquire();
      x := 1;
      l.release();
    }
    thread b {
      l.acquire();
      x := 2;
      l.release();
    }
    outline {
      invariant !(pc(a) in {1, 2} && pc(b) in {1, 2});
      at a 1: held(a, l);
      at b 1: held(b, l);
    }
  )");
  ASSERT_TRUE(p.outline.has_value());
  const auto result = og::check_outline(p.sys, *p.outline);
  EXPECT_TRUE(result.valid);
}

TEST(OutlineParser, CoveredHiddenAndCondAtoms) {
  auto p = parse_program(R"(
    var x = 0;
    var y = 0;
    thread w {
      reg ok;
      y := 7;
      ok <- CAS(x, 0, 1);
    }
    outline {
      at w 2: hidden(x, 0) && covered(x, 1);
      invariant cond(w, x, 99, y, 0);  // vacuous: no write of 99
    }
  )");
  ASSERT_TRUE(p.outline.has_value());
  const auto result = og::check_outline(p.sys, *p.outline);
  EXPECT_TRUE(result.valid) << (result.failures.empty()
                                    ? ""
                                    : result.failures[0].obligation);
}

TEST(OutlineParser, Errors) {
  // unknown thread
  EXPECT_THROW(parse_program(R"(
    thread t { reg r; r := 1; }
    outline { post ghost: true; }
  )"),
               Error);
  // unknown atom
  EXPECT_THROW(parse_program(R"(
    thread t { reg r; r := 1; }
    outline { post t: frobnicate(t); }
  )"),
               Error);
  // statement after the outline block
  EXPECT_THROW(parse_program(R"(
    thread t { reg r; r := 1; }
    outline { post t: true; }
    thread late { reg q; q := 1; }
  )"),
               Error);
  // pc annotation out of range
  EXPECT_THROW(parse_program(R"(
    thread t { reg r; r := 1; }
    outline { at t 99: true; }
  )"),
               Error);
}

}  // namespace
