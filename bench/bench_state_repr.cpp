// Experiment F6 (microbenchmarks): the state-representation hot path in
// isolation — canonical encoding with and without buffer reuse, visited-set
// insertion into the interned arena layout versus the former
// unordered_map-of-vectors layout, and successor generation with pooled
// versus freshly allocated Steps.  The macro numbers (states/s, bytes/state
// on whole explorations) live in bench_semantics_throughput; this file
// attributes them to the individual mechanisms.

#include <benchmark/benchmark.h>

#include <span>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "support/intern.hpp"

namespace {

using namespace rc11;

/// Every reachable configuration of `sys`, collected once per benchmark so
/// the timed loops run over a realistic mix of states (not just the root).
std::vector<lang::Config> reachable_configs(const lang::System& sys) {
  std::vector<lang::Config> out;
  const auto reach = explore::visit_reachable(
      sys, explore::ReachOptions{},
      [&](const lang::Config& cfg, std::uint64_t, std::span<const lang::Step>) {
        out.push_back(cfg);
        return true;
      });
  benchmark::DoNotOptimize(reach.stats.states);
  return out;
}

lang::System ticket_system(unsigned threads, unsigned rounds) {
  locks::TicketLock lock;
  return locks::instantiate(locks::mgc_client(threads, rounds), lock);
}

/// The pre-PR visited-set layout, replicated here as the baseline: a digest
/// index over per-state heap-allocated encoding vectors.  Kept only for the
/// comparison — production code uses support::InternedWordSet.
class LegacyVisitedSet {
 public:
  bool insert(const std::vector<std::uint64_t>& enc) {
    auto& bucket = index_[support::hash_words(enc)];
    for (const auto idx : bucket) {
      if (storage_[idx] == enc) return false;
    }
    bucket.push_back(storage_.size());
    storage_.push_back(enc);
    return true;
  }

  /// Heap footprint, counted generously *low* (node/allocator overhead of
  /// the unordered_map is approximated by its value payloads only), so the
  /// reported ratio against InternedWordSet::bytes() is a lower bound.
  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = storage_.capacity() * sizeof(std::vector<std::uint64_t>);
    for (const auto& v : storage_) b += v.capacity() * sizeof(std::uint64_t);
    b += index_.bucket_count() * sizeof(void*);
    for (const auto& [digest, bucket] : index_) {
      b += sizeof(digest) + sizeof(bucket) + sizeof(void*) +
           bucket.capacity() * sizeof(std::size_t);
    }
    return b;
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
  std::vector<std::vector<std::uint64_t>> storage_;
};

// --- encoding: fresh vector per state vs reused scratch buffer --------------

void BM_EncodeFresh(benchmark::State& state) {
  const auto cfgs = reachable_configs(ticket_system(2, 2));
  for (auto _ : state) {
    std::uint64_t words = 0;
    for (const auto& cfg : cfgs) {
      const auto enc = cfg.encode();
      words += enc.size();
    }
    benchmark::DoNotOptimize(words);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfgs.size()));
}
BENCHMARK(BM_EncodeFresh);

void BM_EncodeInto(benchmark::State& state) {
  const auto cfgs = reachable_configs(ticket_system(2, 2));
  std::vector<std::uint64_t> scratch;
  for (auto _ : state) {
    std::uint64_t words = 0;
    for (const auto& cfg : cfgs) {
      scratch.clear();
      cfg.encode_into(scratch);
      words += scratch.size();
    }
    benchmark::DoNotOptimize(words);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfgs.size()));
}
BENCHMARK(BM_EncodeInto);

// --- visited set: interned arena vs legacy map-of-vectors -------------------

std::vector<std::vector<std::uint64_t>> all_encodings(const lang::System& sys) {
  std::vector<std::vector<std::uint64_t>> encs;
  for (const auto& cfg : reachable_configs(sys)) encs.push_back(cfg.encode());
  return encs;
}

void BM_VisitedInsertInterned(benchmark::State& state) {
  const auto encs = all_encodings(ticket_system(2, 2));
  for (auto _ : state) {
    support::InternedWordSet set;
    for (const auto& enc : encs) set.insert(enc);
    // Second pass: every lookup is a hit (the explorer's steady state).
    for (const auto& enc : encs) benchmark::DoNotOptimize(set.insert(enc));
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * encs.size()));
}
BENCHMARK(BM_VisitedInsertInterned);

void BM_VisitedInsertLegacy(benchmark::State& state) {
  const auto encs = all_encodings(ticket_system(2, 2));
  for (auto _ : state) {
    LegacyVisitedSet set;
    for (const auto& enc : encs) set.insert(enc);
    for (const auto& enc : encs) benchmark::DoNotOptimize(set.insert(enc));
    benchmark::DoNotOptimize(set.bytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * encs.size()));
}
BENCHMARK(BM_VisitedInsertLegacy);

// --- successor generation: pooled StepBuffer vs fresh vectors ---------------

void BM_SuccessorsVector(benchmark::State& state) {
  const auto sys = ticket_system(2, 2);
  const auto cfgs = reachable_configs(sys);
  for (auto _ : state) {
    std::uint64_t steps = 0;
    for (const auto& cfg : cfgs) {
      steps += lang::successors(sys, cfg).size();
    }
    benchmark::DoNotOptimize(steps);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfgs.size()));
}
BENCHMARK(BM_SuccessorsVector);

void BM_SuccessorsPooled(benchmark::State& state) {
  const auto sys = ticket_system(2, 2);
  const auto cfgs = reachable_configs(sys);
  lang::StepBuffer buf;
  for (auto _ : state) {
    std::uint64_t steps = 0;
    for (const auto& cfg : cfgs) {
      lang::successors(sys, cfg, buf);
      steps += buf.size();
    }
    benchmark::DoNotOptimize(steps);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfgs.size()));
}
BENCHMARK(BM_SuccessorsPooled);

// --- bytes/state: one verdict line comparing the two layouts ----------------

void report_bytes_per_state(rc11::bench::JsonReport& json) {
  const auto sys = ticket_system(2, 2);
  const auto encs = all_encodings(sys);
  support::InternedWordSet interned;
  LegacyVisitedSet legacy;
  for (const auto& enc : encs) {
    interned.insert(enc);
    legacy.insert(enc);
  }
  const auto n = static_cast<double>(encs.size());
  const double interned_bps = static_cast<double>(interned.bytes()) / n;
  const double legacy_bps = static_cast<double>(legacy.bytes()) / n;
  const double ratio = legacy_bps / interned_bps;
  std::ostringstream detail;
  detail << "ticket mgc(2,2), " << encs.size()
         << " states: interned visited set " << interned.bytes() << " B ("
         << interned_bps << " B/state, payload "
         << static_cast<double>(interned.arena_bytes()) / n
         << " B/state), legacy map-of-vectors layout >= " << legacy.bytes()
         << " B (" << legacy_bps << " B/state) — " << ratio << "x smaller";
  rc11::bench::verdict("F6-micro", ratio >= 2.0, detail.str());
  json.add("visited_bytes_per_state",
           {{"states", n},
            {"interned_bytes_per_state", interned_bps},
            {"legacy_bytes_per_state", legacy_bps},
            {"reduction_ratio", ratio}});
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_bytes_per_state(json);
  if (!json.write("bench_state_repr")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
