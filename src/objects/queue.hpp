// rc11lib/objects/queue.hpp
//
// An abstract synchronising FIFO queue — the third object type built on the
// Section 4 discipline (after the Fig. 6 lock and the stack of Figs. 1-3):
//
//   * every enqueue takes a maximal timestamp on the queue's location
//     (totally ordered history);
//   * a dequeue consumes (covers) the *oldest uncovered* enqueue — FIFO over
//     the total order — and, when the dequeue is acquiring and the matched
//     enqueue releasing, synchronises with the enqueue's modification view;
//   * a dequeue on an empty queue returns kQueueEmpty without mutating.
//
// The queue exists to demonstrate that the object framework and the
// refinement machinery are order-discipline-agnostic: the only difference
// from the stack is *which* uncovered entry a consume matches.

#pragma once

#include <optional>

#include "memsem/state.hpp"

namespace rc11::objects {

using memsem::LocId;
using memsem::MemState;
using memsem::OpId;
using memsem::ThreadId;
using memsem::Value;

/// The oldest uncovered enqueue (the element a dequeue returns), if any.
[[nodiscard]] std::optional<OpId> queue_front(const MemState& mem, LocId queue);

/// True iff a dequeue would return kQueueEmpty.
[[nodiscard]] bool queue_empty(const MemState& mem, LocId queue);

/// Enqueues `v` (releasing when `releasing` — enq^R).
OpId queue_enqueue(MemState& mem, ThreadId t, LocId queue, Value v,
                   bool releasing);

/// Dequeues: consumes the front enqueue and returns its value, synchronising
/// when the dequeue acquires and the enqueue releases; returns kQueueEmpty on
/// an empty queue (state unchanged).
Value queue_dequeue(MemState& mem, ThreadId t, LocId queue, bool acquiring);

/// Number of uncovered enqueues.
[[nodiscard]] std::size_t queue_size(const MemState& mem, LocId queue);

}  // namespace rc11::objects
