#include "lang/system.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace rc11::lang {

using memsem::LocKind;

// ---------------------------------------------------------------------------
// System
// ---------------------------------------------------------------------------

LocId System::client_var(std::string_view name, Value initial) {
  return locs_.add_var(name, Component::Client, initial);
}

LocId System::library_var(std::string_view name, Value initial) {
  return locs_.add_var(name, Component::Library, initial);
}

LocId System::client_lock(std::string_view name) {
  return locs_.add_object(name, Component::Client, LocKind::Lock);
}

LocId System::library_lock(std::string_view name) {
  return locs_.add_object(name, Component::Library, LocKind::Lock);
}

LocId System::client_stack(std::string_view name) {
  return locs_.add_object(name, Component::Client, LocKind::Stack);
}

LocId System::library_stack(std::string_view name) {
  return locs_.add_object(name, Component::Library, LocKind::Stack);
}

LocId System::client_queue(std::string_view name) {
  return locs_.add_object(name, Component::Client, LocKind::Queue);
}

LocId System::library_queue(std::string_view name) {
  return locs_.add_object(name, Component::Library, LocKind::Queue);
}

ThreadBuilder System::thread() {
  const auto t = static_cast<ThreadId>(code_.size());
  code_.emplace_back();
  regs_.emplace_back();
  return ThreadBuilder{*this, t};
}

std::string describe_instr(const System& sys, ThreadId t, const Instr& in) {
  const auto& locs = sys.locations();
  const auto reg = [&](RegId r) { return sys.reg_name(t, r); };
  std::ostringstream os;
  switch (in.kind) {
    case IKind::Assign:
      os << reg(in.dst) << " := " << in.e1.to_string();
      break;
    case IKind::Load:
      os << reg(in.dst) << " <-"
         << (in.order == MemOrder::Acquire     ? "A "
             : in.order == MemOrder::NonAtomic ? "NA "
                                               : " ")
         << locs.name(in.loc);
      break;
    case IKind::Store:
      os << locs.name(in.loc) << " :="
         << (in.order == MemOrder::Release     ? "R "
             : in.order == MemOrder::NonAtomic ? "NA "
                                               : " ")
         << in.e1.to_string();
      break;
    case IKind::Cas:
      os << reg(in.dst) << " <- CAS(" << locs.name(in.loc) << ", "
         << in.e2.to_string() << ", " << in.e3.to_string() << ")";
      break;
    case IKind::Fai:
      os << reg(in.dst) << " <- FAI(" << locs.name(in.loc) << ")";
      break;
    case IKind::LockAcquire:
      os << locs.name(in.loc) << ".Acquire()";
      break;
    case IKind::LockRelease:
      os << locs.name(in.loc) << ".Release()";
      break;
    case IKind::Push:
      os << locs.name(in.loc)
         << (locs.kind(in.loc) == LocKind::Queue ? ".enq" : ".push")
         << (in.order == MemOrder::Release ? "R(" : "(") << in.e1.to_string()
         << ")";
      break;
    case IKind::Pop:
      os << reg(in.dst) << " <- " << locs.name(in.loc)
         << (locs.kind(in.loc) == LocKind::Queue ? ".deq" : ".pop")
         << (in.order == MemOrder::Acquire ? "A" : "") << "()";
      break;
    case IKind::Branch:
      os << "if " << in.e1.to_string() << " goto " << in.target;
      break;
    case IKind::Jump:
      os << "goto " << in.target;
      break;
  }
  return os.str();
}

std::string System::disassemble() const {
  std::ostringstream os;
  for (ThreadId t = 0; t < num_threads(); ++t) {
    os << "thread " << t << ":\n";
    const auto& code = code_[t];
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
      const Instr& in = code[pc];
      os << "  " << pc << ": ";
      if (!in.label.empty()) {
        os << in.label;
      } else {
        os << describe_instr(*this, t, in);
      }
      os << "\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// ThreadBuilder
// ---------------------------------------------------------------------------

Reg ThreadBuilder::reg(std::string_view name, Value initial, Component comp) {
  auto& regs = sys_->regs_[thread_];
  for (const auto& existing : regs) {
    support::require(existing.name != name, "duplicate register ", name,
                     " in thread ", thread_);
  }
  regs.push_back({std::string{name}, comp, initial});
  return Reg{thread_, static_cast<RegId>(regs.size() - 1)};
}

std::uint32_t ThreadBuilder::here() const {
  return static_cast<std::uint32_t>(sys_->code_[thread_].size());
}

std::uint32_t ThreadBuilder::emit(Instr instr) {
  const auto pc = here();
  sys_->code_[thread_].push_back(std::move(instr));
  return pc;
}

void ThreadBuilder::patch_target(std::uint32_t pc, std::uint32_t target) {
  sys_->code_[thread_].at(pc).target = target;
}

namespace {

void check_reg_thread(const Reg& r, ThreadId t) {
  RC11_REQUIRE(r.thread == t, "register used in a foreign thread");
}

}  // namespace

ThreadBuilder& ThreadBuilder::assign(Reg r, Expr e, std::string_view label) {
  check_reg_thread(r, thread_);
  Instr in;
  in.kind = IKind::Assign;
  in.dst = r.id;
  in.has_dst = true;
  in.e1 = std::move(e);
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::load(Reg r, LocId x, std::string_view label) {
  check_reg_thread(r, thread_);
  Instr in;
  in.kind = IKind::Load;
  in.dst = r.id;
  in.has_dst = true;
  in.loc = x;
  in.order = MemOrder::Relaxed;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::load_acq(Reg r, LocId x, std::string_view label) {
  load(r, x, label);
  sys_->code_[thread_].back().order = MemOrder::Acquire;
  return *this;
}

ThreadBuilder& ThreadBuilder::load_na(Reg r, LocId x, std::string_view label) {
  load(r, x, label);
  sys_->code_[thread_].back().order = MemOrder::NonAtomic;
  return *this;
}

ThreadBuilder& ThreadBuilder::store(LocId x, Expr e, std::string_view label) {
  Instr in;
  in.kind = IKind::Store;
  in.loc = x;
  in.e1 = std::move(e);
  in.order = MemOrder::Relaxed;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::store_rel(LocId x, Expr e, std::string_view label) {
  store(x, std::move(e), label);
  sys_->code_[thread_].back().order = MemOrder::Release;
  return *this;
}

ThreadBuilder& ThreadBuilder::store_na(LocId x, Expr e, std::string_view label) {
  store(x, std::move(e), label);
  sys_->code_[thread_].back().order = MemOrder::NonAtomic;
  return *this;
}

ThreadBuilder& ThreadBuilder::cas(Reg r, LocId x, Expr expected, Expr desired,
                                  std::string_view label) {
  check_reg_thread(r, thread_);
  Instr in;
  in.kind = IKind::Cas;
  in.dst = r.id;
  in.has_dst = true;
  in.loc = x;
  in.e2 = std::move(expected);
  in.e3 = std::move(desired);
  in.order = MemOrder::AcqRel;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::fai(Reg r, LocId x, std::string_view label) {
  check_reg_thread(r, thread_);
  Instr in;
  in.kind = IKind::Fai;
  in.dst = r.id;
  in.has_dst = true;
  in.loc = x;
  in.order = MemOrder::AcqRel;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::acquire(LocId lock, std::optional<Reg> r,
                                      std::string_view label) {
  Instr in;
  in.kind = IKind::LockAcquire;
  in.loc = lock;
  if (r) {
    check_reg_thread(*r, thread_);
    in.dst = r->id;
    in.has_dst = true;
  }
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::acquire_version(LocId lock, Reg r,
                                              std::string_view label) {
  acquire(lock, r, label);
  sys_->code_[thread_].back().capture_version = true;
  return *this;
}

ThreadBuilder& ThreadBuilder::release(LocId lock, std::string_view label) {
  Instr in;
  in.kind = IKind::LockRelease;
  in.loc = lock;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::push(LocId stack, Expr e, std::string_view label) {
  Instr in;
  in.kind = IKind::Push;
  in.loc = stack;
  in.e1 = std::move(e);
  in.order = MemOrder::Relaxed;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::push_rel(LocId stack, Expr e, std::string_view label) {
  push(stack, std::move(e), label);
  sys_->code_[thread_].back().order = MemOrder::Release;
  return *this;
}

ThreadBuilder& ThreadBuilder::pop(Reg r, LocId stack, std::string_view label) {
  check_reg_thread(r, thread_);
  Instr in;
  in.kind = IKind::Pop;
  in.dst = r.id;
  in.has_dst = true;
  in.loc = stack;
  in.order = MemOrder::Relaxed;
  in.label = label;
  emit(std::move(in));
  return *this;
}

ThreadBuilder& ThreadBuilder::pop_acq(Reg r, LocId stack, std::string_view label) {
  pop(r, stack, label);
  sys_->code_[thread_].back().order = MemOrder::Acquire;
  return *this;
}

ThreadBuilder& ThreadBuilder::enqueue(LocId queue, Expr e,
                                      std::string_view label) {
  return push(queue, std::move(e), label);
}

ThreadBuilder& ThreadBuilder::enqueue_rel(LocId queue, Expr e,
                                          std::string_view label) {
  return push_rel(queue, std::move(e), label);
}

ThreadBuilder& ThreadBuilder::dequeue(Reg r, LocId queue,
                                      std::string_view label) {
  return pop(r, queue, label);
}

ThreadBuilder& ThreadBuilder::dequeue_acq(Reg r, LocId queue,
                                          std::string_view label) {
  return pop_acq(r, queue, label);
}

ThreadBuilder& ThreadBuilder::if_else(Expr cond,
                                      const std::function<void()>& then_body,
                                      const std::function<void()>& else_body) {
  // if !cond goto ELSE; <then>; goto END; ELSE: <else>; END:
  Instr br;
  br.kind = IKind::Branch;
  br.e1 = !std::move(cond);
  const auto to_else = emit(std::move(br));
  then_body();
  if (else_body) {
    Instr jp;
    jp.kind = IKind::Jump;
    const auto to_end = emit(std::move(jp));
    patch_target(to_else, here());
    else_body();
    patch_target(to_end, here());
  } else {
    patch_target(to_else, here());
  }
  return *this;
}

ThreadBuilder& ThreadBuilder::while_(Expr cond, const std::function<void()>& body) {
  // HEAD: if !cond goto END; <body>; goto HEAD; END:
  const auto head = here();
  Instr br;
  br.kind = IKind::Branch;
  br.e1 = !std::move(cond);
  const auto to_end = emit(std::move(br));
  body();
  Instr jp;
  jp.kind = IKind::Jump;
  jp.target = head;
  emit(std::move(jp));
  patch_target(to_end, here());
  return *this;
}

ThreadBuilder& ThreadBuilder::do_until(const std::function<void()>& body, Expr cond) {
  // HEAD: <body>; if !cond goto HEAD
  const auto head = here();
  body();
  Instr br;
  br.kind = IKind::Branch;
  br.e1 = !std::move(cond);
  br.target = head;
  emit(std::move(br));
  return *this;
}

}  // namespace rc11::lang
