// Tests for the RC11 RAR memory semantics (Fig. 5 of the paper): observable
// write sets, READ / WRITE / UPDATE transitions, view merging (the ⊗
// operator), cross-component view transfer, covered-set enforcement, fresh
// timestamps, and the canonical state encoding.

#include <gtest/gtest.h>

#include "memsem/location.hpp"
#include "memsem/state.hpp"
#include <vector>

namespace {

using namespace rc11::memsem;
using rc11::support::Rational;

struct TwoVarFixture : ::testing::Test {
  LocationTable locs;
  LocId d, f, g;

  TwoVarFixture() {
    d = locs.add_var("d", Component::Client, 0);
    f = locs.add_var("f", Component::Client, 0);
    g = locs.add_var("g", Component::Library, 7);
  }

  MemState make(SemanticsOptions opts = {}) { return MemState{locs, 2, opts}; }
};

TEST_F(TwoVarFixture, InitialStateShape) {
  const MemState m = make();
  EXPECT_EQ(m.num_ops(), 3u);
  for (const LocId loc : {d, f, g}) {
    ASSERT_EQ(m.mo(loc).size(), 1u);
    const Op& init = m.op(m.mo(loc)[0]);
    EXPECT_EQ(init.kind, OpKind::Init);
    EXPECT_EQ(init.ts, Rational{0});
    EXPECT_FALSE(init.covered);
  }
  EXPECT_EQ(m.op(m.mo(g)[0]).value, 7);
  // Every thread's view of every location is the init operation.
  for (ThreadId t = 0; t < 2; ++t) {
    for (const LocId loc : {d, f, g}) {
      EXPECT_EQ(m.view_front(t, loc), m.mo(loc)[0]);
    }
  }
  // Init mviews span both components (γ_Init.mview = tview_C ∪ tview_L).
  const Op& init_d = m.op(m.mo(d)[0]);
  ASSERT_EQ(init_d.mview.size(), locs.size());
  EXPECT_EQ(init_d.mview[g], m.mo(g)[0]);
}

TEST_F(TwoVarFixture, WriteAppendsAndAdvancesView) {
  MemState m = make();
  const OpId w = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  EXPECT_EQ(m.mo(d).size(), 2u);
  EXPECT_EQ(m.view_front(0, d), w);
  EXPECT_EQ(m.op(w).value, 5);
  EXPECT_FALSE(m.op(w).releasing);
  EXPECT_GT(m.op(w).ts, Rational{0});
  // Thread 1 still sees both writes (its view front is init).
  EXPECT_EQ(m.observable(1, d).size(), 2u);
  // Thread 0 can no longer observe the init write.
  EXPECT_EQ(m.observable(0, d).size(), 1u);
}

TEST_F(TwoVarFixture, WriteInsertsImmediatelyAfterChosenWrite) {
  MemState m = make();
  // Thread 0 writes 1 after init; thread 1 (whose view is still init) then
  // writes 2 *after init*, which must slot in between init and 1.
  const OpId w1 = m.write(0, d, 1, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId w2 = m.write(1, d, 2, MemOrder::Relaxed, m.mo(d)[0]);
  ASSERT_EQ(m.mo(d).size(), 3u);
  EXPECT_EQ(m.mo(d)[1], w2);
  EXPECT_EQ(m.mo(d)[2], w1);
  // Timestamps agree with modification order (fresh_γ(q, q')).
  EXPECT_LT(m.op(m.mo(d)[0]).ts, m.op(w2).ts);
  EXPECT_LT(m.op(w2).ts, m.op(w1).ts);
  // Ranks stay in sync after the middle insertion.
  EXPECT_EQ(m.rank(m.mo(d)[0]), 0u);
  EXPECT_EQ(m.rank(w2), 1u);
  EXPECT_EQ(m.rank(w1), 2u);
}

TEST_F(TwoVarFixture, RelaxedReadDoesNotSynchronise) {
  MemState m = make();
  m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wf = m.write(0, f, 1, MemOrder::Release, m.mo(f)[0]);
  // Thread 1 reads the releasing write of f *relaxed*: no synchronisation,
  // its view of d stays at init, so the stale read of d remains possible.
  const Value v = m.read(1, f, wf, MemOrder::Relaxed);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(m.view_front(1, f), wf);
  EXPECT_EQ(m.observable(1, d).size(), 2u) << "stale d must remain observable";
}

TEST_F(TwoVarFixture, AcquireOfReleasingWriteSynchronises) {
  MemState m = make();
  const OpId wd = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wf = m.write(0, f, 1, MemOrder::Release, m.mo(f)[0]);
  const Value v = m.read(1, f, wf, MemOrder::Acquire);
  EXPECT_EQ(v, 1);
  // Message passing: thread 1's view of d advanced to the write of 5.
  EXPECT_EQ(m.view_front(1, d), wd);
  const auto obs = m.observable(1, d);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(m.op(obs[0]).value, 5);
}

TEST_F(TwoVarFixture, AcquireOfRelaxedWriteDoesNotSynchronise) {
  MemState m = make();
  m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wf = m.write(0, f, 1, MemOrder::Relaxed, m.mo(f)[0]);
  m.read(1, f, wf, MemOrder::Acquire);
  EXPECT_EQ(m.observable(1, d).size(), 2u)
      << "acquire of a relaxed write must not create synchronisation";
}

TEST_F(TwoVarFixture, SynchronisationTransfersAcrossComponents) {
  MemState m = make();
  // Thread 0: writes the *client* variable d, then releases the *library*
  // variable g.  Thread 1 acquires g: its view of the client variable d
  // must be updated too (the paper's ctview update).
  const OpId wd = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wg = m.write(0, g, 1, MemOrder::Release, m.mo(g)[0]);
  m.read(1, g, wg, MemOrder::Acquire);
  EXPECT_EQ(m.view_front(1, d), wd);
}

TEST_F(TwoVarFixture, AblationA1SuppressesCrossComponentTransfer) {
  SemanticsOptions opts;
  opts.cross_component_view_transfer = false;
  MemState m = make(opts);
  m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wg = m.write(0, g, 1, MemOrder::Release, m.mo(g)[0]);
  m.read(1, g, wg, MemOrder::Acquire);
  // Library-internal view of g advanced, but the client view of d did not.
  EXPECT_EQ(m.view_front(1, g), wg);
  EXPECT_EQ(m.view_front(1, d), m.mo(d)[0]);
}

TEST_F(TwoVarFixture, ViewMergeKeepsLaterEntryPerLocation) {
  MemState m = make();
  // Thread 1 writes d; thread 0 writes f (release).  Thread 1 acquiring f
  // must keep its *own* later view of d (the ⊗ operator takes the later of
  // each entry, it does not overwrite wholesale).
  const OpId wd1 = m.write(1, d, 9, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wf = m.write(0, f, 1, MemOrder::Release, m.mo(f)[0]);
  m.read(1, f, wf, MemOrder::Acquire);
  EXPECT_EQ(m.view_front(1, d), wd1);
}

TEST_F(TwoVarFixture, UpdateCoversAndSitsAdjacent) {
  MemState m = make();
  const OpId init = m.mo(d)[0];
  const OpId u = m.update(0, d, init, 1);
  EXPECT_TRUE(m.op(init).covered);
  EXPECT_EQ(m.rank(u), 1u);
  EXPECT_EQ(m.op(u).kind, OpKind::Update);
  EXPECT_EQ(m.op(u).read_value, 0);
  EXPECT_EQ(m.op(u).value, 1);
  EXPECT_TRUE(m.op(u).releasing) << "upd^RA is a releasing write";
}

TEST_F(TwoVarFixture, CoveredWriteCannotBeUpdatedAgain) {
  MemState m = make();
  const OpId init = m.mo(d)[0];
  m.update(0, d, init, 1);
  // Thread 1 may still *read* the covered write, but it is not a valid
  // placement target any more.
  auto writable = m.observable_uncovered(1, d);
  for (const OpId w : writable) {
    EXPECT_NE(w, init);
  }
  auto readable = m.observable(1, d);
  EXPECT_EQ(readable.size(), 2u) << "covered writes remain readable";
}

TEST_F(TwoVarFixture, AblationA2DisablesCoverEnforcement) {
  SemanticsOptions opts;
  opts.enforce_covered = false;
  MemState m = make(opts);
  const OpId init = m.mo(d)[0];
  m.update(0, d, init, 1);
  auto writable = m.observable_uncovered(1, d);
  EXPECT_TRUE(std::find(writable.begin(), writable.end(), init) !=
              writable.end())
      << "with enforcement off, the covered write is a placement target again";
}

TEST_F(TwoVarFixture, UpdateOfReleasingWriteSynchronises) {
  MemState m = make();
  const OpId wd = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wf = m.write(0, f, 1, MemOrder::Release, m.mo(f)[0]);
  m.update(1, f, wf, 2);
  EXPECT_EQ(m.view_front(1, d), wd)
      << "an update reading a releasing write synchronises like an acquire";
}

TEST_F(TwoVarFixture, UpdateChainsFormAtomicHistory) {
  MemState m = make();
  OpId cur = m.mo(d)[0];
  for (int i = 1; i <= 5; ++i) {
    cur = m.update(static_cast<ThreadId>(i % 2), d, cur, i);
  }
  // All but the last operation are covered; values form the sequence 1..5.
  const auto order = m.mo(d);
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_TRUE(m.op(order[i]).covered);
  }
  EXPECT_FALSE(m.op(order.back()).covered);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_EQ(m.op(order[i]).value, static_cast<Value>(i));
    EXPECT_EQ(m.op(order[i]).read_value, static_cast<Value>(i - 1));
  }
}

TEST_F(TwoVarFixture, MviewRecordsWriterViewAcrossComponents) {
  MemState m = make();
  const OpId wd = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  const OpId wg = m.write(0, g, 1, MemOrder::Release, m.mo(g)[0]);
  const Op& op = m.op(wg);
  EXPECT_EQ(op.mview[d], wd) << "mview must record the client-side view";
  EXPECT_EQ(op.mview[g], wg) << "mview includes the new write itself";
}

// --- encoding / hashing ----------------------------------------------------

TEST_F(TwoVarFixture, EncodingIdentifiesIsomorphicStates) {
  // Two different interleavings that produce order-isomorphic histories must
  // encode identically under canonical timestamps.
  MemState a = make();
  a.write(0, d, 1, MemOrder::Relaxed, a.mo(d)[0]);

  MemState b = make();
  b.write(0, f, 3, MemOrder::Relaxed, b.mo(f)[0]);  // detour on f
  // Reset-like second state is NOT possible; instead compare two states
  // whose d histories were built the same way.
  MemState a2 = make();
  a2.write(0, d, 1, MemOrder::Relaxed, a2.mo(d)[0]);

  std::vector<std::uint64_t> ea, ea2, eb;
  a.encode(ea);
  a2.encode(ea2);
  b.encode(eb);
  EXPECT_EQ(ea, ea2);
  EXPECT_NE(ea, eb);
}

TEST_F(TwoVarFixture, CanonicalEncodingIgnoresTimestampMagnitudes) {
  // State 1: write after init (timestamp 1).  State 2: two writes after
  // init, the first covered?  No — instead build differing timestamps with
  // identical order structure: insert-at-end vs insert-in-middle histories
  // differ structurally, so here we check the simplest case: two runs with
  // identical operations have identical encodings and hashes.
  MemState a = make();
  a.write(0, d, 1, MemOrder::Relaxed, a.mo(d)[0]);
  MemState b = make();
  b.write(0, d, 1, MemOrder::Relaxed, b.mo(d)[0]);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST_F(TwoVarFixture, NonCanonicalEncodingSeparatesTimestampVariants) {
  SemanticsOptions opts;
  opts.canonical_timestamps = false;
  // Run A: thread 0 writes 1 then 2 (2 sits at rank 2, timestamp 2).
  MemState a{locs, 2, opts};
  const OpId a1 = a.write(0, d, 1, MemOrder::Relaxed, a.mo(d)[0]);
  a.write(0, d, 2, MemOrder::Relaxed, a1);
  // Run B: thread 0 writes 2 "after init" first? Not expressible — instead:
  // thread 0 writes 2 directly after init, then thread 1 writes 1 after
  // init, landing *between* init and 2 with a fractional timestamp.  The
  // resulting order (init, 1, 2) is isomorphic to run A but timestamps
  // differ, so the non-canonical encodings must differ.
  MemState b{locs, 2, opts};
  b.write(0, d, 2, MemOrder::Relaxed, b.mo(d)[0]);
  b.write(1, d, 1, MemOrder::Relaxed, b.mo(d)[0]);

  // Sanity: same order structure (values 1 then 2 after init)...
  ASSERT_EQ(a.op(a.mo(d)[1]).value, 1);
  ASSERT_EQ(b.op(b.mo(d)[1]).value, 1);
  ASSERT_EQ(a.op(a.mo(d)[2]).value, 2);
  ASSERT_EQ(b.op(b.mo(d)[2]).value, 2);

  std::vector<std::uint64_t> ea, eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_NE(ea, eb) << "raw timestamps must distinguish the two histories";

  // ...whereas canonical encodings identify them *if* the writer threads
  // also agreed.  Here they differ by writer thread, so instead check the
  // timestamp values directly.
  EXPECT_EQ(a.op(a.mo(d)[1]).ts, Rational{1});
  EXPECT_EQ(b.op(b.mo(d)[1]).ts, (Rational{1, 2}));
}

TEST_F(TwoVarFixture, ToStringMentionsEveryLocation) {
  MemState m = make();
  const auto dump = m.to_string();
  EXPECT_NE(dump.find("d [client]"), std::string::npos);
  EXPECT_NE(dump.find("g [library]"), std::string::npos);
}

TEST(LocationTable, RejectsDuplicatesAndUnknown) {
  LocationTable t;
  t.add_var("x", Component::Client, 0);
  EXPECT_THROW(t.add_var("x", Component::Client, 1), rc11::support::Error);
  EXPECT_THROW((void)t.find("nope"), rc11::support::Error);
  EXPECT_EQ(t.find("x"), 0u);
}

TEST(LocationTable, ObjectKinds) {
  LocationTable t;
  const auto l = t.add_object("l", Component::Library, LocKind::Lock);
  const auto s = t.add_object("s", Component::Library, LocKind::Stack);
  EXPECT_EQ(t.kind(l), LocKind::Lock);
  EXPECT_EQ(t.kind(s), LocKind::Stack);
  EXPECT_FALSE(t.is_var(l));
}


// --- parameterised sweeps ----------------------------------------------------

/// View-merge correctness for arbitrary thread counts: after a releasing
/// write by each thread i to its own variable and one acquiring read of the
/// last writer's variable, the reader's view covers exactly that writer's
/// knowledge.
class ThreadCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountSweep, ChainedPublicationReachesAllVariables) {
  const int n = GetParam();
  LocationTable locs;
  std::vector<LocId> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(locs.add_var("v" + std::to_string(i),
                                i % 2 ? Component::Library : Component::Client,
                                0));
  }
  MemState m{locs, static_cast<ThreadId>(n)};
  // Thread i reads v_{i-1} acquiringly (synchronising with thread i-1's
  // releasing write), then writes v_i releasingly: a hand-over-hand chain.
  for (int i = 0; i < n; ++i) {
    const auto t = static_cast<ThreadId>(i);
    if (i > 0) {
      m.read(t, vars[static_cast<std::size_t>(i - 1)],
             m.last_op(vars[static_cast<std::size_t>(i - 1)]),
             MemOrder::Acquire);
    }
    m.write(t, vars[static_cast<std::size_t>(i)], 100 + i, MemOrder::Release,
            m.last_op(vars[static_cast<std::size_t>(i)]));
  }
  // The last thread's view must be current on EVERY variable in the chain.
  const auto last = static_cast<ThreadId>(n - 1);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(m.view_front(last, vars[static_cast<std::size_t>(i)]),
              m.last_op(vars[static_cast<std::size_t>(i)]))
        << "variable " << i << " with " << n << " threads";
  }
  // Thread 0 never synchronised with anyone: it still sees every init.
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(m.rank(m.view_front(0, vars[static_cast<std::size_t>(i)])), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Chains, ThreadCountSweep,
                         ::testing::Values(2, 3, 4, 6, 8));

/// Observable sets shrink monotonically as a thread reads forward through a
/// long history, one write at a time.
TEST_F(TwoVarFixture, ObservableSetShrinksMonotonically) {
  MemState m = make();
  OpId last = m.mo(d)[0];
  for (int i = 1; i <= 8; ++i) {
    last = m.write(0, d, i, MemOrder::Relaxed, last);
  }
  std::size_t previous = m.observable(1, d).size();
  EXPECT_EQ(previous, 9u);
  for (int i = 1; i <= 8; ++i) {
    const auto obs = m.observable(1, d);
    m.read(1, d, obs[1], MemOrder::Relaxed);  // advance by one write
    const auto now = m.observable(1, d).size();
    EXPECT_EQ(now, previous - 1);
    previous = now;
  }
  EXPECT_EQ(previous, 1u) << "finally only the newest write is observable";
}

/// Encodings are injective on a family of near-identical states: flipping
/// any single attribute (value, writer, order annotation, covering, a view)
/// must change the encoding.
TEST_F(TwoVarFixture, EncodingSeparatesNearIdenticalStates) {
  const auto encode = [](const MemState& m) {
    std::vector<std::uint64_t> words;
    m.encode(words);
    return words;
  };
  MemState base = make();
  base.write(0, d, 1, MemOrder::Relaxed, base.mo(d)[0]);

  MemState other_value = make();
  other_value.write(0, d, 2, MemOrder::Relaxed, other_value.mo(d)[0]);
  EXPECT_NE(encode(base), encode(other_value));

  MemState other_thread = make();
  other_thread.write(1, d, 1, MemOrder::Relaxed, other_thread.mo(d)[0]);
  EXPECT_NE(encode(base), encode(other_thread));

  MemState other_order = make();
  other_order.write(0, d, 1, MemOrder::Release, other_order.mo(d)[0]);
  EXPECT_NE(encode(base), encode(other_order));

  MemState other_var = make();
  other_var.write(0, f, 1, MemOrder::Relaxed, other_var.mo(f)[0]);
  EXPECT_NE(encode(base), encode(other_var));

  // A read by the other thread changes only a view — still separated.
  MemState read_variant = base;
  read_variant.read(1, d, read_variant.mo(d)[1], MemOrder::Relaxed);
  EXPECT_NE(encode(base), encode(read_variant));
}

/// The same history built twice encodes identically even when built through
/// different (but order-equivalent) API call sequences.
TEST_F(TwoVarFixture, EncodingIsRepresentationIndependent) {
  // Path A: write 1 then 2 sequentially by thread 0.
  MemState a = make();
  const auto a1 = a.write(0, d, 1, MemOrder::Relaxed, a.mo(d)[0]);
  a.write(0, d, 2, MemOrder::Relaxed, a1);
  // Path B: thread 0 writes 2 after init first... not expressible without
  // the middle write; instead rebuild path A verbatim — the arena internals
  // (OpIds, timestamps) are identical runs, but also read-then-write runs
  // that land in the same abstract state must agree:
  MemState b = make();
  const auto b1 = b.write(0, d, 1, MemOrder::Relaxed, b.mo(d)[0]);
  b.read(0, d, b1, MemOrder::Relaxed);  // no-op read of its own write
  b.write(0, d, 2, MemOrder::Relaxed, b1);
  std::vector<std::uint64_t> ea, eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_EQ(ea, eb);
}

}  // namespace
