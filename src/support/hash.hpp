// rc11lib/support/hash.hpp
//
// Hash utilities shared by the canonical-state encoder (memsem), the
// explorer's visited set and the refinement product graph.  We use the
// FNV-1a / boost-style mixing combination, which is adequate for hash-set
// deduplication of canonical state encodings (exactness of exploration never
// depends on hash quality: buckets compare full encodings).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

namespace rc11::support {

/// Mixes `value`'s hash into an accumulated seed (boost::hash_combine).
template <typename T>
constexpr void hash_combine(std::size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// 64-bit FNV-1a over a byte span; used on serialized state encodings.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finaliser: a fast, full-avalanche 64-bit mixer.  Two
/// multiplications per word instead of FNV-1a's eight make this the digest
/// of choice for the exploration hot path (visited-set fingerprints), where
/// hash quality only affects probe lengths, never correctness — every
/// fingerprint hit is confirmed against the full encoding.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Digest of a word sequence via chained mix64 (Merkle–Damgård over the
/// splitmix64 finaliser, length-seeded so prefixes do not collide trivially).
/// All 64 output bits are well distributed: the sharded visited set routes
/// shards by the top bits and indexes open-addressing tables by the bottom
/// bits of the same digest.
[[nodiscard]] constexpr std::uint64_t hash_words(
    std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ mix64(words.size());
  for (const auto w : words) h = mix64(h ^ w);
  return h;
}

/// Incremental FNV-1a hasher for streaming integer words into a digest.
/// The canonical state encoder feeds fixed-width words so that encodings are
/// prefix-free and hashing is byte-order independent at the word level.
class WordHasher {
 public:
  void add(std::uint64_t word) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (word >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
  }

  void add_signed(std::int64_t word) noexcept {
    add(static_cast<std::uint64_t>(word));
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace rc11::support
