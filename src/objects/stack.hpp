// rc11lib/objects/stack.hpp
//
// The abstract synchronising stack used by the paper's motivating examples
// (Figures 1-3): push^R publishes, pop^A synchronises with the matched push.
//
// The paper motivates this object but formalises only the lock, so the
// ordering semantics here is our design (documented in DESIGN.md), chosen to
// mirror Fig. 6's discipline:
//
//   * Every push takes a maximal timestamp on the stack's location, so the
//     push history is totally ordered (like the lock history).
//   * A pop consumes (covers) the *latest uncovered* push — LIFO over the
//     total order.  If the pop is acquiring and the matched push releasing,
//     the popping thread synchronises with the push's modification view: this
//     is exactly what makes Fig. 2/3's message passing work and what is
//     missing in Fig. 1 (relaxed operations).
//   * A pop on an empty stack (all pushes covered or none exist) returns
//     kStackEmpty and does not change the state, so retry loops do not grow
//     the operation history.
//
// Unlike the lock, a pop does not append an operation of its own: the
// observability assertions of Section 5.1 (⟨s.pop_v⟩, [s.pop_emp]) are about
// which values *can be popped*, which this representation answers directly
// from the set of uncovered pushes.

#pragma once

#include <optional>

#include "memsem/state.hpp"

namespace rc11::objects {

using memsem::LocId;
using memsem::MemState;
using memsem::OpId;
using memsem::ThreadId;
using memsem::Value;

/// The latest uncovered push on `stack`, if any (the element a pop returns).
[[nodiscard]] std::optional<OpId> stack_top(const MemState& mem, LocId stack);

/// True iff a pop would return kStackEmpty.
[[nodiscard]] bool stack_empty(const MemState& mem, LocId stack);

/// Pushes `v` (releasing when `releasing` — the paper's push^R).
OpId stack_push(MemState& mem, ThreadId t, LocId stack, Value v, bool releasing);

/// Pops: consumes the top push and returns its value, synchronising when the
/// pop acquires and the push releases; returns kStackEmpty on an empty stack
/// (state unchanged).
Value stack_pop(MemState& mem, ThreadId t, LocId stack, bool acquiring);

/// Number of uncovered pushes.
[[nodiscard]] std::size_t stack_size(const MemState& mem, LocId stack);

}  // namespace rc11::objects
