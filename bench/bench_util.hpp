// Shared helpers for the experiment benchmarks: formatting of outcome sets
// and a uniform "[exp-id] ..." verdict line so bench output doubles as the
// reproduction record collected into bench_output.txt / EXPERIMENTS.md.

#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"

namespace rc11::bench {

/// Machine-readable companion to the verdict lines: bench mains accumulate
/// one entry per case and, when the user passed `--json <path>`, write a
/// single JSON document CI can diff against a checked-in baseline
/// (tools/check_bench_regression.py).  The flag is extracted from argv
/// *before* benchmark::Initialize so Google Benchmark never sees it.
class JsonReport {
 public:
  /// Consumes `--json <path>` / `--json=<path>` from argv, shrinking argc.
  void parse_args(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        path_ = argv[++i];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one case as a flat name -> number map (JSON needs no nesting
  /// for the regression check, and flat keys keep the python side trivial).
  void add(std::string name,
           std::vector<std::pair<std::string, double>> fields) {
    cases_.push_back({std::move(name), std::move(fields)});
  }

  /// Writes the document; silently a no-op without --json.  Returns false on
  /// I/O failure so mains can exit nonzero (CI treats a missing file as a
  /// hard failure either way).
  bool write(const std::string& benchmark_name) const {
    if (!enabled()) return true;
    std::ofstream os(path_);
    if (!os) {
      std::cerr << "error: cannot open --json path " << path_ << "\n";
      return false;
    }
    os.precision(12);
    os << "{\n  \"benchmark\": \"" << benchmark_name << "\",\n  \"cases\": [";
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      os << (i ? "," : "") << "\n    {\"name\": \"" << cases_[i].name << "\"";
      for (const auto& [key, value] : cases_[i].fields) {
        os << ", \"" << key << "\": " << value;
      }
      os << "}";
    }
    os << "\n  ]\n}\n";
    return static_cast<bool>(os);
  }

 private:
  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string path_;
  std::vector<Case> cases_;
};

inline std::string outcomes_to_string(
    const std::vector<std::vector<lang::Value>>& outcomes) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    os << (i ? " " : "") << "(";
    for (std::size_t j = 0; j < outcomes[i].size(); ++j) {
      os << (j ? "," : "") << outcomes[i][j];
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

inline void verdict(const std::string& exp, bool ok, const std::string& detail) {
  std::cout << "[" << exp << "] " << (ok ? "REPRODUCED" : "MISMATCH") << " — "
            << detail << "\n";
}

/// Explores a litmus test and prints whether the reachable outcome set
/// matches the RC11 RAR prediction; returns the explore result for counters.
inline explore::ExploreResult run_litmus(const std::string& exp,
                                         litmus::LitmusTest& test) {
  auto result = explore::explore(test.sys);
  const auto outcomes =
      explore::final_register_values(test.sys, result, test.observed);
  verdict(exp, outcomes == test.allowed,
          test.name + ": outcomes " + outcomes_to_string(outcomes) +
              " expected " + outcomes_to_string(test.allowed));
  return result;
}

}  // namespace rc11::bench
