// rc11lib/engine/reach.hpp
//
// The generic reachability driver all four checkers run on: enumerate every
// configuration reachable in a TransitionSystem exactly once — sequentially
// or with a worker pool over a lock-striped visited set — and hand each one,
// together with its enabled steps, to a visitor.  explore::explore,
// og::check_outline / check_triple and refinement::build_graph are all thin
// visitors over this driver; none of them generates successors itself.
//
// States are deduplicated by their canonical encoding (order-isomorphic
// timestamp quotient — see memsem::SemanticsOptions::canonical_timestamps),
// which is what keeps litmus-style programs finite-state.
//
// Partial-order reduction (ReachOptions::por): when the transition system
// reports an ample thread for a configuration, only that thread's steps are
// expanded.  On top of that, when the transition system allows it
// (TransitionSystem::collapse_chains), successors whose ample thread sits at
// a *local* instruction are fast-forwarded through that deterministic chain
// and only the chain's stable end is visited — this is where the bulk of
// the visited-state reduction comes from.  The reduced state graph is a
// deterministic function of the system (see TransitionSystem::ample_thread),
// so POR composes with any worker count, search strategy and trace sink;
// every recorded trace edge — including chain-internal ones, which are
// interned in the sink without being visited — is a real single transition
// of the full semantics, so recorded traces replay unchanged
// (witness::replay).  Reduced and full runs visit the same final and blocked
// states; docs/SEMANTICS.md §9 gives the soundness argument.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "engine/abstraction.hpp"
#include "engine/budget.hpp"
#include "engine/sample.hpp"
#include "engine/sharded_visited.hpp"
#include "engine/transition_system.hpp"

namespace rc11::engine {

struct Checkpoint;  // engine/checkpoint.hpp

using lang::Step;

/// Search order.  Both visit the same set of states (the visited set makes
/// exploration order-insensitive); BFS yields shortest counterexample
/// traces, DFS has the smaller frontier on deep graphs.
enum class SearchStrategy : std::uint8_t { Dfs, Bfs };

struct ExploreStats {
  std::uint64_t states = 0;       ///< distinct states visited
  std::uint64_t transitions = 0;  ///< transitions generated
  std::uint64_t finals = 0;       ///< states with every thread terminated
  std::uint64_t blocked = 0;      ///< non-final states with no transition
  std::uint64_t peak_frontier = 0;  ///< largest unexpanded-state backlog
  /// Heap footprint of the visited set at the end of the run (interned
  /// arena + fingerprint tables); divide by `states` for bytes/state.
  std::uint64_t visited_bytes = 0;
  /// States expanded with a reduced (ample) step set instead of the full
  /// successor relation.  Non-zero only under ReachOptions::por; the states
  /// and edges *saved* by the reduction are the difference against a full
  /// run (reported by bench_por and the tools' --stats).
  std::uint64_t por_reduced = 0;
  /// Deterministic local steps fast-forwarded by chain collapse — each one a
  /// state that exists in the full graph but was never visited here.
  /// Non-zero only under por with a chain-collapsing transition system.
  std::uint64_t por_chained = 0;
  /// Episodes completed under Strategy::Sample (0 otherwise).  Under
  /// sampling, `states` is the *coverage estimate* — distinct states the
  /// episodes crossed — and `transitions` counts enabled steps enumerated at
  /// first visits, matching the exhaustive meaning on the covered subgraph.
  std::uint64_t episodes = 0;
  /// Arrivals folded into an already-visited canonical state via a
  /// non-identity permutation (ReachOptions::symmetry).  A lower bound on
  /// the states the quotient saved: each hit is a concrete state a
  /// non-symmetric run would have visited separately.
  std::uint64_t symmetry_hits = 0;
  /// Successor steps skipped because their acting thread was asleep
  /// (ReachOptions::sleep_sets) — transitions pruned, never states: every
  /// reachable state is still visited exactly once.
  std::uint64_t sleep_set_skips = 0;
  /// Concrete states folded into an already-visited execution-graph class
  /// (ReachOptions::rf_quotient): arrivals whose concrete encoding was new
  /// but whose quotient key was not.  A lower bound on the states the
  /// quotient saved.  Counted only when a trace sink is attached (the sink
  /// is what distinguishes a genuinely new concrete state from a concrete
  /// re-arrival); untraced runs report 0 and bench_rf compares visited
  /// state counts instead.
  std::uint64_t rf_merges = 0;
};

struct ReachOptions {
  /// Resource limits (state cap, memory cap, wall-clock deadline).  The
  /// historic max_states bound lives in budget.max_states; ReachResult::stop
  /// names whichever limit ended the run.
  Budget budget;
  unsigned num_threads = 1;  ///< same convention as ExploreOptions
  SearchStrategy strategy = SearchStrategy::Dfs;
  /// How to cover the state space: exhaustive enumeration (default), ample-
  /// set POR enumeration, or seeded random sampling (engine/sample.hpp).
  /// Strategy::Por and `por = true` are the same thing — visit_reachable
  /// normalises them both ways, so callers may set either.  Under
  /// Strategy::Sample the driver runs sample_reach: episodes are sequential
  /// regardless of num_threads (seed determinism), `resume` is rejected, and
  /// search `strategy` is ignored.
  Strategy mode = Strategy::Exhaustive;
  /// Tuning for Strategy::Sample (ignored otherwise).
  SampleOptions sample;
  bool fuse_local_steps = false;
  /// Ample-set partial-order reduction (see the header comment).  Subsumes
  /// fuse_local_steps when on; checked before it.
  bool por = false;
  bool want_labels = false;  ///< fill Step::label for the visitor
  /// Thread-symmetry quotient (engine/symmetry.hpp): states are deduplicated
  /// by a canonical representative of their thread-permutation orbit instead
  /// of their concrete encoding, shrinking the visited set by up to |G| for
  /// systems whose threads run identical program text.  A no-op (sound) when
  /// the system has no interchangeable threads.  Composes with por, budgets,
  /// trace sinks (witnesses record concrete states along really-taken paths)
  /// and checkpoint/resume (`symmetry` must match the checkpoint's).
  /// Rejected under Strategy::Sample.  Callers consuming per-state results
  /// (finals, invariants, obligations) must orbit-close them — the driver
  /// only visits one representative per orbit.
  bool symmetry = false;
  /// Execution-graph quotient (engine/abstraction.hpp, RfQuotient): states
  /// are deduplicated by [pcs, registers, rf/mo projection] instead of their
  /// concrete encoding, folding interleavings that built the same execution
  /// graph and differ only in dead view history.  Composes with por,
  /// budgets, trace sinks (concrete, as with symmetry) and checkpoint/resume
  /// (`rf_quotient` pinned in the checkpoint).  Rejected in combination with
  /// `symmetry` (v1), under Strategy::Sample, and under MemoryModel::SC
  /// (every SC access synchronises, so the projection would drop observable
  /// state).  Exact for finals, verdicts over `rf_pins` footprints and race
  /// sets — see DESIGN.md's StateAbstraction section.
  bool rf_quotient = false;
  /// Extra (thread, location) viewfront entries the rf-quotient key keeps
  /// beyond what liveness analysis retains — the view footprints of the
  /// assertions the caller evaluates per state.  Ignored unless rf_quotient.
  RfPins rf_pins;
  /// Sleep-set pruning (Godefroid): each frontier entry carries the set of
  /// threads whose steps are provably covered by a commuted exploration
  /// order; their successor steps are skipped.  Prunes *transitions* only —
  /// every reachable state is still visited, so finals, blocked states,
  /// invariants and graph builders are exact.  Ignored when the system has
  /// more than 64 threads or under Strategy::Sample.
  bool sleep_sets = false;
  /// Caller-owned trace sink.  When set, the driver uses it as the visited
  /// set: every state is interned via insert_traced (recording parent id,
  /// acting thread and step label under the shard lock), labels are forced
  /// on, and the visitor receives each state's id so it can reconstruct the
  /// path to any state of interest with ShardedVisitedSet::path_to — safely
  /// mid-run, from any worker.  Must be empty (freshly constructed) and must
  /// outlive the call.  When null, ids passed to the visitor are
  /// ShardedVisitedSet::kNoState and the driver owns its visited set.
  ShardedVisitedSet* trace = nullptr;
  /// Cooperative cancellation: when set, workers poll the token once per
  /// claimed state and the run stops with StopReason::Interrupted once it
  /// fires.  The token outlives the call; null disables the check.
  const CancelToken* cancel = nullptr;
  /// Deterministic fault injection for robustness tests (see
  /// engine::FaultPlan); unarmed by default.
  FaultPlan fault;
  /// Resume a previous run from a checkpoint: the driver seeds its visited
  /// set with every checkpointed state and its frontier with every enqueued
  /// one, then explores normally — the visitor observes exactly the state
  /// set of an uninterrupted run (see engine/checkpoint.hpp for the
  /// argument).  `por` must match the checkpoint's, the trace sink (if any)
  /// must be empty, and the checkpoint must fit the transition system
  /// (validated by re-execution; support::Error otherwise).  Must outlive
  /// the call.
  const Checkpoint* resume = nullptr;
};

/// Called exactly once per reachable configuration with its enabled steps
/// (empty for final/blocked states).  `state_id` identifies the
/// configuration in ReachOptions::trace (kNoState when no trace sink is
/// set).  Return false to request a cooperative stop: in-flight workers
/// finish their current state and no further states are claimed.  Must be
/// thread-safe when num_threads resolves to > 1 (the driver still needs the
/// successor configurations after the call, hence the const view).  The span
/// points into a per-worker pooled StepBuffer and is only valid for the
/// duration of the call.
using StateVisitor = std::function<bool(const Config&, std::uint64_t state_id,
                                        std::span<const Step>)>;

struct ReachResult {
  ExploreStats stats;
  /// Why the run ended.  Complete covers full enumeration *and* a visitor
  /// veto (stopping was the visitor's decision, not resource exhaustion);
  /// every other value means the enumeration is partial.
  StopReason stop = StopReason::Complete;
  /// Compat accessor for the historic `truncated` flag.
  [[nodiscard]] bool truncated() const { return stop != StopReason::Complete; }
};

/// The driver's per-state expansion policy — POR ample set, local fusion, or
/// full successor relation — exposed so graph builders that must mirror the
/// reduced edge relation (refinement::build_graph phase 2) expand exactly
/// like the driver.  Returns true iff a reduced (ample) set was produced.
bool expand_steps(const TransitionSystem& ts, const Config& cfg,
                  const ReachOptions& options, StepBuffer& out,
                  bool want_labels);

/// The thread whose single deterministic local step POR chain collapse
/// fast-forwards at `cfg`: the ample thread, when its next instruction is
/// local (Assign / Branch / Jump — exactly one successor, no memory effect).
/// A pure function of `cfg`, exposed so off-process mirrors of the reduced
/// edge relation (the supervised driver's workers, engine/supervise.cpp)
/// collapse exactly like this driver; returns nullopt when no chain starts.
[[nodiscard]] std::optional<lang::ThreadId> chain_thread(
    const TransitionSystem& ts, const Config& cfg);

/// Enumerates reachable configurations under `options`, invoking `visitor`
/// once per configuration.  Deduplication uses canonical encodings with
/// full-encoding confirmation (collision-sound), lock-striped across shards
/// when parallel.
[[nodiscard]] ReachResult visit_reachable(const TransitionSystem& ts,
                                          const ReachOptions& options,
                                          const StateVisitor& visitor);

/// Convenience overload over the standard SystemTransitions (FinalState
/// ample policy — what the explorer and the outline checker use).
[[nodiscard]] ReachResult visit_reachable(const System& sys,
                                          const ReachOptions& options,
                                          const StateVisitor& visitor);

/// The Strategy::Sample driver (engine/sample.cpp): runs
/// options.sample.episodes seeded random schedules end-to-end, invoking the
/// visitor once per *newly covered* configuration — so visitors written for
/// exhaustive runs (violation scanners, graph collectors) work unchanged on
/// the sampled subgraph.  visit_reachable dispatches here; call it directly
/// only from tests.
[[nodiscard]] ReachResult sample_reach(const TransitionSystem& ts,
                                       const ReachOptions& options,
                                       const StateVisitor& visitor);

}  // namespace rc11::engine
