# Empty dependencies file for bench_prop9_seqlock_sim.
# This may be replaced when dependencies are built.
