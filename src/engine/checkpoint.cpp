#include "engine/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/diagnostics.hpp"
#include "witness/json.hpp"
#include "witness/witness.hpp"

namespace rc11::engine {

using witness::Json;

Checkpoint make_checkpoint(const ShardedVisitedSet& sink,
                           const ExploreStats& stats, StopReason stop,
                           bool por, bool symmetry, bool rf_quotient) {
  const auto snap = sink.snapshot();
  support::require(!snap.empty(),
                   "cannot checkpoint a run with no interned states");

  // snapshot() returns shard order, which interleaves generations; the
  // schema wants parents strictly before children so restore_states can run
  // a single forward pass.  The parent links form a forest rooted at the
  // initial state, so a BFS over the child lists yields such an order.
  std::unordered_map<std::uint64_t, std::size_t> index_of_id;
  index_of_id.reserve(snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i) index_of_id.emplace(snap[i].id, i);

  std::vector<std::vector<std::size_t>> children(snap.size());
  std::vector<std::size_t> order;
  order.reserve(snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (snap[i].parent == ShardedVisitedSet::kNoState) {
      support::require(order.empty(),
                       "cannot checkpoint: trace sink has multiple roots");
      order.push_back(i);
    } else {
      const auto it = index_of_id.find(snap[i].parent);
      RC11_REQUIRE(it != index_of_id.end(),
                   "trace sink parent link points to an unknown state");
      children[it->second].push_back(i);
    }
  }
  support::require(!order.empty(),
                   "cannot checkpoint: trace sink has no root state");
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (std::size_t child : children[order[head]]) order.push_back(child);
  }
  RC11_REQUIRE(order.size() == snap.size(),
               "trace sink parent links do not form a rooted forest");

  std::vector<std::size_t> position(snap.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) position[order[pos]] = pos;

  Checkpoint ckpt;
  ckpt.por = por;
  ckpt.symmetry = symmetry;
  ckpt.rf_quotient = rf_quotient;
  ckpt.stop = stop;
  ckpt.stats = stats;
  ckpt.states.reserve(snap.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto& entry = snap[order[pos]];
    Checkpoint::State state;
    state.parent =
        entry.parent == ShardedVisitedSet::kNoState
            ? -1
            : static_cast<std::int64_t>(position[index_of_id.at(entry.parent)]);
    state.thread = entry.thread;
    state.label = entry.label;
    state.enqueued = entry.enqueued;
    state.encoding = entry.encoding;
    ckpt.states.push_back(std::move(state));
  }
  return ckpt;
}

namespace {

Json stats_to_json(const ExploreStats& stats) {
  Json out = Json::object();
  out.set("states", Json::integer(static_cast<std::int64_t>(stats.states)));
  out.set("transitions",
          Json::integer(static_cast<std::int64_t>(stats.transitions)));
  out.set("finals", Json::integer(static_cast<std::int64_t>(stats.finals)));
  out.set("blocked", Json::integer(static_cast<std::int64_t>(stats.blocked)));
  out.set("peak_frontier",
          Json::integer(static_cast<std::int64_t>(stats.peak_frontier)));
  out.set("visited_bytes",
          Json::integer(static_cast<std::int64_t>(stats.visited_bytes)));
  out.set("por_reduced",
          Json::integer(static_cast<std::int64_t>(stats.por_reduced)));
  out.set("por_chained",
          Json::integer(static_cast<std::int64_t>(stats.por_chained)));
  out.set("symmetry_hits",
          Json::integer(static_cast<std::int64_t>(stats.symmetry_hits)));
  out.set("sleep_set_skips",
          Json::integer(static_cast<std::int64_t>(stats.sleep_set_skips)));
  out.set("rf_merges",
          Json::integer(static_cast<std::int64_t>(stats.rf_merges)));
  return out;
}

ExploreStats stats_from_json(const Json& doc) {
  ExploreStats stats;
  stats.states = static_cast<std::uint64_t>(doc.at("states").as_int());
  stats.transitions =
      static_cast<std::uint64_t>(doc.at("transitions").as_int());
  stats.finals = static_cast<std::uint64_t>(doc.at("finals").as_int());
  stats.blocked = static_cast<std::uint64_t>(doc.at("blocked").as_int());
  stats.peak_frontier =
      static_cast<std::uint64_t>(doc.at("peak_frontier").as_int());
  stats.visited_bytes =
      static_cast<std::uint64_t>(doc.at("visited_bytes").as_int());
  stats.por_reduced =
      static_cast<std::uint64_t>(doc.at("por_reduced").as_int());
  stats.por_chained =
      static_cast<std::uint64_t>(doc.at("por_chained").as_int());
  // Reduction counters postdate the version-1 schema; absent means a
  // checkpoint from a build without them (equivalently: zero).
  if (doc.has("symmetry_hits")) {
    stats.symmetry_hits =
        static_cast<std::uint64_t>(doc.at("symmetry_hits").as_int());
  }
  if (doc.has("sleep_set_skips")) {
    stats.sleep_set_skips =
        static_cast<std::uint64_t>(doc.at("sleep_set_skips").as_int());
  }
  if (doc.has("rf_merges")) {
    stats.rf_merges = static_cast<std::uint64_t>(doc.at("rf_merges").as_int());
  }
  return stats;
}

}  // namespace

std::string to_json(const Checkpoint& ckpt) {
  Json doc = Json::object();
  doc.set("format", Json::string("rc11-checkpoint"));
  doc.set("version", Json::integer(ckpt.version));
  doc.set("por", Json::boolean(ckpt.por));
  doc.set("symmetry", Json::boolean(ckpt.symmetry));
  doc.set("rf_quotient", Json::boolean(ckpt.rf_quotient));
  doc.set("stop", Json::string(to_string(ckpt.stop)));
  doc.set("stats", stats_to_json(ckpt.stats));
  Json states = Json::array();
  for (const auto& state : ckpt.states) {
    Json entry = Json::object();
    entry.set("parent", Json::integer(state.parent));
    entry.set("thread",
              Json::integer(static_cast<std::int64_t>(state.thread)));
    entry.set("label", Json::string(state.label));
    entry.set("enqueued", Json::boolean(state.enqueued));
    Json words = Json::array();
    for (std::uint64_t word : state.encoding) {
      words.push(Json::string(witness::digest_to_hex(word)));
    }
    entry.set("encoding", std::move(words));
    states.push(std::move(entry));
  }
  doc.set("states", std::move(states));
  return doc.dump();
}

Checkpoint from_json(std::string_view text) {
  const Json doc = Json::parse(text);
  support::require(
      doc.has("format") && doc.at("format").as_string() == "rc11-checkpoint",
      "checkpoint: not an rc11-checkpoint document");
  Checkpoint ckpt;
  ckpt.version = doc.at("version").as_int();
  support::require(ckpt.version == kCheckpointFormatVersion,
                   "checkpoint: unsupported version ", ckpt.version,
                   " (this build reads version ", kCheckpointFormatVersion,
                   ")");
  ckpt.por = doc.at("por").as_bool();
  // Absent in pre-symmetry version-1 files; those runs were unquotiented.
  ckpt.symmetry = doc.has("symmetry") && doc.at("symmetry").as_bool();
  // Same back-compat rule for the execution-graph quotient.
  ckpt.rf_quotient =
      doc.has("rf_quotient") && doc.at("rf_quotient").as_bool();
  ckpt.stop = stop_reason_from_string(doc.at("stop").as_string());
  ckpt.stats = stats_from_json(doc.at("stats"));
  const auto& states = doc.at("states").items();
  support::require(!states.empty(), "checkpoint: empty state list");
  ckpt.states.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const Json& entry = states[i];
    Checkpoint::State state;
    state.parent = entry.at("parent").as_int();
    support::require(
        state.parent >= -1 &&
            state.parent < static_cast<std::int64_t>(i),
        "checkpoint: state ", i,
        " has parent ", state.parent,
        " (parents must precede children; -1 marks the root)");
    support::require((state.parent == -1) == (i == 0),
                     "checkpoint: exactly the first state must be the root");
    const std::int64_t thread = entry.at("thread").as_int();
    support::require(thread >= 0 && thread <= UINT32_MAX,
                     "checkpoint: state ", i, " has invalid thread ", thread);
    state.thread = static_cast<memsem::ThreadId>(thread);
    state.label = entry.at("label").as_string();
    state.enqueued = entry.at("enqueued").as_bool();
    const auto& words = entry.at("encoding").items();
    support::require(!words.empty(),
                     "checkpoint: state ", i, " has an empty encoding");
    state.encoding.reserve(words.size());
    for (const Json& word : words) {
      state.encoding.push_back(witness::digest_from_hex(word.as_string()));
    }
    ckpt.states.push_back(std::move(state));
  }
  return ckpt;
}

void save_checkpoint(const Checkpoint& ckpt, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  support::require(out.good(), "cannot open checkpoint file for writing: ",
                   path);
  out << to_json(ckpt);
  out.flush();
  support::require(out.good(), "failed writing checkpoint file: ", path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  support::require(in.good(), "cannot open checkpoint file: ", path);
  std::ostringstream buf;
  buf << in.rdbuf();
  support::require(!in.bad(), "failed reading checkpoint file: ", path);
  return from_json(buf.str());
}

std::vector<Config> restore_states(const TransitionSystem& ts,
                                   const Checkpoint& ckpt) {
  std::vector<Config> configs;
  configs.reserve(ckpt.states.size());
  StepBuffer buf;
  std::vector<std::uint64_t> scratch;
  for (std::size_t i = 0; i < ckpt.states.size(); ++i) {
    const Checkpoint::State& state = ckpt.states[i];
    if (state.parent < 0) {
      Config init = ts.initial();
      support::require(
          init.encode() == state.encoding,
          "checkpoint does not fit this system: the recorded initial state "
          "differs (wrong program or semantics options?)");
      configs.push_back(std::move(init));
      continue;
    }
    // Re-execute the recorded step through the real semantics and match the
    // stored canonical encoding — the checkpoint analogue of witness replay.
    const Config& parent = configs[static_cast<std::size_t>(state.parent)];
    ts.thread_successors_into(parent, state.thread, buf,
                              /*want_labels=*/false);
    bool found = false;
    for (auto& step : buf.steps()) {
      scratch.clear();
      step.after.encode_into(scratch);
      if (scratch == state.encoding) {
        configs.push_back(std::move(step.after));
        found = true;
        break;
      }
    }
    support::require(found, "checkpoint state ", i,
                     " is not reproducible: thread ", state.thread,
                     " has no enabled step from its recorded parent that "
                     "reaches the recorded state (wrong program, semantics "
                     "options, or a tampered checkpoint)");
  }
  return configs;
}

}  // namespace rc11::engine
