#include "engine/supervise.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "engine/wire.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "witness/witness.hpp"

namespace rc11::engine {

namespace {

using Clock = std::chrono::steady_clock;
using witness::Json;

constexpr std::uint64_t kDefaultBatch = 32;
constexpr std::uint64_t kDefaultHangMs = 5000;
constexpr std::uint64_t kDefaultBackoffMs = 25;
constexpr std::uint64_t kDefaultRetries = 2;
/// Backstop on lifetime restarts of one slot beyond the per-batch retry
/// budget, so a worker that dies outside any batch (e.g. repeated fork
/// failure) cannot respawn-loop forever.
constexpr std::uint64_t kLifetimeRestartSlack = 16;
/// Worker-side replay memo: reset once it holds this many configurations.
constexpr std::size_t kWorkerMemoCap = 1u << 17;
/// Poll granularity cap: keeps deadline probing and timer handling
/// responsive even when every timer is far away.
constexpr int kPollSliceMs = 25;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  support::require(errno == 0 && end != nullptr && *end == '\0' && parsed > 0,
                   name, " must be a positive integer, got '", v, "'");
  return parsed;
}

struct Tuning {
  std::uint64_t batch = kDefaultBatch;
  std::uint64_t hang_ms = kDefaultHangMs;
  std::uint64_t backoff_ms = kDefaultBackoffMs;
  std::uint64_t retries = kDefaultRetries;
};

Tuning resolve_tuning(const DistOptions& o) {
  Tuning t;
  t.batch = o.batch_size != 0 ? o.batch_size
                              : env_u64("RC11_DIST_BATCH", kDefaultBatch);
  t.hang_ms = o.hang_timeout_ms != 0
                  ? o.hang_timeout_ms
                  : env_u64("RC11_DIST_HANG_MS", kDefaultHangMs);
  t.backoff_ms = o.backoff_ms != 0
                     ? o.backoff_ms
                     : env_u64("RC11_DIST_BACKOFF_MS", kDefaultBackoffMs);
  t.retries = o.max_batch_retries != 0
                  ? o.max_batch_retries
                  : env_u64("RC11_DIST_RETRIES", kDefaultRetries);
  return t;
}

std::uint64_t get_u64(const Json& v, const char* what) {
  const std::int64_t i = v.as_int();
  support::require(i >= 0, "wire schema: ", what, " must be non-negative");
  return static_cast<std::uint64_t>(i);
}

memsem::ThreadId get_thread(const Json& v) {
  const std::uint64_t t = get_u64(v, "thread");
  support::require(t <= 0xFFFFFFFFull, "wire schema: thread id out of range");
  return static_cast<memsem::ThreadId>(t);
}

/// Ignores SIGPIPE for the duration of a supervised run (worker death turns
/// writes into EPIPE instead of killing the supervisor) and restores the
/// previous disposition on scope exit.  Workers inherit the ignore, which is
/// equally what they want.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ign = {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old_);
  }
  ~SigpipeGuard() { ::sigaction(SIGPIPE, &old_, nullptr); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction old_ = {};
};

// --- parsed ack records ------------------------------------------------------

struct HopRec {
  memsem::ThreadId thread = 0;
  std::string label;
  std::vector<std::uint64_t> enc;
};

struct SuccRec {
  std::vector<HopRec> hops;       ///< direct successor, then the chain walk
  std::vector<std::uint64_t> key; ///< abstraction key (rf-quotient runs only)
};

struct StateRec {
  bool reduced = false;
  bool is_final = false;
  bool blocked = false;
  bool veto = false;
  std::uint64_t steps = 0;
  std::vector<Json> events;
  std::vector<SuccRec> succs;
};

StateRec parse_state_result(const Json& r, bool rf_quotient) {
  StateRec s;
  s.reduced = r.at("reduced").as_bool();
  s.is_final = r.at("final").as_bool();
  s.blocked = r.at("blocked").as_bool();
  s.veto = r.at("veto").as_bool();
  s.steps = get_u64(r.at("steps"), "steps");
  for (const Json& e : r.at("events").items()) s.events.push_back(e);
  for (const Json& js : r.at("succs").items()) {
    SuccRec succ;
    for (const Json& jh : js.at("hops").items()) {
      HopRec hop;
      hop.thread = get_thread(jh.at("t"));
      hop.label = jh.at("l").as_string();
      hop.enc = wire::words_from_json(jh.at("e"));
      support::require(!hop.enc.empty(), "wire schema: empty hop encoding");
      succ.hops.push_back(std::move(hop));
    }
    support::require(!succ.hops.empty(), "wire schema: successor without hops");
    if (rf_quotient) {
      succ.key = wire::words_from_json(js.at("key"));
      support::require(!succ.key.empty(),
                       "wire schema: empty abstraction key");
    }
    s.succs.push_back(std::move(succ));
  }
  return s;
}

// --- worker side -------------------------------------------------------------

/// Blocking write of the whole buffer; a worker whose supervisor vanished
/// (EPIPE) has nothing left to do and exits quietly.
void worker_write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(0);
    }
    off += static_cast<std::size_t>(n);
  }
}

void worker_send(int fd, const Json& msg) {
  worker_write_all(fd, wire::encode_frame(msg.dump()));
}

/// Blocking read of the next frame from the supervisor.  EOF means the
/// supervisor is gone (shutdown or death) — exit quietly either way.
Json worker_read_msg(int fd, wire::FrameReader& reader) {
  std::string payload;
  std::string error;
  for (;;) {
    switch (reader.next(payload, error)) {
      case wire::FrameReader::Status::Frame:
        return Json::parse(payload);
      case wire::FrameReader::Status::Corrupt:
        // The supervisor never sends garbage; a corrupt downstream means
        // the pipe is unusable.  Die; the supervisor will restart us.
        ::_exit(1);
      case wire::FrameReader::Status::NeedMore:
        break;
    }
    char buf[16384];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) ::_exit(0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(1);
    }
    reader.feed(buf, static_cast<std::size_t>(n));
  }
}

/// Rebuilds the Config a dispatched path names, digest-checking every hop
/// (the witness-replay idiom: among the acting thread's enabled steps,
/// exactly the recorded successor digest matches).  Memoised per digest so
/// batches with shared path prefixes replay each prefix once.
Config worker_replay(const TransitionSystem& ts, const Json& path,
                     std::unordered_map<std::uint64_t, Config>& memo,
                     StepBuffer& buf) {
  const std::vector<Json>& edges = path.items();
  Config cur = ts.initial();
  std::size_t start = 0;
  for (std::size_t i = edges.size(); i > 0; --i) {
    const std::uint64_t d =
        witness::digest_from_hex(edges[i - 1].at("d").as_string());
    const auto it = memo.find(d);
    if (it != memo.end()) {
      cur = it->second;
      start = i;
      break;
    }
  }
  for (std::size_t i = start; i < edges.size(); ++i) {
    const memsem::ThreadId t = get_thread(edges[i].at("t"));
    const std::uint64_t d =
        witness::digest_from_hex(edges[i].at("d").as_string());
    buf.clear();
    ts.thread_successors_into(cur, t, buf, /*want_labels=*/false);
    bool found = false;
    for (lang::Step& step : buf.steps()) {
      if (witness::config_digest(step.after) == d) {
        cur = std::move(step.after);
        found = true;
        break;
      }
    }
    support::require(found, "frontier path does not replay at hop ", i,
                     " (thread ", t, ")");
    if (memo.size() >= kWorkerMemoCap) memo.clear();
    memo.emplace(d, cur);
  }
  return cur;
}

struct WorkerCtx {
  const TransitionSystem& ts;
  const DistOptions& options;
  DistDelegate& delegate;
  unsigned index = 0;
  int rfd = -1;  ///< frames from the supervisor
  int wfd = -1;  ///< frames to the supervisor
};

[[noreturn]] void worker_main(const WorkerCtx& ctx) {
  try {
    const TransitionSystem& ts = ctx.ts;
    const DistOptions& opts = ctx.options;
    Json hello = Json::object();
    hello.set("type", Json::string("hello"));
    hello.set("worker", Json::integer(static_cast<std::int64_t>(ctx.index)));
    worker_send(ctx.wfd, hello);

    std::unique_ptr<StateAbstraction> abs;
    if (opts.rf_quotient) {
      abs = make_rf_quotient_abstraction(ts.system(), opts.rf_pins);
    }
    ReachOptions expand_opts;
    expand_opts.por = opts.por;
    expand_opts.fuse_local_steps = opts.fuse_local_steps;
    const bool collapse = opts.por && ts.collapse_chains();

    wire::FrameReader reader;
    std::unordered_map<std::uint64_t, Config> memo;
    StepBuffer steps;
    StepBuffer replay_buf;
    StepBuffer chain_buf;
    AbstractKey key;
    std::vector<std::uint64_t> enc;
    std::vector<Json> events;

    const auto push_hop = [&](Json& hops, memsem::ThreadId thread,
                              std::string&& label, const Config& after) {
      Json h = Json::object();
      h.set("t", Json::integer(static_cast<std::int64_t>(thread)));
      h.set("l", Json::string(std::move(label)));
      enc.clear();
      after.encode_into(enc);
      h.set("e", wire::words_json(enc));
      hops.push(std::move(h));
    };

    for (;;) {
      Json msg = worker_read_msg(ctx.rfd, reader);
      const std::string& type = msg.at("type").as_string();
      if (type == "shutdown") ::_exit(0);
      if (type != "batch") continue;  // unknown types: forward compatibility
      const std::uint64_t seq = get_u64(msg.at("seq"), "seq");
      const std::uint64_t dispatch = get_u64(msg.at("dispatch"), "dispatch");
      const FaultPlan::ProcessFault* pf =
          opts.fault.process_fault_at(dispatch);
      const std::vector<Json>& states = msg.at("states").items();
      const std::size_t crash_at = states.size() / 2;

      Json results = Json::array();
      for (std::size_t si = 0; si < states.size(); ++si) {
        if (pf != nullptr && pf->kind == FaultPlan::Kind::Crash &&
            si == crash_at) {
          ::_exit(2);  // the injected mid-batch crash
        }
        if ((si % 8) == 0) {
          Json hb = Json::object();
          hb.set("type", Json::string("hb"));
          worker_send(ctx.wfd, hb);
        }
        const Config cfg =
            worker_replay(ts, states[si].at("path"), memo, replay_buf);

        Json r = Json::object();
        steps.clear();
        const bool reduced =
            expand_steps(ts, cfg, expand_opts, steps, /*want_labels=*/true);
        const bool is_final =
            steps.steps().empty() && cfg.all_done(ts.system());
        r.set("reduced", Json::boolean(reduced));
        r.set("final", Json::boolean(is_final));
        r.set("blocked", Json::boolean(steps.steps().empty() && !is_final));
        r.set("steps", Json::integer(
                           static_cast<std::int64_t>(steps.steps().size())));
        events.clear();
        const bool keep = ctx.delegate.evaluate(cfg, steps.steps(), events);
        r.set("veto", Json::boolean(!keep));
        Json evs = Json::array();
        for (Json& e : events) evs.push(std::move(e));
        r.set("events", std::move(evs));

        Json succs = Json::array();
        for (lang::Step& step : steps.steps()) {
          Json s = Json::object();
          Json hops = Json::array();
          Config after = std::move(step.after);
          push_hop(hops, step.thread, std::move(step.label), after);
          if (collapse) {
            // Mirror the driver's chain walk: every intermediate state is a
            // hop, whether or not the supervisor ends up interning it.
            while (const auto ct = chain_thread(ts, after)) {
              chain_buf.clear();
              ts.thread_successors_into(after, *ct, chain_buf,
                                        /*want_labels=*/true);
              lang::Step& cstep = chain_buf.steps()[0];
              after = std::move(cstep.after);
              push_hop(hops, cstep.thread, std::move(cstep.label), after);
            }
          }
          s.set("hops", std::move(hops));
          if (abs != nullptr) {
            abs->key(after, key);
            s.set("key", wire::words_json(key.encoding));
          }
          succs.push(std::move(s));
        }
        r.set("succs", std::move(succs));
        results.push(std::move(r));
      }

      if (pf != nullptr && pf->kind == FaultPlan::Kind::Hang) {
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
      }
      Json ack = Json::object();
      ack.set("type", Json::string("ack"));
      ack.set("seq", Json::integer(static_cast<std::int64_t>(seq)));
      ack.set("results", std::move(results));
      std::string frame = wire::encode_frame(ack.dump());
      if (pf != nullptr && pf->kind == FaultPlan::Kind::Corrupt &&
          frame.size() > wire::kHeaderBytes) {
        // Flip a payload byte *after* the CRC was computed: the frame
        // arrives intact-looking but fails validation at the supervisor.
        const std::size_t mid =
            wire::kHeaderBytes + (frame.size() - wire::kHeaderBytes) / 2;
        frame[mid] = static_cast<char>(frame[mid] ^ 0x5A);
      }
      worker_write_all(ctx.wfd, frame);
    }
  } catch (const std::exception& e) {
    try {
      Json err = Json::object();
      err.set("type", Json::string("error"));
      err.set("what", Json::string(e.what()));
      worker_send(ctx.wfd, err);
    } catch (...) {
    }
    ::_exit(1);
  }
}

// --- supervisor side ---------------------------------------------------------

struct Batch {
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> idxs;  ///< global enqueue indices, in order
  std::uint64_t retries = 0;
};

struct WorkerSlot {
  pid_t pid = -1;
  int rfd = -1;  ///< frames from the worker
  int wfd = -1;  ///< frames to the worker
  wire::FrameReader reader;
  std::string outbox;
  std::size_t outbox_off = 0;
  Clock::time_point last_heard{};
  std::optional<Batch> outstanding;
  std::uint64_t restarts = 0;
  bool alive = false;
  bool dead_forever = false;  ///< retry budget exhausted; partition orphaned
  bool respawn_pending = false;
  Clock::time_point respawn_at{};
};

class Supervisor {
 public:
  Supervisor(const TransitionSystem& ts, const DistOptions& options,
             DistDelegate& delegate, ShardedVisitedSet& sink)
      : ts_(ts),
        options_(options),
        delegate_(delegate),
        sink_(sink),
        tuning_(resolve_tuning(options)),
        collapse_(options.por && ts.collapse_chains()),
        reduced_(options.rf_quotient),
        nworkers_(options.workers),
        enforcer_(options.budget, options.cancel, options.fault,
                  [this]() -> std::uint64_t {
                    return static_cast<std::uint64_t>(sink_.bytes()) +
                           (reduced_ ? static_cast<std::uint64_t>(
                                           canon_.bytes())
                                     : 0);
                  }) {
    if (reduced_) {
      abs_ = make_rf_quotient_abstraction(ts.system(), options.rf_pins);
    }
    slots_.resize(nworkers_);
    queues_.resize(nworkers_);
  }

  DistResult run();

 private:
  // ---- seeding / enqueue ----

  void seed() {
    const Config init = ts_.initial();
    const std::vector<std::uint64_t> enc = init.encode();
    const auto ins = sink_.insert_traced(enc, ShardedVisitedSet::kNoState, 0,
                                         "init");
    RC11_REQUIRE(ins.inserted, "supervised run requires an empty trace sink");
    if (reduced_) {
      abs_->key(init, key_);
      canon_.insert_masked(key_.encoding, 0);
      enqueue(ins.id, key_.encoding);
    } else {
      enqueue(ins.id, enc);
    }
  }

  /// Appends a freshly interned frontier state: assigns the next global
  /// enqueue index (the absorption order) and queues it on the hash
  /// partition its key names.  A dead partition's work goes straight to
  /// quarantine — it can never be served again.
  void enqueue(std::uint64_t sink_id,
               std::span<const std::uint64_t> part_key) {
    const std::uint64_t idx = states_by_idx_.size();
    states_by_idx_.push_back(sink_id);
    const auto part = static_cast<std::size_t>(support::hash_words(part_key) %
                                               nworkers_);
    if (slots_[part].dead_forever) {
      orphaned_.insert(idx);
    } else {
      queues_[part].push_back(idx);
    }
  }

  // ---- deterministic absorption (mirrors engine/reach.cpp) ----

  enum class Absorb { Continue, Stop };

  /// Absorbs every result that is next in global order; returns false when
  /// the run must stop now (budget decision or delegate veto).
  bool drain_absorbable() {
    for (;;) {
      if (orphaned_.erase(next_absorb_) != 0) {
        telemetry_.states_orphaned += 1;
        consumed_ += 1;
        next_absorb_ += 1;
        continue;
      }
      const auto it = ready_.find(next_absorb_);
      if (it == ready_.end()) return true;
      StateRec rec = std::move(it->second);
      ready_.erase(it);
      const Absorb outcome = absorb_one(next_absorb_, rec);
      next_absorb_ += 1;
      if (outcome == Absorb::Stop) return false;
    }
  }

  Absorb absorb_one(std::uint64_t idx, StateRec& rec) {
    // Same gate order as the sequential driver: claim before the item is
    // consumed, so a budget stop leaves it (and everything after it)
    // enqueued in the sink for checkpoint resume.
    const StopReason gate = enforcer_.claim();
    if (gate != StopReason::Complete) {
      budget_stop_ = true;
      return Absorb::Stop;
    }
    const std::uint64_t frontier_size = states_by_idx_.size() - consumed_;
    stats_.peak_frontier = std::max(stats_.peak_frontier, frontier_size);
    stats_.states += 1;
    if (rec.reduced) stats_.por_reduced += 1;
    if (rec.is_final) {
      stats_.finals += 1;
    } else if (rec.blocked) {
      stats_.blocked += 1;
    }
    stats_.transitions += rec.steps;

    // The visitor runs before successor processing, exactly like the
    // sequential driver; its veto stops the run *after* this state's
    // successors are interned (so the sink stays checkpoint-consistent).
    bool keep = !rec.veto;
    const std::uint64_t sink_id = states_by_idx_[idx];
    for (const Json& event : rec.events) {
      if (!delegate_.absorb(event, sink_id, sink_)) keep = false;
    }
    for (SuccRec& succ : rec.succs) {
      if (reduced_) {
        absorb_succ_reduced(sink_id, succ);
      } else {
        absorb_succ_plain(sink_id, succ);
      }
    }
    consumed_ += 1;
    if (!keep) {
      veto_ = true;
      return Absorb::Stop;
    }
    return Absorb::Continue;
  }

  /// Plain / POR-collapse interning: hop 0 is the direct successor (a
  /// chain-start is interned unenqueued), later hops are chain-internal
  /// states, the last hop is the enqueued chain end.  First duplicate drops
  /// the whole branch — whichever expansion interned it first also interned
  /// the same deterministic suffix.
  void absorb_succ_plain(std::uint64_t parent, SuccRec& succ) {
    HopRec& h0 = succ.hops.front();
    const bool chain_start = collapse_ && succ.hops.size() > 1;
    const auto ins = sink_.insert_traced(h0.enc, parent, h0.thread,
                                         std::move(h0.label), !chain_start);
    if (!ins.inserted) return;
    std::uint64_t id = ins.id;
    for (std::size_t k = 1; k < succ.hops.size(); ++k) {
      HopRec& hk = succ.hops[k];
      const bool last = k + 1 == succ.hops.size();
      const auto cins = sink_.insert_traced(hk.enc, id, hk.thread,
                                            std::move(hk.label), last);
      if (!cins.inserted) return;
      stats_.por_chained += 1;
      id = cins.id;
    }
    enqueue(id, succ.hops.back().enc);
  }

  /// Rf-quotient interning: intermediate hops resolve (walking through
  /// duplicates), the chain end's abstraction key decides membership in the
  /// canonical set, and only a fresh class enqueues its concrete
  /// representative.  Identical to process_steps_reduced with sleep sets
  /// off (all-zero masks never revisit).
  void absorb_succ_reduced(std::uint64_t parent, SuccRec& succ) {
    for (std::size_t k = 0; k + 1 < succ.hops.size(); ++k) {
      HopRec& hk = succ.hops[k];
      parent = sink_.resolve_traced(hk.enc, parent, hk.thread,
                                    std::move(hk.label), /*enqueued=*/false)
                   .id;
      stats_.por_chained += 1;
    }
    HopRec& last = succ.hops.back();
    const auto cins = sink_.resolve_traced(last.enc, parent, last.thread,
                                           std::move(last.label),
                                           /*enqueued=*/false);
    const auto r = canon_.insert_masked(succ.key, 0);
    if (!r.inserted) {
      if (cins.inserted) stats_.rf_merges += 1;
      return;
    }
    sink_.mark_enqueued(cins.id);
    enqueue(cins.id, succ.key);
  }

  // ---- process management ----

  void spawn(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    slot.respawn_pending = false;
    int down[2] = {-1, -1};
    int up[2] = {-1, -1};
    if (::pipe(down) != 0 || ::pipe(up) != 0) {
      if (down[0] >= 0) {
        ::close(down[0]);
        ::close(down[1]);
      }
      respawn_failed(w);
      return;
    }
    // The child would otherwise duplicate any buffered stdio into its own
    // (short) lifetime of the streams.
    std::cout.flush();
    std::cerr.flush();
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(down[0]);
      ::close(down[1]);
      ::close(up[0]);
      ::close(up[1]);
      respawn_failed(w);
      return;
    }
    if (pid == 0) {
      // Child: keep only this slot's two pipe ends.  Holding a sibling's
      // supervisor-side descriptors would defeat its EOF detection.
      ::close(down[1]);
      ::close(up[0]);
      for (WorkerSlot& other : slots_) {
        if (other.rfd >= 0) ::close(other.rfd);
        if (other.wfd >= 0) ::close(other.wfd);
      }
      WorkerCtx ctx{ts_, options_, delegate_, static_cast<unsigned>(w),
                    down[0], up[1]};
      worker_main(ctx);  // noreturn (_exit, never the parent's atexit)
    }
    ::close(down[0]);
    ::close(up[1]);
    ::fcntl(up[0], F_SETFL, O_NONBLOCK);
    ::fcntl(down[1], F_SETFL, O_NONBLOCK);
    slot.pid = pid;
    slot.rfd = up[0];
    slot.wfd = down[1];
    slot.reader = wire::FrameReader{};
    slot.outbox.clear();
    slot.outbox_off = 0;
    slot.alive = true;
    slot.last_heard = Clock::now();
    if (slot.outstanding.has_value()) {
      // Replays only unacked work: the resent batch carries a fresh seq and
      // dispatch index, so single-shot injected faults do not re-fire.
      send_batch(w, *slot.outstanding);
    }
  }

  void respawn_failed(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    slot.restarts += 1;
    if (slot.restarts > tuning_.retries + kLifetimeRestartSlack) {
      orphan_slot(w);
      return;
    }
    slot.respawn_pending = true;
    slot.respawn_at =
        Clock::now() + std::chrono::milliseconds(tuning_.backoff_ms);
  }

  void kill_slot(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    if (!slot.alive) return;
    if (slot.wfd >= 0) ::close(slot.wfd);
    if (slot.rfd >= 0) ::close(slot.rfd);
    slot.wfd = slot.rfd = -1;
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
    slot.pid = -1;
    slot.alive = false;
    slot.outbox.clear();
    slot.outbox_off = 0;
  }

  /// A worker died, hung, or sent garbage: kill it, account the retry, and
  /// either schedule a backed-off restart (resending the unacked batch) or
  /// give the slot up for lost.
  void recover(std::size_t w, bool corrupt) {
    WorkerSlot& slot = slots_[w];
    if (corrupt) telemetry_.frames_corrupt += 1;
    kill_slot(w);
    telemetry_.worker_restarts += 1;
    slot.restarts += 1;
    if (slot.outstanding.has_value()) {
      slot.outstanding->retries += 1;
      telemetry_.batches_retried += 1;
    }
    const bool batch_exhausted = slot.outstanding.has_value() &&
                                 slot.outstanding->retries > tuning_.retries;
    const bool slot_exhausted =
        slot.restarts > tuning_.retries + kLifetimeRestartSlack;
    if (batch_exhausted || slot_exhausted) {
      orphan_slot(w);
      return;
    }
    const std::uint64_t shift =
        std::min<std::uint64_t>(slot.restarts > 0 ? slot.restarts - 1 : 0, 6);
    slot.respawn_pending = true;
    slot.respawn_at = Clock::now() + std::chrono::milliseconds(
                                         tuning_.backoff_ms << shift);
  }

  /// Quarantines a slot for good: its outstanding and queued states are
  /// orphaned (counted, skipped in absorption order, left enqueued in the
  /// sink so a checkpoint can resume them) and the run degrades to a
  /// WorkerLost partial report once the survivors drain.
  void orphan_slot(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    kill_slot(w);
    slot.dead_forever = true;
    slot.respawn_pending = false;
    lost_ = true;
    if (slot.outstanding.has_value()) {
      for (std::uint64_t idx : slot.outstanding->idxs) orphaned_.insert(idx);
      slot.outstanding.reset();
    }
    for (std::uint64_t idx : queues_[w]) orphaned_.insert(idx);
    queues_[w].clear();
  }

  // ---- wire I/O ----

  void send_frame(std::size_t w, const Json& msg) {
    WorkerSlot& slot = slots_[w];
    if (!slot.alive) return;
    slot.outbox.append(wire::encode_frame(msg.dump()));
    flush_outbox(w);
  }

  void flush_outbox(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    while (slot.alive && slot.outbox_off < slot.outbox.size()) {
      const ssize_t n = ::write(slot.wfd, slot.outbox.data() + slot.outbox_off,
                                slot.outbox.size() - slot.outbox_off);
      if (n > 0) {
        slot.outbox_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      recover(w, /*corrupt=*/false);  // EPIPE or a real write error
      return;
    }
    if (slot.outbox_off == slot.outbox.size()) {
      slot.outbox.clear();
      slot.outbox_off = 0;
    }
  }

  void send_batch(std::size_t w, Batch& batch) {
    batch.seq = ++seq_counter_;
    const std::uint64_t dispatch = ++dispatch_counter_;
    Json msg = Json::object();
    msg.set("type", Json::string("batch"));
    msg.set("seq", Json::integer(static_cast<std::int64_t>(batch.seq)));
    msg.set("dispatch", Json::integer(static_cast<std::int64_t>(dispatch)));
    Json states = Json::array();
    std::vector<std::uint64_t> enc;
    for (const std::uint64_t idx : batch.idxs) {
      Json state = Json::object();
      Json path = Json::array();
      for (const auto& edge : sink_.path_to(states_by_idx_[idx])) {
        enc.clear();
        sink_.decode_state(edge.state, enc);
        Json hop = Json::object();
        hop.set("t", Json::integer(static_cast<std::int64_t>(edge.thread)));
        hop.set("d", Json::string(
                         witness::digest_to_hex(support::hash_words(enc))));
        path.push(std::move(hop));
      }
      state.set("path", std::move(path));
      states.push(std::move(state));
    }
    msg.set("states", std::move(states));
    send_frame(w, msg);
  }

  void dispatch_all() {
    for (std::size_t w = 0; w < nworkers_; ++w) {
      WorkerSlot& slot = slots_[w];
      if (!slot.alive || slot.outstanding.has_value() || queues_[w].empty()) {
        continue;
      }
      Batch batch;
      const std::size_t take = std::min<std::size_t>(
          queues_[w].size(), static_cast<std::size_t>(tuning_.batch));
      batch.idxs.assign(queues_[w].begin(),
                        queues_[w].begin() + static_cast<std::ptrdiff_t>(take));
      queues_[w].erase(queues_[w].begin(),
                       queues_[w].begin() + static_cast<std::ptrdiff_t>(take));
      slot.outstanding = std::move(batch);
      send_batch(w, *slot.outstanding);
    }
  }

  /// Handles one validated frame from worker `w`; throws support::Error on
  /// any schema violation (the caller poisons the worker).
  void handle_frame(std::size_t w, const std::string& payload) {
    WorkerSlot& slot = slots_[w];
    const Json msg = Json::parse(payload);
    const std::string& type = msg.at("type").as_string();
    if (type == "hello" || type == "hb") return;  // liveness only
    if (type == "error") {
      support::fail("worker reported: ", msg.at("what").as_string());
    }
    support::require(type == "ack", "unexpected frame type '", type, "'");
    support::require(slot.outstanding.has_value(),
                     "ack with no batch outstanding");
    const std::uint64_t seq = get_u64(msg.at("seq"), "seq");
    support::require(seq == slot.outstanding->seq, "ack for stale seq ", seq,
                     " (expected ", slot.outstanding->seq, ")");
    const std::vector<Json>& results = msg.at("results").items();
    support::require(results.size() == slot.outstanding->idxs.size(),
                     "ack carries ", results.size(), " results for ",
                     slot.outstanding->idxs.size(), " states");
    // Parse everything before committing anything: a schema failure halfway
    // through must leave the batch fully unacked (it will be retried whole).
    std::vector<StateRec> parsed;
    parsed.reserve(results.size());
    for (const Json& r : results) {
      parsed.push_back(parse_state_result(r, reduced_));
    }
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      ready_.emplace(slot.outstanding->idxs[i], std::move(parsed[i]));
    }
    slot.outstanding.reset();
  }

  /// Drains readable bytes from worker `w`, processing complete frames.
  /// Returns false when the worker must be recovered (EOF / read error /
  /// corrupt or malformed frame — recovery already performed).
  bool service_read(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    bool eof = false;
    char buf[16384];
    for (;;) {
      const ssize_t n = ::read(slot.rfd, buf, sizeof buf);
      if (n > 0) {
        slot.reader.feed(buf, static_cast<std::size_t>(n));
        slot.last_heard = Clock::now();
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;
      break;
    }
    std::string payload;
    std::string error;
    for (;;) {
      const auto status = slot.reader.next(payload, error);
      if (status == wire::FrameReader::Status::NeedMore) break;
      if (status == wire::FrameReader::Status::Corrupt) {
        recover(w, /*corrupt=*/true);
        return false;
      }
      try {
        handle_frame(w, payload);
      } catch (const std::exception&) {
        // Malformed-but-CRC-clean content: same quarantine as a CRC fail.
        recover(w, /*corrupt=*/true);
        return false;
      }
    }
    if (eof) {
      recover(w, /*corrupt=*/false);
      return false;
    }
    return true;
  }

  void step_io() {
    const Clock::time_point now = Clock::now();
    // Poll timeout: the nearest timer (respawn deadline or hang deadline),
    // capped so budget probing stays responsive.
    int timeout_ms = kPollSliceMs;
    const auto consider = [&](Clock::time_point when) {
      long long left = std::chrono::duration_cast<std::chrono::milliseconds>(
                           when - now)
                           .count();
      if (left < 0) left = 0;
      if (left < timeout_ms) timeout_ms = static_cast<int>(left);
    };
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;
    for (std::size_t w = 0; w < nworkers_; ++w) {
      WorkerSlot& slot = slots_[w];
      if (slot.respawn_pending) consider(slot.respawn_at);
      if (!slot.alive) continue;
      if (slot.outstanding.has_value()) {
        consider(slot.last_heard +
                 std::chrono::milliseconds(tuning_.hang_ms));
      }
      pollfd p{};
      p.fd = slot.rfd;
      p.events = POLLIN;
      if (slot.outbox_off < slot.outbox.size()) p.events |= POLLOUT;
      // POLLOUT must watch the write fd; poll one entry per direction.
      fds.push_back(p);
      owners.push_back(w);
      if (slot.outbox_off < slot.outbox.size()) {
        pollfd q{};
        q.fd = slot.wfd;
        q.events = POLLOUT;
        fds.push_back(q);
        owners.push_back(w);
      }
    }
    if (!fds.empty()) {
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    } else if (timeout_ms > 0) {
      ::poll(nullptr, 0, timeout_ms);
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const std::size_t w = owners[i];
      WorkerSlot& slot = slots_[w];
      if (!slot.alive) continue;  // recovered earlier in this sweep
      if (fds[i].fd == slot.wfd && (fds[i].revents & POLLOUT) != 0) {
        flush_outbox(w);
      } else if (fds[i].fd == slot.rfd &&
                 (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        service_read(w);
      }
    }
    const Clock::time_point after = Clock::now();
    for (std::size_t w = 0; w < nworkers_; ++w) {
      WorkerSlot& slot = slots_[w];
      if (slot.alive) {
        // waitpid death sweep: drain any final frames first, so a worker
        // that crashed *after* writing its ack costs no retry.
        int status = 0;
        const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
        if (reaped == slot.pid) {
          if (service_read(w)) {
            slot.pid = -1;  // already reaped; kill_slot must not wait again
            ::close(slot.rfd);
            ::close(slot.wfd);
            slot.rfd = slot.wfd = -1;
            slot.alive = false;
            slot.outbox.clear();
            slot.outbox_off = 0;
            recover_reaped(w);
          }
          continue;
        }
        // Hang detection: outstanding work and radio silence too long.
        if (slot.outstanding.has_value() &&
            after - slot.last_heard >
                std::chrono::milliseconds(tuning_.hang_ms)) {
          recover(w, /*corrupt=*/false);
        }
      } else if (slot.respawn_pending && after >= slot.respawn_at) {
        spawn(w);
      }
    }
  }

  /// recover() for a worker that was already reaped and closed: accounts
  /// the retry / schedules the restart without the kill/waitpid step.
  void recover_reaped(std::size_t w) {
    WorkerSlot& slot = slots_[w];
    telemetry_.worker_restarts += 1;
    slot.restarts += 1;
    if (slot.outstanding.has_value()) {
      slot.outstanding->retries += 1;
      telemetry_.batches_retried += 1;
    }
    const bool batch_exhausted = slot.outstanding.has_value() &&
                                 slot.outstanding->retries > tuning_.retries;
    const bool slot_exhausted =
        slot.restarts > tuning_.retries + kLifetimeRestartSlack;
    if (batch_exhausted || slot_exhausted) {
      orphan_slot(w);
      return;
    }
    const std::uint64_t shift =
        std::min<std::uint64_t>(slot.restarts > 0 ? slot.restarts - 1 : 0, 6);
    slot.respawn_pending = true;
    slot.respawn_at = Clock::now() + std::chrono::milliseconds(
                                         tuning_.backoff_ms << shift);
  }

  bool any_outstanding() const {
    for (const WorkerSlot& slot : slots_) {
      if (slot.outstanding.has_value()) return true;
      if (slot.respawn_pending) return true;  // restart will resend
    }
    return false;
  }

  void orphan_all_queues() {
    for (std::size_t w = 0; w < nworkers_; ++w) {
      for (std::uint64_t idx : queues_[w]) orphaned_.insert(idx);
      queues_[w].clear();
    }
  }

  void shutdown_all() {
    for (std::size_t w = 0; w < nworkers_; ++w) kill_slot(w);
  }

  // ---- members ----

  const TransitionSystem& ts_;
  const DistOptions& options_;
  DistDelegate& delegate_;
  ShardedVisitedSet& sink_;
  const Tuning tuning_;
  const bool collapse_;
  const bool reduced_;
  const std::size_t nworkers_;
  BudgetEnforcer enforcer_;
  std::unique_ptr<StateAbstraction> abs_;
  AbstractKey key_;
  ShardedVisitedSet canon_;  ///< abstraction-key set (rf-quotient runs only)

  std::vector<WorkerSlot> slots_;
  std::vector<std::deque<std::uint64_t>> queues_;  ///< per-partition FIFOs
  std::vector<std::uint64_t> states_by_idx_;       ///< enqueue idx -> sink id
  std::map<std::uint64_t, StateRec> ready_;        ///< buffered early results
  std::set<std::uint64_t> orphaned_;               ///< quarantined idxs
  std::uint64_t next_absorb_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::uint64_t dispatch_counter_ = 0;

  ExploreStats stats_;
  DistTelemetry telemetry_;
  bool veto_ = false;
  bool budget_stop_ = false;
  bool lost_ = false;
};

DistResult Supervisor::run() {
  seed();
  for (std::size_t w = 0; w < nworkers_; ++w) spawn(w);
  for (;;) {
    if (!drain_absorbable()) break;  // budget stop or delegate veto
    if (next_absorb_ == states_by_idx_.size()) break;  // frontier consumed
    if (lost_ && !any_outstanding()) {
      // Survivors drained: quarantine whatever can no longer be dispatched
      // and let the absorption loop consume it as orphan skips.
      orphan_all_queues();
      if (orphaned_.empty() && ready_.empty()) break;  // defensive backstop
      continue;
    }
    if (!lost_) dispatch_all();
    step_io();
    if (enforcer_.probe() != StopReason::Complete) {
      // Deadline / cancellation / memory cap fires even while every worker
      // is wedged: the supervisor never blocks longer than one poll slice.
      budget_stop_ = true;
      break;
    }
  }
  shutdown_all();
  stats_.visited_bytes = static_cast<std::uint64_t>(sink_.bytes()) +
                         (reduced_ ? static_cast<std::uint64_t>(canon_.bytes())
                                   : 0);
  DistResult result;
  result.stats = stats_;
  result.telemetry = telemetry_;
  if (budget_stop_) {
    result.stop = enforcer_.reason();
  } else if (lost_) {
    result.stop = StopReason::WorkerLost;
  } else {
    result.stop = StopReason::Complete;
  }
  return result;
}

}  // namespace

const Config& ConfigMaterializer::at(std::uint64_t id) {
  const auto hit = memo_.find(id);
  if (hit != memo_.end()) return hit->second;
  const auto path = sink_.path_to(id);
  Config cur = ts_.initial();
  std::size_t start = 0;
  for (std::size_t i = path.size(); i > 0; --i) {
    const auto it = memo_.find(path[i - 1].state);
    if (it != memo_.end()) {
      cur = it->second;
      start = i;
      break;
    }
  }
  std::vector<std::uint64_t> want;
  std::vector<std::uint64_t> enc;
  for (std::size_t i = start; i < path.size(); ++i) {
    want.clear();
    sink_.decode_state(path[i].state, want);
    buf_.clear();
    ts_.thread_successors_into(cur, path[i].thread, buf_,
                               /*want_labels=*/false);
    bool found = false;
    for (lang::Step& step : buf_.steps()) {
      enc.clear();
      step.after.encode_into(enc);
      if (enc == want) {
        cur = std::move(step.after);
        found = true;
        break;
      }
    }
    RC11_REQUIRE(found, "trace sink path does not replay");
    memo_.emplace(path[i].state, cur);
  }
  if (path.empty()) memo_.emplace(id, std::move(cur));
  return memo_.at(id);
}

DistResult supervise_reach(const TransitionSystem& ts,
                           const DistOptions& options, DistDelegate& delegate,
                           ShardedVisitedSet& sink) {
  support::require(options.workers >= 1,
                   "supervised exploration requires at least one worker");
  SigpipeGuard sigpipe;
  Supervisor supervisor(ts, options, delegate, sink);
  return supervisor.run();
}

}  // namespace rc11::engine
