// rc11lib/explore/explorer.hpp
//
// Explicit-state exploration of the combined transition relation.  This is
// the engine behind the substitution documented in DESIGN.md: the paper
// discharges its lemmas symbolically in Isabelle/HOL; we decide the same
// questions on finite instantiations by enumerating every reachable
// configuration of the operational semantics.
//
// States are deduplicated by their canonical encoding (order-isomorphic
// timestamp quotient — see memsem::SemanticsOptions::canonical_timestamps),
// which is what keeps litmus-style programs finite-state: reads only advance
// views monotonically and the set of modifying operations is bounded by the
// program's writes.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lang/config.hpp"
#include "witness/witness.hpp"

namespace rc11::explore {

class ShardedVisitedSet;

using lang::Config;
using lang::Step;
using lang::System;
using lang::ThreadId;

/// Search order.  Both visit the same set of states (the visited set makes
/// exploration order-insensitive); BFS yields shortest counterexample
/// traces, DFS has the smaller frontier on deep graphs.
enum class SearchStrategy : std::uint8_t { Dfs, Bfs };

struct ExploreOptions {
  /// Hard cap on distinct states; exploration reports truncation beyond it.
  std::uint64_t max_states = 1'000'000;
  SearchStrategy strategy = SearchStrategy::Dfs;
  /// Worker threads expanding configurations: 1 (the default) runs the exact
  /// sequential search — required for BFS shortest-trace guarantees and kept
  /// as the default for Owicki–Gries outline checking; 0 resolves to
  /// std::thread::hardware_concurrency(); N > 1 runs a shared-frontier pool
  /// over a lock-striped visited set (sharded_visited.hpp).  For every thread
  /// count the *set* of visited states, final configurations, outcomes and
  /// the presence of violations are identical (final configs and violations
  /// are sorted canonically before returning); only per-run orderings — which
  /// violation is reported first under stop_on_violation, which states fall
  /// inside a max_states truncation — may differ.  The invariant callback
  /// must be thread-safe when more than one worker resolves.  track_traces
  /// composes with every thread count: parent links are recorded per interned
  /// state under the visited-set shard lock, so a parallel run's trace may
  /// differ from a sequential run's but is always a real execution (and
  /// always replays — see witness::replay).
  unsigned num_threads = 1;
  /// Sound reduction for outcome-set exploration: when some thread's next
  /// instruction is *local* (Assign / Branch / Jump — deterministic, no
  /// memory effect), expand only that thread.  Local steps commute with all
  /// other transitions and can never be disabled, so reachable final states
  /// and memory behaviours are preserved while intermediate interleavings of
  /// program counters are pruned.  Leave off when checking proof outlines
  /// (annotations quantify over the *full* interleaving set).
  bool fuse_local_steps = false;
  /// Stop at the first invariant violation (otherwise keep counting).
  bool stop_on_violation = true;
  /// Record parent links and step labels so violations come with a full
  /// counterexample trace and a structured replayable witness (costs memory;
  /// default off for benchmarks).  Works for any num_threads.
  bool track_traces = false;
  /// Keep a copy of every final configuration (needed for outcome sets).
  bool collect_finals = true;
};

/// An invariant violation with an optional counterexample trace.
struct Violation {
  std::string what;              ///< description from the invariant callback
  std::string state_dump;        ///< pretty-printed violating configuration
  std::vector<std::string> trace;  ///< step labels from the initial state
  /// Structured, replayable counterexample (present iff track_traces):
  /// serialise with witness::to_json, validate with witness::replay.
  std::optional<witness::Witness> witness;
};

struct ExploreStats {
  std::uint64_t states = 0;       ///< distinct states visited
  std::uint64_t transitions = 0;  ///< transitions generated
  std::uint64_t finals = 0;       ///< states with every thread terminated
  std::uint64_t blocked = 0;      ///< non-final states with no transition
  std::uint64_t peak_frontier = 0;  ///< largest unexpanded-state backlog
  /// Heap footprint of the visited set at the end of the run (interned
  /// arena + fingerprint tables); divide by `states` for bytes/state.
  std::uint64_t visited_bytes = 0;
};

struct ExploreResult {
  ExploreStats stats;
  /// Deduplicated (iff collect_finals) and sorted by canonical encoding, so
  /// results compare equal across search strategies and thread counts.
  std::vector<Config> final_configs;
  /// Sorted by (what, state_dump); identical modulo traces for any thread
  /// count when stop_on_violation is off.
  std::vector<Violation> violations;
  bool truncated = false;  ///< hit max_states: results are a lower bound

  [[nodiscard]] bool ok() const { return violations.empty() && !truncated; }
};

/// Invariant callback: return a description to report a violation at this
/// reachable configuration, or std::nullopt if the configuration is fine.
/// Must be thread-safe when ExploreOptions::num_threads resolves to > 1.
using Invariant =
    std::function<std::optional<std::string>(const System&, const Config&)>;

// --- generic reachability driver --------------------------------------------
//
// The engine underneath explore(), og::check_outline and
// refinement::build_graph: enumerate every reachable configuration exactly
// once — sequentially or with a worker pool — and hand each one, together
// with its enabled steps, to a visitor.

struct ReachOptions {
  std::uint64_t max_states = 1'000'000;
  unsigned num_threads = 1;  ///< same convention as ExploreOptions
  SearchStrategy strategy = SearchStrategy::Dfs;
  bool fuse_local_steps = false;
  bool want_labels = false;  ///< fill Step::label for the visitor
  /// Caller-owned trace sink.  When set, the driver uses it as the visited
  /// set: every state is interned via insert_traced (recording parent id,
  /// acting thread and step label under the shard lock), labels are forced
  /// on, and the visitor receives each state's id so it can reconstruct the
  /// path to any state of interest with ShardedVisitedSet::path_to — safely
  /// mid-run, from any worker.  Must be empty (freshly constructed) and must
  /// outlive the call.  When null, ids passed to the visitor are
  /// ShardedVisitedSet::kNoState and the driver owns its visited set.
  ShardedVisitedSet* trace = nullptr;
};

/// Called exactly once per reachable configuration with its enabled steps
/// (empty for final/blocked states).  `state_id` identifies the
/// configuration in ReachOptions::trace (kNoState when no trace sink is
/// set).  Return false to request a cooperative stop: in-flight workers
/// finish their current state and no further states are claimed.  Must be
/// thread-safe when num_threads resolves to > 1 (the driver still needs the
/// successor configurations after the call, hence the const view).  The span
/// points into a per-worker pooled StepBuffer and is only valid for the
/// duration of the call.
using StateVisitor = std::function<bool(const Config&, std::uint64_t state_id,
                                        std::span<const Step>)>;

struct ReachResult {
  ExploreStats stats;
  bool truncated = false;
};

/// Enumerates reachable configurations under `options`, invoking `visitor`
/// once per configuration.  Deduplication uses canonical encodings with
/// full-encoding confirmation (collision-sound), lock-striped across shards
/// when parallel.
[[nodiscard]] ReachResult visit_reachable(const System& sys,
                                          const ReachOptions& options,
                                          const StateVisitor& visitor);

/// Explores all configurations reachable from the initial configuration.
/// `invariant` (if given) is evaluated at every reachable configuration.
[[nodiscard]] ExploreResult explore(const System& sys,
                                    const ExploreOptions& options = {},
                                    const Invariant& invariant = {});

/// Convenience: the set of final values of selected registers, as tuples in
/// the order given.  This is how litmus outcomes ("r1 = 1, r2 = 0 allowed?")
/// are extracted.
[[nodiscard]] std::vector<std::vector<lang::Value>> final_register_values(
    const System& sys, const ExploreResult& result,
    const std::vector<lang::Reg>& regs);

/// True iff some final configuration assigns exactly `values` to `regs`.
[[nodiscard]] bool outcome_reachable(const System& sys,
                                     const ExploreResult& result,
                                     const std::vector<lang::Reg>& regs,
                                     const std::vector<lang::Value>& values);

}  // namespace rc11::explore
