# Empty dependencies file for bench_trace_refinement.
# This may be replaced when dependencies are built.
