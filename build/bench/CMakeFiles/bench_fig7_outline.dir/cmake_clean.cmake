file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_outline.dir/bench_fig7_outline.cpp.o"
  "CMakeFiles/bench_fig7_outline.dir/bench_fig7_outline.cpp.o.d"
  "bench_fig7_outline"
  "bench_fig7_outline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_outline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
