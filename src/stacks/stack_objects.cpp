#include "stacks/stack_objects.hpp"

#include "memsem/types.hpp"
#include "support/diagnostics.hpp"

namespace rc11::stacks {

using lang::c;
using memsem::Component;
using memsem::kStackEmpty;

// --- abstract stack -----------------------------------------------------------

void AbstractStack::declare(System& sys) { s_ = sys.library_stack("s"); }

void AbstractStack::emit_push(ThreadBuilder& tb, Expr value, bool releasing) {
  if (releasing) {
    tb.push_rel(s_, std::move(value), "s.pushR");
  } else {
    tb.push(s_, std::move(value), "s.push");
  }
}

void AbstractStack::emit_pop(ThreadBuilder& tb, Reg dst, bool acquiring) {
  if (acquiring) {
    tb.pop_acq(dst, s_, "r <- s.popA()");
  } else {
    tb.pop(dst, s_, "r <- s.pop()");
  }
}

// --- locked vector stack --------------------------------------------------------

void LockedVectorStack::declare(System& sys) {
  support::require(capacity_ >= 1 && capacity_ <= 8,
                   "LockedVectorStack capacity must be in [1, 8]");
  regs_.reset();
  lk_ = sys.library_var("slk", 0);
  cnt_ = sys.library_var("scnt", 0);
  slots_.clear();
  for (unsigned i = 0; i < capacity_; ++i) {
    slots_.push_back(sys.library_var("slot" + std::to_string(i), 0));
  }
}

LockedVectorStack::ThreadRegs& LockedVectorStack::regs_for(ThreadBuilder& tb) {
  return regs_.get(tb, [](ThreadBuilder& b) {
    return ThreadRegs{b.reg("svs_loc", 0, Component::Library),
                      b.reg("svs_cnt", 0, Component::Library)};
  });
}

void LockedVectorStack::emit_lock(ThreadBuilder& tb) {
  auto& r = regs_for(tb);
  tb.do_until([&] { tb.cas(r.loc, lk_, c(0), c(1), "loc <- CAS(slk, 0, 1)"); },
              Expr{r.loc});
}

void LockedVectorStack::emit_unlock(ThreadBuilder& tb) {
  if (releasing_unlock_) {
    tb.store_rel(lk_, c(0), "slk :=R 0");
  } else {
    tb.store(lk_, c(0), "slk := 0 (BROKEN: relaxed)");
  }
}

void LockedVectorStack::emit_push(ThreadBuilder& tb, Expr value,
                                  bool /*releasing*/) {
  // The implementation synchronises through the lock regardless of the
  // client's annotation: it may synchronise *more* than a relaxed abstract
  // push, which is fine for refinement (concrete observability shrinks).
  auto& r = regs_for(tb);
  emit_lock(tb);
  tb.load(r.cnt, cnt_, "c <- scnt");
  // if c == 0 { slot0 := v } else if c == 1 { slot1 := v } ... overflow
  // clobbers the top slot (a client-visible divergence refinement would
  // catch; clients must respect the capacity bound).
  std::function<void(unsigned)> chain = [&](unsigned i) {
    if (i + 1 == slots_.size()) {
      tb.store(slots_[i], value, "slot := v");
      return;
    }
    tb.if_else(
        Expr{r.cnt} == c(static_cast<lang::Value>(i)),
        [&] { tb.store(slots_[i], value, "slot := v"); },
        [&] { chain(i + 1); });
  };
  chain(0);
  tb.store(cnt_, Expr{r.cnt} + c(1), "scnt := c + 1");
  emit_unlock(tb);
}

void LockedVectorStack::emit_pop(ThreadBuilder& tb, Reg dst,
                                 bool /*acquiring*/) {
  auto& r = regs_for(tb);
  emit_lock(tb);
  tb.load(r.cnt, cnt_, "c <- scnt");
  std::function<void(unsigned)> chain = [&](unsigned i) {
    if (i + 1 == slots_.size()) {
      tb.load(dst, slots_[i], "r <- slot");
      return;
    }
    tb.if_else(
        Expr{r.cnt} == c(static_cast<lang::Value>(i + 1)),
        [&] { tb.load(dst, slots_[i], "r <- slot"); },
        [&] { chain(i + 1); });
  };
  tb.if_else(
      Expr{r.cnt} == c(0),
      [&] { tb.assign(dst, c(kStackEmpty), "r := Empty"); },
      [&] {
        chain(0);
        tb.store(cnt_, Expr{r.cnt} - c(1), "scnt := c - 1");
      });
  emit_unlock(tb);
}

// --- instantiation / clients ------------------------------------------------------

System instantiate(const StackClientProgram& client, StackObject& object) {
  return og::instantiate_object(client, object);
}

StackClientProgram publication_client(StackClientArtifacts* artifacts) {
  return [artifacts](System& sys, StackObject& stack) {
    const auto d = sys.client_var("d", 0);
    auto t0 = sys.thread();
    t0.store(d, c(5), "d := 5");
    stack.emit_push(t0, c(1), /*releasing=*/true);

    auto t1 = sys.thread();
    auto r1 = t1.reg("r1");
    auto r2 = t1.reg("r2");
    stack.emit_pop(t1, r1, /*acquiring=*/true);
    t1.load(r2, d, "r2 <- d");

    if (artifacts != nullptr) {
      artifacts->vars = {d};
      artifacts->regs = {r1, r2};
    }
  };
}

StackClientProgram producer_consumer_client(unsigned pushes,
                                            StackClientArtifacts* artifacts) {
  support::require(pushes >= 1 && pushes <= 4,
                   "producer_consumer_client supports 1..4 pushes");
  return [pushes, artifacts](System& sys, StackObject& stack) {
    auto t0 = sys.thread();
    for (unsigned i = 0; i < pushes; ++i) {
      stack.emit_push(t0, c(static_cast<lang::Value>(i + 10)),
                      /*releasing=*/true);
    }
    auto t1 = sys.thread();
    if (artifacts != nullptr) artifacts->regs.clear();
    for (unsigned i = 0; i < pushes; ++i) {
      auto r = t1.reg("p" + std::to_string(i));
      stack.emit_pop(t1, r, /*acquiring=*/true);
      if (artifacts != nullptr) artifacts->regs.push_back(r);
    }
  };
}

}  // namespace rc11::stacks
