// rc11lib/memsem/validate.hpp
//
// Structural well-formedness of weak-memory states.  These are the
// invariants the paper's soundness arguments rest on; the engine is designed
// to maintain them by construction, and the test suite re-checks them on
// every reachable state of every litmus test and lock client (property
// testing the Fig. 5 / Fig. 6 implementation):
//
//   1. modification orders are strictly increasing in (rational) timestamp
//      and agree with the cached ranks;
//   2. thread viewfronts point at operations of the right location;
//   3. every operation's modification view covers all locations, points at
//      operations of the right location, and includes the operation itself
//      at its own location;
//   4. update adjacency: an update sits immediately after the (now covered)
//      operation it read from, and read_value matches (the paper's update
//      atomicity argument);
//   5. lock histories are an alternation init (acquire release)* [acquire]
//      with version numbers equal to ranks, non-final init/release covered;
//   6. covered plain-variable writes are followed by an update or by another
//      write that was placed behind them before later operations arrived —
//      precisely: every covered variable write has a successor (nothing can
//      be covered at the end of mo while cvd enforcement is on).

#pragma once

#include <optional>
#include <string>

#include "memsem/state.hpp"

namespace rc11::memsem {

/// Returns a description of the first violated invariant, or std::nullopt if
/// the state is well-formed.  Checks assume default SemanticsOptions (the
/// ablations deliberately break some invariants).
[[nodiscard]] std::optional<std::string> validate(const MemState& state);

/// View monotonicity across a transition: every thread's viewfront rank per
/// location in `after` is at least its rank in `before` (views only move
/// forward).  Locations and thread counts must agree.
[[nodiscard]] std::optional<std::string> validate_view_monotone(
    const MemState& before, const MemState& after);

}  // namespace rc11::memsem
