// Experiment F5 (part 2): the litmus suite as a whole — every classic RC11
// RAR shape must produce exactly its allowed outcome set (allowed weak
// behaviours are found; forbidden ones — LB cycles, coherence violations,
// non-atomic CAS — are excluded).  One benchmark per test, reporting the
// explored state-space size.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"

namespace {

using namespace rc11;

void BM_Litmus(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto tests = litmus::all_tests();
    auto& test = tests.at(idx);
    auto result = explore::explore(test.sys);
    benchmark::DoNotOptimize(result.stats.states);
    state.counters["states"] = static_cast<double>(result.stats.states);
    state.counters["transitions"] = static_cast<double>(result.stats.transitions);
  }
  auto tests = litmus::all_tests();
  state.SetLabel(tests.at(idx).name);
}
BENCHMARK(BM_Litmus)->DenseRange(0, 11);

}  // namespace

namespace {

/// Experiment F5-par: the parallel explorer must reproduce the exact outcome
/// set of the sequential one on every litmus test, and we report the
/// aggregate wall-clock speedup of the 8-worker sweep over the 1-worker one.
void report_parallel_suite() {
  using clock = std::chrono::steady_clock;
  bool identical = true;
  std::string first_mismatch;
  double seq_s = 0, par_s = 0;
  for (const auto& test : rc11::litmus::all_tests()) {
    const auto t0 = clock::now();
    const auto seq = rc11::litmus::reachable_outcomes(test, 1);
    const auto t1 = clock::now();
    const auto par8 = rc11::litmus::reachable_outcomes(test, 8);
    const auto t2 = clock::now();
    const auto par2 = rc11::litmus::reachable_outcomes(test, 2);
    seq_s += std::chrono::duration<double>(t1 - t0).count();
    par_s += std::chrono::duration<double>(t2 - t1).count();
    if ((seq != par8 || seq != par2) && first_mismatch.empty()) {
      first_mismatch = test.name;
      identical = false;
    }
  }
  std::ostringstream detail;
  if (identical) {
    detail << "12/12 tests: outcome sets identical for 1/2/8 workers; "
           << "suite wall time 1 thread " << seq_s * 1e3 << " ms, 8 threads "
           << par_s * 1e3 << " ms, speedup " << seq_s / par_s << "x";
  } else {
    detail << "outcome set diverges on " << first_mismatch;
  }
  rc11::bench::verdict("F5-par", identical, detail.str());
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  auto tests = rc11::litmus::all_tests();
  for (auto& test : tests) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = rc11::bench::run_litmus("F5/" + test.name, test);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    json.add(test.name,
             {{"states", static_cast<double>(result.stats.states)},
              {"wall_ms", wall_s * 1e3},
              {"states_per_s",
               static_cast<double>(result.stats.states) / wall_s},
              {"visited_bytes",
               static_cast<double>(result.stats.visited_bytes)}});
  }
  if (!json.write("bench_litmus_suite")) return 1;
  report_parallel_suite();
  for (auto& test : rc11::litmus::all_causality_tests()) {
    const auto result = rc11::explore::explore(test.sys);
    bool ok = true;
    for (const auto& o : test.must_allow) {
      ok = ok && rc11::explore::outcome_reachable(test.sys, result,
                                                  test.observed, o);
    }
    for (const auto& o : test.must_forbid) {
      ok = ok && !rc11::explore::outcome_reachable(test.sys, result,
                                                   test.observed, o);
    }
    rc11::bench::verdict("F5/" + test.name, ok,
                         test.description + " (" +
                             std::to_string(result.stats.states) + " states)");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
