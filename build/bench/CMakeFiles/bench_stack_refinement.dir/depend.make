# Empty dependencies file for bench_stack_refinement.
# This may be replaced when dependencies are built.
