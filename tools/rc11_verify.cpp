// rc11-verify — command-line Owicki-Gries outline checker: parse a program
// with an `outline { ... }` block and check the outline over the reachable
// state space (Sections 5.2-5.3 of the paper).
//
// Usage:
//   rc11-verify [options] program.rc11
//
// Options (see tools/cli_common.hpp for the flags shared by every tool):
//   --max-states N       exploration bound (default 1000000)
//   --threads N          exploration workers (0 = hardware, default 1;
//                        traces and witnesses work at every thread count)
//   --por                ample-set partial-order reduction (failures found
//                        are real; see og/proof_outline.hpp for the caveat)
//   --stats              also print peak frontier / visited memory / POR
//                        savings
//   --json FILE          write a machine-readable run summary
//   --no-interference    skip the pairwise Owicki-Gries side condition
//   --all-failures       report every failed obligation, not just the first
//   --trace              include a counterexample run with each failure
//   --witness FILE       write the first failure as a JSON witness (implies
//                        --trace; minimized before emission)
//   --replay FILE        re-execute a JSON witness against the program
//                        instead of checking; exit 0 iff every step replays
//
// Exit status: 0 valid, 1 usage/parse errors, 2 outline invalid (or --replay
// diverged), 3 inconclusive (state bound hit).

#include <iostream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "witness/witness.hpp"

namespace {

int usage() {
  std::cerr << "usage: rc11-verify " << rc11::cli::kCommonUsage
            << " [--no-interference] [--all-failures] [--trace] "
               "program.rc11\n";
  return rc11::cli::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rc11;

  std::string path;
  cli::CommonOptions common;
  og::OutlineCheckOptions opts;
  for (int i = 1; i < argc; ++i) {
    switch (cli::parse_common_flag(argc, argv, i, common)) {
      case cli::FlagStatus::Consumed:
        continue;
      case cli::FlagStatus::Error:
        return usage();
      case cli::FlagStatus::NotMine:
        break;
    }
    const std::string arg = argv[i];
    if (arg == "--no-interference") {
      opts.check_interference = false;
    } else if (arg == "--all-failures") {
      opts.stop_at_first_failure = false;
    } else if (arg == "--trace") {
      opts.track_traces = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  opts.max_states = common.max_states;
  opts.num_threads = common.num_threads;
  opts.por = common.por;
  if (!common.witness_path.empty()) {
    opts.track_traces = true;  // witnesses ride on the recorded parents
  }

  try {
    const auto program = parser::parse_file(path);
    if (!common.replay_path.empty()) {
      return cli::run_replay(program.sys, common);
    }
    if (!program.outline) {
      std::cerr << "rc11-verify: " << path << " has no outline { ... } block\n";
      return cli::kExitUsage;
    }
    const auto result =
        og::check_outline(program.sys, *program.outline, opts);
    std::cout << "states explored:     " << result.stats.states << "\n"
              << "obligations checked: " << result.obligations_checked << "\n";
    if (common.stats) {
      cli::print_stats(result.stats, common.por);
    }

    const bool inconclusive = result.stats.states >= opts.max_states;
    if (!common.json_path.empty()) {
      auto summary = witness::Json::object();
      summary.set("tool", witness::Json::string("rc11-verify"));
      summary.set("program", witness::Json::string(path));
      summary.set("valid", witness::Json::boolean(result.valid));
      summary.set("inconclusive", witness::Json::boolean(inconclusive));
      summary.set("obligations_checked",
                  witness::Json::integer(static_cast<std::int64_t>(
                      result.obligations_checked)));
      summary.set("failures",
                  witness::Json::integer(
                      static_cast<std::int64_t>(result.failures.size())));
      summary.set("stats", cli::stats_json(result.stats));
      cli::write_json_summary(summary, common.json_path);
    }

    if (inconclusive) {
      std::cout << "INCONCLUSIVE: state bound reached\n";
      return cli::kExitInconclusive;
    }
    if (result.valid) {
      std::cout << "outline VALID"
                << (opts.check_interference ? " (incl. interference freedom)"
                                            : "")
                << "\n";
      if (!common.witness_path.empty()) {
        std::cout << "no failures; " << common.witness_path
                  << " not written\n";
      }
      return cli::kExitOk;
    }
    std::cout << "outline INVALID — " << result.failures.size()
              << " failed obligation(s):\n";
    for (const auto& failure : result.failures) {
      std::cout << "  " << failure.obligation << "\n";
      if (!failure.trace.empty()) {
        std::cout << "  run:\n";
        for (const auto& step : failure.trace) {
          std::cout << "    " << step << "\n";
        }
      }
      std::cout << "  at configuration:\n";
      std::istringstream dump{failure.state_dump};
      std::string line;
      while (std::getline(dump, line)) {
        std::cout << "    " << line << "\n";
      }
    }
    if (!common.witness_path.empty()) {
      bool written = false;
      for (const auto& failure : result.failures) {
        if (!failure.witness) continue;
        cli::write_witness(program.sys, *failure.witness,
                           common.witness_path);
        written = true;
        break;
      }
      if (!written) {
        std::cout << "no witness recorded; " << common.witness_path
                  << " not written\n";
      }
    }
    return cli::kExitFail;
  } catch (const std::exception& e) {
    std::cerr << "rc11-verify: " << e.what() << "\n";
    return cli::kExitUsage;
  }
}
