file(REMOVE_RECURSE
  "CMakeFiles/bench_prop9_seqlock_sim.dir/bench_prop9_seqlock_sim.cpp.o"
  "CMakeFiles/bench_prop9_seqlock_sim.dir/bench_prop9_seqlock_sim.cpp.o.d"
  "bench_prop9_seqlock_sim"
  "bench_prop9_seqlock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop9_seqlock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
