#include "objects/queue.hpp"

#include "support/diagnostics.hpp"

namespace rc11::objects {

using memsem::kQueueEmpty;
using memsem::LocKind;
using memsem::OpKind;

namespace {

void check_is_queue(const MemState& mem, LocId queue) {
  RC11_REQUIRE(mem.locations().kind(queue) == LocKind::Queue,
               "queue operation on non-queue location");
}

}  // namespace

std::optional<OpId> queue_front(const MemState& mem, LocId queue) {
  check_is_queue(mem, queue);
  for (const OpId id : mem.mo(queue)) {
    const auto& op = mem.op(id);
    if (op.kind == OpKind::QueueEnqueue && !op.covered) return id;
  }
  return std::nullopt;
}

bool queue_empty(const MemState& mem, LocId queue) {
  return !queue_front(mem, queue).has_value();
}

OpId queue_enqueue(MemState& mem, ThreadId t, LocId queue, Value v,
                   bool releasing) {
  check_is_queue(mem, queue);
  return mem.object_op(t, queue, OpKind::QueueEnqueue, v, releasing,
                       /*sync_with=*/std::nullopt, /*cover=*/false);
}

Value queue_dequeue(MemState& mem, ThreadId t, LocId queue, bool acquiring) {
  const auto front = queue_front(mem, queue);
  if (!front) return kQueueEmpty;
  const Value v = mem.op(*front).value;
  const bool sync = acquiring && mem.op(*front).releasing;
  mem.consume(t, queue, *front, sync);
  return v;
}

std::size_t queue_size(const MemState& mem, LocId queue) {
  check_is_queue(mem, queue);
  std::size_t n = 0;
  for (const OpId id : mem.mo(queue)) {
    const auto& op = mem.op(id);
    if (op.kind == OpKind::QueueEnqueue && !op.covered) ++n;
  }
  return n;
}

}  // namespace rc11::objects
