file(REMOVE_RECURSE
  "CMakeFiles/rc11-refine.dir/rc11_refine.cpp.o"
  "CMakeFiles/rc11-refine.dir/rc11_refine.cpp.o.d"
  "rc11-refine"
  "rc11-refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc11-refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
