// Tests for the SC baseline mode: running the *same* programs under
// sequential consistency must (a) produce exactly the classical SC outcome
// sets, (b) never exhibit an outcome RC11 RAR forbids (SC refines RC11 RAR),
// and (c) explore at most as many states.  The difference between the two
// outcome sets is precisely the set of weak behaviours the paper's model
// admits.

#include <gtest/gtest.h>

#include <map>

#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"

namespace {

using namespace rc11;
using lang::Value;

std::vector<std::vector<Value>> sc_outcomes(litmus::LitmusTest& test) {
  memsem::SemanticsOptions opts;
  opts.model = memsem::MemoryModel::SC;
  test.sys.set_options(opts);
  const auto result = explore::explore(test.sys);
  return explore::final_register_values(test.sys, result, test.observed);
}

/// The classical SC outcome sets, stated independently of the engine.
std::map<std::string, std::vector<std::vector<Value>>> sc_expected() {
  std::map<std::string, std::vector<std::vector<Value>>> exp;
  exp["MP+rel+acq"] = {{0, 0}, {0, 5}, {1, 5}};
  exp["MP+rlx"] = {{0, 0}, {0, 5}, {1, 5}};  // the stale (1, 0) disappears
  exp["SB+rel+acq"] = {{0, 1}, {1, 0}, {1, 1}};  // (0, 0) is the weak one
  exp["LB+rlx"] = {{0, 0}, {0, 1}, {1, 0}};      // same as RC11 (no LB cycles)
  exp["CoRR"] = {{0, 0}, {0, 1}, {1, 1}};
  exp["CoWW+reads"] = {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}};
  {
    // IRIW: only the disagreement (1,0,1,0) is excluded under SC.
    std::vector<std::vector<Value>> all;
    for (Value a = 0; a <= 1; ++a)
      for (Value b = 0; b <= 1; ++b)
        for (Value c = 0; c <= 1; ++c)
          for (Value d = 0; d <= 1; ++d) {
            if (a == 1 && b == 0 && c == 1 && d == 0) continue;
            all.push_back({a, b, c, d});
          }
    exp["IRIW+rel+acq"] = all;
  }
  exp["CAS-agreement"] = {{0, 1}, {1, 0}};
  exp["FAI-tickets"] = {{0, 1}, {1, 0}};
  exp["2W+reads"] = {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 1}, {2, 2}};
  exp["Fig1-stack-MP+rlx"] = {{1, 5}};  // SC repairs the unsynchronised stack
  exp["Fig2-stack-MP+sync"] = {{1, 5}};
  return exp;
}

class ScSuite : public ::testing::TestWithParam<int> {};

TEST_P(ScSuite, OutcomeSetMatchesSequentialConsistency) {
  auto tests = litmus::all_tests();
  auto& t = tests.at(static_cast<std::size_t>(GetParam()));
  const auto expected = sc_expected();
  ASSERT_TRUE(expected.count(t.name)) << "no SC expectation for " << t.name;
  EXPECT_EQ(sc_outcomes(t), expected.at(t.name)) << t.name;
}

TEST_P(ScSuite, ScOutcomesAreSubsetOfRC11) {
  auto tests = litmus::all_tests();
  auto& rc11_test = tests.at(static_cast<std::size_t>(GetParam()));
  const auto rc11_result = explore::explore(rc11_test.sys);
  const auto rc11_set = explore::final_register_values(
      rc11_test.sys, rc11_result, rc11_test.observed);

  auto sc_test = litmus::all_tests().at(static_cast<std::size_t>(GetParam()));
  const auto sc_set = sc_outcomes(sc_test);
  for (const auto& o : sc_set) {
    EXPECT_TRUE(std::find(rc11_set.begin(), rc11_set.end(), o) !=
                rc11_set.end())
        << rc11_test.name << ": SC produced an outcome RC11 RAR forbids";
  }
}

TEST_P(ScSuite, ScStateSpaceIsNoLarger) {
  auto tests = litmus::all_tests();
  auto& rc11_test = tests.at(static_cast<std::size_t>(GetParam()));
  const auto rc11_states = explore::explore(rc11_test.sys).stats.states;

  auto sc_test = litmus::all_tests().at(static_cast<std::size_t>(GetParam()));
  memsem::SemanticsOptions opts;
  opts.model = memsem::MemoryModel::SC;
  sc_test.sys.set_options(opts);
  const auto sc_states = explore::explore(sc_test.sys).stats.states;
  EXPECT_LE(sc_states, rc11_states) << rc11_test.name;
}

INSTANTIATE_TEST_SUITE_P(AllTests, ScSuite, ::testing::Range(0, 12),
                         [](const ::testing::TestParamInfo<int>& info) {
                           auto tests = litmus::all_tests();
                           std::string name =
                               tests.at(static_cast<std::size_t>(info.param)).name;
                           for (auto& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(ScBaseline, WeakBehavioursExistSomewhere) {
  // Sanity: RC11 RAR must be strictly weaker than SC on at least MP+rlx,
  // SB and IRIW.
  int strictly_weaker = 0;
  for (auto& t : litmus::all_tests()) {
    const auto rc11_set = explore::final_register_values(
        t.sys, explore::explore(t.sys), t.observed);
    auto sc_test = t;
    memsem::SemanticsOptions opts;
    opts.model = memsem::MemoryModel::SC;
    sc_test.sys.set_options(opts);
    const auto sc_set = explore::final_register_values(
        sc_test.sys, explore::explore(sc_test.sys), sc_test.observed);
    if (sc_set.size() < rc11_set.size()) ++strictly_weaker;
  }
  EXPECT_GE(strictly_weaker, 3);
}

TEST(ScBaseline, CausalityChainsHoldTriviallyUnderSC) {
  for (auto& t : litmus::all_causality_tests()) {
    memsem::SemanticsOptions opts;
    opts.model = memsem::MemoryModel::SC;
    t.sys.set_options(opts);
    const auto result = explore::explore(t.sys);
    for (const auto& o : t.must_forbid) {
      EXPECT_FALSE(explore::outcome_reachable(t.sys, result, t.observed, o))
          << t.name << ": SC must forbid whatever RA forbids here";
    }
  }
}

}  // namespace
