#!/usr/bin/env python3
"""Compare a bench --json report against a checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance F]

Fails (exit 1) when

  * a baseline case is missing from the current report,
  * the explored state count differs (the state space is deterministic —
    any difference is a semantics bug, not a performance regression), or
  * states_per_s dropped by more than the tolerance (default 30%).

Throughput above baseline is fine and only reported.  The baseline
(bench/baseline_explore.json) is refreshed deliberately, by re-running
`bench_semantics_throughput --json` and committing the result alongside the
change that moved the numbers.
"""

import argparse
import json
import sys


def load_cases(path):
    with open(path) as f:
        doc = json.load(f)
    return {case["name"]: case for case in doc["cases"]}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="maximum allowed fractional drop in states_per_s")
    args = parser.parse_args()

    baseline = load_cases(args.baseline)
    current = load_cases(args.current)

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report")
            continue
        if int(base["states"]) != int(cur["states"]):
            failures.append(
                f"{name}: state count changed "
                f"{int(base['states'])} -> {int(cur['states'])} "
                f"(state space must be identical)")
            continue
        ratio = cur["states_per_s"] / base["states_per_s"]
        status = "OK" if ratio >= 1.0 - args.tolerance else "REGRESSION"
        print(f"{name}: {base['states_per_s']:,.0f} -> "
              f"{cur['states_per_s']:,.0f} states/s ({ratio:.2f}x) {status}")
        if status != "OK":
            failures.append(
                f"{name}: states/s dropped to {ratio:.2f}x of baseline "
                f"(tolerance {1.0 - args.tolerance:.2f}x)")

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression check passed "
          f"({len(baseline)} cases, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
