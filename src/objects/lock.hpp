// rc11lib/objects/lock.hpp
//
// The abstract lock object of Section 4 (Example 1, Figure 6).
//
// The lock's operation history lives directly in the weak-memory state as
// timestamped operations on the lock's location: l.init_0, l.acquire_n,
// l.release_n, where the version subscript n counts how many lock operations
// have been executed (init is version 0).  The ordering discipline is total:
// every new operation takes a maximal timestamp.
//
//   * acquire (Fig. 6, ACQUIRE): enabled iff the maximal-timestamp operation
//     w is l.init_0 or l.release_{n-1}; the new l.acquire_n operation is
//     appended, the executing thread synchronises with w (merging mview_w
//     into its view of both components — the rule's tview' and ctview'), and
//     w becomes covered so that no later operation can be inserted between w
//     and the acquire.  The method returns true.
//
//   * release: enabled iff the executing thread holds the lock (the maximal
//     operation is its own acquire); appends a releasing l.release_{n+1}
//     whose mview is the releasing thread's full viewfront, which is what a
//     later acquire synchronises with.

#pragma once

#include <optional>

#include "memsem/state.hpp"

namespace rc11::objects {

using memsem::LocId;
using memsem::MemState;
using memsem::OpId;
using memsem::ThreadId;
using memsem::Value;

/// True iff an acquire on `lock` can fire (the lock is free: the maximal
/// operation is init or a release).  Acquire is blocking at the abstract
/// level: when the lock is held the thread simply has no transition.
[[nodiscard]] bool lock_acquire_enabled(const MemState& mem, LocId lock);

/// Fires Fig. 6's ACQUIRE: appends l.acquire_n (n = current history length),
/// synchronises with and covers the observed operation.  Returns the new
/// operation; its version is op(id).value.  Precondition: enabled.
OpId lock_acquire(MemState& mem, ThreadId t, LocId lock);

/// True iff `t` currently holds `lock` (the maximal operation is an acquire
/// executed by `t`).
[[nodiscard]] bool lock_release_enabled(const MemState& mem, ThreadId t, LocId lock);

/// Fires Fig. 6's RELEASE: appends a releasing l.release_{n+1}.
/// Precondition: enabled.
OpId lock_release(MemState& mem, ThreadId t, LocId lock);

/// The thread currently holding the lock, if any.
[[nodiscard]] std::optional<ThreadId> lock_holder(const MemState& mem, LocId lock);

/// The version (operation count) of the lock's maximal operation.
[[nodiscard]] Value lock_version(const MemState& mem, LocId lock);

}  // namespace rc11::objects
