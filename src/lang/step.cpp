// Combined transition relation: Fig. 4's program steps constrained by
// Fig. 5's memory transitions and Section 4's abstract object rules.

#include <sstream>

#include "lang/config.hpp"
#include "objects/lock.hpp"
#include "objects/queue.hpp"
#include "objects/stack.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::lang {

using memsem::kStackEmpty;
using memsem::MemState;
using memsem::OpId;

std::vector<std::uint64_t> Config::encode() const {
  std::vector<std::uint64_t> out;
  out.reserve(64);
  encode_into(out);
  return out;
}

void Config::encode_into(std::vector<std::uint64_t>& out) const {
  for (const auto p : pc) out.push_back(p);
  for (const auto& file : regs) {
    out.push_back(file.size());
    for (const auto v : file) out.push_back(static_cast<std::uint64_t>(v));
  }
  mem.encode(out);
}

std::uint64_t Config::hash() const {
  std::vector<std::uint64_t> words;
  words.reserve(64);
  encode_into(words);
  support::WordHasher h;
  for (const auto w : words) h.add(w);
  return h.digest();
}

std::string Config::to_string(const System& sys) const {
  std::ostringstream os;
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    os << "t" << t << " pc=" << pc[t];
    if (thread_done(sys, t)) os << " (done)";
    for (RegId r = 0; r < regs[t].size(); ++r) {
      os << " " << sys.reg_name(t, r) << "=" << regs[t][r];
    }
    os << "\n";
  }
  os << mem.to_string();
  return os.str();
}

StepMeta access_footprint(const Instr& in) {
  StepMeta m;
  switch (in.kind) {
    case IKind::Assign:
    case IKind::Branch:
    case IKind::Jump:
      return m;  // Local: no location, no flags
    case IKind::Load:
      m.access = memsem::AccessKind::Read;
      m.sync = memsem::synchronises(in.order);
      break;
    case IKind::Store:
      m.access = memsem::AccessKind::Write;
      m.sync = memsem::synchronises(in.order);
      break;
    case IKind::Cas:
    case IKind::Fai:
      // Conservative: CAS failure steps only read, but the footprint is per
      // instruction and RMWs are always RA.
      m.access = memsem::AccessKind::Update;
      m.sync = true;
      break;
    case IKind::LockAcquire:
    case IKind::LockRelease:
    case IKind::Push:
    case IKind::Pop:
      m.access = memsem::AccessKind::Object;
      m.sync = true;
      break;
  }
  m.loc = in.loc;
  return m;
}

Config initial_config(const System& sys) {
  Config cfg{std::vector<std::uint32_t>(sys.num_threads(), 0),
             {},
             MemState{sys.locations(), sys.num_threads(), sys.options()}};
  cfg.regs.resize(sys.num_threads());
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    cfg.regs[t].resize(sys.num_regs(t));
    for (RegId r = 0; r < cfg.regs[t].size(); ++r) {
      cfg.regs[t][r] = sys.reg_initial(t, r);
    }
  }
  return cfg;
}

namespace {

std::string describe(const System& sys, ThreadId t, const Instr& in,
                     const char* suffix) {
  std::ostringstream os;
  os << "t" << t << ": ";
  if (!in.label.empty()) {
    os << in.label;
    if (in.kind == IKind::Load || in.kind == IKind::Store ||
        in.kind == IKind::Cas || in.kind == IKind::Fai ||
        in.kind == IKind::Push || in.kind == IKind::Pop ||
        in.kind == IKind::LockAcquire || in.kind == IKind::LockRelease) {
      os << " [" << sys.locations().name(in.loc) << "]";
    }
  } else {
    os << describe_instr(sys, t, in);
  }
  os << suffix;
  return os.str();
}

/// Appends a successor built from `cfg` by `mutate`, advancing t's pc.  The
/// pooled Step slot is copy-assigned, so the Config vectors (pc, regs, ops,
/// mo, tview and every mview) reuse whatever heap capacity the slot already
/// holds from earlier states.
template <typename Mutate>
void add_step(StepBuffer& out, const System& sys, const Config& cfg,
              ThreadId t, const Instr& in, bool want_labels,
              const char* label_suffix, Mutate&& mutate) {
  Step& step = out.push(cfg);
  step.thread = t;
  step.label.clear();
  step.meta = access_footprint(in);
  step.after.pc[t] += 1;
  // The pooled slot may still hold races from the state it previously held
  // (and the parent's copy carries the parent step's); clear so that after
  // mutate() the config reports exactly the races this step introduced.
  step.after.mem.race_begin_step();
  mutate(step.after);
  if (want_labels) step.label = describe(sys, t, in, label_suffix);
}

/// thread_successors without the initial clear(), so successors() can chain
/// all threads into one buffer.
void append_thread_successors(const System& sys, const Config& cfg, ThreadId t,
                              StepBuffer& out, bool want_labels) {
  if (cfg.thread_done(sys, t)) return;
  const Instr& in = sys.code(t)[cfg.pc[t]];
  const auto& regs = cfg.regs[t];
  auto& obs = out.obs_scratch();

  switch (in.kind) {
    case IKind::Assign: {
      add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
        next.regs[t][in.dst] = in.e1.eval(regs);
      });
      break;
    }
    case IKind::Load: {
      cfg.mem.observable_into(t, in.loc, obs);
      for (const OpId w : obs) {
        add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
          next.regs[t][in.dst] =
              next.mem.read(t, in.loc, w, in.order, cfg.pc[t]);
        });
      }
      break;
    }
    case IKind::Store: {
      const Value v = in.e1.eval(regs);
      cfg.mem.observable_uncovered_into(t, in.loc, obs);
      for (const OpId w : obs) {
        add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
          next.mem.write(t, in.loc, v, in.order, w, cfg.pc[t]);
        });
      }
      break;
    }
    case IKind::Cas: {
      const Value expected = in.e2.eval(regs);
      const Value desired = in.e3.eval(regs);
      // Success: an UPDATE transition reading an observable uncovered write
      // with the expected value.
      cfg.mem.observable_uncovered_into(t, in.loc, obs);
      for (const OpId w : obs) {
        if (cfg.mem.read_value_of(w) != expected) continue;
        add_step(out, sys, cfg, t, in, want_labels, " (success)",
                 [&](Config& next) {
                   next.mem.update(t, in.loc, w, desired, cfg.pc[t]);
                   next.regs[t][in.dst] = 1;
                 });
      }
      // Failure: a relaxed READ of any observable write with a different
      // value (the paper's rd(x, v'), v' != u rule).
      cfg.mem.observable_into(t, in.loc, obs);
      for (const OpId w : obs) {
        if (cfg.mem.read_value_of(w) == expected) continue;
        add_step(out, sys, cfg, t, in, want_labels, " (fail)",
                 [&](Config& next) {
                   next.mem.read(t, in.loc, w, memsem::MemOrder::Relaxed,
                                 cfg.pc[t]);
                   next.regs[t][in.dst] = 0;
                 });
      }
      break;
    }
    case IKind::Fai: {
      cfg.mem.observable_uncovered_into(t, in.loc, obs);
      for (const OpId w : obs) {
        const Value old = cfg.mem.read_value_of(w);
        add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
          next.mem.update(t, in.loc, w, old + 1, cfg.pc[t]);
          next.regs[t][in.dst] = old;
        });
      }
      break;
    }
    case IKind::LockAcquire: {
      if (objects::lock_acquire_enabled(cfg.mem, in.loc)) {
        add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
          const auto op = objects::lock_acquire(next.mem, t, in.loc);
          if (in.has_dst) {
            // Acquire returns true; with capture_version the acquired
            // version is recorded instead (the paper's l.Acquire(v)).
            next.regs[t][in.dst] =
                in.capture_version ? next.mem.op(op).value : 1;
          }
        });
      }
      // else: blocked — no transition (abstract acquire is blocking).
      break;
    }
    case IKind::LockRelease: {
      if (objects::lock_release_enabled(cfg.mem, t, in.loc)) {
        add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
          objects::lock_release(next.mem, t, in.loc);
        });
      }
      // Releasing a lock one does not hold is a client bug; the thread
      // blocks, and the explorer reports the resulting deadlock.
      break;
    }
    case IKind::Push: {
      const Value v = in.e1.eval(regs);
      const bool is_queue =
          sys.locations().kind(in.loc) == memsem::LocKind::Queue;
      add_step(out, sys, cfg, t, in, want_labels, "", [&](Config& next) {
        const bool releasing = in.order == memsem::MemOrder::Release;
        if (is_queue) {
          objects::queue_enqueue(next.mem, t, in.loc, v, releasing);
        } else {
          objects::stack_push(next.mem, t, in.loc, v, releasing);
        }
      });
      break;
    }
    case IKind::Pop: {
      const bool is_queue =
          sys.locations().kind(in.loc) == memsem::LocKind::Queue;
      const bool empty = is_queue ? objects::queue_empty(cfg.mem, in.loc)
                                  : objects::stack_empty(cfg.mem, in.loc);
      add_step(out, sys, cfg, t, in, want_labels, empty ? " (empty)" : "",
               [&](Config& next) {
                 const bool acq = in.order == memsem::MemOrder::Acquire;
                 next.regs[t][in.dst] =
                     is_queue
                         ? objects::queue_dequeue(next.mem, t, in.loc, acq)
                         : objects::stack_pop(next.mem, t, in.loc, acq);
               });
      break;
    }
    case IKind::Branch: {
      const bool taken = in.e1.eval(regs) != 0;
      add_step(out, sys, cfg, t, in, want_labels, taken ? " (taken)" : "",
               [&](Config& next) {
                 if (taken) next.pc[t] = in.target;
               });
      break;
    }
    case IKind::Jump: {
      add_step(out, sys, cfg, t, in, want_labels, "",
               [&](Config& next) { next.pc[t] = in.target; });
      break;
    }
  }
}

/// Drains a StepBuffer into a plain vector (the cold, compatibility API).
std::vector<Step> drain(StepBuffer& buf) {
  std::vector<Step> out;
  out.reserve(buf.size());
  for (Step& step : buf.steps()) out.push_back(std::move(step));
  return out;
}

}  // namespace

void thread_successors(const System& sys, const Config& cfg, ThreadId t,
                       StepBuffer& out, bool want_labels) {
  out.clear();
  append_thread_successors(sys, cfg, t, out, want_labels);
}

void successors(const System& sys, const Config& cfg, StepBuffer& out,
                bool want_labels) {
  out.clear();
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    append_thread_successors(sys, cfg, t, out, want_labels);
  }
}

std::vector<Step> thread_successors(const System& sys, const Config& cfg,
                                    ThreadId t, bool want_labels) {
  StepBuffer buf;
  thread_successors(sys, cfg, t, buf, want_labels);
  return drain(buf);
}

std::vector<Step> successors(const System& sys, const Config& cfg,
                             bool want_labels) {
  StepBuffer buf;
  successors(sys, cfg, buf, want_labels);
  return drain(buf);
}

}  // namespace rc11::lang
