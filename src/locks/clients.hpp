// rc11lib/locks/clients.hpp
//
// Client programs (with lock holes) used by the refinement experiments.
// All of them are synchronisation-free outside the lock itself, as required
// by the forward-simulation rule for synchronisation-free clients (Def. 8):
// every client access to shared client variables is relaxed.

#pragma once

#include <vector>

#include "locks/lock_objects.hpp"

namespace rc11::locks {

using lang::Value;

/// Handles to the client-visible artifacts of a client program, for outcome
/// inspection (identical across instantiations of the same client).
struct ClientArtifacts {
  std::vector<LocId> vars;
  std::vector<Reg> regs;
};

/// The Fig. 7-shaped client: thread 0 acquires, writes d1 := 5 and d2 := 5
/// (relaxed) and releases; thread 1 acquires, reads both into r1, r2 and
/// releases.  The canonical witness for the mutual-exclusion + write-
/// visibility guarantees an implementation must preserve.
ClientProgram fig7_client(ClientArtifacts* artifacts = nullptr);

/// A bounded "most general" client: `threads` threads each run `rounds`
/// rounds of { ok <- Acquire(); x := <unique value>; r <- x; Release() }.
/// Sweeping threads × rounds approximates the universally quantified client
/// of Definition 7 within explorable bounds.
ClientProgram mgc_client(unsigned threads, unsigned rounds,
                         ClientArtifacts* artifacts = nullptr);

/// A shared-counter client: each of `threads` threads performs `rounds`
/// lock-protected increments of x (read then write, both relaxed — correct
/// only if the lock provides both mutual exclusion and write visibility).
ClientProgram counter_client(unsigned threads, unsigned rounds,
                             ClientArtifacts* artifacts = nullptr);

/// counter_client with a working section: each round acquires, loads x,
/// computes the new value through a chain of `work` local assignments, stores
/// it back and releases.  The benchmark family of the partial-order
/// reduction: the local chain interleaves with every other thread in the
/// full state graph but collapses to nothing under POR, so the reduction
/// factor grows with `work` (work = 1 degenerates to counter_client's shape
/// with a separate store register).
ClientProgram worker_client(unsigned threads, unsigned rounds, unsigned work,
                            ClientArtifacts* artifacts = nullptr);

}  // namespace rc11::locks
