#include "lang/expr.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace rc11::lang {

namespace detail {

struct ExprNode {
  enum class Kind : std::uint8_t { Const, Reg, Unary, Binary } kind{};
  Value value = 0;  // Const
  RegId reg = 0;    // Reg
  UnOp un{};
  BinOp bin{};
  std::shared_ptr<const ExprNode> lhs;
  std::shared_ptr<const ExprNode> rhs;
};

namespace {

Value eval_unary(UnOp op, Value v) {
  switch (op) {
    case UnOp::Neg: return -v;
    case UnOp::Not: return v == 0 ? 1 : 0;
  }
  RC11_REQUIRE(false, "unreachable unary op");
  return 0;
}

Value eval_binary(BinOp op, Value a, Value b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Mod:
      rc11::support::require(b != 0, "modulo by zero in program expression");
      return a % b;
    case BinOp::Eq: return a == b ? 1 : 0;
    case BinOp::Ne: return a != b ? 1 : 0;
    case BinOp::Lt: return a < b ? 1 : 0;
    case BinOp::Le: return a <= b ? 1 : 0;
    case BinOp::Gt: return a > b ? 1 : 0;
    case BinOp::Ge: return a >= b ? 1 : 0;
    case BinOp::And: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::Or: return (a != 0 || b != 0) ? 1 : 0;
  }
  RC11_REQUIRE(false, "unreachable binary op");
  return 0;
}

Value eval_node(const ExprNode* n, const std::vector<Value>& regs) {
  using Kind = ExprNode::Kind;
  switch (n->kind) {
    case Kind::Const: return n->value;
    case Kind::Reg:
      RC11_REQUIRE(n->reg < regs.size(), "register out of range in eval");
      return regs[n->reg];
    case Kind::Unary: return eval_unary(n->un, eval_node(n->lhs.get(), regs));
    case Kind::Binary:
      return eval_binary(n->bin, eval_node(n->lhs.get(), regs),
                         eval_node(n->rhs.get(), regs));
  }
  RC11_REQUIRE(false, "unreachable expr kind");
  return 0;
}

std::int64_t max_reg_node(const ExprNode* n) {
  using Kind = ExprNode::Kind;
  switch (n->kind) {
    case Kind::Const: return -1;
    case Kind::Reg: return n->reg;
    case Kind::Unary: return max_reg_node(n->lhs.get());
    case Kind::Binary:
      return std::max(max_reg_node(n->lhs.get()), max_reg_node(n->rhs.get()));
  }
  return -1;
}

std::string to_string_node(const ExprNode* n) {
  using Kind = ExprNode::Kind;
  switch (n->kind) {
    case Kind::Const: return std::to_string(n->value);
    case Kind::Reg: return "r" + std::to_string(n->reg);
    case Kind::Unary:
      return std::string(n->un == UnOp::Neg ? "-" : "!") +
             to_string_node(n->lhs.get());
    case Kind::Binary: {
      const char* op = "?";
      switch (n->bin) {
        case BinOp::Add: op = "+"; break;
        case BinOp::Sub: op = "-"; break;
        case BinOp::Mul: op = "*"; break;
        case BinOp::Mod: op = "%"; break;
        case BinOp::Eq: op = "=="; break;
        case BinOp::Ne: op = "!="; break;
        case BinOp::Lt: op = "<"; break;
        case BinOp::Le: op = "<="; break;
        case BinOp::Gt: op = ">"; break;
        case BinOp::Ge: op = ">="; break;
        case BinOp::And: op = "&&"; break;
        case BinOp::Or: op = "||"; break;
      }
      return "(" + to_string_node(n->lhs.get()) + " " + op + " " +
             to_string_node(n->rhs.get()) + ")";
    }
  }
  return "?";
}

}  // namespace
}  // namespace detail

using detail::ExprNode;

Expr Expr::constant(Value v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Const;
  n->value = v;
  return Expr{std::move(n)};
}

Expr Expr::reg(RegId r) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Reg;
  n->reg = r;
  return Expr{std::move(n)};
}

Expr Expr::unary(UnOp op, Expr operand) {
  RC11_REQUIRE(operand.valid(), "unary over empty expression");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Unary;
  n->un = op;
  n->lhs = std::move(operand.node_);
  return Expr{std::move(n)};
}

Expr Expr::binary(BinOp op, Expr lhs, Expr rhs) {
  RC11_REQUIRE(lhs.valid() && rhs.valid(), "binary over empty expression");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Binary;
  n->bin = op;
  n->lhs = std::move(lhs.node_);
  n->rhs = std::move(rhs.node_);
  return Expr{std::move(n)};
}

Value Expr::eval(const std::vector<Value>& regs) const {
  RC11_REQUIRE(node_ != nullptr, "evaluating empty expression");
  return detail::eval_node(node_.get(), regs);
}

std::int64_t Expr::max_reg() const {
  RC11_REQUIRE(node_ != nullptr, "max_reg of empty expression");
  return detail::max_reg_node(node_.get());
}

std::string Expr::to_string() const {
  return node_ ? detail::to_string_node(node_.get()) : "<empty>";
}

Expr operator+(Expr a, Expr b) { return Expr::binary(BinOp::Add, std::move(a), std::move(b)); }
Expr operator-(Expr a, Expr b) { return Expr::binary(BinOp::Sub, std::move(a), std::move(b)); }
Expr operator*(Expr a, Expr b) { return Expr::binary(BinOp::Mul, std::move(a), std::move(b)); }
Expr operator%(Expr a, Expr b) { return Expr::binary(BinOp::Mod, std::move(a), std::move(b)); }
Expr operator==(Expr a, Expr b) { return Expr::binary(BinOp::Eq, std::move(a), std::move(b)); }
Expr operator!=(Expr a, Expr b) { return Expr::binary(BinOp::Ne, std::move(a), std::move(b)); }
Expr operator<(Expr a, Expr b) { return Expr::binary(BinOp::Lt, std::move(a), std::move(b)); }
Expr operator<=(Expr a, Expr b) { return Expr::binary(BinOp::Le, std::move(a), std::move(b)); }
Expr operator>(Expr a, Expr b) { return Expr::binary(BinOp::Gt, std::move(a), std::move(b)); }
Expr operator>=(Expr a, Expr b) { return Expr::binary(BinOp::Ge, std::move(a), std::move(b)); }
Expr operator&&(Expr a, Expr b) { return Expr::binary(BinOp::And, std::move(a), std::move(b)); }
Expr operator||(Expr a, Expr b) { return Expr::binary(BinOp::Or, std::move(a), std::move(b)); }
Expr operator!(Expr a) { return Expr::unary(UnOp::Not, std::move(a)); }

Expr is_even(Expr a) {
  return (std::move(a) % Expr::constant(2)) == Expr::constant(0);
}

}  // namespace rc11::lang
