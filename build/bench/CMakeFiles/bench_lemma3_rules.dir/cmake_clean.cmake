file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma3_rules.dir/bench_lemma3_rules.cpp.o"
  "CMakeFiles/bench_lemma3_rules.dir/bench_lemma3_rules.cpp.o.d"
  "bench_lemma3_rules"
  "bench_lemma3_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma3_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
