// Tests for interning, hashing and diagnostics helpers.

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/intern.hpp"

namespace {

using namespace rc11::support;

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  const auto a = t.intern("x");
  const auto b = t.intern("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("x"), a);
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTable, LookupAndNames) {
  SymbolTable t;
  const auto a = t.intern("alpha");
  EXPECT_EQ(t.lookup("alpha"), a);
  EXPECT_EQ(t.lookup("beta"), kInvalidSymbol);
  EXPECT_EQ(t.name(a), "alpha");
  EXPECT_TRUE(t.contains("alpha"));
  EXPECT_FALSE(t.contains("beta"));
}

TEST(SymbolTable, DenseIds) {
  SymbolTable t;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.intern("s" + std::to_string(i)), static_cast<SymbolId>(i));
  }
}

TEST(Hash, CombineChangesSeed) {
  std::size_t seed = 0;
  hash_combine(seed, 42);
  EXPECT_NE(seed, 0u);
  std::size_t seed2 = 0;
  hash_combine(seed2, 43);
  EXPECT_NE(seed, seed2);
}

TEST(Hash, WordHasherOrderSensitive) {
  WordHasher a;
  a.add(1);
  a.add(2);
  WordHasher b;
  b.add(2);
  b.add(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, WordHasherDeterministic) {
  WordHasher a;
  WordHasher b;
  for (std::uint64_t i = 0; i < 16; ++i) {
    a.add(i * 0x9e3779b9ULL);
    b.add(i * 0x9e3779b9ULL);
  }
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Hash, SignedRoundTrip) {
  WordHasher a;
  a.add_signed(-1);
  WordHasher b;
  b.add(0xffffffffffffffffULL);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Diagnostics, RequirePassesAndFails) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "value was ", 42), Error);
  try {
    require(false, "value was ", 42);
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "value was 42");
  }
}

TEST(Diagnostics, InternalInvariantMacro) {
  EXPECT_NO_THROW(RC11_REQUIRE(1 + 1 == 2, "arithmetic"));
  EXPECT_THROW(RC11_REQUIRE(false, "broken"), InternalError);
}

TEST(Diagnostics, ConcatFormatsPieces) {
  EXPECT_EQ(concat("a", 1, "b", 2.5), "a1b2.5");
}

}  // namespace
