file(REMOVE_RECURSE
  "CMakeFiles/lock_client.dir/lock_client.cpp.o"
  "CMakeFiles/lock_client.dir/lock_client.cpp.o.d"
  "lock_client"
  "lock_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
