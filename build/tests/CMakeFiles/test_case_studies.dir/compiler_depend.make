# Empty compiler generated dependencies file for test_case_studies.
# This may be replaced when dependencies are built.
