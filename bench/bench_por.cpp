// Experiment F7: partial-order reduction — visited states, transitions and
// wall-clock with POR off vs. on, across the two targeted benchmark
// families (ticket-lock clients and message passing) plus control workloads.
//
// Verdict lines assert the tentpole's headline (>= 2x fewer visited states
// on the targeted families) and that the reduced exploration reaches exactly
// the same final-configuration set.  With --json the same numbers become
// BENCH_por.json, diffed by CI against bench/baseline_por.json (state counts
// exact, throughput within tolerance), which also gates the POR-off path:
// the *_full cases must not move when the reduction evolves.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

struct Workload {
  std::string name;
  lang::System sys;
  bool expect_2x;  ///< targeted family: the >= 2x headline applies
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    locks::TicketLock lock;
    w.push_back({"por_ticket_worker_2x2w4",
                 locks::instantiate(locks::worker_client(2, 2, 4), lock),
                 true});
    w.push_back({"por_ticket_worker_3x1w3",
                 locks::instantiate(locks::worker_client(3, 1, 3), lock),
                 true});
    // Control: the plain most-general client has almost no local steps, so
    // the reduction is modest — the case guards against the numbers being
    // an artifact of the workload generator rather than the reduction.
    w.push_back({"por_ticket_mgc_2x2",
                 locks::instantiate(locks::mgc_client(2, 2), lock), false});
  }
  w.push_back({"por_mp_compute_w4", litmus::mp_compute(4), true});
  w.push_back({"por_mp_spin_w3", litmus::mp_spin_compute(3), true});
  w.push_back({"por_mp_litmus", litmus::mp_release_acquire().sys, false});
  return w;
}

double timed_explore(const lang::System& sys,
                     const explore::ExploreOptions& opts,
                     explore::ExploreResult& result) {
  result = explore::explore(sys, opts);  // warm-up
  double best_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = explore::explore(sys, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

bool finals_equal(const explore::ExploreResult& a,
                  const explore::ExploreResult& b) {
  if (a.final_configs.size() != b.final_configs.size()) return false;
  for (std::size_t i = 0; i < a.final_configs.size(); ++i) {
    if (a.final_configs[i].encode() != b.final_configs[i].encode()) {
      return false;
    }
  }
  return true;
}

void report_por(rc11::bench::JsonReport& json) {
  for (const auto& [name, sys, expect_2x] : workloads()) {
    explore::ExploreOptions full_opts;
    explore::ExploreOptions por_opts;
    por_opts.por = true;

    explore::ExploreResult full, reduced;
    const double full_s = timed_explore(sys, full_opts, full);
    const double por_s = timed_explore(sys, por_opts, reduced);

    const double factor = static_cast<double>(full.stats.states) /
                          static_cast<double>(reduced.stats.states);
    const bool exact = finals_equal(full, reduced);
    const bool ok = exact && (!expect_2x || factor >= 2.0);

    std::ostringstream detail;
    detail << name << ": " << full.stats.states << " -> "
           << reduced.stats.states << " states (" << factor << "x, "
           << (expect_2x ? "target >= 2x" : "control") << "), "
           << full.stats.transitions << " -> " << reduced.stats.transitions
           << " edges, " << reduced.stats.por_chained
           << " chained local steps, finals "
           << (exact ? "identical" : "DIFFER") << ", " << full_s * 1e3
           << " -> " << por_s * 1e3 << " ms";
    rc11::bench::verdict("F7", ok, detail.str());

    json.add(name + "_full",
             {{"states", static_cast<double>(full.stats.states)},
              {"transitions", static_cast<double>(full.stats.transitions)},
              {"wall_ms", full_s * 1e3},
              {"states_per_s",
               static_cast<double>(full.stats.states) / full_s}});
    json.add(name + "_por",
             {{"states", static_cast<double>(reduced.stats.states)},
              {"transitions", static_cast<double>(reduced.stats.transitions)},
              {"wall_ms", por_s * 1e3},
              {"states_per_s",
               static_cast<double>(reduced.stats.states) / por_s},
              {"reduction", factor},
              {"por_chained",
               static_cast<double>(reduced.stats.por_chained)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_por(json);
  if (!json.write("bench_por")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
