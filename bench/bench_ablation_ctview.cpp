// Experiment A1: ablation of the paper's cross-component view transfer
// (the ctview updates of Figs. 5 and 6).  Shape: with the transfer on, the
// synchronising stack (Fig. 2) and lock clients forbid stale reads; with it
// off, the forbidden outcomes become reachable — which is exactly why the
// paper's modular semantics must thread ctview through every synchronising
// transition.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

std::size_t stale_outcomes(bool transfer) {
  auto test = litmus::fig2_stack_mp_sync();
  memsem::SemanticsOptions opts;
  opts.cross_component_view_transfer = transfer;
  test.sys.set_options(opts);
  const auto result = explore::explore(test.sys);
  const auto outcomes =
      explore::final_register_values(test.sys, result, test.observed);
  std::size_t stale = 0;
  for (const auto& o : outcomes) {
    if (o[1] != 5) ++stale;
  }
  return stale;
}

void BM_Fig2_WithTransfer(benchmark::State& state) {
  std::size_t stale = 0;
  for (auto _ : state) {
    stale = stale_outcomes(true);
    benchmark::DoNotOptimize(stale);
  }
  state.counters["stale_outcomes"] = static_cast<double>(stale);
}
BENCHMARK(BM_Fig2_WithTransfer);

void BM_Fig2_WithoutTransfer(benchmark::State& state) {
  std::size_t stale = 0;
  for (auto _ : state) {
    stale = stale_outcomes(false);
    benchmark::DoNotOptimize(stale);
  }
  state.counters["stale_outcomes"] = static_cast<double>(stale);
}
BENCHMARK(BM_Fig2_WithoutTransfer);

}  // namespace

int main(int argc, char** argv) {
  {
    const auto with = stale_outcomes(true);
    const auto without = stale_outcomes(false);
    rc11::bench::verdict(
        "A1", with == 0 && without > 0,
        "Fig. 2 stale outcomes: " + std::to_string(with) +
            " with ctview transfer, " + std::to_string(without) +
            " without — the transfer is what makes library synchronisation "
            "publish client writes");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
