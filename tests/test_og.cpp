// Tests for the assertion language (Section 5.1) and the Owicki-Gries
// proof-outline checker (Sections 5.2-5.3): the paper's Figure 3 and
// Figure 7 outlines must check out (Lemma 4), broken outlines must be
// rejected, and the six Hoare rules of Lemma 3 must hold over a lock-client
// harness.

#include <gtest/gtest.h>

#include "assertions/assertions.hpp"
#include "explore/explorer.hpp"
#include "og/catalog.hpp"
#include "og/memrules.hpp"
#include "og/proof_outline.hpp"

namespace {

using namespace rc11;
namespace asrt = rc11::assertions;
using asrt::Assertion;
using lang::c;
using lang::Config;
using lang::Expr;
using lang::IKind;
using lang::Instr;
using lang::System;
using lang::ThreadId;
using memsem::OpKind;
using og::check_outline;
using og::check_triple;

// --- assertion language basics ----------------------------------------------

struct AssertFixture : ::testing::Test {
  System sys;
  lang::LocId x, f, l;
  lang::Reg r0;

  AssertFixture() : sys() {
    x = sys.client_var("x", 0);
    f = sys.client_var("f", 0);
    l = sys.library_lock("l");
    auto t0 = sys.thread();
    r0 = t0.reg("r0");
    t0.store(x, c(1), "x := 1");
    t0.store_rel(f, c(1), "f :=R 1");
    auto t1 = sys.thread();
    auto rr = t1.reg("rr");
    t1.load_acq(rr, f, "rr <-A f");
  }
};

TEST_F(AssertFixture, PossibleAndDefiniteAtInit) {
  const auto cfg = lang::initial_config(sys);
  EXPECT_TRUE(asrt::possible_obs(0, x, 0).eval(sys, cfg));
  EXPECT_FALSE(asrt::possible_obs(0, x, 1).eval(sys, cfg));
  EXPECT_TRUE(asrt::definite_obs(1, x, 0).eval(sys, cfg));
}

TEST_F(AssertFixture, DefiniteBreaksOnConcurrentWrite) {
  auto cfg = lang::initial_config(sys);
  cfg = lang::thread_successors(sys, cfg, 0)[0].after;  // x := 1
  EXPECT_FALSE(asrt::definite_obs(1, x, 0).eval(sys, cfg))
      << "thread 1's view is stale but no longer definite";
  EXPECT_TRUE(asrt::possible_obs(1, x, 0).eval(sys, cfg));
  EXPECT_TRUE(asrt::possible_obs(1, x, 1).eval(sys, cfg));
  EXPECT_TRUE(asrt::definite_obs(0, x, 1).eval(sys, cfg));
}

TEST_F(AssertFixture, ConditionalObservationTracksReleaseViews) {
  auto cfg = lang::initial_config(sys);
  // Initially vacuous (no write of 1 to f).
  EXPECT_TRUE(asrt::cond_obs(1, f, 1, x, 1).eval(sys, cfg));
  cfg = lang::thread_successors(sys, cfg, 0)[0].after;  // x := 1
  cfg = lang::thread_successors(sys, cfg, 0)[0].after;  // f :=R 1
  EXPECT_TRUE(asrt::cond_obs(1, f, 1, x, 1).eval(sys, cfg));
  EXPECT_FALSE(asrt::cond_obs(1, f, 1, x, 0).eval(sys, cfg));
}

TEST_F(AssertFixture, BooleanCombinators) {
  const auto cfg = lang::initial_config(sys);
  const auto t = Assertion::always();
  EXPECT_TRUE((t && t).eval(sys, cfg));
  EXPECT_FALSE((t && !t).eval(sys, cfg));
  EXPECT_TRUE((t || !t).eval(sys, cfg));
  EXPECT_TRUE(asrt::implies(!t, t).eval(sys, cfg));
  EXPECT_FALSE(asrt::implies(t, !t).eval(sys, cfg));
  EXPECT_NE((t && !t).name().find("&&"), std::string::npos);
}

TEST_F(AssertFixture, PcAndRegPredicates) {
  const auto cfg = lang::initial_config(sys);
  EXPECT_TRUE(asrt::at_pc(0, 0).eval(sys, cfg));
  EXPECT_FALSE(asrt::at_pc(0, 1).eval(sys, cfg));
  EXPECT_TRUE(asrt::pc_in(0, {0, 5}).eval(sys, cfg));
  EXPECT_FALSE(asrt::thread_done(0).eval(sys, cfg));
  EXPECT_TRUE(asrt::reg_eq(r0, 0).eval(sys, cfg));
  EXPECT_TRUE(asrt::reg_in(r0, {0, 9}).eval(sys, cfg));
  EXPECT_FALSE(asrt::reg_in(r0, {1, 9}).eval(sys, cfg));
}

TEST_F(AssertFixture, CoveredAndHiddenVar) {
  System s2;
  const auto y = s2.client_var("y", 0);
  auto t0 = s2.thread();
  auto rr = t0.reg("rr");
  t0.cas(rr, y, c(0), c(1), "CAS(y,0,1)");
  auto cfg = lang::initial_config(s2);
  EXPECT_FALSE(asrt::hidden_var(y, 0).eval(s2, cfg)) << "init not covered yet";
  cfg = lang::thread_successors(s2, cfg, 0)[0].after;  // successful CAS
  EXPECT_TRUE(asrt::hidden_var(y, 0).eval(s2, cfg));
  EXPECT_TRUE(asrt::covered_var(y, 1).eval(s2, cfg))
      << "only uncovered write is the CAS result 1, and it is maximal";
  EXPECT_FALSE(asrt::covered_var(y, 0).eval(s2, cfg));
}

// --- outline checking: Figures 3 and 7 --------------------------------------

TEST(Fig3Outline, IsValidWithInterferenceFreedom) {
  auto ex = og::make_fig3();
  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto result = check_outline(ex.sys, ex.outline, opts);
  EXPECT_TRUE(result.valid) << (result.failures.empty()
                                    ? ""
                                    : result.failures[0].obligation + "\n" +
                                          result.failures[0].state_dump);
  EXPECT_GT(result.stats.states, 0u);
  EXPECT_GT(result.obligations_checked, result.stats.states);
}

TEST(Fig3Outline, BrokenPostconditionIsRejected) {
  auto ex = og::make_fig3_broken();
  const auto result = check_outline(ex.sys, ex.outline);
  EXPECT_FALSE(result.valid);
  ASSERT_FALSE(result.failures.empty());
}

TEST(Fig7Outline, IsValidWithInterferenceFreedom) {
  auto ex = og::make_fig7();
  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto result = check_outline(ex.sys, ex.outline, opts);
  EXPECT_TRUE(result.valid) << (result.failures.empty()
                                    ? ""
                                    : result.failures[0].obligation + "\n" +
                                          result.failures[0].state_dump);
}

TEST(Fig7Outline, MutualExclusionAndAgreementHold) {
  // Independent of the outline: explore and check the paper's target
  // properties directly — mutual exclusion and r1 = r2 ∈ {0, 5}.
  auto ex = og::make_fig7();
  const auto result = explore::explore(
      ex.sys, {},
      [&](const System& sys, const Config& cfg) -> std::optional<std::string> {
        const bool cs0 = cfg.pc[0] >= 1 && cfg.pc[0] <= 3;
        const bool cs1 = cfg.pc[1] >= 1 && cfg.pc[1] <= 3;
        (void)sys;
        if (cs0 && cs1) return "mutual exclusion violated";
        return std::nullopt;
      });
  EXPECT_TRUE(result.violations.empty());
  const auto outcomes =
      explore::final_register_values(ex.sys, result, {ex.r1, ex.r2});
  const std::vector<std::vector<lang::Value>> expected{{0, 0}, {5, 5}};
  EXPECT_EQ(outcomes, expected);
}

TEST(Fig7Outline, BrokenOutlineIsRejected) {
  auto ex = og::make_fig7_broken();
  const auto result = check_outline(ex.sys, ex.outline);
  EXPECT_FALSE(result.valid);
}

TEST(OutlineChecker, DetectsInterferenceDistinctFromValidity) {
  // x := 1 || (annotated) skip-like reader: the reader's annotation
  // [x = 0]_1 at its current pc is broken *by thread 0's step*, so with
  // interference checking on, the first reported failure is an interference
  // obligation.
  System sys;
  const auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1), "x := 1");
  auto t1 = sys.thread();
  auto r = t1.reg("r");
  t1.load(r, x, "r <- x");

  og::ProofOutline outline{sys};
  outline.annotate(1, 0, asrt::definite_obs(1, x, 0));
  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto result = check_outline(sys, outline, opts);
  ASSERT_FALSE(result.valid);
  EXPECT_NE(result.failures[0].obligation.find("interference"),
            std::string::npos)
      << result.failures[0].obligation;
}

TEST(OutlineChecker, GlobalInvariantViolationsAreReported) {
  System sys;
  const auto x = sys.client_var("x", 0);
  auto t0 = sys.thread();
  t0.store(x, c(1));
  og::ProofOutline outline{sys};
  outline.invariant(asrt::definite_obs(0, x, 0));
  const auto result = check_outline(sys, outline);
  ASSERT_FALSE(result.valid);
  EXPECT_NE(result.failures[0].obligation.find("global invariant"),
            std::string::npos);
}

// --- Lemma 3: Hoare rules for the abstract lock ------------------------------

/// Harness generating a rich set of lock histories: thread 0 runs two
/// acquire/write/release rounds, thread 1 one acquire/read/release round.
struct Lemma3Fixture : ::testing::Test {
  System sys;
  lang::LocId x, l;
  lang::Reg r1;

  Lemma3Fixture() : sys() {
    x = sys.client_var("x", 0);
    l = sys.library_lock("l");
    auto t0 = sys.thread();
    t0.acquire(l, std::nullopt, "acquire");
    t0.store(x, c(1), "x := 1");
    t0.release(l, "release");
    t0.acquire(l, std::nullopt, "acquire");
    t0.store(x, c(2), "x := 2");
    t0.release(l, "release");
    auto t1 = sys.thread();
    r1 = t1.reg("r1");
    t1.acquire(l, std::nullopt, "acquire");
    t1.load(r1, x, "r1 <- x");
    t1.release(l, "release");
  }

  static bool is_acquire(ThreadId t, const Instr& in, ThreadId want) {
    return t == want && in.kind == IKind::LockAcquire;
  }
  static bool is_lock_method(ThreadId t, const Instr& in, ThreadId want) {
    return t == want && (in.kind == IKind::LockAcquire ||
                         in.kind == IKind::LockRelease);
  }
};

TEST_F(Lemma3Fixture, Rule1_HiddenReleaseForcesLaterVersion) {
  // {H_{l.release_u}} Acquire(v) {v > u + 1} with u = 2.
  const auto result = check_triple(
      sys, asrt::lock_hidden(l, OpKind::LockRelease, 2),
      [](ThreadId t, const Instr& in) {
        return in.kind == IKind::LockAcquire && (void(t), true);
      },
      [&](const System&, const Config&, const Config& after) {
        const auto v = after.mem.op(after.mem.last_op(l)).value;
        return v > 3;
      });
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.instances_checked, 0u) << "rule must not hold vacuously";
}

TEST_F(Lemma3Fixture, Rule2_HiddenIsStableUnderLockMethods) {
  // {H_{l.release_u}} m(v) {H_{l.release_u}} with u = 2.
  const auto hidden = asrt::lock_hidden(l, OpKind::LockRelease, 2);
  const auto result = check_triple(
      sys, hidden,
      [](ThreadId, const Instr& in) {
        return in.kind == IKind::LockAcquire || in.kind == IKind::LockRelease;
      },
      [&](const System& s, const Config&, const Config& after) {
        return hidden.eval(s, after);
      });
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.instances_checked, 0u);
}

TEST_F(Lemma3Fixture, Rule3_DefiniteReleaseYieldsNextAcquire) {
  // {[l.release_u]_t} Acquire(v)_t {[l.acquire_{u+1}]_t} with t = 0, u = 2:
  // thread 0's own view sits at its release_2 when it re-acquires (provided
  // thread 1 has not intervened), and the next acquire is then acquire_3.
  const auto result = check_triple(
      sys, asrt::lock_definite(0, l, OpKind::LockRelease, 2),
      [](ThreadId t, const Instr& in) { return is_acquire(t, in, 0); },
      [&](const System& s, const Config&, const Config& after) {
        return asrt::lock_definite(0, l, OpKind::LockAcquire, 3).eval(s, after);
      });
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.instances_checked, 0u);
}

TEST_F(Lemma3Fixture, Rule4_DefiniteValueStableUnderForeignLockMethods) {
  // {[x = u]_t} m(v)_{t'} {[x = u]_t} with t = 0, t' = 1, u = 1.
  const auto def = asrt::definite_obs(0, x, 1);
  const auto result = check_triple(
      sys, def,
      [](ThreadId t, const Instr& in) { return is_lock_method(t, in, 1); },
      [&](const System& s, const Config&, const Config& after) {
        return def.eval(s, after);
      });
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.instances_checked, 0u);
}

TEST_F(Lemma3Fixture, Rule5_ConditionalBecomesDefiniteOnSync) {
  // {⟨l.release_u⟩[x = n]_t} Acquire(v)_t {v = u + 1 ⇒ [x = n]_t}
  // with t = 1, u = 2, n = 1.
  const auto result = check_triple(
      sys, asrt::lock_cond_obs(1, l, 2, x, 1),
      [](ThreadId t, const Instr& in) { return is_acquire(t, in, 1); },
      [&](const System& s, const Config&, const Config& after) {
        const auto v = after.mem.op(after.mem.last_op(l)).value;
        return v != 3 || asrt::definite_obs(1, x, 1).eval(s, after);
      });
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.instances_checked, 0u);
}

TEST_F(Lemma3Fixture, Rule6_ReleasePublishesDefiniteValue) {
  // {¬⟨l.release_u⟩_{t'} ∧ [x = v]_t} Release(u)_t {⟨l.release_u⟩[x = v]_{t'}}
  // with t = 0, t' = 1, u = 2, v = 1.
  const auto pre =
      !asrt::lock_possible_release(1, l, 2) && asrt::definite_obs(0, x, 1);
  const auto result = check_triple(
      sys, pre,
      [](ThreadId t, const Instr& in) {
        return t == 0 && in.kind == IKind::LockRelease;
      },
      [&](const System& s, const Config&, const Config& after) {
        const auto v = after.mem.op(after.mem.last_op(l)).value;
        return v != 2 || asrt::lock_cond_obs(1, l, 2, x, 1).eval(s, after);
      });
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.instances_checked, 0u);
}

TEST_F(Lemma3Fixture, SanityNegativeRuleFails) {
  // A deliberately wrong rule: {true} Acquire(v) {v = 1} fails because the
  // second and third acquires take larger versions.
  const auto result = check_triple(
      sys, Assertion::always(),
      [](ThreadId, const Instr& in) { return in.kind == IKind::LockAcquire; },
      [&](const System&, const Config&, const Config& after) {
        return after.mem.op(after.mem.last_op(l)).value == 1;
      });
  EXPECT_FALSE(result.valid);
}


// --- Section 5.2 memory-operation rule catalogue (M1-M9) ---------------------

TEST(MemoryRules, AllRulesHoldNonVacuously) {
  const auto results = og::check_memory_rules();
  ASSERT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.valid) << r.rule << ": " << r.description;
    EXPECT_GT(r.instances, 0u) << r.rule << " held vacuously";
  }
}

TEST(MemoryRules, CatalogueIsOrdered) {
  const auto results = og::check_memory_rules();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].rule, "M" + std::to_string(i + 1));
    EXPECT_FALSE(results[i].description.empty());
  }
}


// --- a further verified outline: the lock-protected counter -------------------

TEST(CounterOutline, LockProtectedIncrementsVerify) {
  // Two threads each perform acquire; r <- x; x := r + 1; release under the
  // abstract lock, with the acquire version recorded (rl in {1, 3} as in
  // Fig. 7).  The outline pins the counter value to the round: the first
  // holder sees x = 0 and leaves x = 1, the second sees x = 1 and leaves 2.
  System sys;
  const auto x = sys.client_var("x", 0);
  const auto l = sys.library_lock("l");
  struct T {
    lang::Reg rl, r;
  };
  std::vector<T> regs;
  for (int i = 0; i < 2; ++i) {
    auto tb = sys.thread();
    T t{tb.reg("rl"), tb.reg("r")};
    tb.acquire_version(l, t.rl, "rl <- acquire");
    tb.load(t.r, x, "r <- x");
    tb.store(x, Expr{t.r} + c(1), "x := r + 1");
    tb.release(l, "release");
    regs.push_back(t);
  }

  og::ProofOutline outline{sys};
  outline.invariant(
      !(asrt::pc_in(0, {1, 2, 3}) && asrt::pc_in(1, {1, 2, 3})) &&
      asrt::implies(asrt::pc_in(0, {1, 2, 3, 4}),
                    asrt::reg_in(regs[0].rl, {1, 3})) &&
      asrt::implies(asrt::pc_in(1, {1, 2, 3, 4}),
                    asrt::reg_in(regs[1].rl, {1, 3})));
  for (ThreadId i = 0; i < 2; ++i) {
    const auto first = asrt::reg_eq(regs[i].rl, 1);
    const auto second = asrt::reg_eq(regs[i].rl, 3);
    const auto held = asrt::lock_held_by(i, l);
    outline.annotate(i, 1,
                     held && asrt::implies(first, asrt::definite_obs(i, x, 0)) &&
                         asrt::implies(second, asrt::definite_obs(i, x, 1)));
    outline.annotate(
        i, 2,
        held &&
            asrt::implies(first, asrt::definite_obs(i, x, 0) &&
                                     asrt::reg_eq(regs[i].r, 0)) &&
            asrt::implies(second, asrt::definite_obs(i, x, 1) &&
                                      asrt::reg_eq(regs[i].r, 1)));
    outline.annotate(i, 3,
                     held && asrt::implies(first, asrt::definite_obs(i, x, 1)) &&
                         asrt::implies(second, asrt::definite_obs(i, x, 2)));
    outline.postcondition(
        i, asrt::implies(second, asrt::definite_obs(i, x, 2)));
  }

  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto result = check_outline(sys, outline, opts);
  EXPECT_TRUE(result.valid) << (result.failures.empty()
                                    ? ""
                                    : result.failures[0].obligation + "\n" +
                                          result.failures[0].state_dump);

  // Ground truth: both increments always land.
  const auto run = explore::explore(sys);
  for (const auto& cfg : run.final_configs) {
    EXPECT_EQ(cfg.mem.op(cfg.mem.last_op(x)).value, 2);
  }
}


TEST(OutlineChecker, FailureTracesWhenRequested) {
  auto ex = og::make_fig3_broken();
  og::OutlineCheckOptions opts;
  opts.track_traces = true;
  const auto result = check_outline(ex.sys, ex.outline, opts);
  ASSERT_FALSE(result.valid);
  ASSERT_FALSE(result.failures.empty());
  ASSERT_FALSE(result.failures[0].trace.empty())
      << "a counterexample run must accompany the failed obligation";
  EXPECT_EQ(result.failures[0].trace.front(), "init");
}

}  // namespace
