// Experiment L3: the six Hoare rules of Lemma 3 for abstract-lock method
// calls, checked exhaustively over a lock-client harness.  Paper shape:
// every rule holds (and non-vacuously — each is exercised by real
// instances).  The benchmark sweeps the harness size.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "og/lemma3.hpp"
#include "og/memrules.hpp"

namespace {

using namespace rc11;

void BM_MemoryRuleCatalogue(benchmark::State& state) {
  std::uint64_t instances = 0;
  for (auto _ : state) {
    const auto results = og::check_memory_rules();
    instances = 0;
    for (const auto& r : results) instances += r.instances;
    benchmark::DoNotOptimize(instances);
  }
  state.counters["instances"] = static_cast<double>(instances);
}
BENCHMARK(BM_MemoryRuleCatalogue);

void BM_Lemma3AllRules(benchmark::State& state) {
  const auto rounds = static_cast<unsigned>(state.range(0));
  std::uint64_t instances = 0;
  for (auto _ : state) {
    const auto results = og::check_lemma3_rules(rounds);
    instances = 0;
    for (const auto& r : results) instances += r.instances;
    benchmark::DoNotOptimize(instances);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.SetLabel(std::to_string(rounds) + " writer rounds");
}
BENCHMARK(BM_Lemma3AllRules)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  for (const auto& r : rc11::og::check_lemma3_rules(2)) {
    rc11::bench::verdict(
        "L3/rule" + std::to_string(r.rule), r.valid && r.instances > 0,
        r.description + " — " + std::to_string(r.instances) + " instances");
  }
  for (const auto& r : rc11::og::check_memory_rules()) {
    rc11::bench::verdict("L3/" + r.rule, r.valid && r.instances > 0,
                         r.description + " — " + std::to_string(r.instances) +
                             " instances");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
