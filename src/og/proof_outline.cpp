#include "og/proof_outline.hpp"

#include <deque>
#include <unordered_map>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::og {

using lang::Step;

ProofOutline::ProofOutline(const System& sys) {
  annotations_.resize(sys.num_threads());
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    annotations_[t].assign(sys.code(t).size() + 1, Assertion::always());
  }
}

void ProofOutline::annotate(ThreadId t, std::uint32_t pc, Assertion a) {
  support::require(t < annotations_.size(), "annotate: thread out of range");
  support::require(pc < annotations_[t].size(),
                   "annotate: pc out of range for thread ", t);
  annotations_[t][pc] = std::move(a);
}

void ProofOutline::postcondition(ThreadId t, Assertion a) {
  annotate(t, terminal_pc(t), std::move(a));
}

const Assertion& ProofOutline::at(ThreadId t, std::uint32_t pc) const {
  const auto& anns = annotations_.at(t);
  // Control never moves past the terminal pc, but clamp defensively.
  return anns[pc < anns.size() ? pc : anns.size() - 1];
}

std::uint32_t ProofOutline::terminal_pc(ThreadId t) const {
  return static_cast<std::uint32_t>(annotations_.at(t).size() - 1);
}

namespace {

/// Minimal visited set over canonical encodings (same scheme as the
/// explorer's, kept local to avoid exposing its internals).
class Visited {
 public:
  bool insert(const std::vector<std::uint64_t>& enc) {
    support::WordHasher h;
    for (const auto w : enc) h.add(w);
    auto& bucket = buckets_[h.digest()];
    for (const auto idx : bucket) {
      if (store_[idx] == enc) return false;
    }
    bucket.push_back(store_.size());
    store_.push_back(enc);
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
  std::vector<std::vector<std::uint64_t>> store_;
};

struct TraceNode {
  std::int64_t parent = -1;
  std::string label;
};

std::vector<std::string> rebuild_trace(const std::vector<TraceNode>& nodes,
                                       std::int64_t node) {
  std::vector<std::string> labels;
  for (std::int64_t n = node; n >= 0;
       n = nodes[static_cast<std::size_t>(n)].parent) {
    labels.push_back(nodes[static_cast<std::size_t>(n)].label);
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

}  // namespace

OutlineCheckResult check_outline(const System& sys, const ProofOutline& outline,
                                 OutlineCheckOptions options) {
  OutlineCheckResult result;
  Visited visited;
  struct Item {
    Config cfg;
    std::int64_t trace_node;
  };
  std::deque<Item> frontier;
  std::vector<TraceNode> trace_nodes;
  std::int64_t current_node = -1;

  const auto fail = [&](std::string obligation, const Config& cfg) {
    result.valid = false;
    result.failures.push_back(
        {std::move(obligation), cfg.to_string(sys),
         options.track_traces ? rebuild_trace(trace_nodes, current_node)
                              : std::vector<std::string>{}});
  };

  {
    Config init = lang::initial_config(sys);
    visited.insert(init.encode());
    if (options.track_traces) trace_nodes.push_back({-1, "init"});
    frontier.push_back({std::move(init), options.track_traces ? 0 : -1});
  }

  while (!frontier.empty()) {
    if (result.stats.states >= options.max_states) break;
    if (!result.valid && options.stop_at_first_failure) break;
    Item item = std::move(frontier.back());
    frontier.pop_back();
    const Config& cfg = item.cfg;
    current_node = item.trace_node;
    result.stats.states += 1;

    // Validity at this configuration: global invariant plus the annotation
    // at every thread's current pc.
    result.obligations_checked += 1;
    if (!outline.global_invariant().eval(sys, cfg)) {
      fail("global invariant " + outline.global_invariant().name(), cfg);
      if (options.stop_at_first_failure) break;
    }
    for (ThreadId t = 0; t < sys.num_threads(); ++t) {
      result.obligations_checked += 1;
      const Assertion& ann = outline.at(t, cfg.pc[t]);
      if (!ann.eval(sys, cfg)) {
        fail(support::concat("annotation at t", t, " pc=", cfg.pc[t], ": ",
                             ann.name()),
             cfg);
        if (options.stop_at_first_failure) break;
      }
    }
    if (!result.valid && options.stop_at_first_failure) break;

    auto steps = lang::successors(sys, cfg, /*want_labels=*/true);

    // Interference freedom: every annotation of thread t that holds here must
    // be preserved by every enabled step of every other thread t'.  (The
    // step's precondition — the t' annotation at its current pc — holds by
    // the validity check above, so this is {A ∧ pre(S)} S {A} on reachable
    // states.)
    if (options.check_interference) {
      for (const auto& step : steps) {
        for (ThreadId t = 0; t < sys.num_threads(); ++t) {
          if (t == step.thread) continue;
          for (std::uint32_t pc = 0; pc <= outline.terminal_pc(t); ++pc) {
            const Assertion& ann = outline.at(t, pc);
            result.obligations_checked += 1;
            if (ann.eval(sys, cfg) && !ann.eval(sys, step.after)) {
              fail(support::concat("interference: step [", step.label,
                                   "] breaks t", t, " pc=", pc, ": ",
                                   ann.name()),
                   cfg);
              if (options.stop_at_first_failure) break;
            }
          }
          if (!result.valid && options.stop_at_first_failure) break;
        }
        if (!result.valid && options.stop_at_first_failure) break;
      }
    }

    if (steps.empty()) {
      if (cfg.all_done(sys)) {
        result.stats.finals += 1;
      } else {
        result.stats.blocked += 1;
      }
      continue;
    }
    for (auto& step : steps) {
      result.stats.transitions += 1;
      if (visited.insert(step.after.encode())) {
        std::int64_t node = -1;
        if (options.track_traces) {
          node = static_cast<std::int64_t>(trace_nodes.size());
          trace_nodes.push_back({item.trace_node, std::move(step.label)});
        }
        frontier.push_back({std::move(step.after), node});
      }
    }
  }

  return result;
}

TripleCheckResult check_triple(const System& sys, const Assertion& pre,
                               const StatementFilter& filter,
                               const TriplePost& post,
                               std::uint64_t max_states) {
  TripleCheckResult result;
  Visited visited;
  std::deque<Config> frontier;
  std::uint64_t states = 0;

  {
    Config init = lang::initial_config(sys);
    visited.insert(init.encode());
    frontier.push_back(std::move(init));
  }

  while (!frontier.empty() && states < max_states) {
    Config cfg = std::move(frontier.back());
    frontier.pop_back();
    states += 1;

    const bool pre_holds = pre.eval(sys, cfg);
    auto steps = lang::successors(sys, cfg, /*want_labels=*/true);
    for (auto& step : steps) {
      const Instr& in = sys.code(step.thread)[cfg.pc[step.thread]];
      if (pre_holds && filter(step.thread, in)) {
        result.instances_checked += 1;
        if (!post(sys, cfg, step.after)) {
          result.valid = false;
          result.failures.push_back(
              {support::concat("triple violated by step [", step.label, "]"),
               cfg.to_string(sys) + "-- after --\n" + step.after.to_string(sys),
               {}});
        }
      }
      if (visited.insert(step.after.encode())) {
        frontier.push_back(std::move(step.after));
      }
    }
  }

  return result;
}

}  // namespace rc11::og
