// Execution-graph quotient (--rf-quotient): soundness, exactness and the
// reduction headline (see engine/abstraction.hpp for the key construction
// and DESIGN.md for the bisimulation argument).
//
// The always-on tests check that the quotient preserves everything it
// promises to preserve — litmus outcome sets, invariant-violation sets,
// outline verdicts and failed-obligation sets, race sets, witness
// replayability, checkpoint round-trips — on representative systems, at one
// worker and at four, composed with POR, and that it actually reduces the
// store-heavy asymmetric workloads it targets.  Exactness is judged on
// *semantic* observables (outcome sets, verdicts, violation/race keys): the
// quotient keeps one concrete representative per merged class, so raw
// final-configuration encodings are expected to differ from an unreduced
// run by design.
//
// Setting RC11_RF_CROSSCHECK=1 in the environment widens the comparison to
// the complete corpus: every litmus test, every causality test, every race
// test, every case study, every sample program and every
// lock-implementation/client pairing (this is the CI "reduction" job's
// configuration).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/checkpoint.hpp"
#include "explore/explorer.hpp"
#include "litmus/case_studies.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "memsem/state.hpp"
#include "og/catalog.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "race/race.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using engine::StopReason;
using explore::ExploreOptions;
using lang::System;

bool crosscheck_enabled() {
  const char* v = std::getenv("RC11_RF_CROSSCHECK");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// All registers of every thread — the full outcome tuple, the semantic
/// observable the quotient must preserve exactly.
std::vector<lang::Reg> all_regs(const System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

std::vector<std::vector<lang::Value>> outcome_set(
    const System& sys, const explore::ExploreResult& result) {
  return explore::final_register_values(sys, result, all_regs(sys));
}

/// The deduplicated `what` set of a violation report.  Under the quotient a
/// class of violating states is visited once, so per-state multiplicity and
/// state dumps are representative-dependent; the *set* of violation
/// messages is not.
std::set<std::string> violation_whats(const explore::ExploreResult& result) {
  std::set<std::string> keys;
  for (const auto& v : result.violations) keys.insert(v.what);
  return keys;
}

std::set<std::string> race_whats(const race::RaceResult& result) {
  std::set<std::string> keys;
  for (const auto& r : result.races) keys.insert(r.what);
  return keys;
}

/// Full vs. quotiented exploration of `sys` must agree on the final
/// register-outcome set, deadlock existence and truncation, at every worker
/// count and with POR layered on top.  The quotient may never visit MORE
/// states.
void expect_rf_exact(const System& sys, const std::string& what) {
  ExploreOptions full;
  const auto reference = explore::explore(sys, full);
  const auto ref_outcomes = outcome_set(sys, reference);
  for (const bool por : {false, true}) {
    for (const unsigned workers : {1U, 4U}) {
      ExploreOptions reduced;
      reduced.rf_quotient = true;
      reduced.por = por;
      reduced.num_threads = workers;
      const auto r = explore::explore(sys, reduced);
      EXPECT_EQ(outcome_set(sys, r), ref_outcomes)
          << what << " (threads " << workers << ", por " << por
          << "): outcome sets differ";
      EXPECT_EQ(r.stats.blocked == 0, reference.stats.blocked == 0)
          << what << " (threads " << workers << ", por " << por
          << "): deadlock existence differs";
      EXPECT_EQ(r.truncated, reference.truncated) << what;
      EXPECT_LE(r.stats.states, reference.stats.states)
          << what << ": a reduction may never visit MORE states";
    }
  }
}

System parse_program(const std::string& name) {
  return parser::parse_file(std::string(RC11_SRC_DIR) + "/tools/programs/" +
                            name)
      .sys;
}

TEST(Rf, LitmusOutcomeSetsExact) {
  for (const auto& test : litmus::all_tests()) {
    expect_rf_exact(test.sys, test.name);
    // The outcome set is the litmus verdict itself: with the quotient on it
    // must still equal the allowed set exactly.
    ExploreOptions reduced;
    reduced.rf_quotient = true;
    const auto result = explore::explore(test.sys, reduced);
    EXPECT_EQ(explore::final_register_values(test.sys, result, test.observed),
              test.allowed)
        << test.name << " outcome set changed under the rf quotient";
  }
}

TEST(Rf, CaseStudiesExact) {
  expect_rf_exact(litmus::peterson_counter().sys, "peterson");
  expect_rf_exact(litmus::dekker_counter().sys, "dekker");
  expect_rf_exact(litmus::barrier_exchange().sys, "barrier");
}

TEST(Rf, StoreFanReducedAndExact) {
  // The motivating family: asymmetric writers whose observations of the
  // pump's generation variable survive only in dead view metadata.  The
  // quotient must agree on the outcome set and beat the better of the two
  // older reductions by >= 5x visited states (the bench asserts the same
  // headline on its programmatic twins).
  const auto sys = parse_program("store_fan.rc11");
  expect_rf_exact(sys, "store_fan");

  ExploreOptions por_opts;
  por_opts.por = true;
  ExploreOptions sym_opts;
  sym_opts.symmetry = true;
  ExploreOptions rf_opts;
  rf_opts.rf_quotient = true;
  const auto por_res = explore::explore(sys, por_opts);
  const auto sym_res = explore::explore(sys, sym_opts);
  const auto rf_res = explore::explore(sys, rf_opts);
  EXPECT_EQ(sym_res.stats.symmetry_hits, 0u)
      << "store_fan is asymmetric by design; symmetry must be a no-op";
  const auto best = std::min(por_res.stats.states, sym_res.stats.states);
  EXPECT_GE(static_cast<double>(best) /
                static_cast<double>(rf_res.stats.states),
            5.0)
      << "rf quotient must beat best-of(por " << por_res.stats.states
      << ", sym " << sym_res.stats.states << ") by >= 5x, got "
      << rf_res.stats.states << " states";
}

TEST(Rf, NoopOnReleaseHeavyPrograms) {
  // Every store of the MP litmus is releasing, so every mview is live and
  // every view exportable: the quotient key carries the same information as
  // the concrete encoding and the state count must not move (sleep sets
  // prune transitions, never states).
  const auto sys = litmus::mp_release_acquire().sys;
  const auto reference = explore::explore(sys, ExploreOptions{});
  ExploreOptions reduced;
  reduced.rf_quotient = true;
  const auto r = explore::explore(sys, reduced);
  EXPECT_EQ(r.stats.states, reference.stats.states);
  EXPECT_EQ(r.stats.blocked, reference.stats.blocked);
  EXPECT_EQ(outcome_set(sys, r), outcome_set(sys, reference));
}

TEST(Rf, InvariantViolationSetsExact) {
  // The invariant below has an empty view footprint (it reads pcs only), so
  // no pins are needed; its violation set must match the unreduced run's as
  // a message set (per-class multiplicity differs by design).
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::counter_client(2, 1), ticket);
  const explore::Invariant inv =
      [](const System& s, const lang::Config& cfg)
      -> std::optional<std::string> {
    if (!cfg.all_done(s)) return std::nullopt;
    return "final state reached";
  };

  ExploreOptions full;
  full.stop_on_violation = false;
  const auto reference = explore::explore(sys, full, inv);
  ASSERT_FALSE(reference.violations.empty());

  for (const bool por : {false, true}) {
    ExploreOptions reduced;
    reduced.rf_quotient = true;
    reduced.por = por;
    reduced.stop_on_violation = false;
    const auto r = explore::explore(sys, reduced, inv);
    EXPECT_EQ(violation_whats(r), violation_whats(reference)) << "por=" << por;
  }
}

TEST(Rf, WitnessesFromQuotientedRunsReplay) {
  // The trace sink stores concrete states even under the quotient, so every
  // recorded violation trace is a real execution and must replay
  // step-for-step through the FULL semantics, at every worker count.
  const auto sys = parse_program("store_fan.rc11");
  for (const unsigned workers : {1U, 4U}) {
    ExploreOptions opts;
    opts.rf_quotient = true;
    opts.track_traces = true;
    opts.num_threads = workers;
    opts.stop_on_violation = false;
    const auto result = explore::explore(
        sys, opts,
        [](const System& s, const lang::Config& cfg)
            -> std::optional<std::string> {
          if (!cfg.all_done(s)) return std::nullopt;
          return "final state reached";
        });
    ASSERT_FALSE(result.violations.empty()) << "workers=" << workers;
    for (const auto& v : result.violations) {
      ASSERT_TRUE(v.witness.has_value());
      const auto r = witness::replay(sys, *v.witness);
      EXPECT_TRUE(r.ok) << "workers=" << workers << ": " << r.error;
    }
  }
}

TEST(Rf, TracedRunsCountMerges) {
  // With a trace sink attached the engine can tell concrete-new arrivals
  // apart, so a workload built to merge must report rf_merges > 0 (the
  // counter documents 0 without traces — see engine/reach.hpp).
  const auto sys = parse_program("store_fan.rc11");
  ExploreOptions opts;
  opts.rf_quotient = true;
  opts.track_traces = true;
  const auto r = explore::explore(sys, opts);
  EXPECT_GT(r.stats.rf_merges, 0u);
}

// --- checkpoint / resume under the quotient ---------------------------------

/// A temp-file path that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Rf, CheckpointRoundTripPreservesVerdicts) {
  const auto sys = parse_program("store_fan.rc11");

  ExploreOptions full_opts;
  full_opts.rf_quotient = true;
  const auto full = explore::explore(sys, full_opts);
  ASSERT_EQ(full.stop, StopReason::Complete);
  ASSERT_GE(full.stats.states, 4u);

  TempFile ck("rf_roundtrip.json");
  ExploreOptions trunc_opts = full_opts;
  trunc_opts.max_states = full.stats.states / 2;
  trunc_opts.checkpoint_path = ck.path;
  const auto truncated = explore::explore(sys, trunc_opts);
  ASSERT_EQ(truncated.stop, StopReason::StateCap);

  const auto ckpt = engine::load_checkpoint(ck.path);
  EXPECT_TRUE(ckpt.rf_quotient) << "the checkpoint must record the setting";

  ExploreOptions resume_opts = full_opts;
  resume_opts.resume = &ckpt;
  const auto resumed = explore::explore(sys, resume_opts);
  EXPECT_EQ(resumed.stop, StopReason::Complete);
  EXPECT_EQ(resumed.stats.states, full.stats.states);
  EXPECT_EQ(outcome_set(sys, resumed), outcome_set(sys, full));

  // And the whole quotiented pipeline still agrees with an unreduced run.
  const auto unreduced = explore::explore(sys, ExploreOptions{});
  EXPECT_EQ(outcome_set(sys, resumed), outcome_set(sys, unreduced));
}

TEST(Rf, ResumeRejectsMismatchedRfQuotient) {
  const auto sys = parse_program("store_fan.rc11");

  // Checkpoint written with the quotient ON, resumed with it OFF: the
  // visited set holds quotient keys an unquotiented run cannot interpret,
  // so the engine must reject loudly rather than silently skip states.
  {
    TempFile ck("rf_mismatch_on.json");
    ExploreOptions opts;
    opts.rf_quotient = true;
    opts.max_states = 16;
    opts.checkpoint_path = ck.path;
    ASSERT_EQ(explore::explore(sys, opts).stop, StopReason::StateCap);
    const auto ckpt = engine::load_checkpoint(ck.path);
    ExploreOptions resume_opts;
    resume_opts.resume = &ckpt;
    EXPECT_THROW((void)explore::explore(sys, resume_opts),
                 std::runtime_error);
  }
  // And the other direction: a plain checkpoint resumed under the quotient.
  {
    TempFile ck("rf_mismatch_off.json");
    ExploreOptions opts;
    opts.max_states = 16;
    opts.checkpoint_path = ck.path;
    ASSERT_EQ(explore::explore(sys, opts).stop, StopReason::StateCap);
    const auto ckpt = engine::load_checkpoint(ck.path);
    ExploreOptions resume_opts;
    resume_opts.rf_quotient = true;
    resume_opts.resume = &ckpt;
    EXPECT_THROW((void)explore::explore(sys, resume_opts),
                 std::runtime_error);
  }
}

// --- rejected combinations ---------------------------------------------------

TEST(Rf, RejectedUnderSampling) {
  const auto sys = litmus::mp_release_acquire().sys;
  ExploreOptions opts;
  opts.rf_quotient = true;
  opts.mode = engine::Strategy::Sample;
  opts.sample.episodes = 4;
  EXPECT_THROW((void)explore::explore(sys, opts), std::runtime_error);
}

TEST(Rf, RejectedWithSymmetry) {
  // v1 restriction: sleep masks cannot be transported through both
  // quotients at once, so the combination is rejected loudly (the CLIs
  // catch it in resolve_strategy, the engine backstops it here).
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::worker_client(2, 1, 2), ticket);
  ExploreOptions opts;
  opts.rf_quotient = true;
  opts.symmetry = true;
  EXPECT_THROW((void)explore::explore(sys, opts), std::runtime_error);
}

TEST(Rf, RejectedUnderSC) {
  // Under SC every access synchronises, so the quotient's view projection
  // would drop observable state; the engine must refuse.
  auto sys = litmus::mp_release_acquire().sys;
  auto sem = sys.options();
  sem.model = memsem::MemoryModel::SC;
  sys.set_options(sem);
  ExploreOptions opts;
  opts.rf_quotient = true;
  EXPECT_THROW((void)explore::explore(sys, opts), std::runtime_error);
}

// --- outline checking under the quotient ------------------------------------

TEST(Rf, OutlineVerdictsAgree) {
  for (const bool rf : {false, true}) {
    og::OutlineCheckOptions opts;
    opts.rf_quotient = rf;
    {
      const auto ex = og::make_fig3();
      EXPECT_TRUE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig3 rf=" << rf;
    }
    {
      const auto ex = og::make_fig3_broken();
      EXPECT_FALSE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig3-broken rf=" << rf;
    }
    {
      const auto ex = og::make_fig7();
      EXPECT_TRUE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig7 rf=" << rf;
    }
    {
      const auto ex = og::make_fig7_broken();
      EXPECT_FALSE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig7-broken rf=" << rf;
    }
  }
}

TEST(Rf, OutlineFailedObligationSetsExact) {
  // Every annotation footprint is pinned into the key, so each obligation
  // is class-invariant: the deduplicated failed-obligation set must equal
  // the unreduced run's (per-state multiplicity shrinks with the visited
  // set).
  const auto ex = og::make_fig3_broken();
  og::OutlineCheckOptions plain;
  plain.stop_at_first_failure = false;
  auto quotient = plain;
  quotient.rf_quotient = true;
  const auto a = og::check_outline(ex.sys, ex.outline, plain);
  const auto b = og::check_outline(ex.sys, ex.outline, quotient);
  std::set<std::string> a_set, b_set;
  for (const auto& f : a.failures) a_set.insert(f.obligation);
  for (const auto& f : b.failures) b_set.insert(f.obligation);
  EXPECT_EQ(b_set, a_set);
  EXPECT_LE(b.obligations_checked, a.obligations_checked)
      << "obligation count shrinks with the visited set, never grows";
}

// --- race detection under the quotient --------------------------------------

TEST(Rf, RaceSetsExact) {
  // Race clocks and summary cells ride inside the quotient key whenever
  // race detection is on, so the canonical race set needs no pinning to
  // stay exact — racy programs report the identical set, clean programs
  // stay clean.
  for (const auto& test : litmus::all_race_tests()) {
    race::RaceOptions plain;
    const auto a = race::check(test.sys, plain);
    race::RaceOptions quotient;
    quotient.rf_quotient = true;
    const auto b = race::check(test.sys, quotient);
    EXPECT_EQ(b.racy(), test.racy) << test.name;
    EXPECT_EQ(race_whats(b), race_whats(a)) << test.name;
    EXPECT_LE(b.stats.states, a.stats.states) << test.name;
  }
}

// --- the full-corpus cross-check (RC11_RF_CROSSCHECK=1; CI reduction job) ---

TEST(RfCrosscheck, FullCorpusAgreement) {
  if (!crosscheck_enabled()) {
    GTEST_SKIP() << "set RC11_RF_CROSSCHECK=1 to run the full corpus";
  }

  for (const auto& test : litmus::all_tests()) {
    expect_rf_exact(test.sys, "litmus " + test.name);
  }
  for (const auto& test : litmus::all_causality_tests()) {
    expect_rf_exact(test.sys, "causality " + test.name);
  }
  for (const auto& test : litmus::all_race_tests()) {
    expect_rf_exact(test.sys, "race " + test.name);
    race::RaceOptions plain;
    race::RaceOptions quotient;
    quotient.rf_quotient = true;
    EXPECT_EQ(race_whats(race::check(test.sys, quotient)),
              race_whats(race::check(test.sys, plain)))
        << "race set changed under the rf quotient: " << test.name;
  }
  expect_rf_exact(litmus::peterson_counter().sys, "peterson");
  expect_rf_exact(litmus::dekker_counter().sys, "dekker");
  expect_rf_exact(litmus::barrier_exchange().sys, "barrier");
  for (const unsigned work : {1U, 2U, 4U}) {
    expect_rf_exact(litmus::mp_compute(work), "mp_compute");
    expect_rf_exact(litmus::mp_spin_compute(work), "mp_spin_compute");
  }

  const char* programs[] = {
      "lock_client_abstract.rc11", "lock_client_broken.rc11",
      "lock_client_seqlock.rc11",  "mp_broken_outline.rc11",
      "mp_stack.rc11",             "mp_verified.rc11",
      "sb.rc11",                   "ticket_lock.rc11",
      "mp_na_racy.rc11",           "mp_na_release.rc11",
      "dcl_broken.rc11",           "dcl_init.rc11",
      "flag_spin_racy.rc11",       "disjoint_na.rc11",
      "store_fan.rc11",
  };
  for (const char* name : programs) {
    expect_rf_exact(parse_program(name), name);
  }

  const std::vector<locks::ClientProgram> clients = {
      locks::fig7_client(),
      locks::mgc_client(2, 2),
      locks::counter_client(2, 1),
      locks::worker_client(2, 1, 2),
      locks::worker_client(3, 1, 2),
  };
  locks::AbstractLock abstract;
  locks::SeqLock seq;
  locks::TicketLock ticket;
  locks::CasSpinLock cas;
  locks::TTASLock ttas;
  locks::LockObject* lock_impls[] = {&abstract, &seq, &ticket, &cas, &ttas};
  for (const auto& client : clients) {
    for (auto* lock : lock_impls) {
      expect_rf_exact(locks::instantiate(client, *lock), lock->name());
    }
  }
}

}  // namespace
