# Empty dependencies file for rc11-verify.
# This may be replaced when dependencies are built.
