// Experiment RG: resource-governance overhead — the per-state budget gate
// (BudgetEnforcer::claim) runs on every expansion in both drivers, so it has
// to be effectively free.  Each workload is explored twice: "plain" (default
// options: the gate only counts claims against the state cap) and
// "governed" (a live cancel token, a huge memory budget and a far deadline,
// i.e. every probe dimension armed but never tripping).  The verdict
// asserts the governed run explores the identical state space and is at
// most 3% slower than the plain run (plus an absolute floor for timer noise
// on sub-millisecond workloads).
//
// With --json the same numbers become BENCH_budget.json, diffed by CI
// against bench/baseline_budget.json (state counts exact, throughput within
// tolerance).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/budget.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

struct Workload {
  std::string name;
  lang::System sys;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    // Big enough (tens of milliseconds) that a 3% delta is measurable above
    // timer jitter; the small mgc control exercises the absolute floor.
    locks::TicketLock lock;
    w.push_back({"budget_ticket_worker_3x2w4",
                 locks::instantiate(locks::worker_client(3, 2, 4), lock)});
    w.push_back({"budget_ticket_worker_2x4w8",
                 locks::instantiate(locks::worker_client(2, 4, 8), lock)});
    w.push_back({"budget_ticket_mgc_2x2",
                 locks::instantiate(locks::mgc_client(2, 2), lock)});
  }
  return w;
}

double timed_explore(const lang::System& sys,
                     const explore::ExploreOptions& opts,
                     explore::ExploreResult& result) {
  result = explore::explore(sys, opts);  // warm-up
  double best_s = 1e9;
  for (int i = 0; i < 5; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = explore::explore(sys, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

void report_budget(rc11::bench::JsonReport& json) {
  engine::CancelToken token;  // live but never cancelled
  for (const auto& [name, sys] : workloads()) {
    explore::ExploreOptions plain_opts;

    explore::ExploreOptions governed_opts;
    governed_opts.cancel = &token;
    governed_opts.max_visited_bytes = std::uint64_t{1} << 40;  // never trips
    governed_opts.deadline_ms = 24ull * 60 * 60 * 1000;        // never trips

    explore::ExploreResult plain, governed;
    const double plain_s = timed_explore(sys, plain_opts, plain);
    const double governed_s = timed_explore(sys, governed_opts, governed);

    const double overhead = governed_s / plain_s - 1.0;
    const bool same_space =
        governed.stats.states == plain.stats.states &&
        governed.stats.transitions == plain.stats.transitions &&
        governed.stop == engine::StopReason::Complete;
    // <= 3% relative, with a 200us absolute floor so timer jitter on tiny
    // workloads cannot fail the gate.
    const bool cheap =
        overhead <= 0.03 || (governed_s - plain_s) <= 200e-6;
    const bool ok = same_space && cheap;

    std::ostringstream detail;
    detail << name << ": " << plain.stats.states << " states, plain "
           << plain_s * 1e3 << " ms vs governed " << governed_s * 1e3
           << " ms (" << overhead * 1e2 << "% overhead, target <= 3%), space "
           << (same_space ? "identical" : "DIFFERS");
    rc11::bench::verdict("RG", ok, detail.str());

    json.add(name + "_plain",
             {{"states", static_cast<double>(plain.stats.states)},
              {"wall_ms", plain_s * 1e3},
              {"states_per_s",
               static_cast<double>(plain.stats.states) / plain_s}});
    json.add(name + "_governed",
             {{"states", static_cast<double>(governed.stats.states)},
              {"wall_ms", governed_s * 1e3},
              {"states_per_s",
               static_cast<double>(governed.stats.states) / governed_s},
              {"overhead_pct", overhead * 1e2}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_budget(json);
  if (!json.write("bench_budget")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
