// Exhaustive small-program property testing ("litmus fuzzing"): enumerate
// *every* two-thread program over a small instruction vocabulary and check,
// for each one, the engine's metatheory:
//
//   P1  every reachable state satisfies the structural invariants
//       (memsem::validate) and every transition moves views forward;
//   P2  the SC baseline's outcome set is a subset of the RC11 RAR one
//       (weakening the model never removes behaviours);
//   P3  exploration is search-order independent (BFS and DFS agree on
//       states, transitions and outcomes);
//   P4  outcome sets are invariant under the timestamp-encoding ablation
//       (canonicalisation is a pure quotient);
//   P5  the execution-graph quotient (--rf-quotient) is differential-exact:
//       outcome sets, deadlock existence and race sets agree with the
//       unreduced run on every generated program, and the quotient never
//       visits more states.
//
// The vocabulary is chosen so every Fig. 5 rule is hit in every combination:
// relaxed/releasing stores and relaxed/acquiring loads over two variables in
// the main sweep (1024 programs), a smaller RMW sweep mixing CAS and FAI
// with stores and loads, and a deeper three-instruction mirrored sweep —
// ~1.4k programs, each checked under four semantics configurations.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "explore/explorer.hpp"
#include "lang/config.hpp"
#include "memsem/validate.hpp"
#include "race/race.hpp"

namespace {

using namespace rc11;
using lang::c;
using lang::Config;
using lang::Reg;
using lang::System;
using lang::ThreadBuilder;
using lang::Value;

/// One instruction template; `emit` adds it to a thread.
struct Vocab {
  const char* name;
  // var_idx selects x or y; uniq is a value unique to the (thread, slot).
  std::function<void(ThreadBuilder&, lang::LocId, Reg, Value)> emit;
};

std::vector<Vocab> core_vocab() {
  return {
      {"st", [](ThreadBuilder& tb, lang::LocId v, Reg, Value u) {
         tb.store(v, c(u));
       }},
      {"stR", [](ThreadBuilder& tb, lang::LocId v, Reg, Value u) {
         tb.store_rel(v, c(u));
       }},
      {"ld", [](ThreadBuilder& tb, lang::LocId v, Reg r, Value) {
         tb.load(r, v);
       }},
      {"ldA", [](ThreadBuilder& tb, lang::LocId v, Reg r, Value) {
         tb.load_acq(r, v);
       }},
  };
}

std::vector<Vocab> rmw_vocab() {
  auto vocab = core_vocab();
  vocab.push_back({"cas", [](ThreadBuilder& tb, lang::LocId v, Reg r, Value u) {
                     tb.cas(r, v, c(0), c(u));
                   }});
  vocab.push_back({"fai", [](ThreadBuilder& tb, lang::LocId v, Reg r, Value) {
                     tb.fai(r, v);
                   }});
  return vocab;
}

struct Generated {
  System sys;
  std::vector<Reg> regs;
  std::string description;
};

/// Builds the program where thread t executes the instruction templates
/// selected by `choice[t][slot]` over variables selected by `var[t][slot]`.
Generated build(const std::vector<Vocab>& vocab,
                const std::array<std::array<int, 2>, 2>& choice,
                const std::array<std::array<int, 2>, 2>& var) {
  Generated g;
  const auto x = g.sys.client_var("x", 0);
  const auto y = g.sys.client_var("y", 0);
  const lang::LocId vars[2] = {x, y};
  for (int t = 0; t < 2; ++t) {
    auto tb = g.sys.thread();
    for (int s = 0; s < 2; ++s) {
      auto r = tb.reg("r" + std::to_string(t) + std::to_string(s));
      g.regs.push_back(r);
      const auto& v = vocab[static_cast<std::size_t>(choice[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)])];
      const Value uniq = 10 * (t + 1) + s + 1;
      v.emit(tb, vars[var[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]], r, uniq);
      g.description += std::string(v.name) +
                       (var[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] ? "y " : "x ");
    }
    g.description += "| ";
  }
  return g;
}

/// Runs all four property checks on one generated program.
void check_program(const Generated& g) {
  // P1: invariants at every reachable state + monotone views per transition.
  const auto inv_result = explore::explore(
      g.sys, {},
      [](const System& sys, const Config& cfg) -> std::optional<std::string> {
        if (auto err = memsem::validate(cfg.mem)) return err;
        for (const auto& step : lang::successors(sys, cfg)) {
          if (auto err =
                  memsem::validate_view_monotone(cfg.mem, step.after.mem)) {
            return err;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(inv_result.violations.empty())
      << g.description << ": " << inv_result.violations[0].what;

  const auto rc11_outcomes =
      explore::final_register_values(g.sys, inv_result, g.regs);

  // P2: SC ⊆ RC11.
  {
    auto sc_sys = g.sys;
    memsem::SemanticsOptions opts;
    opts.model = memsem::MemoryModel::SC;
    sc_sys.set_options(opts);
    const auto sc_outcomes = explore::final_register_values(
        sc_sys, explore::explore(sc_sys), g.regs);
    for (const auto& o : sc_outcomes) {
      ASSERT_TRUE(std::find(rc11_outcomes.begin(), rc11_outcomes.end(), o) !=
                  rc11_outcomes.end())
          << g.description << ": SC-only outcome";
    }
  }

  // P3: BFS agrees with DFS.
  {
    explore::ExploreOptions bfs;
    bfs.strategy = explore::SearchStrategy::Bfs;
    const auto bfs_result = explore::explore(g.sys, bfs);
    ASSERT_EQ(bfs_result.stats.states, inv_result.stats.states)
        << g.description;
    ASSERT_EQ(explore::final_register_values(g.sys, bfs_result, g.regs),
              rc11_outcomes)
        << g.description;
  }

  // P4: raw-timestamp encoding preserves outcomes.
  {
    auto raw_sys = g.sys;
    memsem::SemanticsOptions opts;
    opts.canonical_timestamps = false;
    raw_sys.set_options(opts);
    const auto raw_outcomes = explore::final_register_values(
        raw_sys, explore::explore(raw_sys), g.regs);
    ASSERT_EQ(raw_outcomes, rc11_outcomes) << g.description;
  }

  // P5: the execution-graph quotient is differential-exact.  Outcome sets
  // and deadlock existence must match the unreduced run (raw final
  // encodings are representative-dependent, so they are *not* compared),
  // the quotient may never visit more states, and the canonical race set
  // must be identical whether or not states are keyed by the quotient.
  {
    explore::ExploreOptions rf;
    rf.rf_quotient = true;
    const auto rf_result = explore::explore(g.sys, rf);
    ASSERT_EQ(explore::final_register_values(g.sys, rf_result, g.regs),
              rc11_outcomes)
        << g.description << ": outcome set changed under the rf quotient";
    ASSERT_EQ(rf_result.stats.blocked == 0, inv_result.stats.blocked == 0)
        << g.description << ": deadlock existence changed under the quotient";
    ASSERT_LE(rf_result.stats.states, inv_result.stats.states)
        << g.description;

    race::RaceOptions plain_race;
    race::RaceOptions rf_race;
    rf_race.rf_quotient = true;
    const auto a = race::check(g.sys, plain_race);
    const auto b = race::check(g.sys, rf_race);
    std::set<std::string> a_set, b_set;
    for (const auto& r : a.races) a_set.insert(r.what);
    for (const auto& r : b.races) b_set.insert(r.what);
    ASSERT_EQ(b.racy(), a.racy()) << g.description;
    ASSERT_EQ(b_set, a_set)
        << g.description << ": race set changed under the rf quotient";
  }
}

void sweep(const std::vector<Vocab>& vocab, int var_combos) {
  const int n = static_cast<int>(vocab.size());
  std::uint64_t programs = 0;
  for (int c00 = 0; c00 < n; ++c00)
    for (int c01 = 0; c01 < n; ++c01)
      for (int c10 = 0; c10 < n; ++c10)
        for (int c11 = 0; c11 < n; ++c11)
          for (int vc = 0; vc < var_combos; ++vc) {
            // Variable pattern: thread 0 uses (x, y-or-x), thread 1 mirrors;
            // vc enumerates the 4 combinations of second-slot variables.
            const std::array<std::array<int, 2>, 2> choice{
                {{c00, c01}, {c10, c11}}};
            const std::array<std::array<int, 2>, 2> var{
                {{0, vc & 1}, {1, (vc >> 1) & 1}}};
            const auto g = build(vocab, choice, var);
            check_program(g);
            if (::testing::Test::HasFatalFailure()) return;
            ++programs;
          }
  SUCCEED() << programs << " programs checked";
}

TEST(SmallProgramFuzz, CoreVocabularyExhaustive) {
  // 4^4 instruction combinations x 4 variable patterns = 1024 programs,
  // each checked under 4 semantics configurations.
  sweep(core_vocab(), 4);
}

TEST(SmallProgramFuzz, RmwVocabularyDiagonal) {
  // With CAS/FAI included the full product is large; sweep the combinations
  // where thread 1's slots mirror thread 0's choices shifted by one — this
  // still hits every ordered pair of vocabulary entries across threads.
  const auto vocab = rmw_vocab();
  const int n = static_cast<int>(vocab.size());
  std::uint64_t programs = 0;
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      for (int vc = 0; vc < 4; ++vc) {
        const std::array<std::array<int, 2>, 2> choice{
            {{a, b}, {b, (a + 1) % n}}};
        const std::array<std::array<int, 2>, 2> var{
            {{0, vc & 1}, {1, (vc >> 1) & 1}}};
        const auto g = build(vocab, choice, var);
        check_program(g);
        if (::testing::Test::HasFatalFailure()) return;
        ++programs;
      }
  SUCCEED() << programs << " programs checked";
}


TEST(SmallProgramFuzz, ThreeSlotMirroredSweep) {
  // Deeper programs: three instructions per thread, thread 1 running the
  // reverse of thread 0's template over swapped variables.  256 programs.
  const auto vocab = core_vocab();
  const int n = static_cast<int>(vocab.size());
  std::uint64_t programs = 0;
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      for (int cc = 0; cc < n; ++cc)
        for (int vc = 0; vc < 4; ++vc) {
          Generated g;
          const auto x = g.sys.client_var("x", 0);
          const auto y = g.sys.client_var("y", 0);
          const lang::LocId vars[2] = {x, y};
          const int t0_choice[3] = {a, b, cc};
          const int t0_var[3] = {0, vc & 1, (vc >> 1) & 1};
          for (int t = 0; t < 2; ++t) {
            auto tb = g.sys.thread();
            for (int s = 0; s < 3; ++s) {
              auto r = tb.reg("r" + std::to_string(t) + std::to_string(s));
              g.regs.push_back(r);
              const int slot = t == 0 ? s : 2 - s;
              const auto& v = vocab[static_cast<std::size_t>(t0_choice[slot])];
              const int vi = t == 0 ? t0_var[slot] : 1 - t0_var[slot];
              v.emit(tb, vars[vi], r, 10 * (t + 1) + s + 1);
            }
          }
          g.description = "three-slot mirrored";
          check_program(g);
          if (::testing::Test::HasFatalFailure()) return;
          ++programs;
        }
  SUCCEED() << programs << " programs checked";
}

}  // namespace
