#include "parser/parser.hpp"

#include "assertions/assertions.hpp"

#include <cctype>
#include <set>
#include <fstream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace rc11::parser {

using lang::c;
using lang::Expr;
using lang::LocId;
using lang::Reg;
using lang::System;
using lang::ThreadBuilder;
using memsem::LocKind;

namespace {

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

enum class Tok : std::uint8_t {
  Ident, Number,
  // punctuation / operators
  Semi, Comma, LParen, RParen, LBrace, RBrace, Dot,
  Assign,        // :=  with an optional order suffix (:=R, :=NA, ...)
  Arrow,         // <-  with an optional order suffix (<-A, <-NA, ...)
  Plus, Minus, Star, Percent,
  Eq,  // single '=' (declaration initialisers only)
  Colon,     // ':' (outline annotations)
  Implies,   // '==>' (outline assertions)
  EqEq, NotEq, Lt, Le, Gt, Ge, AndAnd, OrOr, Not,
  End,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  /// Memory-order annotation glued onto := / <- (the uppercase run directly
  /// after the operator): "" for none, otherwise whatever the program wrote
  /// ("R", "A", "NA", or a typo the parser rejects with the accepted list).
  std::string suffix;
  long long number = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void error(const std::string& msg) const {
    support::fail("parse error at ", current_.line, ":", current_.col, ": ",
                  msg, current_.kind == Tok::End
                          ? " (at end of input)"
                          : " (near '" + current_.text + "')");
  }

 private:
  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    current_.col = col_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::End;
      return;
    }
    const char ch = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::string ident;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ident.push_back(src_[pos_]);
        bump();
      }
      current_.kind = Tok::Ident;
      current_.text = std::move(ident);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      long long value = 0;
      std::string text;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        value = value * 10 + (src_[pos_] - '0');
        text.push_back(src_[pos_]);
        bump();
      }
      current_.kind = Tok::Number;
      current_.number = value;
      current_.text = std::move(text);
      return;
    }
    const auto two = src_.substr(pos_, 2);
    const auto three = src_.substr(pos_, 3);
    const auto set = [&](Tok kind, std::size_t len, std::string_view text) {
      current_.kind = kind;
      current_.text = std::string{text};
      for (std::size_t i = 0; i < len; ++i) bump();
    };
    // := and <- swallow a directly-attached uppercase order suffix (":=R",
    // "<-NA", also typos like ":=RR") so the parser can validate it against
    // the orders the context accepts and report the bad token precisely.
    const auto set_access = [&](Tok kind, std::string_view text) {
      set(kind, 2, text);
      while (pos_ < src_.size() && src_[pos_] >= 'A' && src_[pos_] <= 'Z') {
        current_.suffix.push_back(src_[pos_]);
        bump();
      }
      current_.text += current_.suffix;
    };
    if (two == ":=") return set_access(Tok::Assign, two);
    if (two == "<-") return set_access(Tok::Arrow, two);
    if (three == "==>") return set(Tok::Implies, 3, three);
    if (two == "==") return set(Tok::EqEq, 2, two);
    if (ch == '=') return set(Tok::Eq, 1, "=");
    if (two == "!=") return set(Tok::NotEq, 2, two);
    if (two == "<=") return set(Tok::Le, 2, two);
    if (two == ">=") return set(Tok::Ge, 2, two);
    if (two == "&&") return set(Tok::AndAnd, 2, two);
    if (two == "||") return set(Tok::OrOr, 2, two);
    switch (ch) {
      case ';': return set(Tok::Semi, 1, ";");
      case ':': return set(Tok::Colon, 1, ":");
      case ',': return set(Tok::Comma, 1, ",");
      case '(': return set(Tok::LParen, 1, "(");
      case ')': return set(Tok::RParen, 1, ")");
      case '{': return set(Tok::LBrace, 1, "{");
      case '}': return set(Tok::RBrace, 1, "}");
      case '.': return set(Tok::Dot, 1, ".");
      case '+': return set(Tok::Plus, 1, "+");
      case '-': return set(Tok::Minus, 1, "-");
      case '*': return set(Tok::Star, 1, "*");
      case '%': return set(Tok::Percent, 1, "%");
      case '<': return set(Tok::Lt, 1, "<");
      case '>': return set(Tok::Gt, 1, ">");
      case '!': return set(Tok::Not, 1, "!");
      default:
        support::fail("parse error at ", line_, ":", col_,
                      ": unexpected character '", std::string(1, ch), "'");
    }
  }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char ch = src_[pos_];
      if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n') {
        bump();
      } else if (ch == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
      } else {
        break;
      }
    }
  }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Token current_;
};

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  ParsedProgram run() {
    parse_declarations();
    while (lex_.peek().kind != Tok::End) {
      if (peek_ident("outline")) {
        parse_outline();
        break;
      }
      parse_thread();
    }
    if (lex_.peek().kind != Tok::End) {
      lex_.error("unexpected trailing input after the outline block");
    }
    support::require(!out_.thread_names.empty(),
                     "program declares no threads");
    return std::move(out_);
  }

  /// Parses the source as a single assertion expression, resolving names
  /// against `program`'s tables (for parser::parse_assertion).
  assertions::Assertion run_assertion(const ParsedProgram& program) {
    out_.sys = program.sys;
    out_.locations = program.locations;
    out_.registers = program.registers;
    out_.thread_names = program.thread_names;
    auto a = parse_assertion();
    if (lex_.peek().kind != Tok::End) {
      lex_.error("unexpected trailing input after the assertion");
    }
    return a;
  }

 private:
  // --- helpers ---
  Token expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) lex_.error(std::string("expected ") + what);
    return lex_.take();
  }

  /// Reports an error anchored at an already-taken token (the lexer's own
  /// error() points at the *next* token, which is wrong for a bad order
  /// suffix noticed only after the operator was consumed).
  [[noreturn]] static void error_at(const Token& tok, const std::string& msg) {
    support::fail("parse error at ", tok.line, ":", tok.col, ": ", msg,
                  " (near '", tok.text, "')");
  }

  /// Validates the order suffix of a store operator token.
  static memsem::MemOrder store_order(const Token& op) {
    if (op.suffix.empty()) return memsem::MemOrder::Relaxed;
    if (op.suffix == "R") return memsem::MemOrder::Release;
    if (op.suffix == "NA") return memsem::MemOrder::NonAtomic;
    error_at(op, "unknown memory order ':=" + op.suffix +
                     "' on a store; accepted orders are ':=' (relaxed), "
                     "':=R' (release) and ':=NA' (non-atomic)");
  }

  /// Validates the order suffix of a load operator token.
  static memsem::MemOrder load_order(const Token& op) {
    if (op.suffix.empty()) return memsem::MemOrder::Relaxed;
    if (op.suffix == "A") return memsem::MemOrder::Acquire;
    if (op.suffix == "NA") return memsem::MemOrder::NonAtomic;
    error_at(op, "unknown memory order '<-" + op.suffix +
                     "' on a load; accepted orders are '<-' (relaxed), "
                     "'<-A' (acquire) and '<-NA' (non-atomic)");
  }

  /// Validates the order suffix of an object-method read (pop/deq), which
  /// accepts only plain and acquire.
  static bool method_acquires(const Token& op, const std::string& method) {
    if (op.suffix.empty()) return false;
    if (op.suffix == "A") return true;
    error_at(op, "unknown memory order '<-" + op.suffix + "' on '" + method +
                     "'; accepted orders are '<-' (relaxed) and '<-A' "
                     "(acquire)");
  }

  bool accept(Tok kind) {
    if (lex_.peek().kind == kind) {
      lex_.take();
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek_ident(std::string_view word) const {
    return lex_.peek().kind == Tok::Ident && lex_.peek().text == word;
  }

  bool accept_ident(std::string_view word) {
    if (peek_ident(word)) {
      lex_.take();
      return true;
    }
    return false;
  }

  [[nodiscard]] bool is_location(const std::string& name) const {
    return out_.locations.count(name) > 0;
  }

  LocId location(const std::string& name, LocKind want, const char* use) {
    const auto it = out_.locations.find(name);
    if (it == out_.locations.end()) lex_.error("unknown location '" + name + "'");
    const auto kind = out_.sys.locations().kind(it->second);
    if (kind != want) {
      lex_.error("location '" + name + "' cannot be used as a " + use);
    }
    return it->second;
  }

  Reg reg_lookup(const std::string& name) {
    const auto it = out_.registers.find(name);
    if (it == out_.registers.end()) {
      lex_.error("unknown register '" + name +
                 "' (declare it with 'reg " + name + ";')");
    }
    return it->second;
  }

  // --- declarations ---
  void parse_declarations() {
    for (;;) {
      if (peek_ident("var")) {
        lex_.take();
        parse_var_decl();
      } else if (peek_ident("lock") || peek_ident("stack") ||
                 peek_ident("queue")) {
        const auto kw = lex_.take().text;
        parse_object_decl(kw == "lock"
                              ? LocKind::Lock
                              : (kw == "stack" ? LocKind::Stack
                                               : LocKind::Queue));
      } else {
        break;
      }
    }
  }

  memsem::Component parse_component() {
    if (accept_ident("library")) return memsem::Component::Library;
    accept_ident("client");  // optional, the default
    return memsem::Component::Client;
  }

  void check_fresh_name(const std::string& name) {
    if (out_.locations.count(name) || out_.registers.count(name)) {
      lex_.error("duplicate name '" + name + "'");
    }
  }

  void parse_var_decl() {
    const auto comp = parse_component();
    const auto name = expect(Tok::Ident, "variable name").text;
    check_fresh_name(name);
    lang::Value init = 0;
    if (accept(Tok::Eq)) {
      init = parse_signed_literal();
    }
    expect(Tok::Semi, "';'");
    const auto loc = comp == memsem::Component::Client
                         ? out_.sys.client_var(name, init)
                         : out_.sys.library_var(name, init);
    out_.locations.emplace(name, loc);
  }

  void parse_object_decl(LocKind kind) {
    const auto comp = parse_component();
    const auto name = expect(Tok::Ident, "object name").text;
    check_fresh_name(name);
    expect(Tok::Semi, "';'");
    const bool client = comp == memsem::Component::Client;
    LocId loc = 0;
    switch (kind) {
      case LocKind::Lock:
        loc = client ? out_.sys.client_lock(name) : out_.sys.library_lock(name);
        break;
      case LocKind::Stack:
        loc = client ? out_.sys.client_stack(name)
                     : out_.sys.library_stack(name);
        break;
      case LocKind::Queue:
        loc = client ? out_.sys.client_queue(name)
                     : out_.sys.library_queue(name);
        break;
      case LocKind::Var:
        RC11_REQUIRE(false, "parse_object_decl on a variable kind");
    }
    out_.locations.emplace(name, loc);
  }

  lang::Value parse_signed_literal() {
    const bool negative = accept(Tok::Minus);
    const auto tok = expect(Tok::Number, "number");
    return negative ? -tok.number : tok.number;
  }

  // --- threads ---
  void parse_thread() {
    if (!accept_ident("thread")) lex_.error("expected 'thread'");
    std::string name = "t" + std::to_string(out_.thread_names.size());
    if (lex_.peek().kind == Tok::Ident) name = lex_.take().text;
    out_.thread_names.push_back(name);
    expect(Tok::LBrace, "'{'");
    auto tb = out_.sys.thread();
    parse_block_body(tb);
  }

  /// Parses statements until the closing '}' (which is consumed).
  void parse_block_body(ThreadBuilder& tb) {
    while (!accept(Tok::RBrace)) {
      if (lex_.peek().kind == Tok::End) lex_.error("expected '}'");
      parse_statement(tb);
    }
  }

  void parse_statement(ThreadBuilder& tb) {
    if (accept_ident("reg")) return parse_reg_decl(tb);
    if (peek_ident("if")) return parse_if(tb);
    if (peek_ident("while")) return parse_while(tb);
    if (peek_ident("do")) return parse_do_until(tb);

    const auto name = expect(Tok::Ident, "statement").text;

    // Object method call without destination: l.acquire(); l.release();
    // s.push(e); s.pushR(e);
    if (lex_.peek().kind == Tok::Dot) {
      lex_.take();
      const auto method = expect(Tok::Ident, "method name").text;
      expect(Tok::LParen, "'('");
      if (method == "acquire") {
        expect(Tok::RParen, "')'");
        tb.acquire(location(name, LocKind::Lock, "lock"), std::nullopt,
                   name + ".acquire()");
      } else if (method == "release") {
        expect(Tok::RParen, "')'");
        tb.release(location(name, LocKind::Lock, "lock"), name + ".release()");
      } else if (method == "push" || method == "pushR") {
        Expr value = parse_expr(tb);
        expect(Tok::RParen, "')'");
        const auto s = location(name, LocKind::Stack, "stack");
        if (method == "pushR") {
          tb.push_rel(s, std::move(value), name + ".pushR");
        } else {
          tb.push(s, std::move(value), name + ".push");
        }
      } else if (method == "enq" || method == "enqR") {
        Expr value = parse_expr(tb);
        expect(Tok::RParen, "')'");
        const auto q = location(name, LocKind::Queue, "queue");
        if (method == "enqR") {
          tb.enqueue_rel(q, std::move(value), name + ".enqR");
        } else {
          tb.enqueue(q, std::move(value), name + ".enq");
        }
      } else {
        lex_.error("unknown method '" + method + "'");
      }
      expect(Tok::Semi, "';'");
      return;
    }

    // Stores: x := e;  x :=R e;  x :=NA e;  and local assignment r := e;
    if (lex_.peek().kind == Tok::Assign) {
      const Token op = lex_.take();
      Expr value = parse_expr(tb);
      expect(Tok::Semi, "';'");
      if (is_location(name)) {
        const auto x = location(name, LocKind::Var, "variable");
        switch (store_order(op)) {
          case memsem::MemOrder::Release:
            tb.store_rel(x, std::move(value));
            break;
          case memsem::MemOrder::NonAtomic:
            tb.store_na(x, std::move(value));
            break;
          default:
            tb.store(x, std::move(value));
            break;
        }
      } else {
        if (!op.suffix.empty()) {
          error_at(op, "':=" + op.suffix +
                           "' needs a shared variable target (register "
                           "assignment takes no memory order)");
        }
        tb.assign(reg_lookup(name), std::move(value));
      }
      return;
    }

    // Reads and RMW/method calls with a destination register:
    //   r <- x; r <-A x; r <-NA x; r <- CAS(...); r <- FAI(x);
    //   r <- l.acquire(); r <- s.pop(); r <-A s.pop();
    if (lex_.peek().kind == Tok::Arrow) {
      const Token op = lex_.take();
      const auto dst = reg_lookup(name);
      const auto src = expect(Tok::Ident, "read source").text;

      if (lex_.peek().kind == Tok::Dot) {  // object method
        lex_.take();
        const auto method = expect(Tok::Ident, "method name").text;
        expect(Tok::LParen, "'('");
        expect(Tok::RParen, "')'");
        expect(Tok::Semi, "';'");
        if (method == "acquire") {
          if (!op.suffix.empty()) {
            error_at(op, "lock methods take no <-" + op.suffix + " annotation");
          }
          tb.acquire(location(src, LocKind::Lock, "lock"), dst,
                     name + " <- " + src + ".acquire()");
        } else if (method == "pop") {
          const auto s = location(src, LocKind::Stack, "stack");
          if (method_acquires(op, method)) {
            tb.pop_acq(dst, s, name + " <-A " + src + ".pop()");
          } else {
            tb.pop(dst, s, name + " <- " + src + ".pop()");
          }
        } else if (method == "deq") {
          const auto q = location(src, LocKind::Queue, "queue");
          if (method_acquires(op, method)) {
            tb.dequeue_acq(dst, q, name + " <-A " + src + ".deq()");
          } else {
            tb.dequeue(dst, q, name + " <- " + src + ".deq()");
          }
        } else {
          lex_.error("unknown method '" + method + "' in read position");
        }
        return;
      }

      if (src == "CAS") {
        if (!op.suffix.empty()) {
          error_at(op, "CAS is always RA; drop the " + op.suffix +
                           " annotation");
        }
        expect(Tok::LParen, "'('");
        const auto var = expect(Tok::Ident, "variable").text;
        expect(Tok::Comma, "','");
        Expr expected = parse_expr(tb);
        expect(Tok::Comma, "','");
        Expr desired = parse_expr(tb);
        expect(Tok::RParen, "')'");
        expect(Tok::Semi, "';'");
        tb.cas(dst, location(var, LocKind::Var, "variable"),
               std::move(expected), std::move(desired));
        return;
      }
      if (src == "FAI") {
        if (!op.suffix.empty()) {
          error_at(op, "FAI is always RA; drop the " + op.suffix +
                           " annotation");
        }
        expect(Tok::LParen, "'('");
        const auto var = expect(Tok::Ident, "variable").text;
        expect(Tok::RParen, "')'");
        expect(Tok::Semi, "';'");
        tb.fai(dst, location(var, LocKind::Var, "variable"));
        return;
      }

      // Plain load.
      expect(Tok::Semi, "';'");
      const auto x = location(src, LocKind::Var, "variable");
      switch (load_order(op)) {
        case memsem::MemOrder::Acquire:
          tb.load_acq(dst, x);
          break;
        case memsem::MemOrder::NonAtomic:
          tb.load_na(dst, x);
          break;
        default:
          tb.load(dst, x);
          break;
      }
      return;
    }

    lex_.error("expected ':=', ':=R', ':=NA', '<-', '<-A', '<-NA' or a "
               "method call");
  }

  void parse_reg_decl(ThreadBuilder& tb) {
    // 'reg [library] name [= n];' — library registers belong to inlined
    // implementation code and are excluded from the client projection used
    // by refinement checking.
    const auto comp = accept_ident("library") ? memsem::Component::Library
                                              : memsem::Component::Client;
    const auto name = expect(Tok::Ident, "register name").text;
    check_fresh_name(name);
    lang::Value init = 0;
    if (accept(Tok::Eq)) {
      init = parse_signed_literal();
    }
    expect(Tok::Semi, "';'");
    out_.registers.emplace(name, tb.reg(name, init, comp));
  }

  void parse_if(ThreadBuilder& tb) {
    lex_.take();  // 'if'
    expect(Tok::LParen, "'('");
    Expr cond = parse_expr(tb);
    expect(Tok::RParen, "')'");
    expect(Tok::LBrace, "'{'");
    // Two-pass structure is not possible with the streaming builder API, so
    // the statement bodies are parsed inside the builder callbacks.
    tb.if_else(
        std::move(cond), [&] { parse_block_body(tb); },
        [&]() -> void {
          if (accept_ident("else")) {
            expect(Tok::LBrace, "'{'");
            parse_block_body(tb);
          }
        });
  }

  void parse_while(ThreadBuilder& tb) {
    lex_.take();  // 'while'
    expect(Tok::LParen, "'('");
    Expr cond = parse_expr(tb);
    expect(Tok::RParen, "')'");
    expect(Tok::LBrace, "'{'");
    tb.while_(std::move(cond), [&] { parse_block_body(tb); });
  }

  void parse_do_until(ThreadBuilder& tb) {
    lex_.take();  // 'do'
    expect(Tok::LBrace, "'{'");
    // Source order matches emission order: body first, then the condition,
    // then the back-edge — so the loop is laid out directly.
    const auto head = tb.here();
    parse_block_body(tb);
    if (!accept_ident("until")) lex_.error("expected 'until'");
    expect(Tok::LParen, "'('");
    Expr cond = parse_expr(tb);
    expect(Tok::RParen, "')'");
    expect(Tok::Semi, "';'");
    lang::Instr br;
    br.kind = lang::IKind::Branch;
    br.e1 = !std::move(cond);
    br.target = head;
    tb.emit(std::move(br));
  }

  // --- outline block (assertion language of Section 5.1) ---

  lang::ThreadId thread_by_name(const std::string& name) {
    for (std::size_t i = 0; i < out_.thread_names.size(); ++i) {
      if (out_.thread_names[i] == name) {
        return static_cast<lang::ThreadId>(i);
      }
    }
    lex_.error("unknown thread '" + name + "'");
  }

  void parse_outline() {
    lex_.take();  // 'outline'
    expect(Tok::LBrace, "'{'");
    support::require(!out_.thread_names.empty(),
                     "outline block before any thread");
    out_.outline.emplace(out_.sys);
    while (!accept(Tok::RBrace)) {
      if (lex_.peek().kind == Tok::End) lex_.error("expected '}'");
      if (accept_ident("invariant")) {
        auto a = parse_assertion();
        expect(Tok::Semi, "';'");
        out_.outline->invariant(std::move(a));
      } else if (accept_ident("at")) {
        const auto thread = thread_by_name(expect(Tok::Ident, "thread").text);
        const auto pc_tok = expect(Tok::Number, "program counter");
        if (!accept(Tok::Colon)) lex_.error("expected ':'");
        auto a = parse_assertion();
        expect(Tok::Semi, "';'");
        out_.outline->annotate(thread, static_cast<std::uint32_t>(pc_tok.number),
                               std::move(a));
      } else if (accept_ident("post")) {
        const auto thread = thread_by_name(expect(Tok::Ident, "thread").text);
        if (!accept(Tok::Colon)) lex_.error("expected ':'");
        auto a = parse_assertion();
        expect(Tok::Semi, "';'");
        out_.outline->postcondition(thread, std::move(a));
      } else {
        lex_.error("expected 'invariant', 'at' or 'post'");
      }
    }
  }

  // Assertion grammar: impl -> or -> and -> unary -> atom.
  assertions::Assertion parse_assertion() {
    auto lhs = parse_a_or();
    if (accept(Tok::Implies)) {
      return assertions::implies(std::move(lhs), parse_assertion());
    }
    return lhs;
  }

  assertions::Assertion parse_a_or() {
    auto lhs = parse_a_and();
    while (accept(Tok::OrOr)) {
      lhs = std::move(lhs) || parse_a_and();
    }
    return lhs;
  }

  assertions::Assertion parse_a_and() {
    auto lhs = parse_a_unary();
    while (accept(Tok::AndAnd)) {
      lhs = std::move(lhs) && parse_a_unary();
    }
    return lhs;
  }

  assertions::Assertion parse_a_unary() {
    if (accept(Tok::Not)) return !parse_a_unary();
    if (accept(Tok::LParen)) {
      auto inner = parse_assertion();
      expect(Tok::RParen, "')'");
      return inner;
    }
    return parse_a_atom();
  }

  lang::LocId loc_arg(LocKind want, const char* use) {
    return location(expect(Tok::Ident, "location").text, want, use);
  }

  lang::Value value_arg() { return parse_signed_literal(); }

  assertions::Assertion parse_a_atom() {
    const auto tok = expect(Tok::Ident, "assertion atom");
    const auto& word = tok.text;
    if (word == "true") return assertions::Assertion::always();
    if (word == "false") return !assertions::Assertion::always();
    if (word == "possible" || word == "definite") {
      expect(Tok::LParen, "'('");
      const auto t = thread_by_name(expect(Tok::Ident, "thread").text);
      expect(Tok::Comma, "','");
      const auto x = loc_arg(LocKind::Var, "variable");
      expect(Tok::Comma, "','");
      const auto v = value_arg();
      expect(Tok::RParen, "')'");
      return word == "possible" ? assertions::possible_obs(t, x, v)
                                : assertions::definite_obs(t, x, v);
    }
    if (word == "cond") {
      expect(Tok::LParen, "'('");
      const auto t = thread_by_name(expect(Tok::Ident, "thread").text);
      expect(Tok::Comma, "','");
      const auto x = loc_arg(LocKind::Var, "variable");
      expect(Tok::Comma, "','");
      const auto u = value_arg();
      expect(Tok::Comma, "','");
      const auto y = loc_arg(LocKind::Var, "variable");
      expect(Tok::Comma, "','");
      const auto v = value_arg();
      expect(Tok::RParen, "')'");
      return assertions::cond_obs(t, x, u, y, v);
    }
    if (word == "covered" || word == "hidden") {
      expect(Tok::LParen, "'('");
      const auto x = loc_arg(LocKind::Var, "variable");
      expect(Tok::Comma, "','");
      const auto v = value_arg();
      expect(Tok::RParen, "')'");
      return word == "covered" ? assertions::covered_var(x, v)
                               : assertions::hidden_var(x, v);
    }
    if (word == "held") {
      expect(Tok::LParen, "'('");
      const auto t = thread_by_name(expect(Tok::Ident, "thread").text);
      expect(Tok::Comma, "','");
      const auto l = loc_arg(LocKind::Lock, "lock");
      expect(Tok::RParen, "')'");
      return assertions::lock_held_by(t, l);
    }
    if (word == "canpop") {
      expect(Tok::LParen, "'('");
      const auto s = loc_arg(LocKind::Stack, "stack");
      expect(Tok::Comma, "','");
      const auto v = value_arg();
      expect(Tok::RParen, "')'");
      return assertions::stack_can_pop(s, v);
    }
    if (word == "popempty") {
      expect(Tok::LParen, "'('");
      const auto s = loc_arg(LocKind::Stack, "stack");
      expect(Tok::RParen, "')'");
      return assertions::stack_pop_empty_only(s);
    }
    if (word == "done") {
      expect(Tok::LParen, "'('");
      const auto t = thread_by_name(expect(Tok::Ident, "thread").text);
      expect(Tok::RParen, "')'");
      return assertions::thread_done(t);
    }
    if (word == "pc") {
      expect(Tok::LParen, "'('");
      const auto t = thread_by_name(expect(Tok::Ident, "thread").text);
      expect(Tok::RParen, "')'");
      if (accept(Tok::EqEq)) {
        const auto n = expect(Tok::Number, "pc value").number;
        return assertions::at_pc(t, static_cast<std::uint32_t>(n));
      }
      if (accept_ident("in")) {
        return assertions::pc_in(t, parse_number_set<std::uint32_t>());
      }
      lex_.error("expected '==' or 'in' after pc(...)");
    }
    // Register comparison: REG == n | REG != n | REG in {..}.
    if (out_.registers.count(word) > 0) {
      const auto r = out_.registers.at(word);
      if (accept(Tok::EqEq)) return assertions::reg_eq(r, value_arg());
      if (accept(Tok::NotEq)) return !assertions::reg_eq(r, value_arg());
      if (accept_ident("in")) {
        return assertions::reg_in(r, parse_number_set<lang::Value>());
      }
      lex_.error("expected '==', '!=' or 'in' after a register");
    }
    lex_.error("unknown assertion atom '" + word + "'");
  }

  template <typename T>
  std::set<T> parse_number_set() {
    expect(Tok::LBrace, "'{'");
    std::set<T> values;
    for (;;) {
      values.insert(static_cast<T>(parse_signed_literal()));
      if (!accept(Tok::Comma)) break;
    }
    expect(Tok::RBrace, "'}'");
    return values;
  }

  // --- expressions (precedence climbing) ---
  Expr parse_expr(ThreadBuilder& tb) { return parse_or(tb); }

  Expr parse_or(ThreadBuilder& tb) {
    Expr lhs = parse_and(tb);
    while (accept(Tok::OrOr)) {
      lhs = std::move(lhs) || parse_and(tb);
    }
    return lhs;
  }

  Expr parse_and(ThreadBuilder& tb) {
    Expr lhs = parse_cmp(tb);
    while (accept(Tok::AndAnd)) {
      lhs = std::move(lhs) && parse_cmp(tb);
    }
    return lhs;
  }

  Expr parse_cmp(ThreadBuilder& tb) {
    Expr lhs = parse_add(tb);
    for (;;) {
      if (accept(Tok::EqEq)) lhs = std::move(lhs) == parse_add(tb);
      else if (accept(Tok::NotEq)) lhs = std::move(lhs) != parse_add(tb);
      else if (accept(Tok::Lt)) lhs = std::move(lhs) < parse_add(tb);
      else if (accept(Tok::Le)) lhs = std::move(lhs) <= parse_add(tb);
      else if (accept(Tok::Gt)) lhs = std::move(lhs) > parse_add(tb);
      else if (accept(Tok::Ge)) lhs = std::move(lhs) >= parse_add(tb);
      else return lhs;
    }
  }

  Expr parse_add(ThreadBuilder& tb) {
    Expr lhs = parse_mul(tb);
    for (;;) {
      if (accept(Tok::Plus)) lhs = std::move(lhs) + parse_mul(tb);
      else if (accept(Tok::Minus)) lhs = std::move(lhs) - parse_mul(tb);
      else return lhs;
    }
  }

  Expr parse_mul(ThreadBuilder& tb) {
    Expr lhs = parse_unary(tb);
    for (;;) {
      if (accept(Tok::Star)) lhs = std::move(lhs) * parse_unary(tb);
      else if (accept(Tok::Percent)) lhs = std::move(lhs) % parse_unary(tb);
      else return lhs;
    }
  }

  Expr parse_unary(ThreadBuilder& tb) {
    if (accept(Tok::Not)) return !parse_unary(tb);
    if (accept(Tok::Minus)) {
      return Expr::unary(lang::UnOp::Neg, parse_unary(tb));
    }
    return parse_primary(tb);
  }

  Expr parse_primary(ThreadBuilder& tb) {
    if (lex_.peek().kind == Tok::Number) {
      return c(lex_.take().number);
    }
    if (accept(Tok::LParen)) {
      Expr inner = parse_expr(tb);
      expect(Tok::RParen, "')'");
      return inner;
    }
    if (lex_.peek().kind == Tok::Ident) {
      const auto name = lex_.take().text;
      if (name == "even") {
        expect(Tok::LParen, "'('");
        Expr inner = parse_expr(tb);
        expect(Tok::RParen, "')'");
        return lang::is_even(std::move(inner));
      }
      if (is_location(name)) {
        lex_.error("shared variable '" + name +
                   "' cannot appear in an expression; load it into a "
                   "register first (the paper's Exp_L restriction)");
      }
      return Expr{reg_lookup(name)};
    }
    lex_.error("expected an expression");
  }

  Lexer lex_;
  ParsedProgram out_;
};

}  // namespace

LocId ParsedProgram::loc(std::string_view name) const {
  const auto it = locations.find(std::string{name});
  support::require(it != locations.end(), "unknown location ", name);
  return it->second;
}

Reg ParsedProgram::reg(std::string_view name) const {
  const auto it = registers.find(std::string{name});
  support::require(it != registers.end(), "unknown register ", name);
  return it->second;
}

ParsedProgram parse_program(std::string_view source) {
  return Parser{source}.run();
}

assertions::Assertion parse_assertion(const ParsedProgram& program,
                                      std::string_view source) {
  return Parser{source}.run_assertion(program);
}

ParsedProgram parse_file(const std::string& path) {
  std::ifstream in{path};
  support::require(in.good(), "cannot open program file ", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_program(buffer.str());
}

}  // namespace rc11::parser
