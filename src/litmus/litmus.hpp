// rc11lib/litmus/litmus.hpp
//
// A library of classic RC11 RAR litmus tests, plus the paper's two motivating
// client-library programs (Figures 1 and 2).  Each test packages a System,
// the registers whose final values constitute the outcome, and the exact set
// of outcomes the RC11 RAR semantics allows.  Tests and benchmarks check the
// *reachable outcome set equals the allowed set* — both directions: every
// allowed weak behaviour is exhibited, every forbidden one is excluded.

#pragma once

#include <string>
#include <vector>

#include "lang/system.hpp"

namespace rc11::litmus {

using lang::Reg;
using lang::System;
using lang::Value;

struct LitmusTest {
  std::string name;
  std::string description;
  System sys;
  std::vector<Reg> observed;
  /// Exact expected outcome set (sorted lexicographically).
  std::vector<std::vector<Value>> allowed;
};

/// MP: d := 5; f :=R 1  ||  r1 <-A f; r2 <- d — release/acquire message
/// passing over plain variables; r1 = 1 forces r2 = 5.
LitmusTest mp_release_acquire();

/// MP with all accesses relaxed: the stale outcome r1 = 1, r2 = 0 appears.
LitmusTest mp_relaxed();

/// SB (store buffering): x := 1; r1 <- y || y := 1; r2 <- x.  The weak
/// outcome r1 = r2 = 0 is allowed in RC11 (even with release/acquire).
LitmusTest sb_release_acquire();

/// LB (load buffering): r1 <- x; y := 1 || r2 <- y; x := 1.  RC11 RAR
/// disallows load-buffering cycles: r1 = r2 = 1 must be unreachable.
LitmusTest lb_relaxed();

/// CoRR (coherence of read-read): two reads of the same variable by one
/// thread may not observe writes against modification order.
LitmusTest corr();

/// CoWW+reads: one thread writes 1 then 2; reader sees a mo-monotone pair.
LitmusTest coww_reads();

/// IRIW with release/acquire: the two readers may disagree on the order of
/// independent writes (this is what distinguishes RA from SC).
LitmusTest iriw_release_acquire();

/// Two competing CAS(x, 0, _) operations: exactly one succeeds (update
/// atomicity via the covered set).
LitmusTest cas_agreement();

/// Two FAI(x) operations return distinct consecutive tickets.
LitmusTest fai_tickets();

/// 2W+reads: two threads each write (a different value to) the same
/// variable, a third reads it twice.  Coherence allows any mo-monotone pair
/// under either modification order, but never a read moving backwards.
/// This is also the shape whose order-isomorphic states carry *different*
/// raw timestamps depending on the interleaving, so it is the key workload
/// of the A3 canonicalisation ablation.
LitmusTest two_writers();

/// Figure 1: unsynchronised message passing via a relaxed library stack —
/// popping the message does NOT guarantee seeing the client write (r2 may
/// be 0 or 5).
LitmusTest fig1_stack_mp_relaxed();

/// Figure 2: publication via a synchronising stack (pushR / popA) — popping
/// the message guarantees r2 = 5.
LitmusTest fig2_stack_mp_sync();

/// All of the above, for suite-style iteration in tests and benches.
std::vector<LitmusTest> all_tests();

/// Explores `test.sys` (with `num_threads` workers, explore::ExploreOptions
/// convention) and returns the reachable outcome set over `test.observed`,
/// sorted lexicographically — directly comparable against `test.allowed`.
[[nodiscard]] std::vector<std::vector<Value>> reachable_outcomes(
    const LitmusTest& test, unsigned num_threads = 1);

/// True iff the reachable outcome set equals the allowed set exactly (both
/// directions: every allowed weak behaviour exhibited, every forbidden one
/// excluded) and exploration was not truncated.
[[nodiscard]] bool check(const LitmusTest& test, unsigned num_threads = 1);

/// Causality-chain tests with *partial* expectations: the full outcome sets
/// are large, so these specify key outcomes that must be reachable and key
/// outcomes RC11 RAR must exclude.
struct CausalityTest {
  std::string name;
  std::string description;
  System sys;
  std::vector<Reg> observed;
  std::vector<std::vector<Value>> must_allow;
  std::vector<std::vector<Value>> must_forbid;
};

/// WRC (write-read causality) with release/acquire: T3 acquiring y = 1 after
/// T2 published it having acquired x = 1 must see x = 1.
CausalityTest wrc_release_acquire();

/// WRC with relaxed accesses: the causality violation becomes observable.
CausalityTest wrc_relaxed();

/// ISA2: a two-hop release/acquire chain through y and z publishes x.
CausalityTest isa2_release_acquire();

/// S: a release/acquire edge orders two writes to x in modification order.
CausalityTest s_shape();

std::vector<CausalityTest> all_causality_tests();

/// Data-race classification tests: programs mixing non-atomic and atomic
/// accesses whose racy/race-free verdict is known by construction.  Checked
/// by race::check (src/race/race.hpp); `racy` is the expected verdict, and
/// the verdict must be identical under every engine configuration (worker
/// counts, POR, symmetry, sampling) — the RC11_RACE_CROSSCHECK suites
/// assert set-level agreement, not just the boolean.
struct RaceTest {
  std::string name;
  std::string description;
  System sys;
  bool racy = false;
};

/// MP with a non-atomic payload and only a relaxed flag: racy.
RaceTest race_mp_na();
/// The fixed version: release flag write / acquire flag read: race-free.
RaceTest race_mp_na_release();
/// Broken double-checked init (relaxed guard read, symmetric threads): racy.
RaceTest race_dcl_broken();
/// CAS-elected initialiser + release/acquire publication (symmetric):
/// race-free.
RaceTest race_dcl_init();
/// Spin loop polling the flag with non-atomic reads against an atomic
/// writer: racy (on the flag, not the data).
RaceTest race_flag_spin();
/// Per-thread-disjoint non-atomic accesses: race-free control.
RaceTest race_disjoint_na();
/// Non-atomic increments under an abstract lock: race-free (object
/// synchronisation orders the critical sections).
RaceTest race_lock_protected();
/// All-atomic relaxed MP: race-free (no non-atomic access, no race by
/// definition — relaxed atomics may be weak, never racy).
RaceTest race_atomic_only();

std::vector<RaceTest> all_race_tests();

/// Message passing with computed payload: the producer assembles its message
/// through a chain of `work` local assignments before the d-then-release-f
/// handoff, and the consumer post-processes what it read through another
/// chain of `work` local assignments.  Not a litmus test (no fixed expected
/// outcome set — sweep `work`); this is the message-passing benchmark family
/// of the partial-order reduction: every local step interleaves with the
/// other thread in the full graph but collapses under --por.
[[nodiscard]] System mp_compute(unsigned work);

/// mp_compute with a spinning consumer: the consumer acquires f in a
/// do-until loop instead of a single load, adding the spin states a real
/// message-passing idiom has.
[[nodiscard]] System mp_spin_compute(unsigned work);

}  // namespace rc11::litmus
