// Unit and property tests for the exact rational timestamp domain
// (support/rational.hpp).  The memory semantics relies on three properties:
// density (a fresh timestamp exists between any two), exactness of ordering,
// and stability of normal forms (for hashing).

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/rational.hpp"

namespace {

using rc11::support::Rational;
using rc11::support::RationalOverflow;

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.numerator(), 0);
  EXPECT_EQ(r.denominator(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalisesOnConstruction) {
  const Rational r{6, 4};
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 2);
}

TEST(Rational, NormalisesSign) {
  const Rational r{3, -6};
  EXPECT_EQ(r.numerator(), -1);
  EXPECT_EQ(r.denominator(), 2);
}

TEST(Rational, ZeroNormalForm) {
  const Rational r{0, -7};
  EXPECT_EQ(r.numerator(), 0);
  EXPECT_EQ(r.denominator(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational{});
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational{2});
  EXPECT_THROW(Rational(1, 2) / Rational{}, std::invalid_argument);
}

TEST(Rational, UnaryMinus) {
  EXPECT_EQ(-Rational(3, 7), Rational(-3, 7));
  EXPECT_EQ(-Rational{}, Rational{});
}

TEST(Rational, ComparisonIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  // A comparison that would overflow a naive double-based check.
  const Rational big1{INT64_MAX - 1, INT64_MAX};
  const Rational big2{INT64_MAX - 2, INT64_MAX - 1};
  EXPECT_GT(big1, big2);
}

TEST(Rational, SuccessorIsGreater) {
  const Rational r{7, 3};
  EXPECT_GT(r.successor(), r);
  EXPECT_EQ(r.successor(), Rational(10, 3));
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 2).to_string(), "3/2");
  EXPECT_EQ(Rational{5}.to_string(), "5");
  EXPECT_EQ(Rational(-1, 4).to_string(), "-1/4");
}

TEST(Rational, OverflowDetected) {
  const Rational big{INT64_MAX, 1};
  EXPECT_THROW(big + big, RationalOverflow);
  EXPECT_THROW(big * Rational{2}, RationalOverflow);
}

TEST(Rational, HashRespectsNormalForm) {
  const std::hash<Rational> h;
  EXPECT_EQ(h(Rational(2, 4)), h(Rational(1, 2)));
}

// --- property sweeps -------------------------------------------------------

struct BetweenCase {
  std::int64_t an, ad, bn, bd;
};

class BetweennessTest : public ::testing::TestWithParam<BetweenCase> {};

// midpoint and mediant must produce a value strictly between their inputs —
// this is the density property the fresh-timestamp rule fresh_γ(q, q')
// depends on.
TEST_P(BetweennessTest, MidpointStrictlyBetween) {
  const auto& p = GetParam();
  const Rational a{p.an, p.ad};
  const Rational b{p.bn, p.bd};
  ASSERT_LT(a, b);
  const Rational m = Rational::midpoint(a, b);
  EXPECT_LT(a, m);
  EXPECT_LT(m, b);
}

TEST_P(BetweennessTest, MediantStrictlyBetween) {
  const auto& p = GetParam();
  // The mediant property requires positive denominators (guaranteed by the
  // normal form) and a < b.
  const Rational a{p.an, p.ad};
  const Rational b{p.bn, p.bd};
  ASSERT_LT(a, b);
  const Rational m = Rational::mediant(a, b);
  EXPECT_LT(a, m);
  EXPECT_LT(m, b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BetweennessTest,
    ::testing::Values(BetweenCase{0, 1, 1, 1}, BetweenCase{1, 2, 2, 3},
                      BetweenCase{-5, 3, -4, 3}, BetweenCase{-1, 1, 1, 7},
                      BetweenCase{99, 100, 100, 99}, BetweenCase{7, 1, 8, 1},
                      BetweenCase{-1000, 7, 1000, 11}));

// Repeated insertion between two fixed timestamps must keep producing fresh,
// strictly ordered values (dense chain) — exercised the way the WRITE rule
// exercises it: repeatedly inserting right after the left endpoint.
TEST(RationalProperty, DenseChainViaMidpoint) {
  Rational lo{0};
  const Rational hi{1};
  Rational prev = lo;
  for (int i = 0; i < 50; ++i) {
    const Rational m = Rational::midpoint(prev, hi);
    ASSERT_LT(prev, m);
    ASSERT_LT(m, hi);
    prev = m;
  }
}

TEST(RationalProperty, DenseChainViaMediant) {
  const Rational hi{1};
  Rational prev{0};
  for (int i = 0; i < 50; ++i) {
    const Rational m = Rational::mediant(prev, hi);
    ASSERT_LT(prev, m);
    ASSERT_LT(m, hi);
    prev = m;
  }
}

// Field axioms on a small grid — a cheap exhaustive property check.
TEST(RationalProperty, ArithmeticLaws) {
  std::vector<Rational> values;
  for (std::int64_t n = -4; n <= 4; ++n) {
    for (std::int64_t d = 1; d <= 4; ++d) {
      values.emplace_back(n, d);
    }
  }
  for (const auto& a : values) {
    for (const auto& b : values) {
      EXPECT_EQ(a + b, b + a);
      EXPECT_EQ(a * b, b * a);
      EXPECT_EQ(a - b, -(b - a));
      if (b != Rational{}) {
        EXPECT_EQ((a / b) * b, a);
      }
    }
  }
}

TEST(RationalProperty, OrderingIsTotalAndTransitiveOnGrid) {
  std::vector<Rational> values;
  for (std::int64_t n = -3; n <= 3; ++n) {
    for (std::int64_t d = 1; d <= 3; ++d) values.emplace_back(n, d);
  }
  for (const auto& a : values) {
    for (const auto& b : values) {
      EXPECT_EQ(a < b, !(b < a) && a != b);
      for (const auto& cc : values) {
        if (a < b && b < cc) EXPECT_LT(a, cc);
      }
    }
  }
}

}  // namespace
