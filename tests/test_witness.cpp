// Tests for the witness subsystem: JSON round-trips (including hostile
// strings), replay as an independent oracle on witnesses produced by the
// explorer / outline checker / refinement checkers, parallel trace capture,
// minimization, and rejection of corrupted or tampered witness files.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "support/diagnostics.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using witness::Witness;
using witness::WitnessStep;

constexpr const char* kSb = R"(
var x = 0;
var y = 0;
thread t1 { reg r1; x :=R 1; r1 <-A y; }
thread t2 { reg r2; y :=R 1; r2 <-A x; }
)";

constexpr const char* kSbInvariant =
    "!(done(t1) && done(t2) && r1 == 0 && r2 == 0)";

/// Explores kSb with the weak-outcome invariant and returns the parsed
/// program plus the first violation (which must carry a witness).
struct SbViolation {
  parser::ParsedProgram program;
  explore::Violation violation;
};

SbViolation sb_violation(unsigned num_threads = 1) {
  SbViolation out{parser::parse_program(kSb), {}};
  const auto assertion = parser::parse_assertion(out.program, kSbInvariant);
  explore::ExploreOptions opts;
  opts.track_traces = true;
  opts.num_threads = num_threads;
  opts.stop_on_violation = false;  // deterministic: collect them all
  const auto result = explore::explore(
      out.program.sys, opts,
      [&assertion](const lang::System& s,
                   const lang::Config& c) -> std::optional<std::string> {
        if (assertion.eval(s, c)) return std::nullopt;
        return std::string{"weak outcome reached"};
      });
  EXPECT_FALSE(result.violations.empty());
  out.violation = result.violations.front();
  return out;
}

// --- JSON round-trip --------------------------------------------------------

TEST(WitnessJson, RoundTripPreservesEverything) {
  Witness w;
  w.kind = "invariant";
  w.source = "test \"quoted\" \\ backslash";
  w.what = "line1\nline2\ttabbed";
  w.state_dump = "dump with unicode \xC3\xA9 and ctrl \x01 bytes";
  w.initial_digest = 0xDEADBEEFCAFEF00DULL;
  w.steps.push_back({0, "t0: x :=R 1", 0x1ULL});
  w.steps.push_back({witness::kAnyThread, "unknown-thread step", UINT64_MAX});
  const auto parsed = witness::from_json(witness::to_json(w));
  EXPECT_EQ(parsed, w);
}

TEST(WitnessJson, RejectsCorruptDocuments) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());
  const auto good = witness::to_json(*wit.violation.witness);

  EXPECT_THROW(witness::from_json("not json at all"), support::Error);
  EXPECT_THROW(witness::from_json("{}"), support::Error);
  EXPECT_THROW(witness::from_json("{\"format\": \"rc11-witness\"}"),
               support::Error);

  // Wrong magic / unsupported version / broken digest string.
  auto bad = good;
  bad.replace(bad.find("rc11-witness"), 12, "other-format");
  EXPECT_THROW(witness::from_json(bad), support::Error);
  bad = good;
  bad.replace(bad.find("\"version\": 1"), 12, "\"version\": 99");
  EXPECT_THROW(witness::from_json(bad), support::Error);
  bad = good;
  bad.replace(bad.find("0x"), 2, "zz");
  EXPECT_THROW(witness::from_json(bad), support::Error);
}

// --- explorer witnesses -----------------------------------------------------

TEST(ExplorerWitness, SbWeakOutcomeReplays) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());
  const auto& w = *wit.violation.witness;
  EXPECT_EQ(w.kind, "invariant");
  EXPECT_FALSE(w.steps.empty());

  const auto r = witness::replay(wit.program.sys, w);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.steps_applied, w.steps.size());

  // Full cross-check: the property really is violated where replay landed.
  ASSERT_TRUE(r.final_config.has_value());
  const auto assertion =
      parser::parse_assertion(wit.program, kSbInvariant);
  EXPECT_FALSE(assertion.eval(wit.program.sys, *r.final_config));
}

TEST(ExplorerWitness, SurvivesJsonRoundTripAndStillReplays) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());
  const auto reparsed =
      witness::from_json(witness::to_json(*wit.violation.witness));
  EXPECT_EQ(reparsed, *wit.violation.witness);
  EXPECT_TRUE(witness::replay(wit.program.sys, reparsed).ok);
}

TEST(ExplorerWitness, ParallelTracesAlwaysReplay) {
  // The satellite claim: track_traces composes with num_threads > 1.  A
  // parallel run's trace may differ from the sequential one but must always
  // be a real execution.
  for (int round = 0; round < 3; ++round) {
    const auto wit = sb_violation(/*num_threads=*/4);
    ASSERT_TRUE(wit.violation.witness.has_value());
    const auto r = witness::replay(wit.program.sys, *wit.violation.witness);
    EXPECT_TRUE(r.ok) << "round " << round << ": " << r.error;
  }
}

TEST(ExplorerWitness, ViolationAtInitialStateHasEmptyRun) {
  auto program = parser::parse_program(kSb);
  explore::ExploreOptions opts;
  opts.track_traces = true;
  const auto result = explore::explore(
      program.sys, opts,
      [](const lang::System&, const lang::Config&) {
        return std::optional<std::string>{"always"};
      });
  ASSERT_FALSE(result.violations.empty());
  ASSERT_TRUE(result.violations.front().witness.has_value());
  const auto& w = *result.violations.front().witness;
  EXPECT_TRUE(w.steps.empty());
  EXPECT_EQ(w.final_digest(), w.initial_digest);
  EXPECT_TRUE(witness::replay(program.sys, w).ok);
}

TEST(ExplorerWitness, TamperedWitnessFailsReplay) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());

  auto tampered = *wit.violation.witness;
  tampered.steps.back().after_digest ^= 1;
  auto r = witness::replay(wit.program.sys, tampered);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());

  tampered = *wit.violation.witness;
  tampered.initial_digest ^= 1;
  r = witness::replay(wit.program.sys, tampered);
  EXPECT_FALSE(r.ok) << "wrong initial state must be rejected immediately";
  EXPECT_EQ(r.steps_applied, 0u);

  // A witness replayed against different semantics options diverges too.
  auto ablated = parser::parse_program(kSb);
  memsem::SemanticsOptions sem;
  sem.canonical_timestamps = false;
  ablated.sys.set_options(sem);
  EXPECT_FALSE(witness::replay(ablated.sys, *wit.violation.witness).ok);
}

TEST(ExplorerWitness, MinimizeShrinksAndStillReplays) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());
  const auto& w = *wit.violation.witness;
  const auto min = witness::minimize(wit.program.sys, w);
  EXPECT_LE(min.steps.size(), w.steps.size());
  EXPECT_EQ(min.final_digest(), w.final_digest());
  EXPECT_EQ(min.kind, w.kind);
  EXPECT_EQ(min.what, w.what);
  const auto r = witness::replay(wit.program.sys, min);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ExplorerWitness, RenderersMentionTheRun) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());
  const auto& w = *wit.violation.witness;
  const auto text = witness::to_text(w);
  EXPECT_NE(text.find(w.steps.front().label), std::string::npos);
  const auto dot = witness::to_dot(w);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// --- outline witnesses ------------------------------------------------------

constexpr const char* kBrokenOutline = R"(
var x = 0;
thread w { x :=R 1; }
thread r { reg a; a <-A x; }
outline {
  post r: a == 0;
}
)";

TEST(OutlineWitness, FailedObligationReplays) {
  for (const unsigned num_threads : {1u, 4u}) {
    auto program = parser::parse_program(kBrokenOutline);
    ASSERT_TRUE(program.outline.has_value());
    og::OutlineCheckOptions opts;
    opts.track_traces = true;
    opts.num_threads = num_threads;
    const auto result =
        og::check_outline(program.sys, *program.outline, opts);
    ASSERT_FALSE(result.valid);
    ASSERT_FALSE(result.failures.empty());
    const auto& failure = result.failures.front();
    ASSERT_TRUE(failure.witness.has_value());
    EXPECT_EQ(failure.witness->kind, "outline");
    EXPECT_EQ(failure.witness->what, failure.obligation);
    const auto r = witness::replay(program.sys, *failure.witness);
    EXPECT_TRUE(r.ok) << num_threads << " thread(s): " << r.error;
  }
}

// --- refinement witnesses ---------------------------------------------------

TEST(RefinementWitness, BrokenSeqLockSimulationCounterexampleReplays) {
  locks::AbstractLock abs;
  const auto abs_sys = locks::instantiate(locks::fig7_client(), abs);
  locks::SeqLock broken{/*releasing_release=*/false};
  const auto conc_sys = locks::instantiate(locks::fig7_client(), broken);

  const auto sim = refinement::check_forward_simulation(abs_sys, conc_sys);
  ASSERT_FALSE(sim.holds);
  if (sim.witness) {  // present iff the game found a dead concrete state
    EXPECT_EQ(sim.witness->kind, "refinement");
    const auto r = witness::replay(conc_sys, *sim.witness);
    EXPECT_TRUE(r.ok) << r.error;
  }

  const auto tr = refinement::check_trace_inclusion(abs_sys, conc_sys);
  ASSERT_FALSE(tr.holds);
  ASSERT_TRUE(tr.witness.has_value());
  EXPECT_EQ(tr.witness->kind, "refinement");
  const auto r = witness::replay(conc_sys, *tr.witness);
  EXPECT_TRUE(r.ok) << r.error;

  // The counterexample is a run of the *concrete* system; it must not
  // accidentally replay against the abstract one.
  EXPECT_FALSE(witness::replay(abs_sys, *tr.witness).ok);
}

// --- file round-trip --------------------------------------------------------

TEST(WitnessFiles, SaveLoadRoundTrip) {
  const auto wit = sb_violation();
  ASSERT_TRUE(wit.violation.witness.has_value());
  const std::string path =
      "/tmp/rc11_witness_" + std::to_string(getpid()) + "_roundtrip.json";
  witness::save(*wit.violation.witness, path);
  const auto loaded = witness::load(path);
  EXPECT_EQ(loaded, *wit.violation.witness);
  EXPECT_THROW(witness::load("/nonexistent/dir/w.json"), support::Error);
}

}  // namespace
