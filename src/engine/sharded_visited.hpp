// rc11lib/engine/sharded_visited.hpp
//
// A lock-striped visited set over canonical state encodings, owned by the
// shared reachability engine (engine/reach.hpp) and used by every checker
// that runs on it: the explorer, the proof-outline checker and the
// refinement graph builder.
//
// Layout: N shards (N a power of two), each an independently locked
// support::InternedWordSet — an open-addressing fingerprint table whose
// 16-byte entries point into a per-shard append-only varint arena.  A state
// is routed to the shard named by the *top* bits of its 64-bit encoding
// digest, and the digest then indexes the open-addressing table inside the
// shard, so the two levels consume disjoint bits and states spread evenly.
// There is no per-state heap allocation: duplicates touch only the table,
// and new states append their compressed encoding to the shard arena.
//
// Soundness: exactly like the sequential visited set, a fingerprint hit is
// confirmed against the complete stored encoding before an insert is
// refused — a digest collision can never make exploration drop a genuinely
// new state, it only costs a memcmp.  Because each encoding maps to exactly
// one shard, the per-shard mutex makes insert() linearisable: of two racing
// inserts of the same encoding exactly one returns true, which is the
// property the exploration engine needs (every reachable state is expanded
// exactly once, regardless of which worker discovered it).
//
// Parent tracking (the witness subsystem's trace source): insert_traced()
// additionally records, per *newly interned* state and under the same shard
// lock, the id of the state it was generated from plus a step descriptor
// (acting thread + label).  Every state receives its parent exactly once —
// from whichever worker won the insert race — and that parent was interned
// strictly earlier, so the links form a forest rooted at the initial state
// and path_to() always terminates.  This is what makes counterexample
// traces schedule-independent in *validity* (any recorded path is a real
// execution) even though the specific path may vary run to run.

#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "memsem/types.hpp"
#include "support/hash.hpp"
#include "support/intern.hpp"

namespace rc11::engine {

class ShardedVisitedSet {
 public:
  /// Sentinel parent for the initial state / "no id available" marker.
  static constexpr std::uint64_t kNoState = ~0ULL;

  /// One parent link: how a state was first reached.
  struct TraceEdge {
    std::uint64_t state = kNoState;   ///< the state this edge leads *to*
    std::uint64_t parent = kNoState;  ///< state it was generated from
    memsem::ThreadId thread = 0;      ///< acting thread of the step
    std::string label;                ///< human-readable step description
  };

  struct TracedInsert {
    bool inserted = false;
    std::uint64_t id = kNoState;  ///< valid iff inserted
  };

  /// Result of insert_masked: the sleep-set-aware membership test the
  /// reduction paths of the reachability driver run on (see reach.cpp).
  struct MaskedInsert {
    bool inserted = false;  ///< first time this encoding was seen
    /// The caller should (re-)expand the state: it is fresh, or the stored
    /// sleep mask strictly shrank under the arriving one (Godefroid's
    /// revisit rule — a previously skipped transition is now required).
    bool expand = false;
    /// The mask to expand with: the arriving mask on a fresh insert, the
    /// intersection old ∩ new on a mask-shrinking revisit, the (unchanged)
    /// stored mask otherwise.
    std::uint64_t mask = 0;
  };

  /// `shard_count` is rounded up to a power of two (at least 1).  64 shards
  /// keep the expected queue depth per mutex negligible for any realistic
  /// worker count while costing only a few KiB empty.
  explicit ShardedVisitedSet(unsigned shard_count = 64) {
    unsigned n = 1;
    while (n < shard_count && n < (1U << 16)) n <<= 1;
    shards_ = std::vector<Shard>(n);
    shard_shift_ = 64U;
    shard_bits_ = 0;
    for (unsigned v = n; v > 1; v >>= 1) {
      shard_shift_ -= 1;
      shard_bits_ += 1;
    }
  }

  /// Returns true iff the encoding was newly inserted.  Thread-safe.  The
  /// words are only copied (compressed, into the shard arena) when they are
  /// genuinely new; a duplicate allocates nothing.
  bool insert(std::span<const std::uint64_t> encoding) {
    const std::uint64_t digest = support::hash_words(encoding);
    Shard& shard = shards_[shard_of(digest)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.set.insert(encoding, digest);
  }

  /// Inserts the encoding and, iff it is new, records its parent link under
  /// the same shard lock (so id assignment and parent recording are one
  /// atomic step).  `parent` is the id a previous insert_traced returned for
  /// the state the step was taken from, or kNoState for the initial state.
  /// The label is consumed only for genuinely new states.  `enqueued` marks
  /// states the driver puts on its frontier; POR chain collapse passes false
  /// for chain-internal states, which are interned for witness traces but
  /// never independently expanded — a checkpoint must not resurrect them as
  /// frontier work.  Thread-safe; a set used with insert_traced must use it
  /// exclusively.
  TracedInsert insert_traced(std::span<const std::uint64_t> encoding,
                             std::uint64_t parent, memsem::ThreadId thread,
                             std::string&& label, bool enqueued = true) {
    const std::uint64_t digest = support::hash_words(encoding);
    const std::size_t si = shard_of(digest);
    Shard& shard = shards_[si];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto ided = shard.set.insert_ided(encoding, digest);
    if (!ided.inserted) return {false, kNoState};
    // Local ids are dense per shard; parents_ grows in lockstep with them.
    shard.parents.push_back({parent, thread, std::move(label), enqueued});
    shard.label_bytes += shard.parents.back().label.capacity();
    return {true, compose_id(si, ided.id)};
  }

  /// Like insert_traced(), but a duplicate resolves to the id the state was
  /// assigned when first interned (insert_traced returns kNoState for
  /// duplicates because exhaustive drivers never revisit).  The sampling
  /// engine threads every step through this: a revisited state's id becomes
  /// the parent of the next sampled step, so violating episodes stay
  /// replayable witnesses no matter how many earlier episodes crossed the
  /// same states.  The parent link is still recorded only on genuine
  /// inserts — first reach wins, exactly like insert_traced.
  TracedInsert resolve_traced(std::span<const std::uint64_t> encoding,
                              std::uint64_t parent, memsem::ThreadId thread,
                              std::string&& label, bool enqueued = true) {
    const std::uint64_t digest = support::hash_words(encoding);
    const std::size_t si = shard_of(digest);
    Shard& shard = shards_[si];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto ided = shard.set.resolve_ided(encoding, digest);
    if (ided.inserted) {
      shard.parents.push_back({parent, thread, std::move(label), enqueued});
      shard.label_bytes += shard.parents.back().label.capacity();
    }
    return {ided.inserted, compose_id(si, ided.id)};
  }

  /// Membership test with a per-state sleep mask, linearised under the shard
  /// lock: a fresh encoding is interned with `mask` stored; a duplicate
  /// intersects the stored mask with the arriving one and reports `expand`
  /// iff the stored mask strictly shrank (so the caller re-expands the state
  /// with the intersection — masks shrink monotonically, bounding revisits
  /// at 64 per state).  With all-zero masks this degenerates to an exact
  /// insert(), which is how the symmetry quotient uses it when sleep sets
  /// are off.  A set used with insert_masked must use it exclusively.
  MaskedInsert insert_masked(std::span<const std::uint64_t> encoding,
                             std::uint64_t mask) {
    const std::uint64_t digest = support::hash_words(encoding);
    Shard& shard = shards_[shard_of(digest)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto ided = shard.set.resolve_ided(encoding, digest);
    if (ided.inserted) {
      shard.masks.push_back(mask);
      return {true, true, mask};
    }
    std::uint64_t& stored = shard.masks[ided.id];
    const std::uint64_t meet = stored & mask;
    if (meet == stored) return {false, false, stored};
    stored = meet;
    return {false, true, meet};
  }

  /// Marks an interned state as frontier work after the fact.  The symmetry
  /// quotient interns every concrete successor with enqueued=false first and
  /// lets the *canonical-set winner* flip the flag — the insert race between
  /// orbit mates is decided in the canonical set, not the concrete sink, so
  /// the flag cannot be decided at insert_traced time.  Thread-safe.
  void mark_enqueued(std::uint64_t id) {
    Shard& shard = shards_[shard_index(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.parents.at(local_id(id)).enqueued = true;
  }

  /// Reconstructs the unique recorded path from the initial state to `id`:
  /// edges in execution order, each naming the acting thread, the step label
  /// and the reached state's id.  Thread-safe against concurrent inserts
  /// (each shard lookup takes its shard lock; locks are never nested), so a
  /// violating state can be reconstructed mid-exploration.
  [[nodiscard]] std::vector<TraceEdge> path_to(std::uint64_t id) const {
    std::vector<TraceEdge> edges;
    std::uint64_t cur = id;
    while (cur != kNoState) {
      const std::size_t si = shard_index(cur);
      const std::uint32_t local = local_id(cur);
      const Shard& shard = shards_[si];
      std::lock_guard<std::mutex> lock(shard.mu);
      const ParentEntry& entry = shard.parents.at(local);
      if (entry.parent == kNoState) break;  // root: no incoming step
      edges.push_back({cur, entry.parent, entry.thread, entry.label});
      cur = entry.parent;
    }
    std::reverse(edges.begin(), edges.end());
    return edges;
  }

  /// Decodes the canonical encoding of a state interned via insert_traced,
  /// appending its words to `out`.  Thread-safe (shard-locked).
  void decode_state(std::uint64_t id, std::vector<std::uint64_t>& out) const {
    const Shard& shard = shards_[shard_index(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.set.decode(local_id(id), out);
  }

  /// Total states inserted.  Takes each shard lock briefly, so it is safe
  /// (if approximate) while inserts are in flight; callers read it after
  /// workers have joined for an exact count.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.set.size();
    }
    return total;
  }

  /// Total heap footprint of all shards (arena + fingerprint tables + parent
  /// links), for ExploreStats::visited_bytes.  O(shard count): label sizes
  /// are accumulated incrementally at insert time, so the memory-budget
  /// enforcer can probe this periodically without walking every parent
  /// entry.  Same locking discipline as size().
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.set.bytes() +
               shard.parents.capacity() * sizeof(ParentEntry) +
               shard.label_bytes +
               shard.masks.capacity() * sizeof(std::uint64_t);
    }
    return total;
  }

  /// One interned state, fully materialised for checkpointing: its id, its
  /// recorded parent link, whether the driver enqueued it, and its decoded
  /// canonical encoding.
  struct SnapshotEntry {
    std::uint64_t id = kNoState;
    std::uint64_t parent = kNoState;
    memsem::ThreadId thread = 0;
    std::string label;
    bool enqueued = true;
    std::vector<std::uint64_t> encoding;
  };

  /// Materialises every state interned via insert_traced, in unspecified
  /// order (parents are *not* guaranteed to precede children; the checkpoint
  /// writer orders them).  Call only after workers have joined.
  [[nodiscard]] std::vector<SnapshotEntry> snapshot() const {
    std::vector<SnapshotEntry> out;
    out.reserve(size());
    for (std::size_t si = 0; si < shards_.size(); ++si) {
      const Shard& shard = shards_[si];
      std::lock_guard<std::mutex> lock(shard.mu);
      for (std::uint32_t local = 0; local < shard.parents.size(); ++local) {
        const ParentEntry& entry = shard.parents[local];
        SnapshotEntry snap;
        snap.id = compose_id(si, local);
        snap.parent = entry.parent;
        snap.thread = entry.thread;
        snap.label = entry.label;
        snap.enqueued = entry.enqueued;
        shard.set.decode(local, snap.encoding);
        out.push_back(std::move(snap));
      }
    }
    return out;
  }

 private:
  struct ParentEntry {
    std::uint64_t parent = kNoState;
    memsem::ThreadId thread = 0;
    std::string label;
    bool enqueued = true;
  };

  struct Shard {
    mutable std::mutex mu;
    support::InternedWordSet set;
    std::vector<ParentEntry> parents;  ///< by local id (insert_traced only)
    std::size_t label_bytes = 0;       ///< sum of parents[i].label.capacity()
    std::vector<std::uint64_t> masks;  ///< by local id (insert_masked only)
  };

  [[nodiscard]] std::size_t shard_of(std::uint64_t digest) const noexcept {
    return shard_shift_ >= 64U ? 0 : static_cast<std::size_t>(digest >> shard_shift_);
  }

  // Global ids interleave (local id << bits) | shard so they stay dense-ish
  // and both halves are recoverable without a lookup.
  [[nodiscard]] std::uint64_t compose_id(std::size_t shard,
                                         std::uint32_t local) const noexcept {
    return (static_cast<std::uint64_t>(local) << shard_bits_) |
           static_cast<std::uint64_t>(shard);
  }
  [[nodiscard]] std::size_t shard_index(std::uint64_t id) const noexcept {
    return static_cast<std::size_t>(id & ((1ULL << shard_bits_) - 1));
  }
  [[nodiscard]] std::uint32_t local_id(std::uint64_t id) const noexcept {
    return static_cast<std::uint32_t>(id >> shard_bits_);
  }

  std::vector<Shard> shards_;
  unsigned shard_shift_ = 64;
  unsigned shard_bits_ = 0;
};

}  // namespace rc11::engine
