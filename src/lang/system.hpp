// rc11lib/lang/system.hpp
//
// Programs and systems.  A System bundles the location table (client and
// library variables and objects, Section 3.1's GVar_C / GVar_L / Obj), the
// per-thread register files (LVar, with a component tag used by the
// refinement framework's client projection), the per-thread code, and the
// semantics options.
//
// Structured programs (if / while / do-until of the Com grammar) are
// compiled by the ThreadBuilder into a flat CFG of atomic instructions
// indexed by a program counter.  This matches how the paper's proof outlines
// are written (assertions attached to numbered program points, cf. Figs. 3
// and 7) and gives configurations a trivially hashable control component.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lang/expr.hpp"
#include "memsem/location.hpp"
#include "memsem/state.hpp"
#include "memsem/types.hpp"

namespace rc11::lang {

using memsem::Component;
using memsem::LocId;
using memsem::MemOrder;
using memsem::SemanticsOptions;
using memsem::ThreadId;
using memsem::Value;

/// Atomic instruction kinds (the ACom productions of Section 3.1, plus the
/// control-flow jumps produced by compiling compound statements).
enum class IKind : std::uint8_t {
  Assign,       ///< r := Exp_L
  Load,         ///< r <-[A] x
  Store,        ///< x :=[R] Exp_L
  Cas,          ///< r <- CAS(x, u, v)^RA — success is an update, failure a read
  Fai,          ///< r <- FAI(x)^RA — fetch-and-increment update
  LockAcquire,  ///< abstract lock method call (blocking; returns true)
  LockRelease,  ///< abstract lock method call
  Push,         ///< abstract stack push[^R]
  Pop,          ///< r <- stack pop[^A] (returns kStackEmpty when empty)
  Branch,       ///< if e1 != 0 goto target
  Jump,         ///< goto target
};

/// One atomic instruction.
struct Instr {
  IKind kind{};
  RegId dst = 0;
  bool has_dst = false;
  LocId loc = 0;
  Expr e1;  ///< Assign source / Store value / Branch condition / Push value
  Expr e2;  ///< CAS expected value u
  Expr e3;  ///< CAS desired value v
  MemOrder order = MemOrder::Relaxed;
  std::uint32_t target = 0;  ///< Branch / Jump destination pc
  /// LockAcquire only: store the acquired *version* (the paper's l.Acquire(v)
  /// ghost observation, cf. the rl register of Fig. 7) into dst instead of
  /// the method's return value true.
  bool capture_version = false;
  std::string label;  ///< diagnostic label ("d := 5", …)
};

/// Register handle; implicitly convertible to an expression.
struct Reg {
  ThreadId thread = 0;
  RegId id = 0;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional sugar
  operator Expr() const { return Expr::reg(id); }
};

/// Shorthand for integer literals in builder code.
[[nodiscard]] inline Expr c(Value v) { return Expr::constant(v); }

class System;

/// Renders one instruction the way System::disassemble does (with register
/// names resolved through the owning thread); used for step labels,
/// counterexample traces and DOT edges when no hand-written label was
/// attached.
[[nodiscard]] std::string describe_instr(const System& sys, ThreadId t,
                                         const Instr& in);

/// Appends instructions to one thread of a System.  Obtained from
/// System::thread(); multiple builders for the same thread may not be
/// interleaved with structured-statement bodies in flight.
class ThreadBuilder {
 public:
  ThreadBuilder(System& sys, ThreadId thread) : sys_(&sys), thread_(thread) {}

  [[nodiscard]] ThreadId id() const noexcept { return thread_; }

  /// Declares a local register, optionally with an initial value (the
  /// paper's Init may initialise each local at most once; uninitialised
  /// registers start at 0).  The component tag matters only for refinement:
  /// registers created by inlined library implementations are Library and
  /// excluded from the client projection.
  Reg reg(std::string_view name, Value initial = 0,
          Component comp = Component::Client);

  // --- atomic statements (return *this for chaining) ---
  ThreadBuilder& assign(Reg r, Expr e, std::string_view label = {});
  ThreadBuilder& load(Reg r, LocId x, std::string_view label = {});      ///< r <- x
  ThreadBuilder& load_acq(Reg r, LocId x, std::string_view label = {});  ///< r <-A x
  ThreadBuilder& load_na(Reg r, LocId x, std::string_view label = {});   ///< r <-NA x
  ThreadBuilder& store(LocId x, Expr e, std::string_view label = {});    ///< x := e
  ThreadBuilder& store_rel(LocId x, Expr e, std::string_view label = {});///< x :=R e
  ThreadBuilder& store_na(LocId x, Expr e, std::string_view label = {}); ///< x :=NA e
  ThreadBuilder& cas(Reg r, LocId x, Expr expected, Expr desired,
                     std::string_view label = {});  ///< r <- CAS(x,u,v)^RA
  ThreadBuilder& fai(Reg r, LocId x, std::string_view label = {});  ///< r <- FAI(x)^RA
  ThreadBuilder& acquire(LocId lock, std::optional<Reg> r = std::nullopt,
                         std::string_view label = {});
  /// Acquire that records the acquired lock *version* in r (the paper's
  /// l.Acquire(v) notation; used by proof outlines such as Fig. 7's rl).
  ThreadBuilder& acquire_version(LocId lock, Reg r, std::string_view label = {});
  ThreadBuilder& release(LocId lock, std::string_view label = {});
  ThreadBuilder& push(LocId stack, Expr e, std::string_view label = {});
  ThreadBuilder& push_rel(LocId stack, Expr e, std::string_view label = {});
  ThreadBuilder& pop(Reg r, LocId stack, std::string_view label = {});
  ThreadBuilder& pop_acq(Reg r, LocId stack, std::string_view label = {});
  /// Queue aliases: enqueue/dequeue reuse the Push/Pop instruction kinds and
  /// dispatch on the location's kind at execution time.
  ThreadBuilder& enqueue(LocId queue, Expr e, std::string_view label = {});
  ThreadBuilder& enqueue_rel(LocId queue, Expr e, std::string_view label = {});
  ThreadBuilder& dequeue(Reg r, LocId queue, std::string_view label = {});
  ThreadBuilder& dequeue_acq(Reg r, LocId queue, std::string_view label = {});

  // --- compound statements (Com grammar) ---
  /// if cond then then_body() else else_body().
  ThreadBuilder& if_else(Expr cond, const std::function<void()>& then_body,
                         const std::function<void()>& else_body = {});
  /// while cond do body().
  ThreadBuilder& while_(Expr cond, const std::function<void()>& body);
  /// do body() until cond.
  ThreadBuilder& do_until(const std::function<void()>& body, Expr cond);

  // --- low-level CFG access (used by implementation splicing) ---
  [[nodiscard]] std::uint32_t here() const;       ///< next pc to be emitted
  std::uint32_t emit(Instr instr);                ///< returns its pc
  void patch_target(std::uint32_t pc, std::uint32_t target);

 private:
  System* sys_;
  ThreadId thread_;
};

/// A complete client-library system: locations, threads, code.
class System {
 public:
  explicit System(SemanticsOptions options = {}) : options_(options) {}

  // --- locations ---
  LocId client_var(std::string_view name, Value initial);
  LocId library_var(std::string_view name, Value initial);
  LocId client_lock(std::string_view name);
  LocId library_lock(std::string_view name);
  LocId client_stack(std::string_view name);
  LocId library_stack(std::string_view name);
  LocId client_queue(std::string_view name);
  LocId library_queue(std::string_view name);

  /// Creates a new thread and returns a builder for it.
  ThreadBuilder thread();

  // --- introspection ---
  [[nodiscard]] const memsem::LocationTable& locations() const { return locs_; }
  [[nodiscard]] ThreadId num_threads() const {
    return static_cast<ThreadId>(code_.size());
  }
  [[nodiscard]] const std::vector<Instr>& code(ThreadId t) const {
    return code_.at(t);
  }
  [[nodiscard]] std::size_t num_regs(ThreadId t) const {
    return regs_.at(t).size();
  }
  [[nodiscard]] Component reg_component(ThreadId t, RegId r) const {
    return regs_.at(t).at(r).component;
  }
  [[nodiscard]] const std::string& reg_name(ThreadId t, RegId r) const {
    return regs_.at(t).at(r).name;
  }
  [[nodiscard]] Value reg_initial(ThreadId t, RegId r) const {
    return regs_.at(t).at(r).initial;
  }
  [[nodiscard]] const SemanticsOptions& options() const { return options_; }
  void set_options(const SemanticsOptions& o) { options_ = o; }

  /// Pretty-prints thread code with pcs (for docs and debugging).
  [[nodiscard]] std::string disassemble() const;

 private:
  friend class ThreadBuilder;
  struct RegInfo {
    std::string name;
    Component component;
    Value initial;
  };

  memsem::LocationTable locs_;
  std::vector<std::vector<RegInfo>> regs_;
  std::vector<std::vector<Instr>> code_;
  SemanticsOptions options_;
};

}  // namespace rc11::lang
