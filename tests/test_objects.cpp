// Tests for the abstract object semantics of Section 4: the lock of Fig. 6
// (version counters, maximal timestamps, covering, synchronisation) and our
// synchronising stack (LIFO matching, pop_emp, push^R/pop^A synchronisation).

#include <gtest/gtest.h>

#include "memsem/location.hpp"
#include "memsem/state.hpp"
#include "objects/lock.hpp"
#include "objects/stack.hpp"

namespace {

using namespace rc11::memsem;
namespace obj = rc11::objects;

struct ObjectFixture : ::testing::Test {
  LocationTable locs;
  LocId d, l, s;

  ObjectFixture() {
    d = locs.add_var("d", Component::Client, 0);
    l = locs.add_object("l", Component::Library, LocKind::Lock);
    s = locs.add_object("s", Component::Library, LocKind::Stack);
  }

  MemState make() { return MemState{locs, 3}; }
};

// --- lock ------------------------------------------------------------------

TEST_F(ObjectFixture, FreshLockIsAcquirable) {
  MemState m = make();
  EXPECT_TRUE(obj::lock_acquire_enabled(m, l));
  EXPECT_FALSE(obj::lock_holder(m, l).has_value());
  EXPECT_EQ(obj::lock_version(m, l), 0);
}

TEST_F(ObjectFixture, AcquireTakesVersionOneAndCoversInit) {
  MemState m = make();
  const OpId a = obj::lock_acquire(m, 0, l);
  EXPECT_EQ(m.op(a).kind, OpKind::LockAcquire);
  EXPECT_EQ(m.op(a).value, 1) << "acquire after init_0 is acquire_1";
  EXPECT_TRUE(m.op(m.mo(l)[0]).covered) << "Fig. 6: the observed op is covered";
  EXPECT_EQ(obj::lock_holder(m, l), std::optional<ThreadId>{0});
  EXPECT_FALSE(obj::lock_acquire_enabled(m, l));
}

TEST_F(ObjectFixture, ReleaseRequiresHolder) {
  MemState m = make();
  EXPECT_FALSE(obj::lock_release_enabled(m, 0, l)) << "lock not held";
  obj::lock_acquire(m, 0, l);
  EXPECT_FALSE(obj::lock_release_enabled(m, 1, l)) << "held by thread 0";
  EXPECT_TRUE(obj::lock_release_enabled(m, 0, l));
}

TEST_F(ObjectFixture, VersionsCountAllOperations) {
  MemState m = make();
  obj::lock_acquire(m, 0, l);               // acquire_1
  const OpId r2 = obj::lock_release(m, 0, l);  // release_2
  EXPECT_EQ(m.op(r2).value, 2);
  const OpId a3 = obj::lock_acquire(m, 1, l);  // acquire_3
  EXPECT_EQ(m.op(a3).value, 3);
  EXPECT_EQ(obj::lock_version(m, l), 3);
  EXPECT_TRUE(m.op(r2).covered) << "acquire_3 covers release_2";
}

TEST_F(ObjectFixture, OperationsHaveStrictlyIncreasingTimestamps) {
  MemState m = make();
  obj::lock_acquire(m, 0, l);
  obj::lock_release(m, 0, l);
  obj::lock_acquire(m, 1, l);
  obj::lock_release(m, 1, l);
  const auto order = m.mo(l);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(m.op(order[i - 1]).ts, m.op(order[i]).ts);
    EXPECT_EQ(m.rank(order[i]), i);
  }
}

TEST_F(ObjectFixture, AcquireSynchronisesWithReleaseView) {
  MemState m = make();
  obj::lock_acquire(m, 0, l);
  // Thread 0 writes the client variable inside its critical section.
  const OpId wd = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  obj::lock_release(m, 0, l);
  // Thread 1 acquires: it synchronises with release_2's mview and must now
  // definitely observe d = 5 (the write-visibility property of Section 5.3).
  obj::lock_acquire(m, 1, l);
  EXPECT_EQ(m.view_front(1, d), wd);
  const auto obs = m.observable(1, d);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(m.op(obs[0]).value, 5);
}

TEST_F(ObjectFixture, FirstAcquireSynchronisesWithInitView) {
  MemState m = make();
  obj::lock_acquire(m, 1, l);
  // Syncing with init is harmless: views stay at the initial writes.
  EXPECT_EQ(m.view_front(1, d), m.mo(d)[0]);
}

TEST_F(ObjectFixture, ReleaseIsReleasingAcquireIsNot) {
  MemState m = make();
  const OpId a = obj::lock_acquire(m, 0, l);
  const OpId r = obj::lock_release(m, 0, l);
  EXPECT_FALSE(m.op(a).releasing);
  EXPECT_TRUE(m.op(r).releasing);
}

TEST_F(ObjectFixture, LockApiRejectsWrongLocation) {
  MemState m = make();
  EXPECT_THROW((void)obj::lock_acquire_enabled(m, d), rc11::support::InternalError);
  EXPECT_THROW((void)obj::lock_acquire_enabled(m, s), rc11::support::InternalError);
}

// --- stack -----------------------------------------------------------------

TEST_F(ObjectFixture, FreshStackIsEmpty) {
  MemState m = make();
  EXPECT_TRUE(obj::stack_empty(m, s));
  EXPECT_EQ(obj::stack_size(m, s), 0u);
  EXPECT_EQ(obj::stack_pop(m, 0, s, true), kStackEmpty);
}

TEST_F(ObjectFixture, PushPopIsLifo) {
  MemState m = make();
  obj::stack_push(m, 0, s, 10, true);
  obj::stack_push(m, 0, s, 20, true);
  obj::stack_push(m, 1, s, 30, true);
  EXPECT_EQ(obj::stack_size(m, s), 3u);
  EXPECT_EQ(obj::stack_pop(m, 2, s, true), 30);
  EXPECT_EQ(obj::stack_pop(m, 2, s, true), 20);
  EXPECT_EQ(obj::stack_pop(m, 2, s, true), 10);
  EXPECT_EQ(obj::stack_pop(m, 2, s, true), kStackEmpty);
}

TEST_F(ObjectFixture, PopCoversMatchedPush) {
  MemState m = make();
  const OpId p = obj::stack_push(m, 0, s, 10, true);
  EXPECT_FALSE(m.op(p).covered);
  obj::stack_pop(m, 1, s, true);
  EXPECT_TRUE(m.op(p).covered);
  EXPECT_TRUE(obj::stack_empty(m, s));
}

TEST_F(ObjectFixture, AcquiringPopOfReleasingPushSynchronises) {
  MemState m = make();
  const OpId wd = m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  obj::stack_push(m, 0, s, 1, /*releasing=*/true);
  const Value v = obj::stack_pop(m, 1, s, /*acquiring=*/true);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(m.view_front(1, d), wd)
      << "Fig. 2: popping the message publishes the client write";
}

TEST_F(ObjectFixture, RelaxedPopDoesNotSynchronise) {
  MemState m = make();
  m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  obj::stack_push(m, 0, s, 1, /*releasing=*/true);
  obj::stack_pop(m, 1, s, /*acquiring=*/false);
  EXPECT_EQ(m.view_front(1, d), m.mo(d)[0])
      << "Fig. 1: a relaxed pop leaves the client view stale";
}

TEST_F(ObjectFixture, AcquiringPopOfRelaxedPushDoesNotSynchronise) {
  MemState m = make();
  m.write(0, d, 5, MemOrder::Relaxed, m.mo(d)[0]);
  obj::stack_push(m, 0, s, 1, /*releasing=*/false);
  obj::stack_pop(m, 1, s, /*acquiring=*/true);
  EXPECT_EQ(m.view_front(1, d), m.mo(d)[0]);
}

TEST_F(ObjectFixture, EmptyPopDoesNotMutate) {
  MemState m = make();
  std::vector<std::uint64_t> before;
  m.encode(before);
  obj::stack_pop(m, 0, s, true);
  std::vector<std::uint64_t> after;
  m.encode(after);
  EXPECT_EQ(before, after);
}

TEST_F(ObjectFixture, InterleavedPushPopTracksTop) {
  MemState m = make();
  obj::stack_push(m, 0, s, 1, true);
  obj::stack_push(m, 0, s, 2, true);
  EXPECT_EQ(obj::stack_pop(m, 1, s, true), 2);
  obj::stack_push(m, 1, s, 3, true);
  EXPECT_EQ(obj::stack_pop(m, 0, s, true), 3);
  EXPECT_EQ(obj::stack_pop(m, 0, s, true), 1);
  EXPECT_TRUE(obj::stack_empty(m, s));
}

TEST_F(ObjectFixture, StackApiRejectsWrongLocation) {
  MemState m = make();
  EXPECT_THROW((void)obj::stack_top(m, l), rc11::support::InternalError);
  EXPECT_THROW(obj::stack_push(m, 0, d, 1, true),
               rc11::support::InternalError);
}

// Lock versions across many rounds — a parameterised sweep of the Fig. 6
// counting discipline: after k acquire/release rounds the version is 2k.
class LockRoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(LockRoundsTest, VersionsCountRounds) {
  LocationTable locs;
  const LocId l = locs.add_object("l", Component::Library, LocKind::Lock);
  MemState m{locs, 2};
  const int rounds = GetParam();
  for (int k = 0; k < rounds; ++k) {
    const ThreadId t = static_cast<ThreadId>(k % 2);
    ASSERT_TRUE(obj::lock_acquire_enabled(m, l));
    const OpId a = obj::lock_acquire(m, t, l);
    EXPECT_EQ(m.op(a).value, 2 * k + 1);
    const OpId r = obj::lock_release(m, t, l);
    EXPECT_EQ(m.op(r).value, 2 * k + 2);
  }
  EXPECT_EQ(obj::lock_version(m, l), 2 * rounds);
  // Every operation except the last release and the pending (uncovered)
  // releases is covered: acquires cover their predecessor.
  const auto order = m.mo(l);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (m.op(order[i]).kind != OpKind::LockAcquire) {
      EXPECT_TRUE(m.op(order[i]).covered)
          << "init/release followed by an acquire must be covered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, LockRoundsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
