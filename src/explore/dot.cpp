#include "explore/dot.hpp"

#include <sstream>

#include "support/text.hpp"

namespace rc11::explore {

namespace {

using support::dot_escape;

std::string node_caption(const lang::System& sys, const lang::Config& cfg,
                         const DotOptions& options) {
  std::ostringstream os;
  os << "pc=(";
  for (std::size_t t = 0; t < cfg.pc.size(); ++t) {
    os << (t ? "," : "") << cfg.pc[t];
  }
  os << ")";
  if (options.show_registers) {
    for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
      for (lang::RegId r = 0; r < cfg.regs[t].size(); ++r) {
        os << "\n" << sys.reg_name(t, r) << "=" << cfg.regs[t][r];
      }
    }
  }
  return os.str();
}

}  // namespace

std::string to_dot(const lang::System& sys, const refinement::StateGraph& graph,
                   const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n"
     << "  edge [fontname=\"monospace\", fontsize=8];\n";
  for (std::uint32_t i = 0; i < graph.num_states(); ++i) {
    os << "  s" << i << " [label=\""
       << dot_escape(node_caption(sys, graph.states[i], options)) << "\"";
    if (i == graph.initial) os << ", style=bold";
    if (options.mark_finals && graph.states[i].all_done(sys)) {
      os << ", peripheries=2";
    }
    os << "];\n";
  }
  const bool labelled =
      options.show_edge_labels && graph.labels.size() == graph.num_states();
  for (std::uint32_t i = 0; i < graph.num_states(); ++i) {
    for (std::size_t e = 0; e < graph.succ[i].size(); ++e) {
      os << "  s" << i << " -> s" << graph.succ[i][e];
      if (labelled) {
        os << " [label=\"" << dot_escape(graph.labels[i][e]) << "\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rc11::explore
