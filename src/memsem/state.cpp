#include "memsem/state.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::memsem {

using support::Rational;

MemState::MemState(const LocationTable& locs, ThreadId num_threads,
                   SemanticsOptions options)
    : locs_(&locs), num_threads_(num_threads), options_(options) {
  support::require(num_threads > 0, "a system needs at least one thread");
  const auto num_locs = locs.size();
  mo_.resize(num_locs);
  ops_.reserve(num_locs);

  // One initialising operation per location, all at timestamp 0.  Object
  // init operations are releasing: Fig. 6's acquire synchronises with the
  // operation it observes, which may be l.init_0.  Plain-variable
  // initialisation is a relaxed write (as in the paper's examples, where
  // message passing cannot be established through initialisation alone).
  View init_view(num_locs, kNoOp);
  for (LocId loc = 0; loc < num_locs; ++loc) {
    Op op;
    op.loc = loc;
    op.thread = 0;
    op.kind = OpKind::Init;
    op.value = locs.is_var(loc) ? locs.info(loc).initial : 0;
    op.releasing = !locs.is_var(loc);
    op.mo_pos = 0;
    op.ts = Rational{0};
    const auto id = static_cast<OpId>(ops_.size());
    ops_.push_back(std::move(op));
    mo_[loc].push_back(id);
    init_view[loc] = id;
  }
  // mview of every init operation is the full initial viewfront
  // (γ_Init.mview = γ_Init.tview ∪ β_Init.tview in §3.3).
  for (LocId loc = 0; loc < num_locs; ++loc) {
    ops_[mo_[loc][0]].mview = init_view;
  }
  tview_.assign(num_threads, init_view);

  if (options_.race_detection) {
    race_.emplace();
    const std::size_t t_count = num_threads;
    race_->vc.assign(t_count * t_count, 0);
    for (std::size_t t = 0; t < t_count; ++t) race_->vc[t * t_count + t] = 1;
    // Init operations happen-before everything, so their messages are the
    // zero clock: joining them orders nothing beyond what is already known.
    race_->msg.resize(ops_.size());
    for (std::size_t id = 0; id < ops_.size(); ++id) {
      if (ops_[id].releasing) {
        race_->msg[id].assign(t_count, 0);
      }
    }
    race_->summary.assign(num_locs * t_count * kNumRaceCats, {});
  }
}

void MemState::race_join(ThreadId t, OpId w) {
  if (!race_) return;
  const auto& m = race_->msg[w];
  if (m.empty()) return;
  const std::size_t row = static_cast<std::size_t>(t) * num_threads_;
  for (ThreadId u = 0; u < num_threads_; ++u) {
    race_->vc[row + u] = std::max(race_->vc[row + u], m[u]);
  }
}

void MemState::race_attach(ThreadId t, OpId id) {
  if (!race_) return;
  const std::size_t row = static_cast<std::size_t>(t) * num_threads_;
  race_->msg[id].assign(race_->vc.begin() + row,
                        race_->vc.begin() + row + num_threads_);
  // Advance t's epoch *after* publishing the message: the acquirer of this
  // operation synchronises with the operation itself, so accesses recorded
  // at the pre-increment epoch are ordered before the acquirer and accesses
  // after the release are not.
  race_->vc[row + t] += 1;
}

namespace {

/// Conflicting categories per accessing category: pairs with >= 1 write and
/// >= 1 non-atomic access.  Two atomic accesses never race; two reads never
/// race.
constexpr std::array<std::array<bool, kNumRaceCats>, kNumRaceCats>
    kConflicts = {{
        // accessing: NaRead — races with any write
        {{false, false, true, true}},
        // accessing: AtomicRead — races with a non-atomic write only
        {{false, false, true, false}},
        // accessing: NaWrite — races with everything
        {{true, true, true, true}},
        // accessing: AtomicWrite — races with non-atomic accesses only
        {{true, false, true, false}},
    }};

}  // namespace

void MemState::race_access(ThreadId t, LocId loc, RaceCat cat,
                           std::uint32_t pc) {
  if (!race_) return;
  auto& rc = *race_;
  const std::size_t t_count = num_threads_;
  const std::size_t row = static_cast<std::size_t>(t) * t_count;
  const std::size_t base = static_cast<std::size_t>(loc) * t_count;
  const auto& conflicts = kConflicts[static_cast<std::size_t>(cat)];
  for (ThreadId u = 0; u < num_threads_; ++u) {
    if (u == t) continue;  // same-thread accesses are sb- hence hb-ordered
    const std::size_t cells = (base + u) * kNumRaceCats;
    for (std::size_t k = 0; k < kNumRaceCats; ++k) {
      if (!conflicts[k]) continue;
      const RaceClocks::Cell& cell = rc.summary[cells + k];
      // An access at epoch e by u is hb-before t's current point iff
      // e <= C_t[u]; epoch 0 means "no such access yet".
      if (cell.clock > rc.vc[row + u]) {
        rc.pending.push_back(RaceRecord{
            loc,
            RaceAccess{u, cell.pc, static_cast<RaceCat>(k)},
            RaceAccess{t, pc, cat}});
      }
    }
  }
  RaceClocks::Cell& mine =
      rc.summary[(base + t) * kNumRaceCats + static_cast<std::size_t>(cat)];
  mine.clock = rc.vc[row + t];
  mine.pc = pc;
}

std::vector<OpId> MemState::observable(ThreadId t, LocId loc) const {
  std::vector<OpId> result;
  observable_into(t, loc, result);
  return result;
}

std::vector<OpId> MemState::observable_uncovered(ThreadId t, LocId loc) const {
  std::vector<OpId> result;
  observable_uncovered_into(t, loc, result);
  return result;
}

void MemState::observable_into(ThreadId t, LocId loc,
                               std::vector<OpId>& out) const {
  out.clear();
  if (options_.model == MemoryModel::SC) {
    // Under the SC baseline only the mo-maximal write is readable.
    out.push_back(mo_[loc].back());
    return;
  }
  const OpId front = tview_[t][loc];
  const auto& order = mo_[loc];
  out.reserve(order.size() - ops_[front].mo_pos);
  for (std::size_t i = ops_[front].mo_pos; i < order.size(); ++i) {
    out.push_back(order[i]);
  }
}

void MemState::observable_uncovered_into(ThreadId t, LocId loc,
                                         std::vector<OpId>& out) const {
  observable_into(t, loc, out);
  if (options_.enforce_covered) {
    std::erase_if(out, [this](OpId w) { return ops_[w].covered; });
  }
}

OpId MemState::last_op(LocId loc) const {
  RC11_REQUIRE(!mo_[loc].empty(), "location without operations");
  return mo_[loc].back();
}

void MemState::merge_view_into(View& target, const View& source,
                               std::optional<Component> only) const {
  for (LocId loc = 0; loc < target.size(); ++loc) {
    if (only && locs_->component(loc) != *only) continue;
    if (ops_[source[loc]].mo_pos > ops_[target[loc]].mo_pos) {
      target[loc] = source[loc];
    }
  }
}

Value MemState::read(ThreadId t, LocId loc, OpId w, MemOrder order,
                     std::uint32_t site_pc) {
  RC11_REQUIRE(order == MemOrder::Relaxed || order == MemOrder::Acquire ||
                   order == MemOrder::NonAtomic,
               "read order must be relaxed, acquire or non-atomic");
  RC11_REQUIRE(ops_[w].loc == loc, "read target on wrong location");
  RC11_REQUIRE(options_.model == MemoryModel::SC ||
                   ops_[w].mo_pos >= ops_[tview_[t][loc]].mo_pos,
               "read target not observable");
  const bool sync = (ops_[w].releasing && order == MemOrder::Acquire) ||
                    options_.model == MemoryModel::SC;
  if (sync) {
    // tview' = tview ⊗ mview_w and ctview' = ctview ⊗ mview_w of Fig. 5,
    // realised as one merge over all locations (or, under the A1 ablation,
    // over the executing component's locations only).
    const std::optional<Component> only =
        options_.cross_component_view_transfer
            ? std::nullopt
            : std::optional<Component>{locs_->component(loc)};
    merge_view_into(tview_[t], ops_[w].mview, only);
    // hb gains the release/acquire edge exactly where the views merge; a
    // relaxed or non-atomic read establishes no order (rf alone is not hb).
    race_join(t, w);
  }
  if (ops_[w].mo_pos > ops_[tview_[t][loc]].mo_pos) {
    tview_[t][loc] = w;
  }
  if (race_ && site_pc != kNoSite && locs_->is_var(loc)) {
    race_access(t, loc,
                order == MemOrder::NonAtomic ? RaceCat::NaRead
                                             : RaceCat::AtomicRead,
                site_pc);
  }
  return ops_[w].value;
}

OpId MemState::insert_after(LocId loc, Op op, OpId after) {
  auto& order = mo_[loc];
  const std::uint32_t pos = ops_[after].mo_pos;
  RC11_REQUIRE(order[pos] == after, "modification order rank out of sync");
  // fresh_γ(q, q'): q < q' and q' precedes every existing timestamp after q.
  op.ts = (pos + 1 == order.size())
              ? ops_[after].ts.successor()
              : Rational::midpoint(ops_[after].ts, ops_[order[pos + 1]].ts);
  op.mo_pos = pos + 1;
  const auto id = static_cast<OpId>(ops_.size());
  ops_.push_back(std::move(op));
  if (race_) race_->msg.emplace_back();  // msg slot; filled iff releasing
  order.insert(order.begin() + pos + 1, id);
  for (std::size_t i = pos + 2; i < order.size(); ++i) {
    ops_[order[i]].mo_pos = static_cast<std::uint32_t>(i);
  }
  return id;
}

OpId MemState::write(ThreadId t, LocId loc, Value v, MemOrder order, OpId after,
                     std::uint32_t site_pc) {
  RC11_REQUIRE(order == MemOrder::Relaxed || order == MemOrder::Release ||
                   order == MemOrder::NonAtomic,
               "write order must be relaxed, release or non-atomic");
  RC11_REQUIRE(locs_->is_var(loc), "write requires a plain variable");
  RC11_REQUIRE(!options_.enforce_covered || !ops_[after].covered,
               "cannot insert after a covered write");
  Op op;
  op.loc = loc;
  op.thread = t;
  op.kind = order == MemOrder::Release  ? OpKind::WriteRel
            : order == MemOrder::NonAtomic ? OpKind::WriteNa
                                           : OpKind::Write;
  op.value = v;
  op.releasing =
      order == MemOrder::Release || options_.model == MemoryModel::SC;
  const OpId id = insert_after(loc, std::move(op), after);
  tview_[t][loc] = id;
  // mview' = tview' ∪ β.tview_t: the writer's full (both-component) view.
  ops_[id].mview = tview_[t];
  if (race_) {
    // Check and record at the pre-increment epoch, then (for a releasing
    // write) publish the message and advance: the write itself must be
    // ordered before whoever acquires it, not concurrent with them.
    if (site_pc != kNoSite) {
      race_access(t, loc,
                  order == MemOrder::NonAtomic ? RaceCat::NaWrite
                                               : RaceCat::AtomicWrite,
                  site_pc);
    }
    if (ops_[id].releasing) race_attach(t, id);
  }
  return id;
}

OpId MemState::update(ThreadId t, LocId loc, OpId w, Value v,
                      std::uint32_t site_pc) {
  RC11_REQUIRE(locs_->is_var(loc), "update requires a plain variable");
  RC11_REQUIRE(!options_.enforce_covered || !ops_[w].covered,
               "cannot update a covered write");
  const bool sync = ops_[w].releasing;
  Op op;
  op.loc = loc;
  op.thread = t;
  op.kind = OpKind::Update;
  op.value = v;
  op.read_value = ops_[w].value;
  op.releasing = true;  // upd^RA is a releasing write
  const OpId id = insert_after(loc, std::move(op), w);
  ops_[w].covered = true;
  if (sync) {
    const std::optional<Component> only =
        options_.cross_component_view_transfer
            ? std::nullopt
            : std::optional<Component>{locs_->component(loc)};
    merge_view_into(tview_[t], ops_[w].mview, only);
    race_join(t, w);
  }
  tview_[t][loc] = id;
  ops_[id].mview = tview_[t];
  if (race_) {
    if (site_pc != kNoSite) {
      race_access(t, loc, RaceCat::AtomicWrite, site_pc);
    }
    race_attach(t, id);  // upd^RA is releasing
  }
  return id;
}

OpId MemState::object_op(ThreadId t, LocId loc, OpKind kind, Value value,
                         bool releasing, std::optional<OpId> sync_with,
                         bool cover) {
  RC11_REQUIRE(!locs_->is_var(loc), "object_op requires an object location");
  Op op;
  op.loc = loc;
  op.thread = t;
  op.kind = kind;
  op.value = value;
  op.releasing = releasing;
  op.mo_pos = static_cast<std::uint32_t>(mo_[loc].size());
  op.ts = ops_[mo_[loc].back()].ts.successor();
  const bool attach = op.releasing;
  const auto id = static_cast<OpId>(ops_.size());
  ops_.push_back(std::move(op));
  if (race_) race_->msg.emplace_back();
  mo_[loc].push_back(id);
  if (sync_with) {
    if (cover) {
      ops_[*sync_with].covered = true;
    }
    const std::optional<Component> only =
        options_.cross_component_view_transfer
            ? std::nullopt
            : std::optional<Component>{locs_->component(loc)};
    merge_view_into(tview_[t], ops_[*sync_with].mview, only);
    race_join(t, *sync_with);
  }
  tview_[t][loc] = id;
  ops_[id].mview = tview_[t];
  if (race_ && attach) race_attach(t, id);
  return id;
}

void MemState::consume(ThreadId t, LocId loc, OpId w, bool sync) {
  RC11_REQUIRE(ops_[w].loc == loc, "consume target on wrong location");
  ops_[w].covered = true;
  if (sync) {
    const std::optional<Component> only =
        options_.cross_component_view_transfer
            ? std::nullopt
            : std::optional<Component>{locs_->component(loc)};
    merge_view_into(tview_[t], ops_[w].mview, only);
    race_join(t, w);
  }
  if (ops_[w].mo_pos > ops_[tview_[t][loc]].mo_pos) {
    tview_[t][loc] = w;
  }
}

void MemState::permute_threads(const std::vector<ThreadId>& slot_of) {
  for (Op& op : ops_) {
    // Init operations are part of the initial state and stay fixed: the
    // semantics never reads an op's thread tag, but the canonical encoding
    // does, and a relabelled init would be a state no execution reaches.
    if (op.kind == OpKind::Init) continue;
    op.thread = slot_of[op.thread];
  }
  std::vector<View> permuted(num_threads_);
  for (ThreadId t = 0; t < num_threads_; ++t) {
    permuted[slot_of[t]] = std::move(tview_[t]);
  }
  tview_ = std::move(permuted);

  if (race_) {
    auto& rc = *race_;
    const std::size_t t_count = num_threads_;
    std::vector<std::uint32_t> nvc(rc.vc.size());
    for (std::size_t t = 0; t < t_count; ++t) {
      for (std::size_t u = 0; u < t_count; ++u) {
        nvc[slot_of[t] * t_count + slot_of[u]] = rc.vc[t * t_count + u];
      }
    }
    rc.vc = std::move(nvc);
    std::vector<std::uint32_t> scratch(t_count);
    for (auto& m : rc.msg) {
      if (m.empty()) continue;
      for (std::size_t u = 0; u < t_count; ++u) scratch[slot_of[u]] = m[u];
      m = scratch;
    }
    // Summary pcs stay as they are: symmetric threads run identical code, so
    // the pc of a relabelled access is the same instruction.
    std::vector<RaceClocks::Cell> nsum(rc.summary.size());
    const std::size_t num_locs = locs_->size();
    for (std::size_t loc = 0; loc < num_locs; ++loc) {
      for (std::size_t t = 0; t < t_count; ++t) {
        for (std::size_t k = 0; k < kNumRaceCats; ++k) {
          nsum[(loc * t_count + slot_of[t]) * kNumRaceCats + k] =
              rc.summary[(loc * t_count + t) * kNumRaceCats + k];
        }
      }
    }
    rc.summary = std::move(nsum);
    for (RaceRecord& r : rc.pending) {
      r.prior.thread = slot_of[r.prior.thread];
      r.current.thread = slot_of[r.current.thread];
    }
  }
}

void MemState::encode(std::vector<std::uint64_t>& out) const {
  const auto num_locs = locs_->size();
  for (LocId loc = 0; loc < num_locs; ++loc) {
    const auto& order = mo_[loc];
    out.push_back(order.size());
    for (const OpId id : order) {
      const Op& op = ops_[id];
      std::uint64_t tag = static_cast<std::uint64_t>(op.kind);
      tag |= static_cast<std::uint64_t>(op.thread) << 8;
      tag |= static_cast<std::uint64_t>(op.releasing) << 40;
      tag |= static_cast<std::uint64_t>(op.covered) << 41;
      out.push_back(tag);
      out.push_back(static_cast<std::uint64_t>(op.value));
      out.push_back(static_cast<std::uint64_t>(op.read_value));
      if (!options_.canonical_timestamps) {
        out.push_back(static_cast<std::uint64_t>(op.ts.numerator()));
        out.push_back(static_cast<std::uint64_t>(op.ts.denominator()));
      }
    }
  }
  for (ThreadId t = 0; t < num_threads_; ++t) {
    for (LocId loc = 0; loc < num_locs; ++loc) {
      out.push_back(ops_[tview_[t][loc]].mo_pos);
    }
  }
  for (LocId loc = 0; loc < num_locs; ++loc) {
    for (const OpId id : mo_[loc]) {
      for (LocId l2 = 0; l2 < num_locs; ++l2) {
        out.push_back(ops_[ops_[id].mview[l2]].mo_pos);
      }
    }
  }
  if (race_) {
    // Clock rows, releasing-op messages (presence mirrors the releasing bit
    // encoded above) and last-access summaries are part of state identity —
    // two states that agree on views but disagree on hb must not be merged,
    // or races reachable from only one of them would be lost.  `pending` is
    // per-step scratch and deliberately excluded.
    const auto& rc = *race_;
    for (const auto w : rc.vc) out.push_back(w);
    for (LocId loc = 0; loc < num_locs; ++loc) {
      for (const OpId id : mo_[loc]) {
        for (const auto w : rc.msg[id]) out.push_back(w);
      }
    }
    for (const auto& cell : rc.summary) {
      out.push_back((static_cast<std::uint64_t>(cell.clock) << 32) | cell.pc);
    }
  }
}

void MemState::encode_quotient(std::vector<std::uint64_t>& out,
                               const std::uint8_t* tview_keep) const {
  const auto num_locs = locs_->size();
  // Modification-order block: identical to encode() — rf, mo, values,
  // covered and releasing are exactly what the quotient must preserve.
  for (LocId loc = 0; loc < num_locs; ++loc) {
    const auto& order = mo_[loc];
    out.push_back(order.size());
    for (const OpId id : order) {
      const Op& op = ops_[id];
      std::uint64_t tag = static_cast<std::uint64_t>(op.kind);
      tag |= static_cast<std::uint64_t>(op.thread) << 8;
      tag |= static_cast<std::uint64_t>(op.releasing) << 40;
      tag |= static_cast<std::uint64_t>(op.covered) << 41;
      out.push_back(tag);
      out.push_back(static_cast<std::uint64_t>(op.value));
      out.push_back(static_cast<std::uint64_t>(op.read_value));
      if (!options_.canonical_timestamps) {
        out.push_back(static_cast<std::uint64_t>(op.ts.numerator()));
        out.push_back(static_cast<std::uint64_t>(op.ts.denominator()));
      }
    }
  }
  // Thread viewfronts, filtered by the caller's keep mask.  Dropped entries
  // are simply omitted: the mask is a function of the program counters,
  // which the caller encodes ahead of this block, so equal keys always
  // dropped the same entries.
  for (ThreadId t = 0; t < num_threads_; ++t) {
    const std::uint8_t* row =
        tview_keep + static_cast<std::size_t>(t) * num_locs;
    for (LocId loc = 0; loc < num_locs; ++loc) {
      if (row[loc] != 0) out.push_back(ops_[tview_[t][loc]].mo_pos);
    }
  }
  // Modification views of operations that can still synchronise someone.
  // The keep decision reads only the releasing bit and the location kind,
  // both pinned by the modification-order block above.
  for (LocId loc = 0; loc < num_locs; ++loc) {
    const bool is_var = locs_->is_var(loc);
    for (const OpId id : mo_[loc]) {
      if (is_var && !ops_[id].releasing) continue;
      for (LocId l2 = 0; l2 < num_locs; ++l2) {
        out.push_back(ops_[ops_[id].mview[l2]].mo_pos);
      }
    }
  }
  if (race_) {
    // The full clock block stays: happens-before is exactly what the race
    // checker observes per state, so the quotient must not merge states
    // that disagree on it (mirrors encode()).
    const auto& rc = *race_;
    for (const auto w : rc.vc) out.push_back(w);
    for (LocId loc = 0; loc < num_locs; ++loc) {
      for (const OpId id : mo_[loc]) {
        for (const auto w : rc.msg[id]) out.push_back(w);
      }
    }
    for (const auto& cell : rc.summary) {
      out.push_back((static_cast<std::uint64_t>(cell.clock) << 32) | cell.pc);
    }
  }
}

std::uint64_t MemState::hash() const {
  std::vector<std::uint64_t> words;
  words.reserve(64);
  encode(words);
  support::WordHasher h;
  for (const auto w : words) h.add(w);
  return h.digest();
}

std::string MemState::to_string() const {
  std::ostringstream os;
  const auto num_locs = locs_->size();
  for (LocId loc = 0; loc < num_locs; ++loc) {
    os << locs_->name(loc) << " ["
       << (locs_->component(loc) == Component::Client ? "client" : "library")
       << "]: ";
    for (const OpId id : mo_[loc]) {
      const Op& op = ops_[id];
      switch (op.kind) {
        case OpKind::Init: os << "init(" << op.value << ")"; break;
        case OpKind::Write: os << "wr(" << op.value << ")"; break;
        case OpKind::WriteRel: os << "wrR(" << op.value << ")"; break;
        case OpKind::WriteNa: os << "wrNA(" << op.value << ")"; break;
        case OpKind::Update:
          os << "upd(" << op.read_value << "->" << op.value << ")";
          break;
        case OpKind::LockAcquire: os << "acq_" << op.value; break;
        case OpKind::LockRelease: os << "rel_" << op.value; break;
        case OpKind::StackPush: os << "push(" << op.value << ")"; break;
        case OpKind::QueueEnqueue: os << "enq(" << op.value << ")"; break;
      }
      os << "@t" << op.thread << "/ts=" << op.ts.to_string();
      if (op.covered) os << "/cvd";
      os << " ";
    }
    os << "| views:";
    for (ThreadId t = 0; t < num_threads_; ++t) {
      os << " t" << t << "->" << ops_[tview_[t][loc]].mo_pos;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rc11::memsem
