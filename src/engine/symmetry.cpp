// rc11lib/engine/symmetry.cpp — see symmetry.hpp for the design.

#include "engine/symmetry.hpp"

#include <algorithm>
#include <set>

#include "support/diagnostics.hpp"

namespace rc11::engine {

namespace {

/// Field-by-field instruction equality.  Expr carries no operator==, but
/// to_string() is a faithful rendering of the expression tree, so textual
/// equality of rendered operands is exactly "identical program text".
bool expr_equal(const lang::Expr& a, const lang::Expr& b) {
  if (a.valid() != b.valid()) return false;
  if (!a.valid()) return true;
  return a.to_string() == b.to_string();
}

bool instr_equal(const lang::Instr& a, const lang::Instr& b) {
  return a.kind == b.kind && a.dst == b.dst && a.has_dst == b.has_dst &&
         a.loc == b.loc && expr_equal(a.e1, b.e1) && expr_equal(a.e2, b.e2) &&
         expr_equal(a.e3, b.e3) && a.order == b.order &&
         a.target == b.target && a.capture_version == b.capture_version &&
         a.label == b.label;
}

/// Threads are interchangeable iff code and register-file shape coincide.
/// Register *names* are display-only and deliberately ignored; components and
/// initial values are semantic (refinement projection, initial state).
bool threads_equal(const System& sys, ThreadId a, ThreadId b) {
  const auto& ca = sys.code(a);
  const auto& cb = sys.code(b);
  if (ca.size() != cb.size()) return false;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (!instr_equal(ca[i], cb[i])) return false;
  }
  if (sys.num_regs(a) != sys.num_regs(b)) return false;
  for (lang::RegId r = 0; r < sys.num_regs(a); ++r) {
    if (sys.reg_component(a, r) != sys.reg_component(b, r)) return false;
    if (sys.reg_initial(a, r) != sys.reg_initial(b, r)) return false;
  }
  return true;
}

/// Appends the full permuted state encoding of `cfg` under `slot_of` to
/// `out`.  Word-for-word the layout of Config::encode_into + MemState::encode
/// with thread-indexed components read in slot order and op thread tags
/// relabelled (init tags excepted — see MemState::permute_threads) — the
/// identity permutation reproduces the concrete encoding exactly (tested),
/// so quotiented and unquotiented runs share one encoding space.
void encode_permuted_into(const Config& cfg,
                          const std::vector<ThreadId>& slot_of,
                          const std::vector<ThreadId>& thread_of,
                          std::vector<std::uint64_t>& out) {
  const auto num_threads = static_cast<ThreadId>(cfg.pc.size());
  for (ThreadId s = 0; s < num_threads; ++s) {
    out.push_back(cfg.pc[thread_of[s]]);
  }
  for (ThreadId s = 0; s < num_threads; ++s) {
    const auto& file = cfg.regs[thread_of[s]];
    out.push_back(file.size());
    for (const auto v : file) out.push_back(static_cast<std::uint64_t>(v));
  }
  const memsem::MemState& mem = cfg.mem;
  const auto num_locs = static_cast<memsem::LocId>(mem.locations().size());
  const bool canonical_ts = mem.options().canonical_timestamps;
  for (memsem::LocId loc = 0; loc < num_locs; ++loc) {
    const auto order = mem.mo(loc);
    out.push_back(order.size());
    for (const memsem::OpId id : order) {
      const memsem::Op& op = mem.op(id);
      std::uint64_t tag = static_cast<std::uint64_t>(op.kind);
      // Init operations keep their tag, exactly as MemState::permute_threads
      // does: they are part of the initial state, which the group action
      // must fix (a relabelled init encodes a state no execution reaches).
      tag |= static_cast<std::uint64_t>(op.kind == memsem::OpKind::Init
                                            ? op.thread
                                            : slot_of[op.thread])
             << 8;
      tag |= static_cast<std::uint64_t>(op.releasing) << 40;
      tag |= static_cast<std::uint64_t>(op.covered) << 41;
      out.push_back(tag);
      out.push_back(static_cast<std::uint64_t>(op.value));
      out.push_back(static_cast<std::uint64_t>(op.read_value));
      if (!canonical_ts) {
        out.push_back(static_cast<std::uint64_t>(op.ts.numerator()));
        out.push_back(static_cast<std::uint64_t>(op.ts.denominator()));
      }
    }
  }
  for (ThreadId s = 0; s < num_threads; ++s) {
    const ThreadId t = thread_of[s];
    for (memsem::LocId loc = 0; loc < num_locs; ++loc) {
      out.push_back(mem.op(mem.view_front(t, loc)).mo_pos);
    }
  }
  for (memsem::LocId loc = 0; loc < num_locs; ++loc) {
    for (const memsem::OpId id : mem.mo(loc)) {
      const memsem::View& mview = mem.op(id).mview;
      for (memsem::LocId l2 = 0; l2 < num_locs; ++l2) {
        out.push_back(mem.op(mview[l2]).mo_pos);
      }
    }
  }
}

std::uint64_t capped_factorial(std::size_t n, std::uint64_t cap) {
  std::uint64_t f = 1;
  for (std::size_t i = 2; i <= n; ++i) {
    f *= i;
    if (f > cap) return cap + 1;
  }
  return f;
}

}  // namespace

SymmetryReducer::SymmetryReducer(const System& sys) : sys_(&sys) {
  num_threads_ = sys.num_threads();
  in_class_.assign(num_threads_, false);
  std::vector<bool> assigned(num_threads_, false);
  for (ThreadId t = 0; t < num_threads_; ++t) {
    if (assigned[t]) continue;
    std::vector<ThreadId> members{t};
    for (ThreadId u = t + 1; u < num_threads_; ++u) {
      if (!assigned[u] && threads_equal(sys, t, u)) {
        assigned[u] = true;
        members.push_back(u);
      }
    }
    if (members.size() >= 2) classes_.push_back(std::move(members));
  }
  for (const auto& cls : classes_) {
    group_size_ *= capped_factorial(cls.size(), kMaxOrbit);
    for (const ThreadId t : cls) in_class_[t] = true;
  }
  symmetric_ = !classes_.empty() && group_size_ <= kMaxOrbit;
  if (!symmetric_) {
    // Degenerate (no class of size >= 2) or past the orbit bound: the
    // reduction is a no-op and callers fall back to concrete encodings.
    classes_.clear();
    group_size_ = 1;
    in_class_.assign(num_threads_, false);
  }
}

void SymmetryReducer::thread_signature(const Config& cfg, ThreadId t,
                                       std::vector<std::uint64_t>& out) const {
  // Everything thread-indexed in the state, in a permutation-invariant
  // rendering: pc, register values, and the viewfront row as mo ranks (mo
  // sequences never move under the group action).  Signatures are equal
  // exactly when swapping the two threads fixes these components — the op
  // thread tags in the full encoding are what the tie enumeration decides.
  out.clear();
  out.push_back(cfg.pc[t]);
  for (const auto v : cfg.regs[t]) out.push_back(static_cast<std::uint64_t>(v));
  const memsem::MemState& mem = cfg.mem;
  const auto num_locs = static_cast<memsem::LocId>(mem.locations().size());
  for (memsem::LocId loc = 0; loc < num_locs; ++loc) {
    out.push_back(mem.op(mem.view_front(t, loc)).mo_pos);
  }
}

void SymmetryReducer::canonicalize(const Config& cfg, Canonical& out) const {
  out.encoding.clear();
  out.perms.clear();
  out.complete = true;
  ThreadPerm& slot_of = perm_scratch_;
  slot_of.resize(num_threads_);
  for (ThreadId t = 0; t < num_threads_; ++t) slot_of[t] = t;
  if (!symmetric_) {
    cfg.encode_into(out.encoding);
    out.perms.push_back(slot_of);
    return;
  }

  // Per class: order members by signature, recording tie ranges.  `orders`
  // holds, per class, the member list in slot order (slot i of the class is
  // its i-th smallest thread id).
  struct TieGroup {
    std::size_t cls;
    std::size_t begin;
    std::size_t end;  // exclusive; end - begin >= 2
  };
  std::vector<std::vector<ThreadId>> orders(classes_.size());
  std::vector<TieGroup> ties;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const auto& members = classes_[c];
    auto& order = orders[c];
    order = members;
    // Insertion-sort by signature; class sizes are tiny (<= 8) and stable
    // order keeps tied members ascending by thread id, which both makes the
    // result deterministic and leaves tie ranges in next_permutation's start
    // state.
    std::vector<std::vector<std::uint64_t>> sigs(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      thread_signature(cfg, members[i], sigs[i]);
    }
    std::vector<std::size_t> idx(members.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       return sigs[a] < sigs[b];
                     });
    for (std::size_t i = 0; i < idx.size(); ++i) order[i] = members[idx[i]];
    std::size_t run = 0;
    for (std::size_t i = 1; i <= idx.size(); ++i) {
      if (i == idx.size() || sigs[idx[i]] != sigs[idx[run]]) {
        if (i - run >= 2) ties.push_back({c, run, i});
        run = i;
      }
    }
  }

  // Cap the tie blow-up: enumerate groups while the candidate product stays
  // within bounds; oversized groups keep their ascending-id order (a sound
  // under-approximation of the quotient).
  std::vector<TieGroup> enumerated;
  std::uint64_t candidates = 1;
  for (const TieGroup& g : ties) {
    const std::uint64_t f =
        capped_factorial(g.end - g.begin, kMaxTieCandidates);
    if (candidates * f <= kMaxTieCandidates) {
      candidates *= f;
      enumerated.push_back(g);
    } else {
      // A skipped group means `perms` may miss minimisers; callers relying
      // on stabiliser closure (canonical sleep masks) must see that.
      out.complete = false;
    }
  }

  const auto build_perm = [&] {
    for (ThreadId t = 0; t < num_threads_; ++t) slot_of[t] = t;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      for (std::size_t i = 0; i < classes_[c].size(); ++i) {
        slot_of[orders[c][i]] = classes_[c][i];
      }
    }
  };
  ThreadPerm thread_of(num_threads_);
  const auto try_candidate = [&] {
    build_perm();
    for (ThreadId t = 0; t < num_threads_; ++t) thread_of[slot_of[t]] = t;
    candidate_.clear();
    encode_permuted_into(cfg, slot_of, thread_of, candidate_);
    if (out.perms.empty() || candidate_ < out.encoding) {
      out.encoding = candidate_;
      out.perms.clear();
      out.perms.push_back(slot_of);
    } else if (candidate_ == out.encoding) {
      out.perms.push_back(slot_of);
    }
  };

  try_candidate();
  if (!enumerated.empty()) {
    // Odometer over the tie groups; next_permutation wraps each group back
    // to its ascending start state, so every combination is visited once.
    while (true) {
      std::size_t g = 0;
      for (; g < enumerated.size(); ++g) {
        auto& order = orders[enumerated[g].cls];
        if (std::next_permutation(
                order.begin() + static_cast<std::ptrdiff_t>(enumerated[g].begin),
                order.begin() + static_cast<std::ptrdiff_t>(enumerated[g].end))) {
          break;
        }
      }
      if (g == enumerated.size()) break;
      try_candidate();
    }
  }
}

std::uint64_t SymmetryReducer::mask_to_canonical(
    std::uint64_t mask, const std::vector<ThreadPerm>& perms) {
  std::uint64_t result = ~0ULL;
  for (const ThreadPerm& perm : perms) {
    std::uint64_t image = 0;
    for (ThreadId t = 0; t < perm.size(); ++t) {
      if (mask & (1ULL << t)) image |= 1ULL << perm[t];
    }
    result &= image;
  }
  return result;
}

std::uint64_t SymmetryReducer::mask_from_canonical(std::uint64_t mask,
                                                   const ThreadPerm& perm) {
  std::uint64_t result = 0;
  for (ThreadId t = 0; t < perm.size(); ++t) {
    if (mask & (1ULL << perm[t])) result |= 1ULL << t;
  }
  return result;
}

Config SymmetryReducer::permuted(const Config& cfg,
                                 const ThreadPerm& perm) const {
  Config result = cfg;
  for (ThreadId t = 0; t < num_threads_; ++t) {
    result.pc[perm[t]] = cfg.pc[t];
    result.regs[perm[t]] = cfg.regs[t];
  }
  result.mem.permute_threads(perm);
  return result;
}

void SymmetryReducer::for_each_orbit(
    const Config& cfg,
    const std::function<void(const Config&, const ThreadPerm&)>& fn) const {
  if (!symmetric_) {
    ThreadPerm identity(cfg.pc.size());
    for (ThreadId t = 0; t < identity.size(); ++t) identity[t] = t;
    fn(cfg, identity);
    return;
  }
  std::set<std::vector<std::uint64_t>> seen;
  ThreadPerm thread_of(num_threads_);
  std::vector<std::uint64_t> enc;
  for_each_perm([&](const ThreadPerm& perm) {
    for (ThreadId t = 0; t < num_threads_; ++t) thread_of[perm[t]] = t;
    enc.clear();
    encode_permuted_into(cfg, perm, thread_of, enc);
    if (!seen.insert(enc).second) return;
    // The identity comes first (for_each_perm starts from ascending images),
    // so fn(cfg, id) leads and the materialisation below is skipped for it.
    bool identity = true;
    for (ThreadId t = 0; t < num_threads_; ++t) {
      if (perm[t] != t) {
        identity = false;
        break;
      }
    }
    if (identity) {
      fn(cfg, perm);
    } else {
      fn(permuted(cfg, perm), perm);
    }
  });
}

void SymmetryReducer::for_each_perm(
    const std::function<void(const ThreadPerm&)>& fn) const {
  ThreadPerm perm(num_threads_);
  for (ThreadId t = 0; t < num_threads_; ++t) perm[t] = t;
  if (!symmetric_) {
    fn(perm);
    return;
  }
  // Per-class image lists, each run through next_permutation odometer-style;
  // images start ascending so the first emitted permutation is the identity.
  std::vector<std::vector<ThreadId>> images;
  images.reserve(classes_.size());
  for (const auto& cls : classes_) images.push_back(cls);
  const auto emit = [&] {
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      for (std::size_t i = 0; i < classes_[c].size(); ++i) {
        perm[classes_[c][i]] = images[c][i];
      }
    }
    fn(perm);
  };
  emit();
  while (true) {
    std::size_t c = 0;
    for (; c < images.size(); ++c) {
      if (std::next_permutation(images[c].begin(), images[c].end())) break;
    }
    if (c == images.size()) break;
    emit();
  }
}

}  // namespace rc11::engine
