#include "og/catalog.hpp"

#include "memsem/types.hpp"

namespace rc11::og {

namespace asrt = rc11::assertions;
using asrt::Assertion;
using asrt::implies;
using lang::c;
using lang::Expr;
using memsem::OpKind;

namespace {

/// Builds the Fig. 3 program.  Thread layout (compiled pcs):
///   t0:  0: d := 5        t1:  0: r1 <- s.popA()
///        1: s.pushR(1)         1: if r1 != 1 goto 0
///                              2: r2 <- d
Fig3Example build_fig3_program() {
  Fig3Example ex{System{}, 0, 0, {}, {}, ProofOutline{System{}}};
  ex.d = ex.sys.client_var("d", 0);
  ex.s = ex.sys.library_stack("s");

  auto t0 = ex.sys.thread();
  t0.store(ex.d, c(5), "d := 5");
  t0.push_rel(ex.s, c(1), "s.pushR(1)");

  auto t1 = ex.sys.thread();
  ex.r1 = t1.reg("r1");
  ex.r2 = t1.reg("r2");
  t1.do_until([&] { t1.pop_acq(ex.r1, ex.s, "r1 <- s.popA()"); },
              Expr{ex.r1} == c(1));
  t1.load(ex.r2, ex.d, "r2 <- d");

  ex.outline = ProofOutline{ex.sys};
  return ex;
}

}  // namespace

Fig3Example make_fig3() {
  Fig3Example ex = build_fig3_program();
  ProofOutline& o = ex.outline;

  // Thread 1 (t0): the producer.
  // pc0 {¬⟨s.pop_1⟩ ∧ [d = 0]_1 ∧ [s.pop_emp]}: nothing published yet.
  o.annotate(0, 0,
             !asrt::stack_can_pop(ex.s, 1) && asrt::definite_obs(0, ex.d, 0) &&
                 asrt::stack_pop_empty_only(ex.s));
  // pc1 {¬⟨s.pop_1⟩ ∧ [d = 5]_1}: the data is written, not yet published.
  o.annotate(0, 1,
             !asrt::stack_can_pop(ex.s, 1) && asrt::definite_obs(0, ex.d, 5));
  // post {true}.

  // Thread 2 (t1): the consumer.
  // Loop head and loop test {⟨s.pop_1⟩[d = 5]_2}: if the message can be
  // popped, popping it will publish d = 5.
  const Assertion key = asrt::stack_cond_obs(ex.s, 1, ex.d, 5);
  o.annotate(1, 0, key);
  // After the pop, additionally r1 = 1 ⇒ [d = 5]_2 (the acquiring pop of the
  // releasing push has synchronised).
  o.annotate(1, 1,
             key && implies(asrt::reg_eq(ex.r1, 1),
                            asrt::definite_obs(1, ex.d, 5)));
  // After the loop {[d = 5]_2}.
  o.annotate(1, 2, asrt::definite_obs(1, ex.d, 5));
  // post {r2 = 5}.
  o.postcondition(1, asrt::reg_eq(ex.r2, 5));
  return ex;
}

Fig3Example make_fig3_broken() {
  Fig3Example ex = build_fig3_program();
  // Claims the consumer reads the *stale* value — the checker must refute it.
  ex.outline.postcondition(1, asrt::reg_eq(ex.r2, 0));
  return ex;
}

namespace {

/// Builds the Fig. 7 program.  Thread layout (compiled pcs):
///   t0:  0: l.Acquire()       t1:  0: rl <- l.Acquire()   (version ghost)
///        1: d1 := 5                1: r1 <- d1
///        2: d2 := 5                2: r2 <- d2
///        3: l.Release()            3: l.Release()
Fig7Example build_fig7_program() {
  Fig7Example ex{System{}, 0, 0, 0, {}, {}, {}, ProofOutline{System{}}};
  ex.d1 = ex.sys.client_var("d1", 0);
  ex.d2 = ex.sys.client_var("d2", 0);
  ex.l = ex.sys.library_lock("l");

  auto t0 = ex.sys.thread();
  t0.acquire(ex.l, std::nullopt, "l.Acquire()");
  t0.store(ex.d1, c(5), "d1 := 5");
  t0.store(ex.d2, c(5), "d2 := 5");
  t0.release(ex.l, "l.Release()");

  auto t1 = ex.sys.thread();
  ex.rl = t1.reg("rl");
  ex.r1 = t1.reg("r1");
  ex.r2 = t1.reg("r2");
  t1.acquire_version(ex.l, ex.rl, "rl <- l.Acquire()");
  t1.load(ex.r1, ex.d1, "r1 <- d1");
  t1.load(ex.r2, ex.d2, "r2 <- d2");
  t1.release(ex.l, "l.Release()");

  ex.outline = ProofOutline{ex.sys};
  return ex;
}

}  // namespace

Fig7Example make_fig7() {
  Fig7Example ex = build_fig7_program();
  ProofOutline& o = ex.outline;
  const auto cs0 = asrt::pc_in(0, {1, 2, 3});  // thread 1 in critical section
  const auto cs1 = asrt::pc_in(1, {1, 2, 3});  // thread 2 in critical section

  // Inv = ¬(pc1 ∈ CS ∧ pc2 ∈ CS) ∧ (rl ∈ {1, 3} once acquired): mutual
  // exclusion plus the two possible versions of thread 2's acquire.
  o.invariant(!(cs0 && cs1) &&
              implies(asrt::pc_in(1, {1, 2, 3, 4}),
                      asrt::reg_in(ex.rl, {1, 3})));

  // --- thread 1 (t0), the writer -------------------------------------------
  // pc0: data untouched; if thread 2 already entered its critical section it
  // acquired first, so acquire_1 is the only uncovered maximal operation
  // (the paper's C_{l.acquire_1} conjunct).
  o.annotate(0, 0,
             asrt::definite_obs(0, ex.d1, 0) && asrt::definite_obs(0, ex.d2, 0) &&
                 implies(cs1, asrt::lock_covered(ex.l, OpKind::LockAcquire, 1)));
  // In the critical section: t0 holds the lock; while thread 2 has not yet
  // acquired, no release_2 is observable to it (the paper's P_po conjunct);
  // data is written in program order.
  const auto holds = asrt::lock_held_by(0, ex.l);
  const auto no_rel2_for_t1 =
      implies(asrt::at_pc(1, 0), !asrt::lock_possible_release(1, ex.l, 2));
  o.annotate(0, 1,
             holds && no_rel2_for_t1 && asrt::definite_obs(0, ex.d1, 0) &&
                 asrt::definite_obs(0, ex.d2, 0));
  o.annotate(0, 2,
             holds && no_rel2_for_t1 && asrt::definite_obs(0, ex.d1, 5) &&
                 asrt::definite_obs(0, ex.d2, 0));
  o.annotate(0, 3,
             holds && no_rel2_for_t1 && asrt::definite_obs(0, ex.d1, 5) &&
                 asrt::definite_obs(0, ex.d2, 5));
  // post: if thread 2 has not yet acquired, thread 1 went first, so its
  // release_2 publishes both writes (the paper's Q1' property
  // ⟨l.release_2⟩[d1 = 5]_2 ∧ ⟨l.release_2⟩[d2 = 5]_2), and the lock
  // initialisation is hidden (H_{l.init_0}).
  o.postcondition(
      0, implies(asrt::at_pc(1, 0),
                 asrt::lock_cond_obs(1, ex.l, 2, ex.d1, 5) &&
                     asrt::lock_cond_obs(1, ex.l, 2, ex.d2, 5)) &&
             asrt::lock_hidden_init(ex.l));

  // --- thread 2 (t1), the reader -------------------------------------------
  // In the critical section: the version determines what is visible —
  // rl = 1 (thread 2 first): both variables still definitely 0;
  // rl = 3 (after thread 1): the acquire synchronised with release_2, so
  // both variables are definitely 5.
  const auto first = asrt::reg_eq(ex.rl, 1);
  const auto second = asrt::reg_eq(ex.rl, 3);
  const auto vis =
      implies(first,
              asrt::definite_obs(1, ex.d1, 0) && asrt::definite_obs(1, ex.d2, 0)) &&
      implies(second,
              asrt::definite_obs(1, ex.d1, 5) && asrt::definite_obs(1, ex.d2, 5));
  const auto holds1 = asrt::lock_held_by(1, ex.l);
  o.annotate(1, 1, holds1 && vis && asrt::lock_hidden_init(ex.l));
  o.annotate(1, 2,
             holds1 && vis &&
                 implies(first, asrt::reg_eq(ex.r1, 0)) &&
                 implies(second, asrt::reg_eq(ex.r1, 5)));
  const auto regs_final =
      implies(first, asrt::reg_eq(ex.r1, 0) && asrt::reg_eq(ex.r2, 0)) &&
      implies(second, asrt::reg_eq(ex.r1, 5) && asrt::reg_eq(ex.r2, 5));
  o.annotate(1, 3, holds1 && regs_final);
  // post: the paper's Q3 — r1 = r2, each 0 or 5 depending on the order.
  o.postcondition(1, regs_final);
  return ex;
}

Fig7Example make_fig7_broken() {
  Fig7Example ex = build_fig7_program();
  // Wrongly claims thread 2 sees fresh data even when it acquired first.
  ex.outline.postcondition(
      1, implies(asrt::reg_eq(ex.rl, 1), asrt::reg_eq(ex.r1, 5)));
  return ex;
}

}  // namespace rc11::og
