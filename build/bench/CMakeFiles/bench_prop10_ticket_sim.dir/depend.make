# Empty dependencies file for bench_prop10_ticket_sim.
# This may be replaced when dependencies are built.
