# Empty compiler generated dependencies file for test_og.
# This may be replaced when dependencies are built.
