#include "litmus/case_studies.hpp"

#include "explore/explorer.hpp"

namespace rc11::litmus {

using lang::c;
using lang::Expr;
using lang::LocId;
using lang::Value;

MutexCaseStudy peterson_counter() {
  MutexCaseStudy study;
  study.name = "peterson";
  auto& sys = study.sys;
  study.x = sys.client_var("x", 0);
  const auto flag0 = sys.client_var("flag0", 0);
  const auto flag1 = sys.client_var("flag1", 0);
  const auto turn = sys.client_var("turn", 0);

  const auto build_thread = [&](LocId my_flag, LocId other_flag, Value my_id) {
    auto tb = sys.thread();
    auto rf = tb.reg("rf");
    auto rt = tb.reg("rt");
    auto rx = tb.reg("rx");
    tb.store_rel(my_flag, c(1), "flag[me] :=R 1");
    tb.store_rel(turn, c(1 - my_id), "turn :=R other");
    tb.do_until(
        [&] {
          tb.load_acq(rf, other_flag, "rf <-A flag[other]");
          tb.load_acq(rt, turn, "rt <-A turn");
        },
        Expr{rf} == c(0) || Expr{rt} == c(my_id));
    tb.load(rx, study.x, "rx <- x");
    tb.store(study.x, Expr{rx} + c(1), "x := rx + 1");
    tb.store_rel(my_flag, c(0), "flag[me] :=R 0");
  };
  build_thread(flag0, flag1, 0);
  build_thread(flag1, flag0, 1);
  return study;
}

MutexCaseStudy dekker_counter() {
  MutexCaseStudy study;
  study.name = "dekker";
  auto& sys = study.sys;
  study.x = sys.client_var("x", 0);
  const auto flag0 = sys.client_var("flag0", 0);
  const auto flag1 = sys.client_var("flag1", 0);
  const auto turn = sys.client_var("turn", 0);

  const auto build_thread = [&](LocId my_flag, LocId other_flag, Value my_id) {
    auto tb = sys.thread();
    auto rf = tb.reg("rf");
    auto rt = tb.reg("rt");
    auto rx = tb.reg("rx");
    tb.store_rel(my_flag, c(1), "flag[me] :=R 1");
    tb.load_acq(rf, other_flag, "rf <-A flag[other]");
    tb.while_(Expr{rf} == c(1), [&] {
      tb.load_acq(rt, turn, "rt <-A turn");
      tb.if_else(Expr{rt} != c(my_id), [&] {
        // Not my turn: back off politely and wait for the turn.
        tb.store_rel(my_flag, c(0), "flag[me] :=R 0");
        tb.do_until([&] { tb.load_acq(rt, turn, "rt <-A turn"); },
                    Expr{rt} == c(my_id));
        tb.store_rel(my_flag, c(1), "flag[me] :=R 1");
      });
      tb.load_acq(rf, other_flag, "rf <-A flag[other]");
    });
    tb.load(rx, study.x, "rx <- x");
    tb.store(study.x, Expr{rx} + c(1), "x := rx + 1");
    tb.store_rel(turn, c(1 - my_id), "turn :=R other");
    tb.store_rel(my_flag, c(0), "flag[me] :=R 0");
  };
  build_thread(flag0, flag1, 0);
  build_thread(flag1, flag0, 1);
  return study;
}

BarrierCaseStudy barrier_exchange() {
  BarrierCaseStudy study;
  auto& sys = study.sys;
  const auto a = sys.client_var("a", 0);
  const auto b = sys.client_var("b", 0);
  const auto count = sys.library_var("count", 0);
  const auto sense = sys.library_var("sense", 0);

  const auto build_thread = [&](LocId mine, LocId other, lang::Reg* out) {
    auto tb = sys.thread();
    auto arrived = tb.reg("arrived");
    auto spin = tb.reg("spin");
    auto r = tb.reg("r");
    tb.store(mine, c(1), "datum := 1");
    tb.fai(arrived, count, "arrived <- FAI(count)");
    tb.if_else(
        Expr{arrived} == c(1),
        [&] { tb.store_rel(sense, c(1), "sense :=R 1 (last arrival)"); },
        [&] {
          tb.do_until([&] { tb.load_acq(spin, sense, "spin <-A sense"); },
                      Expr{spin} == c(1));
        });
    tb.load(r, other, "r <- other datum");
    *out = r;
  };
  build_thread(a, b, &study.r0);
  build_thread(b, a, &study.r1);
  return study;
}

bool increment_lost(const MutexCaseStudy& study,
                    const memsem::SemanticsOptions& options,
                    unsigned num_threads) {
  auto sys = study.sys;  // copy so the caller's study stays reusable
  sys.set_options(options);
  explore::ExploreOptions eopts;
  eopts.num_threads = num_threads;
  const auto result = explore::explore(sys, eopts);
  for (const auto& cfg : result.final_configs) {
    if (cfg.mem.op(cfg.mem.last_op(study.x)).value != 2) return true;
  }
  return false;
}

}  // namespace rc11::litmus
