// rc11lib/og/catalog.hpp
//
// The paper's two worked verification examples, packaged as reusable
// artifacts: the program, the registers/locations involved, and the proof
// outline whose validity the paper establishes deductively (Lemma 4) and
// which this library checks over the reachable state space.
//
//   * Figure 3: message passing through the synchronising stack —
//     conditional-observation assertions carry the library synchronisation
//     guarantee into the client.
//
//   * Figure 7: two threads exchanging data under the abstract lock —
//     mutual exclusion plus write visibility, with the rl register recording
//     the version of thread 2's acquire (rl ∈ {1, 3}).
//
// Each factory also exposes a deliberately broken variant used by negative
// tests and benchmarks: outlines that claim too much must be rejected.

#pragma once

#include <unordered_map>

#include "og/proof_outline.hpp"

namespace rc11::og {

using lang::LocId;
using lang::Reg;
using lang::System;

// --- object-registration helpers ---------------------------------------------
//
// Every concrete object implementation (locks, stacks, queues) repeats the
// same two rituals: lazily registering its scratch registers the first time a
// thread executes one of its methods, and instantiating C[O] by declaring the
// object's locations before running the client.  Both live here, once, so the
// object families cannot drift apart structurally.

/// Per-thread lazy register registration.  `Regs` is the implementation's
/// bundle of Library-tagged scratch registers; `get` returns the bundle for
/// the builder's thread, calling `make(tb)` exactly once per thread to
/// declare the registers on first use.  `reset` forgets all bundles — object
/// instances are reusable across instantiations, and registers belong to the
/// System being built, not to the object.
template <typename Regs>
class PerThreadRegs {
 public:
  void reset() { regs_.clear(); }

  template <typename Make>
  Regs& get(lang::ThreadBuilder& tb, Make&& make) {
    const auto t = tb.id();
    auto it = regs_.find(t);
    if (it == regs_.end()) {
      it = regs_.emplace(t, make(tb)).first;
    }
    return it->second;
  }

 private:
  std::unordered_map<std::uint32_t, Regs> regs_;
};

/// Builds C[O]: a fresh System on which `client` is run with `object`
/// filling the holes.  The object declares its library locations first
/// (before any thread exists), exactly as each family's `instantiate`
/// wrapper promises.
template <typename Object, typename Client>
[[nodiscard]] System instantiate_object(const Client& client, Object& object) {
  System sys;
  object.declare(sys);
  client(sys, object);
  return sys;
}

/// Figure 3: message passing via the synchronising stack.
struct Fig3Example {
  System sys;
  LocId d;  ///< client data variable
  LocId s;  ///< library stack
  Reg r1;   ///< pop result (thread 2)
  Reg r2;   ///< data read (thread 2)
  ProofOutline outline;
};

/// The Fig. 3 program with its (valid) proof outline.
Fig3Example make_fig3();

/// The same program with an outline claiming the *stale* postcondition
/// r2 = 0 — must be rejected by the checker.
Fig3Example make_fig3_broken();

/// Figure 7: data exchange under the abstract lock.
struct Fig7Example {
  System sys;
  LocId d1, d2;  ///< client data variables
  LocId l;       ///< library lock
  Reg rl;        ///< version of thread 2's acquire (1 or 3)
  Reg r1, r2;    ///< thread 2's reads of d1, d2
  ProofOutline outline;
};

/// The Fig. 7 program with its (valid) proof outline, including the paper's
/// invariant Inv = ¬(pc1 ∈ CS ∧ pc2 ∈ CS) ∧ rl ∈ {1, 3}.
Fig7Example make_fig7();

/// The Fig. 7 program with an outline wrongly claiming thread 2 always reads
/// fresh data (rl = 1 ⇒ r1 = 5) — must be rejected.
Fig7Example make_fig7_broken();

}  // namespace rc11::og
