#include "engine/reach.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/abstraction.hpp"
#include "engine/checkpoint.hpp"
#include "support/diagnostics.hpp"
#include "support/intern.hpp"
#include "support/parallel.hpp"

namespace rc11::engine {

namespace {

/// Sequential visited set: one interned word set (open-addressing
/// fingerprint table over a varint arena — see support/intern.hpp), kept
/// lock-free for the num_threads == 1 paths.  Exact for the same reason as
/// ShardedVisitedSet: fingerprint hits are confirmed against the full
/// stored encoding.
using VisitedSet = support::InternedWordSet;

/// A frontier entry: the configuration plus its id in the trace sink (the
/// id stays kNoState when no sink is attached).
struct Frontier {
  Config cfg;
  std::uint64_t id = ShardedVisitedSet::kNoState;
  /// Sleeping-thread mask in this configuration's concrete thread
  /// coordinates (reduction paths only; 0 otherwise).
  std::uint64_t sleep = 0;
  /// Re-expansion of an already-visited state whose stored sleep mask
  /// strictly shrank (Godefroid's revisit rule): successors are reprocessed
  /// with the smaller mask, but the state is not re-counted, the visitor
  /// does not fire again, and no state claim is consumed.
  bool revisit = false;
};

/// Sequential counterpart of ShardedVisitedSet::insert_masked: one interned
/// word set plus a dense per-id mask array, lock-free for the single-thread
/// driver.  Same meet semantics, so both drivers share the revisit rule
/// documented on MaskedInsert.  With all-zero masks this is an exact
/// insert() with ids — the degenerate form the symmetry quotient uses when
/// sleep sets are off.
class SeqMaskedSet {
 public:
  ShardedVisitedSet::MaskedInsert insert_masked(
      std::span<const std::uint64_t> encoding, std::uint64_t mask) {
    const auto ided = set_.resolve_ided(encoding);
    if (ided.inserted) {
      masks_.push_back(mask);
      return {true, true, mask};
    }
    std::uint64_t& stored = masks_[ided.id];
    const std::uint64_t meet = stored & mask;
    if (meet == stored) return {false, false, stored};
    stored = meet;
    return {false, true, meet};
  }

  [[nodiscard]] std::size_t bytes() const noexcept {
    return set_.bytes() + masks_.capacity() * sizeof(std::uint64_t);
  }

 private:
  support::InternedWordSet set_;
  std::vector<std::uint64_t> masks_;
};

/// Builds the run's state abstraction from the reduction options: the
/// symmetry orbit quotient, the execution-graph quotient, or — when neither
/// applies but the sleep-set path still needs masked keying — the concrete
/// identity abstraction.  Returns null when no reduced path is needed at
/// all.  visit_reachable has already rejected symmetry+rf_quotient.
std::unique_ptr<StateAbstraction> make_abstraction(const System& sys,
                                                   const ReachOptions& options,
                                                   bool sleep) {
  if (options.symmetry) {
    auto abs = make_symmetry_abstraction(sys);
    if (abs->nontrivial()) return abs;
    // No interchangeable threads: the orbit quotient is the identity, so
    // fall through to the cheaper paths.
  } else if (options.rf_quotient) {
    return make_rf_quotient_abstraction(sys, options.rf_pins);
  }
  if (sleep) return make_concrete_abstraction();
  return nullptr;
}

/// Seeds a run from a checkpoint (ReachOptions::resume): every checkpointed
/// state enters the trace sink when one is attached (with its recorded
/// parent link and enqueued flag, so a later checkpoint of the resumed run
/// is still faithful), and every *enqueued* state goes on the frontier for
/// (re-)expansion.  Chain-internal POR states are interned but never
/// enqueued, exactly as the original run left them.  The two callbacks
/// adapt the visited-set shape per driver mode: `untraced(encoding)` seeds
/// the plain untraced set (a no-op in reduced modes, whose visited set is
/// the masked canonical one), `canon_seed(cfg)` seeds the canonical set
/// (a no-op in plain modes).  Canonical masks restart empty: resume
/// re-expands every enqueued state anyway, and the empty mask skips nothing
/// — sound, only pruning is lost.
template <typename UntracedInsert, typename CanonSeed>
void seed_from_checkpoint(const TransitionSystem& ts, const Checkpoint& ckpt,
                          ShardedVisitedSet* trace, UntracedInsert&& untraced,
                          CanonSeed&& canon_seed,
                          std::deque<Frontier>& frontier) {
  std::vector<Config> configs = restore_states(ts, ckpt);
  std::vector<std::uint64_t> ids;
  if (trace != nullptr) {
    ids.assign(configs.size(), ShardedVisitedSet::kNoState);
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Checkpoint::State& state = ckpt.states[i];
    if (trace != nullptr) {
      const std::uint64_t parent =
          state.parent < 0 ? ShardedVisitedSet::kNoState
                           : ids[static_cast<std::size_t>(state.parent)];
      const auto ins =
          trace->insert_traced(state.encoding, parent, state.thread,
                               std::string(state.label), state.enqueued);
      RC11_REQUIRE(ins.inserted,
                   "resume requires an empty trace sink and a duplicate-free "
                   "checkpoint");
      ids[i] = ins.id;
      if (state.enqueued) {
        canon_seed(configs[i]);
        frontier.push_back({std::move(configs[i]), ins.id});
      }
    } else if (state.enqueued) {
      // Untraced runs never intern chain-internal states; seeding only the
      // enqueued ones reproduces an uninterrupted untraced visited set.
      untraced(std::span<const std::uint64_t>(state.encoding));
      canon_seed(configs[i]);
      frontier.push_back({std::move(configs[i]), ShardedVisitedSet::kNoState});
    }
  }
}

// --- POR chain collapse ------------------------------------------------------

}  // namespace

// Declared in reach.hpp: chain collapse must be a pure function of `cfg` so
// every worker, strategy, trace mode *and process* (the supervised driver's
// workers, engine/supervise.cpp) collapses identically.  Chains terminate
// because every chain step strictly increases the acting thread's pc (the
// ample proviso) and touches no other thread's pc.
std::optional<lang::ThreadId> chain_thread(const TransitionSystem& ts,
                                           const Config& cfg) {
  const auto t = ts.ample_thread(cfg);
  if (!t) return std::nullopt;
  switch (ts.system().code(*t)[cfg.pc[*t]].kind) {
    case lang::IKind::Assign:
    case lang::IKind::Branch:
    case lang::IKind::Jump:
      return t;
    default:
      return std::nullopt;
  }
}

namespace {

/// Fast-forwards `cfg` through its deterministic local ample chain without
/// recording the intermediate states; bumps `chained` once per skipped step.
void collapse_untraced(const TransitionSystem& ts, Config& cfg,
                       StepBuffer& buf, std::uint64_t& chained) {
  while (const auto t = chain_thread(ts, cfg)) {
    ts.thread_successors_into(cfg, *t, buf, /*want_labels=*/false);
    cfg = std::move(buf.steps()[0].after);
    chained += 1;
  }
}

/// Traced variant: interns every intermediate chain state into the sink as a
/// real single-step edge (so path_to / witness replay see ordinary
/// transitions) and advances `cfg` / `id` to the chain's stable end.
/// Returns false when an intermediate state was already interned — whichever
/// expansion interned it first also interned and enqueued the same
/// deterministic suffix, so the caller drops this duplicate branch.
bool collapse_traced(const TransitionSystem& ts, ShardedVisitedSet& sink,
                     Config& cfg, std::uint64_t& id, StepBuffer& buf,
                     std::vector<std::uint64_t>& scratch,
                     std::uint64_t& chained) {
  auto t = chain_thread(ts, cfg);
  while (t) {
    ts.thread_successors_into(cfg, *t, buf, /*want_labels=*/true);
    auto& step = buf.steps()[0];
    // Chain-internal states are interned (witnesses need the edges) but
    // never enqueued — a checkpoint must not resurrect them as frontier
    // work.  Only the chain's stable end, which the caller pushes onto the
    // frontier, is marked enqueued.
    const auto next = chain_thread(ts, step.after);
    scratch.clear();
    step.after.encode_into(scratch);
    const auto ins =
        sink.insert_traced(scratch, id, step.thread, std::move(step.label),
                           /*enqueued=*/!next.has_value());
    if (!ins.inserted) return false;
    id = ins.id;
    cfg = std::move(step.after);
    chained += 1;
    t = next;
  }
  return true;
}

// --- reduction successor path ------------------------------------------------

/// Per-worker scratch for the reduction successor path: chain-walk step
/// buffer, encoding buffer, abstract-key result, and the per-thread run
/// metadata of the expansion in flight (valid only under sleep sets, which
/// require <= 64 threads).
struct ReduceScratch {
  lang::StepBuffer chain_steps;
  std::vector<std::uint64_t> scratch;
  AbstractKey key;
  std::array<lang::StepMeta, 64> meta{};
};

/// The successor-processing path both drivers share when any reduction —
/// a state abstraction (symmetry orbit or execution-graph quotient) and/or
/// sleep sets — is active.  Differences from the plain path:
///
///   * Membership is decided in `canon_set` (SeqMaskedSet sequentially, a
///     dedicated ShardedVisitedSet in parallel), keyed by the abstraction's
///     abstract key (the concrete encoding for the identity abstraction of
///     the sleep-only path), with per-state sleep masks (all zero when
///     sleep sets are off).
///   * With a trace sink, every concrete successor is interned with
///     enqueued=false via resolve_traced, and the *canonical-set winner*
///     flips the flag via mark_enqueued: the expansion race between orbit
///     mates is decided in the canonical set, while the sink stays a
///     faithful forest of really-taken steps (witnesses and checkpoints are
///     concrete, so replay needs no permutation arithmetic).
///   * Traced chain collapse walks *through* already-interned intermediates
///     instead of early-dropping: under sleep sets the chain end's canonical
///     mask meet must happen even when the concrete chain was walked before.
///
/// Sleep-set bookkeeping (Godefroid, adapted to thread-level masks over
/// meta-homogeneous runs — a thread's enabled steps at one configuration
/// all come from one instruction, so they share one footprint): a sleeping
/// thread's whole run is skipped; the child of run t inherits every thread
/// of (sleep ∪ earlier-processed-runs) \ {t} that commutes with t.  Masks
/// attached to abstract states must be closed under the state's
/// automorphisms, hence the mask_to_abstract intersection over all
/// permutations the key reports — and a forced empty mask when the key's
/// permutation set may be incomplete (AbstractKey::complete false).
/// Abstractions that keep concrete thread coordinates (Concrete, RfQuotient)
/// report no permutations, so both transports are the identity there.
/// Expansion uses the *stored* abstract mask pulled back through the first
/// reported permutation, never the larger concrete child mask: the stored
/// mask is what later arrivals are judged against.  DESIGN.md (symmetry +
/// sleep section) gives the full argument.
template <typename CanonSet, typename Push>
void process_steps_reduced(const TransitionSystem& ts, ShardedVisitedSet* trace,
                           bool collapse, const StateAbstraction& abs,
                           bool sleep, const Frontier& item,
                           std::span<lang::Step> steps, CanonSet& canon_set,
                           ReduceScratch& rs, bool count_stats,
                           std::uint64_t& chained, std::uint64_t& sym_hits,
                           std::uint64_t& rf_merges, std::uint64_t& sleep_skips,
                           Push&& push) {
  std::uint64_t mask = 0;
  if (sleep) {
    std::uint64_t enabled = 0;
    for (const auto& step : steps) {
      if ((enabled >> step.thread & 1ULL) == 0) {
        rs.meta[step.thread] = step.meta;
        enabled |= 1ULL << step.thread;
      }
    }
    // A sleep entry stands for a specific postponed step; a sleeping thread
    // with no enabled run here has nothing to postpone and is dropped.
    mask = item.sleep & enabled;
  }
  std::uint64_t earlier = 0;
  std::size_t i = 0;
  while (i < steps.size()) {
    const ThreadId t = steps[i].thread;
    std::size_t j = i;
    while (j < steps.size() && steps[j].thread == t) ++j;
    if (sleep && (mask >> t & 1ULL) != 0) {
      // The run is asleep: a commuted exploration order covers it.
      if (count_stats) sleep_skips += j - i;
      i = j;
      continue;
    }
    std::uint64_t child_sleep = 0;
    if (sleep) {
      std::uint64_t base = (mask | earlier) & ~(1ULL << t);
      while (base != 0) {
        const auto u = static_cast<unsigned>(std::countr_zero(base));
        base &= base - 1;
        if (steps_independent(rs.meta[u], rs.meta[t])) {
          child_sleep |= 1ULL << u;
        }
      }
      earlier |= 1ULL << t;
    }
    for (std::size_t k = i; k < j; ++k) {
      lang::Step& step = steps[k];
      Config after = std::move(step.after);
      std::uint64_t concrete_id = ShardedVisitedSet::kNoState;
      bool concrete_new = false;
      if (trace != nullptr) {
        std::uint64_t parent = item.id;
        memsem::ThreadId acting = step.thread;
        std::string label = std::move(step.label);
        if (collapse) {
          while (const auto ct = chain_thread(ts, after)) {
            rs.scratch.clear();
            after.encode_into(rs.scratch);
            parent = trace
                         ->resolve_traced(rs.scratch, parent, acting,
                                          std::move(label), /*enqueued=*/false)
                         .id;
            if (count_stats) chained += 1;
            ts.thread_successors_into(after, *ct, rs.chain_steps,
                                      /*want_labels=*/true);
            auto& cstep = rs.chain_steps.steps()[0];
            after = std::move(cstep.after);
            acting = cstep.thread;
            label = std::move(cstep.label);
          }
        }
        rs.scratch.clear();
        after.encode_into(rs.scratch);
        const auto cins = trace->resolve_traced(
            rs.scratch, parent, acting, std::move(label), /*enqueued=*/false);
        concrete_id = cins.id;
        concrete_new = cins.inserted;
      } else if (collapse) {
        std::uint64_t walked = 0;
        collapse_untraced(ts, after, rs.chain_steps, walked);
        if (count_stats) chained += walked;
      }
      abs.key(after, rs.key);
      std::uint64_t cmask = 0;
      if (sleep) {
        cmask = rs.key.complete ? mask_to_abstract(child_sleep, rs.key) : 0;
      }
      const auto r = canon_set.insert_masked(rs.key.encoding, cmask);
      if (!r.inserted) {
        if (abs.kind() == StateAbstraction::Kind::Symmetry &&
            !key_is_identity(rs.key)) {
          sym_hits += 1;
        } else if (abs.kind() == StateAbstraction::Kind::RfQuotient &&
                   count_stats && concrete_new) {
          // A concrete state the sink had never seen folded into a visited
          // quotient class.  Only a trace sink can tell a genuinely new
          // concrete state from a re-arrival, so untraced runs report 0.
          rf_merges += 1;
        }
      }
      if (!r.inserted && !r.expand) continue;
      std::uint64_t fmask = 0;
      if (sleep) fmask = mask_from_abstract(r.mask, rs.key);
      if (trace != nullptr && r.inserted) trace->mark_enqueued(concrete_id);
      push(Frontier{std::move(after), concrete_id, fmask,
                    /*revisit=*/!r.inserted});
    }
    i = j;
  }
}

// --- parallel reachability engine -------------------------------------------

/// Shared frontier of the worker pool.  A single deque behind one mutex is
/// deliberately simple: state *expansion* (successor computation + canonical
/// encoding) dominates queue traffic by orders of magnitude, and workers pop
/// and push in batches, so the lock is cold.  The visited set, where every
/// generated successor lands, is the contended structure — and that one is
/// sharded (see sharded_visited.hpp).
struct SharedFrontier {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frontier> items;
  unsigned working = 0;  ///< workers currently expanding a batch
  bool stop = false;     ///< cooperative stop (visitor veto or truncation)
  std::uint64_t max_size = 0;
};

ReachResult parallel_reach(const TransitionSystem& ts,
                           const ReachOptions& options,
                           const StateVisitor& visitor, unsigned workers) {
  const System& sys = ts.system();
  ReachResult result;
  ShardedVisitedSet local_visited;
  // With a trace sink the sink doubles as the visited set, so parent
  // recording and the once-only insert decision are one atomic step.
  ShardedVisitedSet& visited = options.trace ? *options.trace : local_visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  const bool collapse = options.por && ts.collapse_chains();
  // Reduction configuration.  Abstract keys are a pure function of the
  // system, so the driver-level abstraction (used for seeding) and its
  // per-worker clones (key() reuses mutable scratch, so one instance per
  // worker) always agree.
  const bool sleep = options.sleep_sets && sys.num_threads() <= 64;
  const std::unique_ptr<StateAbstraction> seed_abs =
      make_abstraction(sys, options, sleep);
  const bool reduced = seed_abs != nullptr;
  // The reduced paths' visited set: canonical orbit encodings (or masked
  // concrete ones under sleep-only) with per-state sleep masks.  Doubles as
  // *the* visited set in untraced reduced runs; traced runs keep the sink
  // concrete and use this as the expansion-ownership side set.
  ShardedVisitedSet canon_shared;
  SharedFrontier frontier;
  // Every popped state claims one index from the budget enforcer; claims
  // beyond a limit mark the stop reason instead of being expanded.  This is
  // the cooperative-parallel analogue of the sequential pre-pop bound check.
  BudgetEnforcer enforcer(options.budget, options.cancel, options.fault,
                          [&]() -> std::uint64_t {
                            std::uint64_t b =
                                reduced ? canon_shared.bytes() : 0;
                            if (options.trace != nullptr || !reduced) {
                              b += visited.bytes();
                            }
                            return b;
                          });
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> finals{0};
  std::atomic<std::uint64_t> blocked{0};
  std::atomic<std::uint64_t> por_reduced{0};
  std::atomic<std::uint64_t> por_chained{0};
  std::atomic<std::uint64_t> symmetry_hits{0};
  std::atomic<std::uint64_t> rf_merges{0};
  std::atomic<std::uint64_t> sleep_skips{0};

  AbstractKey seed_key;
  const auto canon_seed = [&](const Config& cfg) {
    if (!reduced) return;
    seed_abs->key(cfg, seed_key);
    canon_shared.insert_masked(seed_key.encoding, 0);
  };

  if (options.resume != nullptr) {
    seed_from_checkpoint(
        ts, *options.resume, options.trace,
        [&](std::span<const std::uint64_t> enc) {
          if (!reduced) visited.insert(enc);
        },
        canon_seed, frontier.items);
    frontier.max_size = frontier.items.size();
  } else {
    Config init = ts.initial();
    std::uint64_t id = ShardedVisitedSet::kNoState;
    if (options.trace) {
      id = options.trace
               ->insert_traced(init.encode(), ShardedVisitedSet::kNoState, 0,
                               "init")
               .id;
    } else if (!reduced) {
      visited.insert(init.encode());
    }
    canon_seed(init);
    frontier.items.push_back({std::move(init), id});
    frontier.max_size = 1;
  }

  const bool bfs = options.strategy == SearchStrategy::Bfs;
  constexpr std::size_t kMaxBatch = 32;

  const auto worker = [&] {
    std::vector<Frontier> batch;
    std::vector<Frontier> discovered;
    lang::StepBuffer steps;                // pooled successor storage
    lang::StepBuffer chain_steps;          // separate pool for chain collapse
    std::vector<std::uint64_t> scratch;    // reusable encoding buffer
    std::uint64_t chained = 0;             // batched into por_chained below
    std::unique_ptr<StateAbstraction> wabs;
    if (reduced) wabs = seed_abs->clone();
    ReduceScratch rs;
    std::uint64_t local_sym = 0;    // batched into symmetry_hits below
    std::uint64_t local_rf = 0;     // batched into rf_merges below
    std::uint64_t local_skips = 0;  // batched into sleep_skips below
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(frontier.mu);
        frontier.cv.wait(lock, [&] {
          return frontier.stop || !frontier.items.empty() ||
                 frontier.working == 0;
        });
        if (frontier.stop || (frontier.items.empty() && frontier.working == 0)) {
          frontier.cv.notify_all();
          return;
        }
        // Leave work for idle peers: take at most a 1/workers share.
        const std::size_t take = std::min(
            kMaxBatch,
            std::max<std::size_t>(1, frontier.items.size() / workers));
        for (std::size_t i = 0; i < take && !frontier.items.empty(); ++i) {
          if (bfs) {
            batch.push_back(std::move(frontier.items.front()));
            frontier.items.pop_front();
          } else {
            batch.push_back(std::move(frontier.items.back()));
            frontier.items.pop_back();
          }
        }
        frontier.working += 1;
      }

      discovered.clear();
      bool request_stop = false;
      for (const Frontier& item : batch) {
        const Config& cfg = item.cfg;
        if (item.revisit) {
          // Mask-shrink revisit: regenerate the same successor set
          // (expansion is a pure function of the configuration) and
          // reprocess it with the smaller mask.  No state claim, no stats,
          // no visitor — the state was already visited once.
          if (enforcer.probe() != StopReason::Complete) {
            request_stop = true;
            break;
          }
          (void)expand_steps(ts, cfg, options, steps, want_labels);
          process_steps_reduced(
              ts, options.trace, collapse, *wabs, sleep, item, steps.steps(),
              canon_shared, rs, /*count_stats=*/false, chained, local_sym,
              local_rf, local_skips,
              [&](Frontier&& f) { discovered.push_back(std::move(f)); });
          continue;
        }
        if (enforcer.claim() != StopReason::Complete) {
          // Remaining batch items are dropped without being expanded; they
          // stay recoverable through a checkpoint (they are interned and
          // marked enqueued, and resume re-expands every enqueued state).
          request_stop = true;
          break;
        }
        states.fetch_add(1, std::memory_order_relaxed);
        if (expand_steps(ts, cfg, options, steps, want_labels)) {
          por_reduced.fetch_add(1, std::memory_order_relaxed);
        }
        if (steps.empty()) {
          (cfg.all_done(sys) ? finals : blocked)
              .fetch_add(1, std::memory_order_relaxed);
        }
        transitions.fetch_add(steps.size(), std::memory_order_relaxed);
        const bool keep_going = visitor(cfg, item.id, steps.steps());
        if (reduced) {
          process_steps_reduced(
              ts, options.trace, collapse, *wabs, sleep, item, steps.steps(),
              canon_shared, rs, /*count_stats=*/true, chained, local_sym,
              local_rf, local_skips,
              [&](Frontier&& f) { discovered.push_back(std::move(f)); });
        } else {
          for (auto& step : steps.steps()) {
            Config after = std::move(step.after);
            if (options.trace) {
              // A successor that opens a deterministic chain is itself
              // chain-internal: collapse will fast-forward through it and
              // enqueue the chain's end instead.
              const bool chain_start =
                  collapse && chain_thread(ts, after).has_value();
              scratch.clear();
              after.encode_into(scratch);
              const auto ins = options.trace->insert_traced(
                  scratch, item.id, step.thread, std::move(step.label),
                  /*enqueued=*/!chain_start);
              if (!ins.inserted) continue;
              std::uint64_t id = ins.id;
              if (collapse &&
                  !collapse_traced(ts, *options.trace, after, id, chain_steps,
                                   scratch, chained)) {
                continue;
              }
              discovered.push_back({std::move(after), id});
            } else {
              if (collapse) collapse_untraced(ts, after, chain_steps, chained);
              scratch.clear();
              after.encode_into(scratch);
              if (visited.insert(scratch)) {
                discovered.push_back({std::move(after), ShardedVisitedSet::kNoState});
              }
            }
          }
        }
        if (!keep_going) {
          request_stop = true;
          break;
        }
      }
      if (chained != 0) {
        por_chained.fetch_add(chained, std::memory_order_relaxed);
        chained = 0;
      }
      if (local_sym != 0) {
        symmetry_hits.fetch_add(local_sym, std::memory_order_relaxed);
        local_sym = 0;
      }
      if (local_rf != 0) {
        rf_merges.fetch_add(local_rf, std::memory_order_relaxed);
        local_rf = 0;
      }
      if (local_skips != 0) {
        sleep_skips.fetch_add(local_skips, std::memory_order_relaxed);
        local_skips = 0;
      }

      {
        std::lock_guard<std::mutex> lock(frontier.mu);
        frontier.working -= 1;
        if (request_stop) frontier.stop = true;
        for (auto& item : discovered) {
          frontier.items.push_back(std::move(item));
        }
        frontier.max_size =
            std::max<std::uint64_t>(frontier.max_size, frontier.items.size());
      }
      frontier.cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  result.stats.states = states.load();
  result.stats.transitions = transitions.load();
  result.stats.finals = finals.load();
  result.stats.blocked = blocked.load();
  result.stats.peak_frontier = frontier.max_size;
  result.stats.visited_bytes = reduced ? canon_shared.bytes() : 0;
  if (options.trace != nullptr || !reduced) {
    result.stats.visited_bytes += visited.bytes();
  }
  result.stats.por_reduced = por_reduced.load();
  result.stats.por_chained = por_chained.load();
  result.stats.symmetry_hits = symmetry_hits.load();
  result.stats.rf_merges = rf_merges.load();
  result.stats.sleep_set_skips = sleep_skips.load();
  result.stop = enforcer.reason();
  return result;
}

ReachResult sequential_reach(const TransitionSystem& ts,
                             const ReachOptions& options,
                             const StateVisitor& visitor) {
  const System& sys = ts.system();
  ReachResult result;
  // Untraced runs keep the single lock-free interned set; a trace sink
  // replaces it (insert_traced assigns ids and records parent links).
  VisitedSet visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  const bool collapse = options.por && ts.collapse_chains();
  // Reduction configuration (mirrors parallel_reach).
  const bool sleep = options.sleep_sets && sys.num_threads() <= 64;
  const std::unique_ptr<StateAbstraction> abs =
      make_abstraction(sys, options, sleep);
  const bool reduced = abs != nullptr;
  SeqMaskedSet canon;  // the reduced paths' (masked) visited set
  ReduceScratch rs;
  BudgetEnforcer enforcer(options.budget, options.cancel, options.fault,
                          [&]() -> std::uint64_t {
                            std::uint64_t b = reduced ? canon.bytes() : 0;
                            if (options.trace) {
                              b += options.trace->bytes();
                            } else if (!reduced) {
                              b += visited.bytes();
                            }
                            return b;
                          });
  std::deque<Frontier> frontier;
  lang::StepBuffer steps;
  lang::StepBuffer chain_steps;  // separate pool: collapse runs mid-iteration
  std::vector<std::uint64_t> scratch;
  const auto canon_seed = [&](const Config& cfg) {
    if (!reduced) return;
    abs->key(cfg, rs.key);
    canon.insert_masked(rs.key.encoding, 0);
  };
  if (options.resume != nullptr) {
    seed_from_checkpoint(
        ts, *options.resume, options.trace,
        [&](std::span<const std::uint64_t> enc) {
          if (!reduced) visited.insert(enc);
        },
        canon_seed, frontier);
  } else {
    Config init = ts.initial();
    std::uint64_t id = ShardedVisitedSet::kNoState;
    if (options.trace) {
      id = options.trace
               ->insert_traced(init.encode(), ShardedVisitedSet::kNoState, 0,
                               "init")
               .id;
    } else if (!reduced) {
      visited.insert(init.encode());
    }
    canon_seed(init);
    frontier.push_back({std::move(init), id});
  }
  const bool bfs = options.strategy == SearchStrategy::Bfs;
  while (!frontier.empty()) {
    const bool revisit =
        bfs ? frontier.front().revisit : frontier.back().revisit;
    if (const StopReason gate = revisit ? enforcer.probe() : enforcer.claim();
        gate != StopReason::Complete) {
      result.stop = gate;
      break;
    }
    result.stats.peak_frontier =
        std::max<std::uint64_t>(result.stats.peak_frontier, frontier.size());
    Frontier item = bfs ? std::move(frontier.front()) : std::move(frontier.back());
    if (bfs) {
      frontier.pop_front();
    } else {
      frontier.pop_back();
    }
    const Config& cfg = item.cfg;
    bool keep_going = true;
    if (revisit) {
      // Mask-shrink revisit (see the parallel driver): same successor set,
      // smaller mask, no stats, no visitor, no state claim.
      (void)expand_steps(ts, cfg, options, steps, want_labels);
    } else {
      result.stats.states += 1;
      if (expand_steps(ts, cfg, options, steps, want_labels)) {
        result.stats.por_reduced += 1;
      }
      if (steps.empty()) {
        if (cfg.all_done(sys)) {
          result.stats.finals += 1;
        } else {
          result.stats.blocked += 1;
        }
      }
      result.stats.transitions += steps.size();
      keep_going = visitor(cfg, item.id, steps.steps());
    }
    if (reduced) {
      process_steps_reduced(
          ts, options.trace, collapse, *abs, sleep, item, steps.steps(), canon,
          rs, /*count_stats=*/!revisit, result.stats.por_chained,
          result.stats.symmetry_hits, result.stats.rf_merges,
          result.stats.sleep_set_skips,
          [&](Frontier&& f) { frontier.push_back(std::move(f)); });
    } else {
      for (auto& step : steps.steps()) {
        Config after = std::move(step.after);
        if (options.trace) {
          // Same chain-start rule as the parallel driver: see above.
          const bool chain_start =
              collapse && chain_thread(ts, after).has_value();
          scratch.clear();
          after.encode_into(scratch);
          const auto ins = options.trace->insert_traced(
              scratch, item.id, step.thread, std::move(step.label),
              /*enqueued=*/!chain_start);
          if (!ins.inserted) continue;
          std::uint64_t id = ins.id;
          if (collapse &&
              !collapse_traced(ts, *options.trace, after, id, chain_steps,
                               scratch, result.stats.por_chained)) {
            continue;
          }
          frontier.push_back({std::move(after), id});
        } else {
          if (collapse) {
            collapse_untraced(ts, after, chain_steps, result.stats.por_chained);
          }
          scratch.clear();
          after.encode_into(scratch);
          if (visited.insert(scratch)) {
            frontier.push_back({std::move(after), ShardedVisitedSet::kNoState});
          }
        }
      }
    }
    if (!keep_going) break;
  }
  result.stats.visited_bytes = reduced ? canon.bytes() : 0;
  if (options.trace) {
    result.stats.visited_bytes += options.trace->bytes();
  } else if (!reduced) {
    result.stats.visited_bytes += visited.bytes();
  }
  return result;
}

}  // namespace

bool expand_steps(const TransitionSystem& ts, const Config& cfg,
                  const ReachOptions& options, StepBuffer& out,
                  bool want_labels) {
  if (options.por) {
    if (const auto t = ts.ample_thread(cfg)) {
      ts.thread_successors_into(cfg, *t, out, want_labels);
      // An empty ample set (the eligible thread's step turned out disabled)
      // must not hide the other threads' steps: fall through to full
      // expansion.  Cannot happen for the current eligibility rules (local
      // steps and plain accesses are always enabled), but stays sound if
      // they ever widen.
      if (!out.empty()) return true;
    }
  }
  if (options.fuse_local_steps) {
    if (const auto t = ts.fusible_thread(cfg)) {
      ts.thread_successors_into(cfg, *t, out, want_labels);
      return false;
    }
  }
  ts.successors_into(cfg, out, want_labels);
  return false;
}

ReachResult visit_reachable(const TransitionSystem& ts,
                            const ReachOptions& options,
                            const StateVisitor& visitor) {
  // Strategy::Por and the historic `por` flag are one setting: normalise
  // both ways so callers may set either and stats/report code can key off
  // whichever it likes.
  if (options.mode == Strategy::Por || options.por) {
    ReachOptions normalised = options;
    normalised.mode = Strategy::Por;
    normalised.por = true;
    if (normalised.mode != options.mode || normalised.por != options.por) {
      return visit_reachable(ts, normalised, visitor);
    }
  }
  support::require(
      !(options.symmetry && options.rf_quotient),
      "--symmetry and --rf-quotient cannot be combined (v1): sleep masks "
      "cannot be transported through both quotients at once — pick one "
      "reduction");
  if (options.rf_quotient) {
    support::require(
        ts.system().options().model != memsem::MemoryModel::SC,
        "--rf-quotient requires the RC11 RAR model: under SC every access "
        "synchronises, so the quotient's view projection would drop "
        "observable state (drop --rf-quotient or the SC model)");
  }
  if (options.mode == Strategy::Sample) {
    support::require(
        !options.symmetry,
        "--symmetry requires exhaustive or POR exploration: the sampling "
        "strategy replays concrete schedules and cannot quotient states "
        "(drop --symmetry or the sampling strategy)");
    support::require(
        !options.rf_quotient,
        "--rf-quotient requires exhaustive or POR exploration: the sampling "
        "strategy replays concrete schedules and cannot quotient states "
        "(drop --rf-quotient or the sampling strategy)");
    return sample_reach(ts, options, visitor);
  }
  if (options.resume != nullptr) {
    // The enqueued set is a function of the reduction: a checkpoint taken
    // under POR seeds a different frontier than a full run needs (and vice
    // versa), so the settings must agree.  Thread count and strategy are
    // free to change — they never affect which states are enqueued.
    support::require(
        options.resume->por == options.por,
        "checkpoint was recorded with --por ",
        options.resume->por ? "on" : "off", " but this run has it ",
        options.por ? "on" : "off",
        "; resume must use the same reduction setting");
    // Same for the symmetry quotient: it decides which orbit representative
    // was interned and enqueued, so the settings must agree.
    support::require(
        options.resume->symmetry == options.symmetry,
        "checkpoint was recorded with --symmetry ",
        options.resume->symmetry ? "on" : "off", " but this run has it ",
        options.symmetry ? "on" : "off",
        "; resume must use the same reduction setting");
    // And for the execution-graph quotient, for the same reason: it decides
    // which class representative was interned and enqueued.
    support::require(
        options.resume->rf_quotient == options.rf_quotient,
        "checkpoint was recorded with --rf-quotient ",
        options.resume->rf_quotient ? "on" : "off", " but this run has it ",
        options.rf_quotient ? "on" : "off",
        "; resume must use the same reduction setting");
  }
  const unsigned workers = support::resolve_num_threads(options.num_threads);
  if (workers <= 1) return sequential_reach(ts, options, visitor);
  return parallel_reach(ts, options, visitor, workers);
}

ReachResult visit_reachable(const System& sys, const ReachOptions& options,
                            const StateVisitor& visitor) {
  const SystemTransitions ts(sys);
  return visit_reachable(ts, options, visitor);
}

}  // namespace rc11::engine
