// rc11lib/litmus/case_studies.hpp
//
// Classic mutual-exclusion protocols as verification case studies.  Both
// Peterson's and Dekker's algorithms contain a store-buffering shape
// ("publish my flag, then read the other's"), which release/acquire cannot
// order: under RC11 RAR both threads may enter the critical section, while
// under the SC baseline both algorithms are correct.  The framework decides
// this mechanically — and the refinement experiments show what to use
// instead (a verified lock library).

#pragma once

#include "lang/system.hpp"

namespace rc11::litmus {

/// A mutual-exclusion case study guarding a lost-update detector
/// (two threads each increment x once via read-then-write; every
/// mutual-exclusion violation shows up as a terminating run with x != 2).
struct MutexCaseStudy {
  std::string name;
  lang::System sys;
  lang::LocId x;  ///< the protected counter
};

/// Peterson's algorithm (flags + turn), all synchronisation release/acquire.
MutexCaseStudy peterson_counter();

/// Dekker's algorithm (flags + turn with polite back-off), release/acquire.
MutexCaseStudy dekker_counter();

/// True iff some terminating run of the case study loses an increment
/// (final x != 2) under the given semantics options.  `num_threads` follows
/// the explore::ExploreOptions convention; the verdict is thread-count
/// independent (exploration is exhaustive either way).
bool increment_lost(const MutexCaseStudy& study,
                    const memsem::SemanticsOptions& options,
                    unsigned num_threads = 1);

/// A sense-reversing barrier for two threads: each thread publishes a datum,
/// arrives at the barrier (FAI on the arrival counter; the last arrival
/// flips the sense flag with a releasing write, the other spins with
/// acquiring reads), then reads the *other* thread's datum.
///
/// Unlike Peterson/Dekker this protocol is *correct under RC11 RAR*: the
/// FAI chain synchronises the arrivals (an update reading a releasing update
/// merges its view), so the sense flip carries both pre-barrier writes and
/// both threads read fresh data.  A positive counterpart to the broken
/// mutex protocols.
struct BarrierCaseStudy {
  lang::System sys;
  lang::Reg r0;  ///< thread 0's read of thread 1's datum
  lang::Reg r1;  ///< thread 1's read of thread 0's datum
};

BarrierCaseStudy barrier_exchange();

}  // namespace rc11::litmus
