// Experiment A2: ablation of covered-set (cvd) enforcement.  The paper's
// UPDATE rule covers the write it reads from so that no later modification
// can squeeze in between — this is what makes read-modify-write atomic.
// Shape: with enforcement, two competing CAS(x, 0, _) cannot both succeed;
// without it, the double-success outcome appears and lock mutual exclusion
// collapses.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

bool double_success_reachable(bool enforce) {
  auto test = litmus::cas_agreement();
  memsem::SemanticsOptions opts;
  opts.enforce_covered = enforce;
  test.sys.set_options(opts);
  const auto result = explore::explore(test.sys);
  return explore::outcome_reachable(test.sys, result, test.observed, {1, 1});
}

/// With the covered set off, the CAS spinlock's mutual exclusion fails:
/// count reachable states where both threads sit in their critical sections.
std::uint64_t mutex_violations(bool enforce) {
  memsem::SemanticsOptions opts;
  opts.enforce_covered = enforce;
  locks::ClientArtifacts art;
  locks::CasSpinLock lock;
  auto sys = locks::instantiate(locks::counter_client(2, 1, &art), lock);
  sys.set_options(opts);
  explore::ExploreOptions eopts;
  eopts.stop_on_violation = false;
  const auto result = explore::explore(
      sys, eopts,
      [&](const lang::System& s, const lang::Config& cfg)
          -> std::optional<std::string> {
        (void)s;
        // Final states must satisfy x = 2 (both increments applied) when the
        // lock is correct; count finals with a lost update instead.
        if (!cfg.all_done(s)) return std::nullopt;
        const auto x = s.locations().find("x");
        if (cfg.mem.op(cfg.mem.last_op(x)).value != 2) {
          return "lost update";
        }
        return std::nullopt;
      });
  return result.violations.size();
}

void BM_CasAgreement(benchmark::State& state) {
  const bool enforce = state.range(0) != 0;
  bool reachable = false;
  for (auto _ : state) {
    reachable = double_success_reachable(enforce);
    benchmark::DoNotOptimize(reachable);
  }
  state.counters["double_success"] = reachable ? 1 : 0;
  state.SetLabel(enforce ? "cvd enforced" : "cvd ignored");
}
BENCHMARK(BM_CasAgreement)->Arg(1)->Arg(0);

void BM_SpinlockCounter(benchmark::State& state) {
  const bool enforce = state.range(0) != 0;
  std::uint64_t violations = 0;
  for (auto _ : state) {
    violations = mutex_violations(enforce);
    benchmark::DoNotOptimize(violations);
  }
  state.counters["lost_updates"] = static_cast<double>(violations);
  state.SetLabel(enforce ? "cvd enforced" : "cvd ignored");
}
BENCHMARK(BM_SpinlockCounter)->Arg(1)->Arg(0);

}  // namespace

int main(int argc, char** argv) {
  {
    const bool with = double_success_reachable(true);
    const bool without = double_success_reachable(false);
    rc11::bench::verdict(
        "A2", !with && without,
        std::string("double CAS success reachable: ") +
            (with ? "yes" : "no") + " with cvd, " + (without ? "yes" : "no") +
            " without — covering is what makes updates atomic");
    const auto lost_with = mutex_violations(true);
    const auto lost_without = mutex_violations(false);
    rc11::bench::verdict(
        "A2-lock", lost_with == 0 && lost_without > 0,
        "lock-protected counter lost updates: " + std::to_string(lost_with) +
            " with cvd, " + std::to_string(lost_without) + " without");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
