// rc11lib/engine/supervise.hpp
//
// Crash-tolerant multi-process reachability: a supervisor process forks N
// worker processes, hands them frontier batches over pipes (engine/wire.hpp
// frames carrying JSON records derived from the checkpoint v1 format) and
// merges their per-state results back into the exact bookkeeping the
// sequential driver (engine/reach.cpp) would have done — same visited-set
// interning, same stats, same stop reasons — so every checker built on
// visit_reachable gains a `--workers N` mode without changing its verdict
// logic.
//
// Division of labour:
//   * Workers are stateless evaluators.  A worker replays each dispatched
//     state from its recorded path (digest-checked, exactly like witness
//     replay), expands it with the engine's own expand_steps / chain_thread,
//     runs the checker's per-state logic (DistDelegate::evaluate) and ships
//     back successor chains, counts and checker events.  A worker owns the
//     hash partition of the abstract-key space its slot index names; a
//     restarted worker inherits the same partition.
//   * The supervisor owns every verdict-bearing data structure.  It absorbs
//     per-state results in strict global enqueue order (buffering early
//     arrivals), interning successors into the caller's trace sink with the
//     sequential driver's exact rules — so for a fixed program and options
//     the sink contents, ExploreStats and checker verdicts are identical for
//     *every* worker count, byte for byte, and identical across runs no
//     matter how batches interleave in wall-clock time.
//
// Robustness (the point of this module): heartbeats + waitpid detect dead
// or wedged workers; every inbound frame is CRC- and schema-validated; a
// dead/hung/poisoned worker is SIGKILLed and restarted with exponential
// backoff, and only its unacknowledged batch is resent (acked results are
// already absorbed or buffered — nothing is recomputed, nothing is absorbed
// twice).  When a batch exhausts its retry budget the run degrades
// gracefully: the slot's work is quarantined, surviving workers are
// drained, and the result reports StopReason::WorkerLost with whatever was
// soundly absorbed — a partial report and exit 3, never a wrong verdict and
// never a hang past the deadline (the supervisor re-probes the budget on
// every loop turn, even while every worker is wedged).
//
// The never-wrong-verdict argument, in one paragraph: workers compute pure
// functions of states the supervisor already interned; their results enter
// the run only after CRC + schema validation and only once, in a
// deterministic order; a worker death can therefore only *delay* or
// *withhold* results, never alter them, and withheld results surface as
// explicit truncation (WorkerLost => truncated() => verdicts are lower
// bounds), exactly like a state-cap or deadline stop.  docs/DESIGN.md
// expands this.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/abstraction.hpp"
#include "engine/budget.hpp"
#include "engine/reach.hpp"
#include "engine/sharded_visited.hpp"
#include "engine/transition_system.hpp"
#include "witness/json.hpp"

namespace rc11::engine {

/// Options for supervise_reach.  The zero-valued tuning knobs fall back to
/// RC11_DIST_* environment variables, then to built-in defaults, so tests
/// and CI can reshape batching without new CLI surface.
struct DistOptions {
  unsigned workers = 1;  ///< worker processes (>= 1; 1 is the reference run)
  Budget budget;
  bool por = false;
  bool fuse_local_steps = false;  ///< mirrored into the workers' expand_steps
  bool rf_quotient = false;
  RfPins rf_pins;  ///< extra rf-quotient key pins (ignored unless rf_quotient)
  /// States per dispatched batch (0: RC11_DIST_BATCH, default 32).
  std::uint64_t batch_size = 0;
  /// No frame from a worker with work outstanding for this long => it is
  /// wedged and gets killed/restarted (0: RC11_DIST_HANG_MS, default 5000).
  std::uint64_t hang_timeout_ms = 0;
  /// Base restart backoff, doubled per consecutive restart of the slot
  /// (0: RC11_DIST_BACKOFF_MS, default 25).
  std::uint64_t backoff_ms = 0;
  /// Times one batch may be retried after worker death/hang/corruption
  /// before the slot is given up for lost (0: RC11_DIST_RETRIES, default 2).
  std::uint64_t max_batch_retries = 0;
  const CancelToken* cancel = nullptr;
  /// State-level kinds gate the supervisor's absorption claims; the
  /// process-level kinds (Crash/Hang/Corrupt) fire inside workers, keyed by
  /// the global dispatch index (resends get fresh indices).
  FaultPlan fault;
};

/// The checker half of a supervised run, split at the process boundary:
/// evaluate() runs in the *worker* (it sees real Configs and Steps but must
/// emit only serialisable JSON events), absorb() runs in the *supervisor*
/// (it sees events plus the state's id in the shared trace sink, and owns
/// all verdict state).  Both halves exist in both processes — fork copies
/// the delegate — but each process only ever calls its own half.
class DistDelegate {
 public:
  virtual ~DistDelegate() = default;

  /// Worker side: checker logic for one claimed state (the analogue of a
  /// StateVisitor call).  Push any findings as JSON events; return false to
  /// veto further exploration (the supervisor stops claiming states once
  /// the veto is absorbed, exactly like a visitor returning false).
  virtual bool evaluate(const Config& cfg, std::span<const lang::Step> steps,
                        std::vector<witness::Json>& events) = 0;

  /// Supervisor side: absorb one event evaluate() emitted for the state
  /// interned as `id` in `sink` (path_to / decode_state reconstruct traces
  /// and witnesses).  Called in deterministic global state order, events in
  /// emission order.  Return false to veto further exploration.
  virtual bool absorb(const witness::Json& event, std::uint64_t id,
                      const ShardedVisitedSet& sink) = 0;
};

/// Robustness counters: how bumpy the run was, *not* part of the verdict
/// (a recovered run must stay byte-identical to an undisturbed one, so
/// these are reported next to — never inside — ExploreStats).
struct DistTelemetry {
  std::uint64_t worker_restarts = 0;  ///< processes killed and re-forked
  std::uint64_t batches_retried = 0;  ///< batches resent after a recovery
  std::uint64_t frames_corrupt = 0;   ///< frames rejected by CRC/schema
  std::uint64_t states_orphaned = 0;  ///< states quarantined by WorkerLost
};

struct DistResult {
  ExploreStats stats;
  /// Complete covers full enumeration and a delegate veto; WorkerLost means
  /// the retry budget died on some batch and `stats` covers only the states
  /// absorbed before the survivors drained.
  StopReason stop = StopReason::Complete;
  DistTelemetry telemetry;
  [[nodiscard]] bool truncated() const { return stop != StopReason::Complete; }
};

/// Rebuilds concrete Configs for states interned in a traced sink by
/// re-executing their recorded parent paths (the checkpoint restore idiom:
/// one-way encodings are validated by finding the successor whose encoding
/// matches the stored one).  Memoised, so materialising many states with
/// shared path prefixes costs each prefix once.  Supervisor-side only —
/// this is how the explorer hands real final Configs to its callers without
/// ever shipping a Config over the wire.
class ConfigMaterializer {
 public:
  ConfigMaterializer(const TransitionSystem& ts, const ShardedVisitedSet& sink)
      : ts_(ts), sink_(sink) {}

  /// The concrete configuration interned as `id`.  Throws InternalError if
  /// the recorded path does not replay (a sink corruption — cannot happen
  /// for states this process interned itself).
  [[nodiscard]] const Config& at(std::uint64_t id);

 private:
  const TransitionSystem& ts_;
  const ShardedVisitedSet& sink_;
  std::unordered_map<std::uint64_t, Config> memo_;
  StepBuffer buf_;
};

/// Runs the supervised multi-process exploration.  `sink` must be a fresh
/// trace sink and outlive the call; on return it holds exactly the states a
/// sequential traced run (same options, sleep sets off) would have interned
/// — checkpointable with make_checkpoint and resumable by single-process
/// runs.  Rejects workers == 0.  Not async-signal-reentrant (it forks and
/// temporarily ignores SIGPIPE); call it from one thread at a time.
[[nodiscard]] DistResult supervise_reach(const TransitionSystem& ts,
                                         const DistOptions& options,
                                         DistDelegate& delegate,
                                         ShardedVisitedSet& sink);

}  // namespace rc11::engine
