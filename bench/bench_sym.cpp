// Experiment SR: thread-symmetry reduction — visited states, transitions and
// wall-clock with the quotient off vs. on (both on top of POR), across the
// three targeted benchmark families (ticket-lock workers, symmetric queue
// clients, symmetric stack clients) plus controls.
//
// Verdict lines assert the tentpole's headline (>= 10x fewer visited states
// on the targeted families) and that the quotiented exploration reaches
// exactly the same final-configuration set — orbit closure at the explorer
// restores every concrete final the unreduced run reports.  With --json the
// same numbers become BENCH_sym.json, diffed by CI against
// bench/baseline_sym.json (state counts exact, throughput within tolerance),
// which also gates the symmetry-off path: the *_por cases must not move when
// the quotient evolves.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "queues/queue_objects.hpp"
#include "stacks/stack_objects.hpp"

namespace {

using namespace rc11;

struct Workload {
  std::string name;
  lang::System sys;
  bool expect_10x;  ///< targeted family: the >= 10x headline applies
};

/// N identical threads, each enqueue(1) then dequeue — fully interchangeable,
/// so the quotient collapses the thread orbit (up to N! per state class).
queues::QueueClientProgram sym_queue_client(unsigned threads) {
  return [threads](lang::System& sys, queues::QueueObject& q) {
    for (unsigned t = 0; t < threads; ++t) {
      auto tb = sys.thread();
      auto r = tb.reg("r");
      q.emit_enqueue(tb, lang::c(1), /*releasing=*/true);
      q.emit_dequeue(tb, r, /*acquiring=*/true);
    }
  };
}

/// N identical threads, each push(1) then pop.
stacks::StackClientProgram sym_stack_client(unsigned threads) {
  return [threads](lang::System& sys, stacks::StackObject& s) {
    for (unsigned t = 0; t < threads; ++t) {
      auto tb = sys.thread();
      auto r = tb.reg("r");
      s.emit_push(tb, lang::c(1), /*releasing=*/true);
      s.emit_pop(tb, r, /*acquiring=*/true);
    }
  };
}

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    locks::TicketLock lock;
    w.push_back({"sym_ticket_worker_4x1w2",
                 locks::instantiate(locks::worker_client(4, 1, 2), lock),
                 true});
    // Smaller orbit (3! = 6): the factor lands between 5x and 6x, guarding
    // the scaling story — reduction grows with the symmetric thread count.
    w.push_back({"sym_ticket_worker_3x1w2",
                 locks::instantiate(locks::worker_client(3, 1, 2), lock),
                 false});
  }
  {
    queues::AbstractQueue q;
    w.push_back({"sym_abstract_queue_4x",
                 queues::instantiate(sym_queue_client(4), q), true});
  }
  {
    queues::LockedRingQueue q(4);
    w.push_back({"sym_ring_queue_3x",
                 queues::instantiate(sym_queue_client(3), q), false});
  }
  {
    stacks::AbstractStack s;
    w.push_back({"sym_abstract_stack_4x",
                 stacks::instantiate(sym_stack_client(4), s), true});
  }
  // Control: asymmetric program — the reducer finds no interchangeable
  // threads and must pass through untouched (factor 1x, zero hits), guarding
  // against the numbers being an artifact of anything but the quotient.
  w.push_back({"sym_mp_litmus", litmus::mp_release_acquire().sys, false});
  return w;
}

double timed_explore(const lang::System& sys,
                     const explore::ExploreOptions& opts,
                     explore::ExploreResult& result) {
  result = explore::explore(sys, opts);  // warm-up
  double best_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = explore::explore(sys, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

bool finals_equal(const explore::ExploreResult& a,
                  const explore::ExploreResult& b) {
  if (a.final_configs.size() != b.final_configs.size()) return false;
  for (std::size_t i = 0; i < a.final_configs.size(); ++i) {
    if (a.final_configs[i].encode() != b.final_configs[i].encode()) {
      return false;
    }
  }
  return true;
}

void report_sym(rc11::bench::JsonReport& json) {
  for (const auto& [name, sys, expect_10x] : workloads()) {
    explore::ExploreOptions por_opts;
    por_opts.por = true;
    explore::ExploreOptions sym_opts = por_opts;
    sym_opts.symmetry = true;

    explore::ExploreResult baseline, reduced;
    const double por_s = timed_explore(sys, por_opts, baseline);
    const double sym_s = timed_explore(sys, sym_opts, reduced);

    const double factor = static_cast<double>(baseline.stats.states) /
                          static_cast<double>(reduced.stats.states);
    const bool exact = finals_equal(baseline, reduced);
    const bool ok = exact && (!expect_10x || factor >= 10.0);

    std::ostringstream detail;
    detail << name << ": " << baseline.stats.states << " -> "
           << reduced.stats.states << " states (" << factor << "x, "
           << (expect_10x ? "target >= 10x" : "control") << "), "
           << baseline.stats.transitions << " -> "
           << reduced.stats.transitions << " edges, "
           << reduced.stats.symmetry_hits << " orbit hits, "
           << reduced.stats.sleep_set_skips << " sleep skips, finals "
           << (exact ? "identical" : "DIFFER") << ", " << por_s * 1e3
           << " -> " << sym_s * 1e3 << " ms";
    rc11::bench::verdict("SR", ok, detail.str());

    json.add(name + "_por",
             {{"states", static_cast<double>(baseline.stats.states)},
              {"transitions", static_cast<double>(baseline.stats.transitions)},
              {"wall_ms", por_s * 1e3},
              {"states_per_s",
               static_cast<double>(baseline.stats.states) / por_s}});
    json.add(name + "_sym",
             {{"states", static_cast<double>(reduced.stats.states)},
              {"transitions", static_cast<double>(reduced.stats.transitions)},
              {"wall_ms", sym_s * 1e3},
              {"states_per_s",
               static_cast<double>(reduced.stats.states) / sym_s},
              {"reduction", factor},
              {"symmetry_hits",
               static_cast<double>(reduced.stats.symmetry_hits)},
              {"sleep_set_skips",
               static_cast<double>(reduced.stats.sleep_set_skips)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_sym(json);
  if (!json.write("bench_sym")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
