// Experiment CS (case studies): classic synchronisation protocols decided
// mechanically under both memory models.  Shape:
//   * Peterson's and Dekker's algorithms — correct under SC, broken under
//     RC11 RAR (the flag/turn store-buffering shape needs SC ordering);
//   * the sense-reversing barrier — correct under RC11 RAR (the FAI arrival
//     chain and releasing sense flip provide the needed synchronisation).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "litmus/case_studies.hpp"

namespace {

using namespace rc11;

void BM_Peterson(benchmark::State& state) {
  const bool sc = state.range(0) != 0;
  bool lost = false;
  for (auto _ : state) {
    memsem::SemanticsOptions opts;
    if (sc) opts.model = memsem::MemoryModel::SC;
    lost = litmus::increment_lost(litmus::peterson_counter(), opts);
    benchmark::DoNotOptimize(lost);
  }
  state.counters["increment_lost"] = lost ? 1 : 0;
  state.SetLabel(sc ? "SC" : "RC11 RAR");
}
BENCHMARK(BM_Peterson)->Arg(0)->Arg(1);

void BM_Dekker(benchmark::State& state) {
  const bool sc = state.range(0) != 0;
  bool lost = false;
  for (auto _ : state) {
    memsem::SemanticsOptions opts;
    if (sc) opts.model = memsem::MemoryModel::SC;
    lost = litmus::increment_lost(litmus::dekker_counter(), opts);
    benchmark::DoNotOptimize(lost);
  }
  state.counters["increment_lost"] = lost ? 1 : 0;
  state.SetLabel(sc ? "SC" : "RC11 RAR");
}
BENCHMARK(BM_Dekker)->Arg(0)->Arg(1);

void BM_Barrier(benchmark::State& state) {
  std::uint64_t states = 0;
  bool exact = false;
  for (auto _ : state) {
    auto study = litmus::barrier_exchange();
    const auto result = explore::explore(study.sys);
    states = result.stats.states;
    const auto outcomes = explore::final_register_values(
        study.sys, result, {study.r0, study.r1});
    exact = outcomes == std::vector<std::vector<lang::Value>>{{1, 1}};
    benchmark::DoNotOptimize(exact);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["exchange_exact"] = exact ? 1 : 0;
}
BENCHMARK(BM_Barrier);

}  // namespace

int main(int argc, char** argv) {
  {
    const bool peterson_rc11 = litmus::increment_lost(
        litmus::peterson_counter(), {});
    memsem::SemanticsOptions sc;
    sc.model = memsem::MemoryModel::SC;
    const bool peterson_sc =
        litmus::increment_lost(litmus::peterson_counter(), sc);
    bench::verdict("CS/peterson", peterson_rc11 && !peterson_sc,
                   "broken under RC11 RAR, correct under SC");
    const bool dekker_rc11 =
        litmus::increment_lost(litmus::dekker_counter(), {});
    const bool dekker_sc = litmus::increment_lost(litmus::dekker_counter(), sc);
    bench::verdict("CS/dekker", dekker_rc11 && !dekker_sc,
                   "broken under RC11 RAR, correct under SC");

    auto barrier = litmus::barrier_exchange();
    const auto result = explore::explore(barrier.sys);
    const auto outcomes = explore::final_register_values(
        barrier.sys, result, {barrier.r0, barrier.r1});
    bench::verdict(
        "CS/barrier",
        outcomes == std::vector<std::vector<lang::Value>>{{1, 1}},
        "sense-reversing barrier exchanges data under RC11 RAR (" +
            std::to_string(result.stats.states) + " states)");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
