#!/usr/bin/env sh
# Regenerates every checked-in bench baseline (bench/baseline_*.json) from a
# real bench run — the one reviewed command to run when a deliberate change
# moves the numbers.  Commit the refreshed baselines alongside that change;
# CI (check_bench_regression.py) diffs each bench's --json report against
# these files with exact state counts and a 30% throughput tolerance.
#
# Usage: tools/refresh_baselines.sh [BUILD_DIR]   (default: build)
#
# Notes:
#   * Run from the repository root on a quiet machine — wall-clock feeds the
#     states_per_s guard.
#   * A MISMATCH verdict in any bench output aborts the refresh: a baseline
#     must never launder a broken headline into CI.

set -eu

build_dir=${1:-build}
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

if [ ! -d "$build_dir" ]; then
  echo "error: build directory '$build_dir' not found (configure first:" \
       "cmake -B $build_dir -S .)" >&2
  exit 1
fi

# baseline file <- bench binary, as wired in .github/workflows/ci.yml.
refresh() {
  baseline=$1
  bench=$2
  echo "=== $bench -> bench/$baseline ==="
  cmake --build "$build_dir" -j --target "$bench"
  out=$("$build_dir/bench/$bench" --json "bench/$baseline" \
        --benchmark_filter=NONE)
  printf '%s\n' "$out"
  if printf '%s' "$out" | grep -q MISMATCH; then
    echo "error: $bench reported MISMATCH — fix the regression instead of" \
         "refreshing its baseline" >&2
    exit 1
  fi
}

refresh baseline_explore.json bench_semantics_throughput
refresh baseline_sample.json  bench_sample
refresh baseline_por.json     bench_por
refresh baseline_budget.json  bench_budget
refresh baseline_sym.json     bench_sym

echo
echo "Refreshed baselines:"
git diff --stat -- bench/baseline_explore.json bench/baseline_sample.json \
    bench/baseline_por.json bench/baseline_budget.json bench/baseline_sym.json
echo "Review the diff above, then commit the baselines with the change that" \
     "moved them."
