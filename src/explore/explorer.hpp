// rc11lib/explore/explorer.hpp
//
// Explicit-state exploration of the combined transition relation.  This is
// the engine behind the substitution documented in DESIGN.md: the paper
// discharges its lemmas symbolically in Isabelle/HOL; we decide the same
// questions on finite instantiations by enumerating every reachable
// configuration of the operational semantics.
//
// The enumeration itself lives in the shared engine layer — see
// engine/reach.hpp (generic reachability driver, sequential and parallel)
// and engine/transition_system.hpp (successor generation + independence
// metadata + ample-set POR).  This header re-exports the driver types under
// their historic explore:: names and adds the explorer proper: invariant
// evaluation, final-configuration collection and witness construction.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/reach.hpp"
#include "engine/supervise.hpp"
#include "lang/config.hpp"
#include "witness/witness.hpp"

namespace rc11::explore {

using lang::Config;
using lang::Step;
using lang::System;
using lang::ThreadId;

// Driver vocabulary, re-exported from the engine layer (the definitions
// moved there when og::check_outline and refinement::build_graph were ported
// onto the same driver).
using engine::ExploreStats;
using engine::ReachOptions;
using engine::ReachResult;
using engine::SampleOptions;
using engine::SearchStrategy;
using engine::ShardedVisitedSet;
using engine::StateVisitor;
using engine::Strategy;
using engine::visit_reachable;

struct ExploreOptions {
  /// Hard cap on distinct states; exploration reports truncation beyond it.
  std::uint64_t max_states = 1'000'000;
  SearchStrategy strategy = SearchStrategy::Dfs;
  /// Worker threads expanding configurations: 1 (the default) runs the exact
  /// sequential search — required for BFS shortest-trace guarantees and kept
  /// as the default for Owicki–Gries outline checking; 0 resolves to
  /// std::thread::hardware_concurrency(); N > 1 runs a shared-frontier pool
  /// over a lock-striped visited set (engine/sharded_visited.hpp).  For
  /// every thread count the *set* of visited states, final configurations,
  /// outcomes and the presence of violations are identical (final configs
  /// and violations are sorted canonically before returning); only per-run
  /// orderings — which violation is reported first under stop_on_violation,
  /// which states fall inside a max_states truncation — may differ.  The
  /// invariant callback must be thread-safe when more than one worker
  /// resolves.  track_traces composes with every thread count: parent links
  /// are recorded per interned state under the visited-set shard lock, so a
  /// parallel run's trace may differ from a sequential run's but is always a
  /// real execution (and always replays — see witness::replay).
  unsigned num_threads = 1;
  /// Sound reduction for outcome-set exploration: when some thread's next
  /// instruction is *local* (Assign / Branch / Jump — deterministic, no
  /// memory effect), expand only that thread.  Local steps commute with all
  /// other transitions and can never be disabled, so reachable final states
  /// and memory behaviours are preserved while intermediate interleavings of
  /// program counters are pruned.  Leave off when checking proof outlines
  /// (annotations quantify over the *full* interleaving set).
  bool fuse_local_steps = false;
  /// Ample-set partial-order reduction in the shared driver (subsumes
  /// fuse_local_steps; adds the cycle proviso and private relaxed accesses —
  /// see engine/transition_system.hpp).  Sound for final-register values,
  /// reachable outcomes, deadlocks and the final/blocked state sets; the
  /// reduced graph is identical for every num_threads, and witnesses from
  /// reduced runs replay through the full semantics.  Per-state invariants
  /// are evaluated on the reduced state set: violations found are real, and
  /// violations occurring at final/blocked states are never missed, but a
  /// violation confined to a pruned intermediate interleaving may be (the
  /// RC11_POR_CROSSCHECK test suite checks exact agreement on the corpus —
  /// see docs/SEMANTICS.md §9).  Default off.
  bool por = false;
  /// Thread-symmetry reduction (engine/symmetry.hpp): quotient the visited
  /// set by thread permutations of provably interchangeable threads
  /// (identical program text modulo thread id) and layer sleep-set
  /// transition pruning on top.  Exact for verdicts, outcomes, finals and
  /// invariant violations: the explorer orbit-closes final configurations
  /// and evaluates the invariant at every orbit member of each visited
  /// representative, so nothing a full run reports is missed — violation
  /// *traces* lead to the visited representative (a real execution; a
  /// violation at a permuted configuration is flagged in the trace).  A
  /// sound no-op on programs with no interchangeable threads.  Composes
  /// with por, budgets, track_traces and checkpoint/resume (the checkpoint
  /// records the setting; resume rejects a mismatch).  Rejected under
  /// Strategy::Sample.
  bool symmetry = false;
  /// Execution-graph quotient (engine/abstraction.hpp): deduplicate states
  /// by [pcs, registers, rf/mo projection] instead of the concrete encoding,
  /// folding interleavings that built the same execution graph.  Exact for
  /// verdicts, outcome sets (final register values) and race sets; the
  /// *concrete* final_configs list holds one class representative per merged
  /// class, so callers comparing runs must compare outcomes, not raw final
  /// encodings.  Invariants are evaluated on class representatives: pass
  /// the invariant's view footprint in rf_pins so the predicate is a
  /// function of the quotient key (assertions::Assertion::footprint()), and
  /// reject footprint-less predicates before setting this.  Composes with
  /// por, budgets, track_traces and checkpoint/resume (setting pinned in
  /// the checkpoint); rejected with --symmetry (v1), under Strategy::Sample
  /// and under the SC memory model.
  bool rf_quotient = false;
  /// Viewfront entries to pin into the rf-quotient key (see above); ignored
  /// unless rf_quotient.
  engine::RfPins rf_pins;
  /// Coverage mode (engine/sample.hpp): Exhaustive (default), Por — same
  /// setting as `por` above, either spelling works — or Sample, which runs
  /// `sample.episodes` seeded random schedules instead of enumerating and
  /// reports StopReason::EpisodeCap unless something stopped it earlier.
  /// Under Sample: checkpoint_path/resume are rejected loudly, violations
  /// and finals are the ones the episodes covered (a lower bound), and the
  /// exhaustive modes stay the oracle on small instances.
  Strategy mode = Strategy::Exhaustive;
  /// Tuning for mode == Strategy::Sample (episodes, seed, guided bias,
  /// episode step cap); ignored otherwise.
  SampleOptions sample;
  /// Stop at the first invariant violation (otherwise keep counting).
  bool stop_on_violation = true;
  /// Record parent links and step labels so violations come with a full
  /// counterexample trace and a structured replayable witness (costs memory;
  /// default off for benchmarks).  Works for any num_threads.
  bool track_traces = false;
  /// Keep a copy of every final configuration (needed for outcome sets).
  bool collect_finals = true;
  /// Memory budget for the visited set in bytes (0 = unlimited); exceeding
  /// it stops the run with StopReason::MemCap and valid partial results.
  std::uint64_t max_visited_bytes = 0;
  /// Wall-clock deadline in milliseconds (0 = none); expiry stops the run
  /// with StopReason::Deadline.
  std::uint64_t deadline_ms = 0;
  /// Cooperative cancellation token (see engine::CancelToken); polled once
  /// per claimed state.  Must outlive the call; null disables the check.
  const engine::CancelToken* cancel = nullptr;
  /// Deterministic fault injection (robustness tests; see engine::FaultPlan).
  engine::FaultPlan fault;
  /// Resume from a checkpoint of an earlier stopped run (must outlive the
  /// call; `por` must match the checkpoint's).  Verdicts, states,
  /// transitions, finals and blocked counts equal an uninterrupted run's.
  const engine::Checkpoint* resume = nullptr;
  /// When non-empty and the run stops early (any StopReason other than
  /// Complete), write a checkpoint file here.  Implies trace recording (the
  /// checkpoint is built from the trace sink), so violations carry witnesses
  /// as under track_traces.
  std::string checkpoint_path;
  /// Supervised multi-process exploration (engine/supervise.hpp): fork this
  /// many worker processes, partition the frontier by state hash and merge
  /// results deterministically — verdicts, stats, finals and violations are
  /// byte-identical for every worker count, and a crashed/hung worker is
  /// restarted with only its unacknowledged batch replayed.  0 (default)
  /// stays in-process.  Rejected with symmetry, Strategy::Sample,
  /// num_threads > 1 and resume; composes with por, rf_quotient, budgets,
  /// cancellation and checkpoint_path (the sink is checkpointed on
  /// truncation, resumable by single-process runs).
  unsigned workers = 0;
};

/// An invariant violation with an optional counterexample trace.
struct Violation {
  std::string what;              ///< description from the invariant callback
  std::string state_dump;        ///< pretty-printed violating configuration
  std::vector<std::string> trace;  ///< step labels from the initial state
  /// Structured, replayable counterexample (present iff track_traces):
  /// serialise with witness::to_json, validate with witness::replay.
  std::optional<witness::Witness> witness;
};

struct ExploreResult {
  ExploreStats stats;
  /// Deduplicated (iff collect_finals) and sorted by canonical encoding, so
  /// results compare equal across search strategies and thread counts.
  std::vector<Config> final_configs;
  /// Sorted by (what, state_dump); identical modulo traces for any thread
  /// count when stop_on_violation is off.
  std::vector<Violation> violations;
  /// Why the run ended; anything but Complete means partial results (a
  /// stop_on_violation stop is Complete — stopping was the caller's choice).
  engine::StopReason stop = engine::StopReason::Complete;
  bool truncated = false;  ///< stop != Complete: results are a lower bound
  /// Robustness counters of a supervised run (all zero when workers == 0 or
  /// the run was undisturbed).  Deliberately *not* part of `stats`: a
  /// recovered run must stay byte-identical to an undisturbed one in every
  /// verdict-bearing output, so these are surfaced in human-readable stats
  /// blocks only.
  engine::DistTelemetry dist;

  [[nodiscard]] bool ok() const { return violations.empty() && !truncated; }
};

/// Invariant callback: return a description to report a violation at this
/// reachable configuration, or std::nullopt if the configuration is fine.
/// Must be thread-safe when ExploreOptions::num_threads resolves to > 1.
using Invariant =
    std::function<std::optional<std::string>(const System&, const Config&)>;

/// Explores all configurations reachable from the initial configuration.
/// `invariant` (if given) is evaluated at every reachable configuration.
[[nodiscard]] ExploreResult explore(const System& sys,
                                    const ExploreOptions& options = {},
                                    const Invariant& invariant = {});

/// Convenience: the set of final values of selected registers, as tuples in
/// the order given.  This is how litmus outcomes ("r1 = 1, r2 = 0 allowed?")
/// are extracted.
[[nodiscard]] std::vector<std::vector<lang::Value>> final_register_values(
    const System& sys, const ExploreResult& result,
    const std::vector<lang::Reg>& regs);

/// True iff some final configuration assigns exactly `values` to `regs`.
[[nodiscard]] bool outcome_reachable(const System& sys,
                                     const ExploreResult& result,
                                     const std::vector<lang::Reg>& regs,
                                     const std::vector<lang::Value>& values);

}  // namespace rc11::explore
