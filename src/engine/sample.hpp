// rc11lib/engine/sample.hpp
//
// The third exploration strategy next to exhaustive search and ample-set
// POR: feedback-guided randomized *sampling* of whole schedules, in the
// C11Tester style.  Instead of enumerating the reachable state space, the
// sampling driver runs `episodes` complete executions of the semantics; at
// every configuration it draws the next thread from a seeded weighted RNG
// (and, because lang::successors enumerates memory nondeterminism as
// separate steps, a second draw *within* the chosen thread's steps picks
// the reads-from / placement / CAS option), then moves on.  Guided biasing
// down-weights (thread, pc) sites proportionally to how often they have
// already been executed, so rarely-taken branches — and threads stuck
// behind a spin loop that keeps winning the draw — get revisited instead of
// resampled; the within-thread draw is rarity-weighted the same way, keyed
// (thread, pc, choice index), so episodes drift towards the stale reads
// that distinguish weak behaviours instead of re-reading the latest write.
// With guided off both draws are uniform.
//
// Exhaustive exploration stays the oracle: on instances small enough to
// enumerate, sampling with enough episodes visits a subset of the exhaustive
// state set and agrees on every violation it finds.  Beyond exhaustive
// reach (~10^6-10^7 states), sampling is the only mode that still produces
// verdicts — always honest ones: a sampling run that finds no violation
// ends with StopReason::EpisodeCap, i.e. "results are a lower bound", never
// with a completeness claim.
//
// Composition with the existing subsystems (see engine/reach.hpp for the
// driver contract):
//   * budgets     — Budget::max_states caps *distinct* states (the coverage
//                   estimate), deadlines and memory caps are probed during
//                   episodes, and the episode count itself is the new
//                   EpisodeCap stop reason;
//   * witnesses   — with a trace sink every sampled step is interned via
//                   resolve_traced, so a violating episode is a replayable
//                   witness exactly like an exhaustive one;
//   * checkpoints — there is no meaningful frontier to checkpoint (the
//                   coverage set plus the RNG/bias state is not a resumable
//                   work list), so ReachOptions::resume and checkpoint
//                   requests are *rejected loudly* under sampling instead of
//                   silently producing a wrong continuation.
//
// Episodes run sequentially regardless of ReachOptions::num_threads: the
// guided bias makes episode e depend on every episode before it, so a
// parallel schedule would break seed determinism — and same seed ==> same
// run, byte for byte, is the property CI enforces.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rc11::engine {

/// How the reachability driver covers the state space.  Exhaustive and Por
/// enumerate every reachable state (Por over the ample-reduced relation);
/// Sample draws random schedules instead and covers a subset.
enum class Strategy : std::uint8_t {
  Exhaustive,  ///< full enumeration (the historic default)
  Por,         ///< full enumeration over the ample-set reduced relation
  Sample,      ///< seeded weighted random schedules (episodes)
};

/// Stable lower-case names ("exhaustive", "por", "sample") for reports and
/// JSON summaries.
[[nodiscard]] const char* to_string(Strategy strategy) noexcept;

/// Tuning knobs for Strategy::Sample.
struct SampleOptions {
  /// Schedules to run end-to-end.  The CLI spelling `--strategy sample:N`
  /// sets this; a sampling run that exhausts it stops with
  /// StopReason::EpisodeCap (sampling never claims completeness).
  std::uint64_t episodes = 4096;
  /// RNG seed.  Same program + same options + same seed reproduces the run
  /// exactly — schedules, coverage, verdicts and stats.
  std::uint64_t seed = 0;
  /// Feedback-guided biasing: down-weight (thread, pc) sites — and, within
  /// the drawn thread, (thread, pc, choice index) memory-nondeterminism
  /// alternatives — by how often they have already executed, across and
  /// within episodes.  Off = both draws are uniform.
  bool guided = true;
  /// Per-episode schedule-length cap, the spin-loop safety valve: an
  /// episode that has not reached a final or blocked configuration after
  /// this many steps is abandoned (it still counts as an episode; its
  /// states stay in the coverage set).  0 = the built-in default.
  std::uint64_t max_episode_steps = 0;
};

/// Default for SampleOptions::max_episode_steps == 0.  Generous against the
/// corpus (complete schedules there run tens to hundreds of steps) while
/// still bounding a pathological all-spin schedule.
inline constexpr std::uint64_t kDefaultEpisodeStepCap = 20'000;

/// Parses a --strategy value: "exhaustive", "por", "sample" or "sample:N"
/// (N = episode count, whole positive number).  Returns false on anything
/// else; `strategy`/`sample_episodes` are only written on success
/// (`sample_episodes` only by the sample:N form).
[[nodiscard]] bool parse_strategy(std::string_view text, Strategy& strategy,
                                  std::uint64_t& sample_episodes);

}  // namespace rc11::engine
