file(REMOVE_RECURSE
  "CMakeFiles/test_memsem.dir/test_memsem.cpp.o"
  "CMakeFiles/test_memsem.dir/test_memsem.cpp.o.d"
  "test_memsem"
  "test_memsem.pdb"
  "test_memsem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
