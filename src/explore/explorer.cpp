#include "explore/explorer.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/symmetry.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::explore {

namespace {

// Successor generation and the sequential/parallel reachability drivers live
// in the engine layer (engine/reach.cpp, engine/transition_system.cpp); this
// translation unit only layers invariant checking, final-config collection
// and witness construction on top of engine::visit_reachable.

/// A final configuration together with its canonical encoding.  The
/// encoding is computed exactly once — when the config passes final
/// deduplication — and reused as the sort key, fixing the old
/// encode-for-dedup-then-re-encode-for-sort double work.
using KeyedConfig = std::pair<std::vector<std::uint64_t>, Config>;

/// Canonical ordering for deterministic results across thread counts: sort
/// configs by their encodings (equal encodings == semantically identical
/// configurations, so the order is total on deduplicated sets), then strip
/// the keys.
std::vector<Config> sort_keyed_configs(std::vector<KeyedConfig>& keyed) {
  std::sort(keyed.begin(), keyed.end(),
            [](const KeyedConfig& a, const KeyedConfig& b) {
              return a.first < b.first;
            });
  std::vector<Config> sorted;
  sorted.reserve(keyed.size());
  for (auto& [enc, cfg] : keyed) sorted.push_back(std::move(cfg));
  keyed.clear();
  return sorted;
}

void sort_violations(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.what != b.what) return a.what < b.what;
              return a.state_dump < b.state_dump;
            });
}

/// The explorer's two halves of a supervised run (engine/supervise.hpp):
/// evaluate() reproduces the visitor's per-state logic in the worker process
/// as serialisable events; absorb() rebuilds violations (with traces and
/// witnesses from the shared sink) and final configurations (re-executed via
/// ConfigMaterializer) in the supervisor, in deterministic state order.
class ExploreDelegate final : public engine::DistDelegate {
 public:
  ExploreDelegate(const System& sys, const ExploreOptions& options,
                  const Invariant& invariant,
                  engine::ConfigMaterializer& materializer)
      : sys_(sys),
        options_(options),
        invariant_(invariant),
        materializer_(materializer),
        init_digest_(options.track_traces
                         ? witness::config_digest(lang::initial_config(sys))
                         : 0) {}

  bool evaluate(const Config& cfg, std::span<const Step> steps,
                std::vector<witness::Json>& events) override {
    bool keep = true;
    if (invariant_) {
      if (auto what = invariant_(sys_, cfg)) {
        witness::Json e = witness::Json::object();
        e.set("kind", witness::Json::string("violation"));
        e.set("what", witness::Json::string(std::move(*what)));
        e.set("dump", witness::Json::string(cfg.to_string(sys_)));
        events.push_back(std::move(e));
        if (options_.stop_on_violation) keep = false;
      }
    }
    if (options_.collect_finals && steps.empty() && cfg.all_done(sys_)) {
      witness::Json e = witness::Json::object();
      e.set("kind", witness::Json::string("final"));
      events.push_back(std::move(e));
    }
    return keep;
  }

  bool absorb(const witness::Json& event, std::uint64_t id,
              const ShardedVisitedSet& sink) override {
    const std::string& kind = event.at("kind").as_string();
    if (kind == "violation") {
      Violation v;
      v.what = event.at("what").as_string();
      v.state_dump = event.at("dump").as_string();
      if (options_.track_traces) {
        const auto edges = sink.path_to(id);
        v.trace.reserve(edges.size() + 1);
        v.trace.emplace_back("init");
        witness::Witness w;
        w.kind = "invariant";
        w.source = "explore";
        w.what = v.what;
        w.state_dump = v.state_dump;
        w.initial_digest = init_digest_;
        w.steps.reserve(edges.size());
        std::vector<std::uint64_t> enc;
        for (const auto& e : edges) {
          v.trace.push_back(e.label);
          enc.clear();
          sink.decode_state(e.state, enc);
          w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
        }
        v.witness = std::move(w);
      }
      violations.push_back(std::move(v));
      return !options_.stop_on_violation;
    }
    if (kind == "final" && options_.collect_finals) {
      const Config& done = materializer_.at(id);
      std::vector<std::uint64_t> enc;
      enc.reserve(64);
      done.encode_into(enc);
      if (final_dedup_.insert(enc)) finals.emplace_back(std::move(enc), done);
    }
    return true;
  }

  std::vector<KeyedConfig> finals;
  std::vector<Violation> violations;

 private:
  const System& sys_;
  const ExploreOptions& options_;
  const Invariant& invariant_;
  engine::ConfigMaterializer& materializer_;
  const std::uint64_t init_digest_;
  ShardedVisitedSet final_dedup_;
};

/// The --workers path: same verdict logic as the in-process explorer, run
/// through the supervised multi-process driver.
ExploreResult explore_dist(const System& sys, const ExploreOptions& options,
                           const Invariant& invariant) {
  support::require(!options.symmetry,
                   "--workers cannot be combined with --symmetry");
  support::require(options.mode != Strategy::Sample,
                   "--workers cannot be combined with --strategy sample");
  support::require(options.num_threads <= 1,
                   "--workers runs worker processes; combine with --threads 1");
  support::require(options.resume == nullptr,
                   "--workers cannot resume a checkpoint; resume runs "
                   "single-process (the checkpoint it writes is compatible)");

  engine::SystemTransitions ts(sys);
  engine::ShardedVisitedSet sink;
  engine::ConfigMaterializer materializer(ts, sink);
  ExploreDelegate delegate(sys, options, invariant, materializer);

  engine::DistOptions dopts;
  dopts.workers = options.workers;
  dopts.budget.max_states = options.max_states;
  dopts.budget.max_visited_bytes = options.max_visited_bytes;
  dopts.budget.deadline_ms = options.deadline_ms;
  dopts.por = options.por || options.mode == Strategy::Por;
  dopts.fuse_local_steps = options.fuse_local_steps;
  dopts.rf_quotient = options.rf_quotient;
  dopts.rf_pins = options.rf_pins;
  dopts.cancel = options.cancel;
  dopts.fault = options.fault;

  const auto dres = engine::supervise_reach(ts, dopts, delegate, sink);

  ExploreResult result;
  result.stats = dres.stats;
  result.stop = dres.stop;
  result.truncated = dres.truncated();
  result.dist = dres.telemetry;
  if (!options.checkpoint_path.empty() && dres.truncated()) {
    engine::save_checkpoint(
        engine::make_checkpoint(sink, dres.stats, dres.stop,
                                dopts.por, /*symmetry=*/false,
                                options.rf_quotient),
        options.checkpoint_path);
  }
  result.final_configs = sort_keyed_configs(delegate.finals);
  result.violations = std::move(delegate.violations);
  sort_violations(result.violations);
  return result;
}

}  // namespace

ExploreResult explore(const System& sys, const ExploreOptions& options,
                      const Invariant& invariant) {
  // One implementation for every thread count and trace mode, layered on
  // the generic reachability driver: final-config collection, invariant
  // evaluation, and — when track_traces — witness construction from the
  // trace sink's parent links.  The mutexes are uncontended in sequential
  // runs and cold in parallel ones (finals and violations are rare events
  // next to state expansion).
  if (options.workers > 0) return explore_dist(sys, options, invariant);
  ExploreResult result;
  // A sampling run has no frontier to checkpoint or resume; reject here so
  // the caller hears about it before any exploration work happens (the
  // engine layer guards resume again for direct callers).
  if (options.mode == Strategy::Sample) {
    support::require(options.checkpoint_path.empty(),
                     "--checkpoint is not supported under --strategy sample: "
                     "a sampling run has no frontier to save");
    support::require(options.resume == nullptr,
                     "--resume is not supported under --strategy sample: a "
                     "sampling run has no frontier to continue from");
  }
  std::optional<ShardedVisitedSet> trace_store;
  // Checkpoints are built from the trace sink, so requesting one implies
  // trace recording.
  if (options.track_traces || !options.checkpoint_path.empty()) {
    trace_store.emplace();
  }

  // Under the symmetry quotient the driver hands the visitor one orbit
  // representative per equivalence class; exactness of finals and invariant
  // verdicts is *this* layer's duty: finals are orbit-closed and the
  // invariant is evaluated at every orbit member.  for_each_orbit and
  // permuted() are const and scratch-free, so one reducer is safely shared
  // by all visitor threads.
  std::optional<engine::SymmetryReducer> reducer;
  if (options.symmetry) reducer.emplace(sys);
  const bool orbit = reducer.has_value() && reducer->symmetric();

  ReachOptions ropts;
  ropts.budget.max_states = options.max_states;
  ropts.budget.max_visited_bytes = options.max_visited_bytes;
  ropts.budget.deadline_ms = options.deadline_ms;
  ropts.num_threads = options.num_threads;
  ropts.strategy = options.strategy;
  ropts.fuse_local_steps = options.fuse_local_steps;
  ropts.por = options.por;
  ropts.symmetry = options.symmetry;
  ropts.rf_quotient = options.rf_quotient;
  ropts.rf_pins = options.rf_pins;
  // Both quotients pay the masked visited set already; sleep-set pruning
  // rides along for free on that path.
  ropts.sleep_sets = options.symmetry || options.rf_quotient;
  ropts.mode = options.mode;
  ropts.sample = options.sample;
  ropts.trace = trace_store ? &*trace_store : nullptr;
  ropts.cancel = options.cancel;
  ropts.fault = options.fault;
  ropts.resume = options.resume;

  const std::uint64_t init_digest =
      options.track_traces ? witness::config_digest(lang::initial_config(sys))
                           : 0;

  ShardedVisitedSet final_dedup;
  std::mutex finals_mu;
  std::vector<KeyedConfig> finals;
  std::mutex violations_mu;
  std::vector<Violation> violations;

  const auto reach = visit_reachable(
      sys, ropts,
      [&](const Config& cfg, std::uint64_t id,
          std::span<const Step> steps) -> bool {
        bool keep_going = true;
        if (invariant) {
          const auto check_member = [&](const Config& member, bool is_rep) {
            auto what = invariant(sys, member);
            if (!what) return;
            Violation v;
            v.what = std::move(*what);
            v.state_dump = member.to_string(sys);
            if (trace_store) {
              // path_to is safe against concurrent inserts, so a violating
              // state is reconstructed right here, mid-run.  Under the
              // quotient the recorded path leads to the orbit
              // *representative*; for a violation at a permuted member the
              // trace is still a real execution (witness digests replay to
              // the representative) and the permutation is flagged below.
              const auto edges = trace_store->path_to(id);
              v.trace.reserve(edges.size() + 2);
              v.trace.emplace_back("init");
              witness::Witness w;
              w.kind = "invariant";
              w.source = "explore";
              w.what = v.what;
              w.state_dump = v.state_dump;
              w.initial_digest = init_digest;
              w.steps.reserve(edges.size());
              std::vector<std::uint64_t> enc;
              for (const auto& e : edges) {
                v.trace.push_back(e.label);
                enc.clear();
                trace_store->decode_state(e.state, enc);
                w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
              }
              if (!is_rep) {
                v.trace.emplace_back(
                    "(violating state is a thread permutation of the state "
                    "this trace reaches)");
              }
              v.witness = std::move(w);
            }
            std::lock_guard<std::mutex> lock(violations_mu);
            violations.push_back(std::move(v));
            if (options.stop_on_violation) keep_going = false;
          };
          if (orbit) {
            bool is_rep = true;
            reducer->for_each_orbit(
                cfg, [&](const Config& member, const engine::ThreadPerm&) {
                  check_member(member, is_rep);
                  is_rep = false;
                });
          } else {
            check_member(cfg, /*is_rep=*/true);
          }
        }
        if (options.collect_finals && steps.empty() && cfg.all_done(sys)) {
          const auto collect = [&](const Config& done) {
            // Encode once; the encoding doubles as the dedup key here and
            // the canonical sort key below.
            std::vector<std::uint64_t> enc;
            enc.reserve(64);
            done.encode_into(enc);
            if (final_dedup.insert(enc)) {
              std::lock_guard<std::mutex> lock(finals_mu);
              finals.emplace_back(std::move(enc), done);
            }
          };
          // all_done is permutation-invariant, so orbit-closing the finals
          // here restores the exact final set of an unreduced run.
          if (orbit) {
            reducer->for_each_orbit(
                cfg, [&](const Config& member, const engine::ThreadPerm&) {
                  collect(member);
                });
          } else {
            collect(cfg);
          }
        }
        return keep_going;
      });

  result.stats = reach.stats;
  result.stop = reach.stop;
  result.truncated = reach.truncated();
  if (!options.checkpoint_path.empty() && reach.truncated()) {
    engine::save_checkpoint(
        engine::make_checkpoint(*trace_store, reach.stats, reach.stop,
                                options.por, options.symmetry,
                                options.rf_quotient),
        options.checkpoint_path);
  }
  result.final_configs = sort_keyed_configs(finals);
  result.violations = std::move(violations);
  sort_violations(result.violations);
  return result;
}

std::vector<std::vector<lang::Value>> final_register_values(
    const System& sys, const ExploreResult& result,
    const std::vector<lang::Reg>& regs) {
  std::vector<std::vector<lang::Value>> outcomes;
  outcomes.reserve(result.final_configs.size());
  for (const auto& cfg : result.final_configs) {
    std::vector<lang::Value> tuple;
    tuple.reserve(regs.size());
    for (const auto& r : regs) {
      RC11_REQUIRE(r.thread < cfg.regs.size() && r.id < cfg.regs[r.thread].size(),
                   "register out of range in outcome extraction");
      tuple.push_back(cfg.regs[r.thread][r.id]);
    }
    outcomes.push_back(std::move(tuple));
  }
  // Sort-then-unique instead of a std::find per final config: the old
  // quadratic dedup dominated outcome extraction on large final sets.
  std::sort(outcomes.begin(), outcomes.end());
  outcomes.erase(std::unique(outcomes.begin(), outcomes.end()), outcomes.end());
  (void)sys;
  return outcomes;
}

bool outcome_reachable(const System& sys, const ExploreResult& result,
                       const std::vector<lang::Reg>& regs,
                       const std::vector<lang::Value>& values) {
  const auto outcomes = final_register_values(sys, result, regs);
  return std::binary_search(outcomes.begin(), outcomes.end(), values);
}

}  // namespace rc11::explore
