// Partial-order reduction: soundness, exactness and the reduction headline.
//
// The always-on tests check that POR preserves everything it promises to
// preserve — final-configuration sets, litmus outcome sets, outline and
// refinement verdicts, witness replayability — on representative systems,
// at one worker and at four, and that it actually reduces the targeted
// benchmark families by >= 2x.
//
// Setting RC11_POR_CROSSCHECK=1 in the environment widens the comparison to
// the complete corpus: every litmus test, every causality test, every case
// study, every sample program and every lock-implementation/client pairing,
// each checked for exact final-state agreement between the reduced and full
// explorations (this is the CI "por" job's configuration).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "litmus/case_studies.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "og/catalog.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using explore::ExploreOptions;
using lang::System;

bool crosscheck_enabled() {
  const char* v = std::getenv("RC11_POR_CROSSCHECK");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::vector<std::vector<std::uint64_t>> final_encodings(
    const explore::ExploreResult& result) {
  std::vector<std::vector<std::uint64_t>> encodings;
  encodings.reserve(result.final_configs.size());
  for (const auto& cfg : result.final_configs) {
    encodings.push_back(cfg.encode());
  }
  return encodings;
}

/// Full vs. reduced exploration of `sys` must agree on the final-state set,
/// the blocked count (deadlocks) and truncation, at every worker count.
void expect_por_exact(const System& sys, const std::string& what) {
  ExploreOptions full;
  const auto reference = explore::explore(sys, full);
  for (const unsigned workers : {1U, 4U}) {
    ExploreOptions reduced;
    reduced.por = true;
    reduced.num_threads = workers;
    const auto r = explore::explore(sys, reduced);
    EXPECT_EQ(final_encodings(r), final_encodings(reference))
        << what << " (threads " << workers << "): final-state sets differ";
    EXPECT_EQ(r.stats.blocked, reference.stats.blocked)
        << what << " (threads " << workers << "): blocked counts differ";
    EXPECT_EQ(r.truncated, reference.truncated) << what;
    EXPECT_LE(r.stats.states, reference.stats.states)
        << what << ": a reduction may never visit MORE states";
  }
}

double reduction_factor(const System& sys) {
  ExploreOptions full;
  ExploreOptions reduced;
  reduced.por = true;
  const auto a = explore::explore(sys, full);
  const auto b = explore::explore(sys, reduced);
  EXPECT_EQ(final_encodings(a), final_encodings(b));
  return static_cast<double>(a.stats.states) /
         static_cast<double>(b.stats.states);
}

TEST(Por, LitmusOutcomeSetsExact) {
  for (const auto& test : litmus::all_tests()) {
    expect_por_exact(test.sys, test.name);
    // The outcome set is the litmus verdict itself: with POR on it must
    // still equal the allowed set exactly.
    ExploreOptions reduced;
    reduced.por = true;
    const auto result = explore::explore(test.sys, reduced);
    EXPECT_EQ(explore::final_register_values(test.sys, result, test.observed),
              test.allowed)
        << test.name << " outcome set changed under POR";
  }
}

TEST(Por, CausalityTestsExact) {
  for (const auto& test : litmus::all_causality_tests()) {
    expect_por_exact(test.sys, test.name);
  }
}

TEST(Por, CaseStudiesExact) {
  expect_por_exact(litmus::peterson_counter().sys, "peterson");
  expect_por_exact(litmus::dekker_counter().sys, "dekker");
  expect_por_exact(litmus::barrier_exchange().sys, "barrier");
}

TEST(Por, ComputeWorkloadsExact) {
  for (const unsigned work : {1U, 3U}) {
    expect_por_exact(litmus::mp_compute(work),
                     "mp_compute(" + std::to_string(work) + ")");
    expect_por_exact(litmus::mp_spin_compute(work),
                     "mp_spin_compute(" + std::to_string(work) + ")");
  }
  locks::TicketLock ticket;
  expect_por_exact(locks::instantiate(locks::worker_client(2, 1, 3), ticket),
                   "ticket worker(2,1,3)");
}

TEST(Por, OutlineVerdictsAgree) {
  for (const bool por : {false, true}) {
    og::OutlineCheckOptions opts;
    opts.por = por;
    {
      const auto ex = og::make_fig3();
      EXPECT_TRUE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig3 por=" << por;
    }
    {
      const auto ex = og::make_fig3_broken();
      EXPECT_FALSE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig3-broken por=" << por;
    }
    {
      const auto ex = og::make_fig7();
      EXPECT_TRUE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig7 por=" << por;
    }
    {
      const auto ex = og::make_fig7_broken();
      EXPECT_FALSE(og::check_outline(ex.sys, ex.outline, opts).valid)
          << "fig7-broken por=" << por;
    }
  }
}

TEST(Por, RefinementVerdictsAgree) {
  locks::AbstractLock abstract;
  locks::SeqLock good;
  locks::SeqLock broken(/*releasing_release=*/false);
  const auto abs_sys = locks::instantiate(locks::fig7_client(), abstract);
  const auto good_sys = locks::instantiate(locks::fig7_client(), good);
  const auto broken_sys = locks::instantiate(locks::fig7_client(), broken);

  for (const bool por : {false, true}) {
    refinement::SimulationOptions sim;
    sim.por = por;
    refinement::TraceInclusionOptions tr;
    tr.por = por;
    EXPECT_TRUE(
        refinement::check_forward_simulation(abs_sys, good_sys, sim).holds)
        << "por=" << por;
    EXPECT_TRUE(refinement::check_trace_inclusion(abs_sys, good_sys, tr).holds)
        << "por=" << por;
    EXPECT_FALSE(
        refinement::check_trace_inclusion(abs_sys, broken_sys, tr).holds)
        << "por=" << por;
  }
}

TEST(Por, WitnessesFromReducedRunsReplay) {
  // An invariant that fails somewhere in the middle of the ticket-lock
  // counter run; the reduced exploration must still produce a witness that
  // replays step-for-step through the FULL semantics.
  locks::TicketLock ticket;
  const auto sys = locks::instantiate(locks::counter_client(2, 1), ticket);

  for (const unsigned workers : {1U, 4U}) {
    ExploreOptions opts;
    opts.por = true;
    opts.track_traces = true;
    opts.num_threads = workers;
    opts.stop_on_violation = false;
    const auto result = explore::explore(
        sys, opts,
        [](const System& s, const lang::Config& cfg)
            -> std::optional<std::string> {
          // Violated at every complete run: POR keeps all final states, so
          // witnesses exist and must replay through the full semantics.
          if (!cfg.all_done(s)) return std::nullopt;
          return "final state reached";
        });
    ASSERT_FALSE(result.violations.empty()) << "workers=" << workers;
    for (const auto& v : result.violations) {
      ASSERT_TRUE(v.witness.has_value());
      const auto r = witness::replay(sys, *v.witness);
      EXPECT_TRUE(r.ok) << "workers=" << workers << ": " << r.error;
    }
  }
}

TEST(Por, ReductionHeadlineOnTargetFamilies) {
  // The tentpole's perf criterion: >= 2x fewer visited states on the
  // ticket-lock and message-passing benchmark families.
  locks::TicketLock t1, t2;
  EXPECT_GE(reduction_factor(
                locks::instantiate(locks::worker_client(2, 2, 4), t1)),
            2.0)
      << "ticket-lock family (worker 2x2, work 4)";
  EXPECT_GE(reduction_factor(
                locks::instantiate(locks::worker_client(3, 1, 3), t2)),
            2.0)
      << "ticket-lock family (worker 3x1, work 3)";
  EXPECT_GE(reduction_factor(litmus::mp_compute(4)), 2.0)
      << "message-passing family (mp_compute, work 4)";
  EXPECT_GE(reduction_factor(litmus::mp_spin_compute(3)), 2.0)
      << "message-passing family (mp_spin_compute, work 3)";
}

TEST(Por, ReducedGraphIdenticalAcrossWorkerCounts) {
  const auto sys = litmus::mp_spin_compute(2);
  ExploreOptions base;
  base.por = true;
  const auto reference = explore::explore(sys, base);
  for (const unsigned workers : {2U, 8U}) {
    ExploreOptions opts;
    opts.por = true;
    opts.num_threads = workers;
    const auto r = explore::explore(sys, opts);
    EXPECT_EQ(r.stats.states, reference.stats.states) << workers;
    EXPECT_EQ(final_encodings(r), final_encodings(reference)) << workers;
  }
}

// --- the full-corpus cross-check (RC11_POR_CROSSCHECK=1; the CI por job) ----

TEST(PorCrosscheck, FullCorpusAgreement) {
  if (!crosscheck_enabled()) {
    GTEST_SKIP() << "set RC11_POR_CROSSCHECK=1 to run the full corpus";
  }

  // Every litmus + causality test (again, for completeness of the corpus
  // under one roof), every sample program, every lock implementation under
  // every client.
  for (const auto& test : litmus::all_tests()) {
    expect_por_exact(test.sys, "litmus " + test.name);
  }
  for (const auto& test : litmus::all_causality_tests()) {
    expect_por_exact(test.sys, "causality " + test.name);
  }
  for (const auto& test : litmus::all_race_tests()) {
    expect_por_exact(test.sys, "race " + test.name);
  }
  expect_por_exact(litmus::peterson_counter().sys, "peterson");
  expect_por_exact(litmus::dekker_counter().sys, "dekker");
  expect_por_exact(litmus::barrier_exchange().sys, "barrier");
  for (const unsigned work : {1U, 2U, 4U}) {
    expect_por_exact(litmus::mp_compute(work), "mp_compute");
    expect_por_exact(litmus::mp_spin_compute(work), "mp_spin_compute");
  }

  const char* programs[] = {
      "lock_client_abstract.rc11", "lock_client_broken.rc11",
      "lock_client_seqlock.rc11",  "mp_broken_outline.rc11",
      "mp_stack.rc11",             "mp_verified.rc11",
      "sb.rc11",                   "ticket_lock.rc11",
      "mp_na_racy.rc11",           "mp_na_release.rc11",
      "dcl_broken.rc11",           "dcl_init.rc11",
      "flag_spin_racy.rc11",       "disjoint_na.rc11",
  };
  for (const char* name : programs) {
    const auto program = parser::parse_file(std::string(RC11_SRC_DIR) +
                                            "/tools/programs/" + name);
    expect_por_exact(program.sys, name);
  }

  const std::vector<locks::ClientProgram> clients = {
      locks::fig7_client(),
      locks::mgc_client(2, 2),
      locks::counter_client(2, 1),
      locks::worker_client(2, 1, 2),
  };
  locks::AbstractLock abstract;
  locks::SeqLock seq;
  locks::TicketLock ticket;
  locks::CasSpinLock cas;
  locks::TTASLock ttas;
  locks::LockObject* lock_impls[] = {&abstract, &seq, &ticket, &cas, &ttas};
  for (const auto& client : clients) {
    for (auto* lock : lock_impls) {
      expect_por_exact(locks::instantiate(client, *lock), lock->name());
    }
  }
}

}  // namespace
