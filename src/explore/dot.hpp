// rc11lib/explore/dot.hpp
//
// Graphviz DOT export of reachable-state graphs — handy for visualising the
// behaviours of small litmus tests and for debugging refinement failures
// (pipe through `dot -Tsvg`).

#pragma once

#include <string>

#include "refinement/refinement.hpp"

namespace rc11::explore {

struct DotOptions {
  /// Node captions: per-thread pcs always; registers when true.
  bool show_registers = true;
  /// Edge captions from the graph's step labels (requires a labelled graph).
  bool show_edge_labels = true;
  /// Highlight final (all-done) states with a double border.
  bool mark_finals = true;
  std::string graph_name = "rc11";
};

/// Renders a state graph to DOT.  Build the graph with
/// refinement::build_graph(sys, max_states, /*want_labels=*/true) if edge
/// labels are wanted.
[[nodiscard]] std::string to_dot(const lang::System& sys,
                                 const refinement::StateGraph& graph,
                                 const DotOptions& options = {});

}  // namespace rc11::explore
