#include "objects/stack.hpp"

#include "support/diagnostics.hpp"

namespace rc11::objects {

using memsem::kStackEmpty;
using memsem::LocKind;
using memsem::OpKind;

namespace {

void check_is_stack(const MemState& mem, LocId stack) {
  RC11_REQUIRE(mem.locations().kind(stack) == LocKind::Stack,
               "stack operation on non-stack location");
}

}  // namespace

std::optional<OpId> stack_top(const MemState& mem, LocId stack) {
  check_is_stack(mem, stack);
  const auto order = mem.mo(stack);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto& op = mem.op(*it);
    if (op.kind == OpKind::StackPush && !op.covered) return *it;
  }
  return std::nullopt;
}

bool stack_empty(const MemState& mem, LocId stack) {
  return !stack_top(mem, stack).has_value();
}

OpId stack_push(MemState& mem, ThreadId t, LocId stack, Value v, bool releasing) {
  check_is_stack(mem, stack);
  return mem.object_op(t, stack, OpKind::StackPush, v, releasing,
                       /*sync_with=*/std::nullopt, /*cover=*/false);
}

Value stack_pop(MemState& mem, ThreadId t, LocId stack, bool acquiring) {
  const auto top = stack_top(mem, stack);
  if (!top) return kStackEmpty;
  const Value v = mem.op(*top).value;
  const bool sync = acquiring && mem.op(*top).releasing;
  mem.consume(t, stack, *top, sync);
  return v;
}

std::size_t stack_size(const MemState& mem, LocId stack) {
  check_is_stack(mem, stack);
  std::size_t n = 0;
  for (const OpId id : mem.mo(stack)) {
    const auto& op = mem.op(id);
    if (op.kind == OpKind::StackPush && !op.covered) ++n;
  }
  return n;
}

}  // namespace rc11::objects
