// rc11lib/og/memrules.hpp
//
// Hoare rules for plain memory operations over the observability assertions
// of Section 5.1.  The paper inherits these from its ECOOP'20 predecessor
// ("a collection of rules for reads, writes and updates have been given in
// prior work [6, 5]") and uses them alongside the lock rules of Lemma 3.
// As with Lemma 3, each rule is checked against every reachable instance of
// a configurable harness (DESIGN.md's proof-to-exhaustive-checking
// substitution), with vacuity guarded by instance counts.
//
// The catalogue (t executes the statement, t' is a different thread):
//
//   M1  {[x = u]_t}                x :=[R] v (t)      {[x = v]_t}
//   M2  {[x = u]_t}                r <- x (t)         {r = u}
//   M3  {<x = u>[y = v]_t}         r <-A x (t)        {r = u ==> [y = v]_t}
//   M4  {[y = v]_t && x-pristine}  x :=R u (t)        {<x = u>[y = v]_t'}
//   M5  {[x = u]_t}                any step by t' that does not modify x
//                                                     {[x = u]_t}
//   M6  {<x = u>_t}                any step by t'     {<x = u>_t}
//   M7  {C_x^u}                    r <- CAS(x, u, v) (t), success
//                                                     {[x = v]_t}
//   M8  {true}                     r <- FAI(x) (t)    {<x = r + 1>_t}
//   M9  {H_x^u}                    any step that cannot modify x
//                                                     {H_x^u}
//
// where "x-pristine" for M4 means no write of u to x exists yet (the
// publication must be unambiguous, cf. ¬<l.release_u>_t' in Lemma 3 rule 6).
// M8 is a *possible* observation because an update may interact with a
// stale (non-maximal) write, in which case the new value is observable but
// not definite — the harness exercises exactly that subtlety.  "Cannot
// modify x" in M5/M9 is the instruction-level approximation: any Store, CAS
// or FAI targeting x is excluded, reads and foreign-variable operations are
// included.

#pragma once

#include <string>
#include <vector>

#include "og/proof_outline.hpp"

namespace rc11::og {

struct MemoryRuleResult {
  std::string rule;         ///< M1..M9
  std::string description;  ///< the triple, paper-style notation
  bool valid = false;
  std::uint64_t instances = 0;
};

/// Checks the whole catalogue over a message-passing + RMW harness.
std::vector<MemoryRuleResult> check_memory_rules();

}  // namespace rc11::og
