#include "engine/wire.hpp"

#include <array>

#include "support/diagnostics.hpp"
#include "witness/witness.hpp"

namespace rc11::engine::wire {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t read_le32(const char* p) noexcept {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

void append_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode_frame(std::string_view payload) {
  support::require(payload.size() <= kMaxFramePayload,
                   "wire frame payload of ", payload.size(),
                   " bytes exceeds the ", kMaxFramePayload, "-byte cap");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof kMagic);
  append_le32(out, static_cast<std::uint32_t>(payload.size()));
  append_le32(out, crc32(payload));
  out.append(payload);
  return out;
}

FrameReader::Status FrameReader::next(std::string& payload,
                                      std::string& error) {
  if (corrupt_) {
    error = error_;
    return Status::Corrupt;
  }
  const auto poison = [&](std::string why) {
    corrupt_ = true;
    error_ = std::move(why);
    error = error_;
    return Status::Corrupt;
  };
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kHeaderBytes) return Status::NeedMore;
  const char* head = buf_.data() + pos_;
  if (std::string_view(head, sizeof kMagic) !=
      std::string_view(kMagic, sizeof kMagic)) {
    return poison("bad frame magic (stream out of sync)");
  }
  const std::uint32_t len = read_le32(head + 4);
  if (len > kMaxFramePayload) {
    return poison(support::concat("frame length ", len, " exceeds the ",
                                  kMaxFramePayload, "-byte cap"));
  }
  if (buf_.size() - pos_ < kHeaderBytes + len) return Status::NeedMore;
  const std::uint32_t want = read_le32(head + 8);
  const std::string_view body(buf_.data() + pos_ + kHeaderBytes, len);
  const std::uint32_t got = crc32(body);
  if (got != want) {
    return poison(support::concat("frame CRC mismatch: header says ", want,
                                  ", payload hashes to ", got));
  }
  payload.assign(body);
  pos_ += kHeaderBytes + len;
  return Status::Frame;
}

witness::Json words_json(std::span<const std::uint64_t> words) {
  witness::Json arr = witness::Json::array();
  for (std::uint64_t w : words) {
    arr.push(witness::Json::string(witness::digest_to_hex(w)));
  }
  return arr;
}

std::vector<std::uint64_t> words_from_json(const witness::Json& array) {
  std::vector<std::uint64_t> words;
  words.reserve(array.items().size());
  for (const witness::Json& item : array.items()) {
    words.push_back(witness::digest_from_hex(item.as_string()));
  }
  return words;
}

}  // namespace rc11::engine::wire
