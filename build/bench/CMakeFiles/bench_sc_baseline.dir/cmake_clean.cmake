file(REMOVE_RECURSE
  "CMakeFiles/bench_sc_baseline.dir/bench_sc_baseline.cpp.o"
  "CMakeFiles/bench_sc_baseline.dir/bench_sc_baseline.cpp.o.d"
  "bench_sc_baseline"
  "bench_sc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
