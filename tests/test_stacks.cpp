// Tests for the stack-object refinement extension (the paper's future-work
// direction: other concurrent data types in the same framework).  The
// lock-protected vector stack must forward-simulate the abstract
// synchronising stack; the broken variant (relaxed unlock) must fail; and
// the concrete implementation must deliver the same publication guarantee
// the abstract specification promises.

#include <gtest/gtest.h>

#include "explore/explorer.hpp"
#include "refinement/refinement.hpp"
#include "stacks/stack_objects.hpp"

namespace {

using namespace rc11;
using memsem::kStackEmpty;
using refinement::check_forward_simulation;
using refinement::check_trace_inclusion;
using stacks::AbstractStack;
using stacks::instantiate;
using stacks::LockedVectorStack;
using stacks::StackClientArtifacts;

// --- behaviour of the concrete implementation ---------------------------------

TEST(LockedVectorStack, PublishesLikeTheAbstractStack) {
  StackClientArtifacts abs_art;
  AbstractStack abs;
  const auto abs_sys = instantiate(stacks::publication_client(&abs_art), abs);
  StackClientArtifacts conc_art;
  LockedVectorStack conc;
  const auto conc_sys = instantiate(stacks::publication_client(&conc_art), conc);

  const auto abs_out = explore::final_register_values(
      abs_sys, explore::explore(abs_sys), abs_art.regs);
  const auto conc_out = explore::final_register_values(
      conc_sys, explore::explore(conc_sys), conc_art.regs);
  EXPECT_EQ(abs_out, conc_out);
  // The pop either misses (Empty, d stale or fresh) or gets the message and
  // then *must* see d = 5.
  for (const auto& o : conc_out) {
    if (o[0] == 1) EXPECT_EQ(o[1], 5) << "publication guarantee violated";
  }
}

TEST(LockedVectorStack, BrokenUnlockLeaksStaleReads) {
  StackClientArtifacts art;
  LockedVectorStack broken{2, /*releasing_unlock=*/false};
  const auto sys = instantiate(stacks::publication_client(&art), broken);
  const auto result = explore::explore(sys);
  EXPECT_TRUE(
      explore::outcome_reachable(sys, result, {art.regs[0], art.regs[1]}, {1, 0}))
      << "with a relaxed unlock the popped message no longer publishes d";
}

TEST(LockedVectorStack, ProducerConsumerIsLifoShaped) {
  StackClientArtifacts art;
  LockedVectorStack stack{2};
  const auto sys = instantiate(stacks::producer_consumer_client(2, &art), stack);
  const auto result = explore::explore(sys);
  const auto outcomes =
      explore::final_register_values(sys, result, art.regs);
  for (const auto& o : outcomes) {
    // Each pop returns Empty or a pushed value; a successful second pop after
    // a successful first pop must return the *other*, earlier value (LIFO:
    // first successful pop takes the top).
    for (const auto v : o) {
      EXPECT_TRUE(v == kStackEmpty || v == 10 || v == 11) << v;
    }
    if (o[0] == 11) EXPECT_TRUE(o[1] == 10 || o[1] == kStackEmpty);
    if (o[0] == 10 && o[1] != kStackEmpty) {
      // Popped 10 first: only possible before 11 was pushed; then the second
      // pop may return 11.
      EXPECT_EQ(o[1], 11);
    }
  }
}

TEST(LockedVectorStack, AgreesWithAbstractOnProducerConsumer) {
  StackClientArtifacts abs_art;
  AbstractStack abs;
  const auto abs_sys =
      instantiate(stacks::producer_consumer_client(2, &abs_art), abs);
  StackClientArtifacts conc_art;
  LockedVectorStack conc{2};
  const auto conc_sys =
      instantiate(stacks::producer_consumer_client(2, &conc_art), conc);
  const auto abs_out = explore::final_register_values(
      abs_sys, explore::explore(abs_sys), abs_art.regs);
  const auto conc_out = explore::final_register_values(
      conc_sys, explore::explore(conc_sys), conc_art.regs);
  EXPECT_EQ(abs_out, conc_out);
}

// --- refinement ----------------------------------------------------------------

TEST(StackRefinement, PublicationClientForwardSimulation) {
  AbstractStack abs;
  const auto abs_sys = instantiate(stacks::publication_client(), abs);
  LockedVectorStack conc;
  const auto conc_sys = instantiate(stacks::publication_client(), conc);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << result.diagnosis;
  EXPECT_FALSE(result.truncated);
}

TEST(StackRefinement, ProducerConsumerForwardSimulation) {
  AbstractStack abs;
  const auto abs_sys = instantiate(stacks::producer_consumer_client(2), abs);
  LockedVectorStack conc{2};
  const auto conc_sys = instantiate(stacks::producer_consumer_client(2), conc);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << result.diagnosis;
}

TEST(StackRefinement, BrokenUnlockFailsSimulation) {
  AbstractStack abs;
  const auto abs_sys = instantiate(stacks::publication_client(), abs);
  LockedVectorStack broken{2, /*releasing_unlock=*/false};
  const auto conc_sys = instantiate(stacks::publication_client(), broken);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_FALSE(result.holds);
}

TEST(StackRefinement, TraceInclusionAgreesWithSimulation) {
  AbstractStack abs;
  const auto abs_sys = instantiate(stacks::publication_client(), abs);
  {
    LockedVectorStack conc;
    const auto conc_sys = instantiate(stacks::publication_client(), conc);
    const auto r = check_trace_inclusion(abs_sys, conc_sys);
    EXPECT_TRUE(r.holds) << r.what;
  }
  {
    LockedVectorStack broken{2, /*releasing_unlock=*/false};
    const auto conc_sys = instantiate(stacks::publication_client(), broken);
    const auto r = check_trace_inclusion(abs_sys, conc_sys);
    EXPECT_FALSE(r.holds);
  }
}

// Capacity sweep: the implementation refines the specification for every
// capacity that accommodates the client's pushes.
class CapacitySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CapacitySweep, SimulationHolds) {
  const unsigned capacity = GetParam();
  AbstractStack abs;
  const auto abs_sys = instantiate(stacks::producer_consumer_client(2), abs);
  LockedVectorStack conc{capacity};
  const auto conc_sys = instantiate(stacks::producer_consumer_client(2), conc);
  const auto result = check_forward_simulation(abs_sys, conc_sys);
  EXPECT_TRUE(result.holds) << result.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep,
                         ::testing::Values(2u, 3u, 4u));

}  // namespace
