// Property tests: the structural invariants of the memory semantics hold at
// *every reachable state* of every litmus test and every lock/stack client,
// and views move monotonically along every transition.  This is the
// semantics-wide safety net behind the individual rule tests.

#include <gtest/gtest.h>

#include <deque>

#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "memsem/validate.hpp"
#include "stacks/stack_objects.hpp"

namespace {

using namespace rc11;
using lang::Config;
using lang::System;

/// Walks every reachable state, validating each state and each transition.
void validate_everywhere(const System& sys) {
  std::uint64_t checked = 0;
  const auto result = explore::explore(
      sys, {}, [&](const System& s, const Config& cfg) -> std::optional<std::string> {
        ++checked;
        if (auto err = memsem::validate(cfg.mem)) {
          return "state invariant: " + *err;
        }
        for (const auto& step : lang::successors(s, cfg)) {
          if (auto err = memsem::validate_view_monotone(cfg.mem, step.after.mem)) {
            return "transition invariant: " + *err;
          }
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.violations.empty())
      << (result.violations.empty() ? "" : result.violations[0].what);
  EXPECT_GT(checked, 0u);
  EXPECT_FALSE(result.truncated);
}

class LitmusInvariants : public ::testing::TestWithParam<int> {};

TEST_P(LitmusInvariants, HoldEverywhere) {
  auto tests = litmus::all_tests();
  validate_everywhere(tests.at(static_cast<std::size_t>(GetParam())).sys);
}

INSTANTIATE_TEST_SUITE_P(AllLitmus, LitmusInvariants, ::testing::Range(0, 12));

TEST(ClientInvariants, AbstractLockClient) {
  locks::AbstractLock lock;
  validate_everywhere(locks::instantiate(locks::fig7_client(), lock));
}

TEST(ClientInvariants, SeqLockClient) {
  locks::SeqLock lock;
  validate_everywhere(locks::instantiate(locks::fig7_client(), lock));
}

TEST(ClientInvariants, TicketLockClient) {
  locks::TicketLock lock;
  validate_everywhere(locks::instantiate(locks::mgc_client(2, 1), lock));
}

TEST(ClientInvariants, LockedVectorStackClient) {
  stacks::LockedVectorStack stack{2};
  validate_everywhere(
      stacks::instantiate(stacks::producer_consumer_client(2), stack));
}

TEST(Validator, AcceptsInitialStates) {
  memsem::LocationTable locs;
  locs.add_var("x", memsem::Component::Client, 0);
  locs.add_object("l", memsem::Component::Library, memsem::LocKind::Lock);
  locs.add_object("s", memsem::Component::Library, memsem::LocKind::Stack);
  const memsem::MemState m{locs, 3};
  EXPECT_EQ(memsem::validate(m), std::nullopt);
}

TEST(Validator, MonotoneIsReflexive) {
  memsem::LocationTable locs;
  locs.add_var("x", memsem::Component::Client, 0);
  const memsem::MemState m{locs, 2};
  EXPECT_EQ(memsem::validate_view_monotone(m, m), std::nullopt);
}

TEST(Validator, DetectsBackwardViews) {
  memsem::LocationTable locs;
  const auto x = locs.add_var("x", memsem::Component::Client, 0);
  memsem::MemState before{locs, 2};
  memsem::MemState after = before;
  before.write(0, x, 1, memsem::MemOrder::Relaxed, before.mo(x)[0]);
  // `after` never advanced, so thread 0's view in `after` is behind.
  EXPECT_NE(memsem::validate_view_monotone(before, after), std::nullopt);
}

}  // namespace
