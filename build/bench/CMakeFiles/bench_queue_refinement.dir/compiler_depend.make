# Empty compiler generated dependencies file for bench_queue_refinement.
# This may be replaced when dependencies are built.
