// Experiment RS: sampling throughput and coverage — episodes/s and the
// distinct-state coverage a fixed seeded episode budget reaches, across the
// two targeted benchmark families (ticket-lock worker pools and message
// passing), with the exhaustive enumeration as the oracle.
//
// Verdict lines assert soundness (every sampled final configuration is an
// exhaustively-reachable one, coverage never exceeds the oracle) and that
// the budget buys real coverage.  With --json the same numbers become
// BENCH_sample.json, diffed by CI against bench/baseline_sample.json.
// Because a sampled run is a pure function of (program, episodes, seed),
// the exact `states` match the regression checker enforces doubles as a
// cross-platform seed-determinism gate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "litmus/litmus.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"

namespace {

using namespace rc11;

constexpr std::uint64_t kEpisodes = 256;
constexpr std::uint64_t kSeed = 42;

struct Workload {
  std::string name;
  lang::System sys;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    locks::TicketLock lock;
    w.push_back({"sample_ticket_worker_2x2w4",
                 locks::instantiate(locks::worker_client(2, 2, 4), lock)});
    w.push_back({"sample_ticket_worker_3x1w3",
                 locks::instantiate(locks::worker_client(3, 1, 3), lock)});
  }
  w.push_back({"sample_mp_compute_w4", litmus::mp_compute(4)});
  w.push_back({"sample_mp_spin_w3", litmus::mp_spin_compute(3)});
  return w;
}

double timed_explore(const lang::System& sys,
                     const explore::ExploreOptions& opts,
                     explore::ExploreResult& result) {
  result = explore::explore(sys, opts);  // warm-up
  double best_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = explore::explore(sys, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

bool finals_subset(const explore::ExploreResult& sampled,
                   const explore::ExploreResult& oracle) {
  std::vector<std::vector<std::uint64_t>> pool;
  pool.reserve(oracle.final_configs.size());
  for (const auto& cfg : oracle.final_configs) pool.push_back(cfg.encode());
  std::sort(pool.begin(), pool.end());
  for (const auto& cfg : sampled.final_configs) {
    if (!std::binary_search(pool.begin(), pool.end(), cfg.encode())) {
      return false;
    }
  }
  return true;
}

void report_sample(rc11::bench::JsonReport& json) {
  for (const auto& [name, sys] : workloads()) {
    explore::ExploreOptions oracle_opts;
    explore::ExploreOptions sample_opts;
    sample_opts.mode = explore::Strategy::Sample;
    sample_opts.sample.episodes = kEpisodes;
    sample_opts.sample.seed = kSeed;

    explore::ExploreResult oracle, sampled;
    const double oracle_s = timed_explore(sys, oracle_opts, oracle);
    const double sample_s = timed_explore(sys, sample_opts, sampled);

    const double coverage = static_cast<double>(sampled.stats.states) /
                            static_cast<double>(oracle.stats.states);
    const bool sound = finals_subset(sampled, oracle) &&
                       sampled.stats.states <= oracle.stats.states;
    const bool ok = sound && sampled.stats.states > 0;

    std::ostringstream detail;
    detail << name << ": " << kEpisodes << " episodes cover "
           << sampled.stats.states << "/" << oracle.stats.states
           << " states (" << coverage * 100 << "%), finals "
           << (sound ? "subset of oracle" : "NOT IN ORACLE") << ", "
           << static_cast<double>(kEpisodes) / sample_s << " episodes/s, "
           << oracle_s * 1e3 << " ms exhaustive vs " << sample_s * 1e3
           << " ms sampled";
    rc11::bench::verdict("RS", ok, detail.str());

    json.add(name,
             {{"states", static_cast<double>(sampled.stats.states)},
              {"transitions", static_cast<double>(sampled.stats.transitions)},
              {"episodes", static_cast<double>(kEpisodes)},
              {"wall_ms", sample_s * 1e3},
              {"states_per_s",
               static_cast<double>(sampled.stats.states) / sample_s},
              {"episodes_per_s",
               static_cast<double>(kEpisodes) / sample_s},
              {"oracle_states", static_cast<double>(oracle.stats.states)},
              {"coverage", coverage}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_sample(json);
  if (!json.write("bench_sample")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
