// message_passing — the paper's motivating story (Sections 1-2, Figures 1-3):
// a client passes a message through a library *stack*.
//
//   Fig. 1: relaxed push/pop — popping the message does NOT guarantee seeing
//           the client's data write (stale r2 = 0 is reachable).
//   Fig. 2: releasing push / acquiring pop — the pop synchronises, so
//           r2 = 5 is the only outcome.
//   Fig. 3: the proof outline for Fig. 2's program, checked mechanically
//           (validity at every reachable state + Owicki-Gries interference
//           freedom).

#include <iostream>

#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"
#include "og/catalog.hpp"

namespace {

void show(rc11::litmus::LitmusTest& test) {
  using namespace rc11;
  std::cout << "== " << test.name << " — " << test.description << "\n";
  const auto result = explore::explore(test.sys);
  const auto outcomes =
      explore::final_register_values(test.sys, result, test.observed);
  std::cout << "   " << result.stats.states << " states; outcomes (r1, r2):";
  for (const auto& o : outcomes) {
    std::cout << " (" << o[0] << "," << o[1] << ")";
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  using namespace rc11;

  auto fig1 = litmus::fig1_stack_mp_relaxed();
  show(fig1);

  auto fig2 = litmus::fig2_stack_mp_sync();
  show(fig2);

  std::cout << "== Fig. 3 proof outline for the synchronising program\n";
  auto ex = og::make_fig3();
  og::OutlineCheckOptions opts;
  opts.check_interference = true;
  const auto check = og::check_outline(ex.sys, ex.outline, opts);
  std::cout << "   outline "
            << (check.valid ? "VALID" : "INVALID") << " ("
            << check.stats.states << " states, " << check.obligations_checked
            << " proof obligations)\n";

  std::cout << "\n== and the broken outline claiming r2 = 0...\n";
  auto broken = og::make_fig3_broken();
  const auto broken_check = og::check_outline(broken.sys, broken.outline);
  std::cout << "   outline "
            << (broken_check.valid ? "VALID (bug!)" : "correctly REJECTED");
  if (!broken_check.valid) {
    std::cout << "\n   first failed obligation: "
              << broken_check.failures[0].obligation;
  }
  std::cout << "\n";
  return (check.valid && !broken_check.valid) ? 0 : 1;
}
