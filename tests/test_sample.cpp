// Sampling strategy (engine/sample.hpp): seed determinism at every thread
// count, honest stop reasons (EpisodeCap vs the resource budgets), witness
// replay of sampled violations, guided-bias distribution shifts, loud
// rejection of checkpoint/resume, and verdict agreement with the exhaustive
// oracle on the small corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/budget.hpp"
#include "engine/checkpoint.hpp"
#include "engine/sample.hpp"
#include "explore/explorer.hpp"
#include "og/proof_outline.hpp"
#include "parser/parser.hpp"
#include "refinement/refinement.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace rc11;
using engine::StopReason;
using engine::Strategy;
using explore::ExploreOptions;

std::string prog(const std::string& name) {
  return std::string(RC11_SRC_DIR) + "/tools/programs/" + name;
}

ExploreOptions sample_opts(std::uint64_t episodes, std::uint64_t seed) {
  ExploreOptions opts;
  opts.mode = Strategy::Sample;
  opts.sample.episodes = episodes;
  opts.sample.seed = seed;
  return opts;
}

std::vector<lang::Reg> all_regs(const lang::System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

// The lost-update invariant documented in ticket_worker_buggy.rc11.
constexpr const char* kBuggyInvariant =
    "done(t1) && done(t2) && done(t3) ==> !(definite(t3, x, 3) || "
    "definite(t3, x, 4) || definite(t3, x, 5))";

// --- strategy parsing and names ---------------------------------------------

TEST(Sample, ParseStrategy) {
  Strategy mode = Strategy::Exhaustive;
  std::uint64_t episodes = 0;

  EXPECT_TRUE(engine::parse_strategy("exhaustive", mode, episodes));
  EXPECT_EQ(mode, Strategy::Exhaustive);
  EXPECT_TRUE(engine::parse_strategy("por", mode, episodes));
  EXPECT_EQ(mode, Strategy::Por);

  EXPECT_TRUE(engine::parse_strategy("sample", mode, episodes));
  EXPECT_EQ(mode, Strategy::Sample);
  EXPECT_EQ(episodes, engine::SampleOptions{}.episodes);

  EXPECT_TRUE(engine::parse_strategy("sample:17", mode, episodes));
  EXPECT_EQ(mode, Strategy::Sample);
  EXPECT_EQ(episodes, 17u);

  EXPECT_FALSE(engine::parse_strategy("", mode, episodes));
  EXPECT_FALSE(engine::parse_strategy("bogus", mode, episodes));
  EXPECT_FALSE(engine::parse_strategy("sample:", mode, episodes));
  EXPECT_FALSE(engine::parse_strategy("sample:0", mode, episodes));
  EXPECT_FALSE(engine::parse_strategy("sample:abc", mode, episodes));
  EXPECT_FALSE(engine::parse_strategy("sample:12x", mode, episodes));
}

TEST(Sample, StrategyAndStopReasonNames) {
  EXPECT_EQ(engine::to_string(Strategy::Exhaustive),
            std::string("exhaustive"));
  EXPECT_EQ(engine::to_string(Strategy::Por), std::string("por"));
  EXPECT_EQ(engine::to_string(Strategy::Sample), std::string("sample"));
  EXPECT_EQ(engine::stop_reason_from_string(
                engine::to_string(StopReason::EpisodeCap)),
            StopReason::EpisodeCap);
}

// --- seed determinism -------------------------------------------------------

// Episodes run strictly sequentially (the guided bias makes episode e depend
// on every earlier one), so the run must be identical at every --threads
// value, not merely equivalent.
TEST(Sample, SameSeedSameRunAtEveryThreadCount) {
  const auto program = parser::parse_file(prog("ticket_worker.rc11"));
  ExploreOptions base = sample_opts(40, 7);

  std::optional<explore::ExploreResult> first;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ExploreOptions opts = base;
    opts.num_threads = threads;
    const auto result = explore::explore(program.sys, opts);
    EXPECT_EQ(result.stop, StopReason::EpisodeCap);
    EXPECT_EQ(result.stats.episodes, 40u);
    if (!first) {
      first = result;
      continue;
    }
    EXPECT_EQ(result.stats.states, first->stats.states) << threads;
    EXPECT_EQ(result.stats.transitions, first->stats.transitions) << threads;
    EXPECT_EQ(result.stats.finals, first->stats.finals) << threads;
    const auto regs = all_regs(program.sys);
    EXPECT_EQ(explore::final_register_values(program.sys, result, regs),
              explore::final_register_values(program.sys, *first, regs))
        << threads;
  }
}

TEST(Sample, DifferentSeedsDiverge) {
  const auto program = parser::parse_file(prog("ticket_worker.rc11"));
  const auto a = explore::explore(program.sys, sample_opts(30, 1));
  const auto b = explore::explore(program.sys, sample_opts(30, 2));
  // Thirty 50-ish-step schedules over three threads agreeing step for step
  // across two seeds would mean the RNG is broken.
  EXPECT_NE(a.stats.states * 1000 + a.stats.transitions,
            b.stats.states * 1000 + b.stats.transitions);
}

// --- stop reasons -----------------------------------------------------------

TEST(Sample, FullBudgetStopsWithEpisodeCap) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  const auto result = explore::explore(program.sys, sample_opts(5, 0));
  EXPECT_EQ(result.stop, StopReason::EpisodeCap);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.stats.episodes, 5u);
}

TEST(Sample, StateCapWinsOverEpisodeCap) {
  const auto program = parser::parse_file(prog("ticket_worker.rc11"));
  ExploreOptions opts = sample_opts(1000, 0);
  opts.max_states = 3;  // coverage cap: distinct states, not steps
  const auto result = explore::explore(program.sys, opts);
  EXPECT_EQ(result.stop, StopReason::StateCap);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.stats.states, 3u);
}

TEST(Sample, CancelStopsWithInterrupted) {
  const auto program = parser::parse_file(prog("ticket_worker.rc11"));
  engine::CancelToken cancel;
  cancel.cancel();
  ExploreOptions opts = sample_opts(1000, 0);
  opts.cancel = &cancel;
  const auto result = explore::explore(program.sys, opts);
  EXPECT_EQ(result.stop, StopReason::Interrupted);
  EXPECT_TRUE(result.truncated);
}

// --- sampled violations carry replayable witnesses --------------------------

TEST(Sample, SampledViolationWitnessReplays) {
  const auto program = parser::parse_file(prog("ticket_worker_buggy.rc11"));
  const auto assertion =
      parser::parse_assertion(program, kBuggyInvariant);
  ExploreOptions opts = sample_opts(4096, 1);
  opts.track_traces = true;
  const auto result = explore::explore(
      program.sys, opts,
      [&assertion](const lang::System& s,
                   const lang::Config& c) -> std::optional<std::string> {
        if (assertion.eval(s, c)) return std::nullopt;
        return "lost update";
      });
  ASSERT_FALSE(result.violations.empty());
  const auto& v = result.violations.front();
  ASSERT_TRUE(v.witness.has_value());
  EXPECT_FALSE(v.trace.empty());
  const auto replayed = witness::replay(program.sys, *v.witness);
  EXPECT_TRUE(replayed.ok) << replayed.error;
}

// --- guided bias ------------------------------------------------------------

// The bias is the only difference between the two runs, so any divergence
// proves it changes which schedules get drawn.  (It exists to escape spin
// loops: ticket_lock's do-until makes the unguided sampler re-draw the same
// spinning thread with full weight.)
TEST(Sample, GuidedBiasShiftsTheDistribution) {
  const auto program = parser::parse_file(prog("ticket_worker.rc11"));
  ExploreOptions guided = sample_opts(60, 11);
  ExploreOptions unguided = sample_opts(60, 11);
  unguided.sample.guided = false;
  const auto g = explore::explore(program.sys, guided);
  const auto u = explore::explore(program.sys, unguided);
  EXPECT_NE(g.stats.states * 1000 + g.stats.transitions,
            u.stats.states * 1000 + u.stats.transitions);
}

// --- checkpoint/resume are rejected loudly ----------------------------------

TEST(Sample, CheckpointPathIsRejected) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  ExploreOptions opts = sample_opts(5, 0);
  opts.checkpoint_path = ::testing::TempDir() + "sample.ckpt";
  EXPECT_THROW((void)explore::explore(program.sys, opts), support::Error);
}

TEST(Sample, ResumeIsRejected) {
  const auto program = parser::parse_file(prog("sb.rc11"));
  engine::Checkpoint ckpt;
  ExploreOptions opts = sample_opts(5, 0);
  opts.resume = &ckpt;
  EXPECT_THROW((void)explore::explore(program.sys, opts), support::Error);
}

// --- the exhaustive oracle --------------------------------------------------

// Every sampled outcome must be an exhaustive outcome (sampling only walks
// real schedules), and on a litmus-sized program a few hundred episodes
// reach the full outcome set.
TEST(Sample, OutcomesAgreeWithExhaustiveOracle) {
  for (const char* name : {"sb.rc11", "ticket_lock.rc11"}) {
    const auto program = parser::parse_file(prog(name));
    const auto regs = all_regs(program.sys);

    const auto oracle = explore::explore(program.sys);
    ASSERT_EQ(oracle.stop, StopReason::Complete) << name;
    const auto oracle_outcomes =
        explore::final_register_values(program.sys, oracle, regs);

    const auto sampled = explore::explore(program.sys, sample_opts(400, 3));
    EXPECT_LE(sampled.stats.states, oracle.stats.states) << name;
    const auto sampled_outcomes =
        explore::final_register_values(program.sys, sampled, regs);
    for (const auto& tuple : sampled_outcomes) {
      EXPECT_NE(std::find(oracle_outcomes.begin(), oracle_outcomes.end(),
                          tuple),
                oracle_outcomes.end())
          << name << ": sampled outcome not reachable exhaustively";
    }
    EXPECT_EQ(sampled_outcomes, oracle_outcomes)
        << name << ": 400 episodes should saturate a litmus-sized program";
  }
}

// Owicki-Gries under sampling: failures found are real, a clean sampled run
// is never a proof.
TEST(Sample, OutlineCheckUnderSampling) {
  const auto broken = parser::parse_file(prog("mp_broken_outline.rc11"));
  ASSERT_TRUE(broken.outline.has_value());
  og::OutlineCheckOptions opts;
  opts.mode = Strategy::Sample;
  opts.sample.episodes = 200;
  opts.sample.seed = 5;
  const auto invalid =
      og::check_outline(broken.sys, *broken.outline, opts);
  EXPECT_FALSE(invalid.valid);

  const auto verified = parser::parse_file(prog("mp_verified.rc11"));
  ASSERT_TRUE(verified.outline.has_value());
  const auto clean =
      og::check_outline(verified.sys, *verified.outline, opts);
  EXPECT_TRUE(clean.valid);
  EXPECT_TRUE(clean.truncated()) << "a sampled pass is never a proof";
  EXPECT_EQ(clean.stop, StopReason::EpisodeCap);
}

// Refinement under sampling: only the concrete side is sampled, violations
// are definite, and a clean sampled game stays inconclusive.
TEST(Sample, TraceInclusionUnderSampling) {
  const auto abs = parser::parse_file(prog("lock_client_abstract.rc11"));
  const auto broken = parser::parse_file(prog("lock_client_broken.rc11"));
  const auto good = parser::parse_file(prog("lock_client_seqlock.rc11"));

  refinement::TraceInclusionOptions opts;
  opts.mode = Strategy::Sample;
  opts.sample.episodes = 200;
  opts.sample.seed = 1;

  const auto violated =
      refinement::check_trace_inclusion(abs.sys, broken.sys, opts);
  EXPECT_FALSE(violated.holds);

  const auto clean =
      refinement::check_trace_inclusion(abs.sys, good.sys, opts);
  EXPECT_TRUE(clean.holds);
  EXPECT_TRUE(clean.truncated) << "a clean sampled game is a lower bound";
}

// The headline scenario: the seeded lost-update bug that a 10^5-state
// exhaustive budget misses but a few thousand episodes find.
TEST(Sample, FindsTheBugExhaustiveSearchMisses) {
  const auto program = parser::parse_file(prog("ticket_worker_buggy.rc11"));
  const auto assertion = parser::parse_assertion(program, kBuggyInvariant);
  const auto invariant =
      [&assertion](const lang::System& s,
                   const lang::Config& c) -> std::optional<std::string> {
    if (assertion.eval(s, c)) return std::nullopt;
    return "lost update";
  };

  ExploreOptions exhaustive;
  exhaustive.max_states = 100'000;
  const auto blind = explore::explore(program.sys, exhaustive, invariant);
  EXPECT_TRUE(blind.violations.empty());
  EXPECT_EQ(blind.stop, StopReason::StateCap);

  const auto found =
      explore::explore(program.sys, sample_opts(4096, 1), invariant);
  EXPECT_FALSE(found.violations.empty());
  EXPECT_LT(found.stats.states, 100'000u)
      << "sampling finds it with far less coverage than the blind budget";
}

}  // namespace
