// Experiment P9 (Proposition 9): forward simulation between the abstract
// lock and the sequence lock (§6.2).  Paper shape: the simulation exists for
// synchronisation-free clients; the broken variant (relaxed release) is
// rejected.  The benchmark sweeps client size and reports product-game
// statistics.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "locks/clients.hpp"
#include "locks/lock_objects.hpp"
#include "refinement/refinement.hpp"

namespace {

using namespace rc11;

void BM_SeqLockSimulation(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto rounds = static_cast<unsigned>(state.range(1));
  refinement::SimulationResult result;
  for (auto _ : state) {
    locks::AbstractLock abs;
    const auto abs_sys =
        locks::instantiate(locks::mgc_client(threads, rounds), abs);
    locks::SeqLock conc;
    const auto conc_sys =
        locks::instantiate(locks::mgc_client(threads, rounds), conc);
    result = refinement::check_forward_simulation(abs_sys, conc_sys);
    benchmark::DoNotOptimize(result.holds);
  }
  state.counters["abs_states"] = static_cast<double>(result.abstract_states);
  state.counters["conc_states"] = static_cast<double>(result.concrete_states);
  state.counters["pairs"] = static_cast<double>(result.candidate_pairs);
  state.counters["holds"] = result.holds ? 1 : 0;
  state.SetLabel(std::to_string(threads) + " threads x " +
                 std::to_string(rounds) + " rounds");
}
BENCHMARK(BM_SeqLockSimulation)->Args({2, 1})->Args({2, 2})->Args({3, 1});

}  // namespace

int main(int argc, char** argv) {
  {
    rc11::locks::AbstractLock abs;
    const auto abs_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), abs);
    rc11::locks::SeqLock conc;
    const auto conc_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), conc);
    const auto r = rc11::refinement::check_forward_simulation(abs_sys, conc_sys);
    rc11::bench::verdict(
        "P9", r.holds,
        "seqlock forward-simulates the abstract lock (abs states " +
            std::to_string(r.abstract_states) + ", conc states " +
            std::to_string(r.concrete_states) + ", surviving pairs " +
            std::to_string(r.surviving_pairs) + ")");

    rc11::locks::SeqLock broken{/*releasing_release=*/false};
    const auto broken_sys =
        rc11::locks::instantiate(rc11::locks::fig7_client(), broken);
    const auto rb =
        rc11::refinement::check_forward_simulation(abs_sys, broken_sys);
    rc11::bench::verdict("P9-neg", !rb.holds,
                         "seqlock with relaxed release rejected: " +
                             rb.diagnosis);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
