// Data-race detection: classification of the known-racy / known-race-free
// corpus, exactness of the reported race *set* under every engine
// configuration (worker counts, POR, symmetry, sampling), witness replay
// through both access sites, and the zero-overhead guarantee for checkers
// that leave race_detection off.
//
// Setting RC11_RACE_CROSSCHECK=1 widens the configuration matrix to the
// on-disk sample programs and asserts that the pre-existing (all-atomic)
// corpus is race-free (this is the CI race-detection job's configuration).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "engine/checkpoint.hpp"
#include "explore/explorer.hpp"
#include "litmus/litmus.hpp"
#include "parser/parser.hpp"
#include "race/race.hpp"
#include "witness/witness.hpp"

namespace {

using namespace rc11;
using lang::System;
using race::RaceOptions;
using race::RaceResult;

bool crosscheck_enabled() {
  const char* v = std::getenv("RC11_RACE_CROSSCHECK");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// The run-independent identity of a race: location + both canonical sites.
using RaceKey = std::array<std::uint64_t, 7>;

std::vector<RaceKey> race_keys(const RaceResult& result) {
  std::vector<RaceKey> keys;
  keys.reserve(result.races.size());
  for (const auto& r : result.races) {
    keys.push_back({r.record.loc, r.record.prior.thread, r.record.prior.pc,
                    static_cast<std::uint64_t>(r.record.prior.cat),
                    r.record.current.thread, r.record.current.pc,
                    static_cast<std::uint64_t>(r.record.current.cat)});
  }
  return keys;
}

/// The cross-check proper: a plain sequential exhaustive run is the oracle;
/// every reduced / parallel / sampled configuration must report the exact
/// same race set (sampling with enough episodes to cover these small state
/// spaces — the sampled set is a lower bound in general, but on the corpus
/// it must reach every race).
void expect_race_exact(const System& sys, const std::string& what) {
  const auto reference = race::check(sys, {});
  ASSERT_FALSE(reference.truncated) << what;
  const auto ref_keys = race_keys(reference);

  for (const unsigned workers : {1U, 4U}) {
    for (const bool por : {false, true}) {
      for (const bool symmetry : {false, true}) {
        RaceOptions opts;
        opts.num_threads = workers;
        opts.por = por;
        opts.symmetry = symmetry;
        const auto r = race::check(sys, opts);
        EXPECT_FALSE(r.truncated) << what;
        EXPECT_EQ(race_keys(r), ref_keys)
            << what << " (threads " << workers << ", por " << por
            << ", symmetry " << symmetry << "): race sets differ";
      }
    }
  }

  RaceOptions sampled;
  sampled.mode = engine::Strategy::Sample;
  sampled.sample.episodes = 3000;
  const auto s = race::check(sys, sampled);
  EXPECT_EQ(race_keys(s), ref_keys) << what << " (sampled): race sets differ";
}

TEST(Race, ClassifiesTheCorpus) {
  for (const auto& test : litmus::all_race_tests()) {
    const auto result = race::check(test.sys, {});
    ASSERT_FALSE(result.truncated) << test.name;
    EXPECT_EQ(result.racy(), test.racy) << test.name << ": " << test.description;
    if (test.racy) {
      // Every report names both sites on a real location.
      for (const auto& r : result.races) {
        EXPECT_FALSE(r.location.empty()) << test.name;
        EXPECT_NE(r.record.prior.thread, r.record.current.thread) << test.name;
        EXPECT_NE(r.record.prior.pc, memsem::kNoSite) << test.name;
        EXPECT_NE(r.record.current.pc, memsem::kNoSite) << test.name;
        EXPECT_NE(r.what.find(r.location), std::string::npos) << test.name;
      }
    } else {
      EXPECT_TRUE(result.clean()) << test.name;
    }
  }
}

TEST(Race, ReportsAreUnorderedPairsInCanonicalOrder) {
  for (const auto& test : litmus::all_race_tests()) {
    const auto result = race::check(test.sys, {});
    for (const auto& r : result.races) {
      const auto rank = [](const memsem::RaceAccess& a) {
        return std::make_tuple(a.thread, a.pc, static_cast<unsigned>(a.cat));
      };
      EXPECT_LE(rank(r.record.prior), rank(r.record.current))
          << test.name << ": pair not canonically ordered";
    }
  }
}

TEST(Race, SetExactUnderEveryConfiguration) {
  for (const auto& test : litmus::all_race_tests()) {
    expect_race_exact(test.sys, test.name);
  }
}

TEST(Race, DeterministicAcrossRepeatedRuns) {
  for (const auto& test : litmus::all_race_tests()) {
    RaceOptions opts;
    opts.num_threads = 4;
    opts.por = true;
    const auto a = race::check(test.sys, opts);
    const auto b = race::check(test.sys, opts);
    EXPECT_EQ(race_keys(a), race_keys(b)) << test.name;
    ASSERT_EQ(a.races.size(), b.races.size()) << test.name;
    for (std::size_t i = 0; i < a.races.size(); ++i) {
      EXPECT_EQ(a.races[i].what, b.races[i].what) << test.name;
    }
  }
}

TEST(Race, WitnessesReplayThroughBothSites) {
  for (const auto& test : litmus::all_race_tests()) {
    if (!test.racy) continue;
    // Race witnesses digest the race-instrumented encoding; replay needs a
    // system carrying the flag (the rc11-race CLI does the same).
    System traced = test.sys;
    auto sem = traced.options();
    sem.race_detection = true;
    traced.set_options(sem);

    for (const bool symmetry : {false, true}) {
      RaceOptions opts;
      opts.track_traces = true;
      opts.symmetry = symmetry;
      const auto result = race::check(test.sys, opts);
      ASSERT_TRUE(result.racy()) << test.name;
      bool witnessed = false;
      for (const auto& r : result.races) {
        if (!r.witness) continue;
        witnessed = true;
        EXPECT_EQ(r.witness->kind, "race") << test.name;
        EXPECT_FALSE(r.witness->steps.empty()) << test.name;
        const auto replay = witness::replay(traced, *r.witness);
        EXPECT_TRUE(replay.ok)
            << test.name << " (symmetry " << symmetry << "): " << replay.error;
      }
      EXPECT_TRUE(witnessed)
          << test.name << ": no race carries a witness (symmetry " << symmetry
          << ")";
      // Serialisation round-trip keeps the witness replayable.
      for (const auto& r : result.races) {
        if (!r.witness) continue;
        const auto back = witness::from_json(witness::to_json(*r.witness));
        EXPECT_TRUE(witness::replay(traced, back).ok) << test.name;
        break;
      }
    }
  }
}

TEST(Race, StopOnRaceStopsEarlyButStaysRacy) {
  auto test = litmus::race_dcl_broken();
  RaceOptions opts;
  opts.stop_on_race = true;
  const auto result = race::check(test.sys, opts);
  EXPECT_TRUE(result.racy());
  // Stopping was our choice, not a budget: the verdict is still definite.
  EXPECT_EQ(result.stop, engine::StopReason::Complete);
  const auto full = race::check(test.sys, {});
  EXPECT_LE(result.stats.states, full.stats.states);
}

TEST(Race, SampleRejectsCheckpointAndResume) {
  const auto test = litmus::race_mp_na();
  RaceOptions opts;
  opts.mode = engine::Strategy::Sample;
  opts.checkpoint_path = "/tmp/never-written.ckpt";
  EXPECT_THROW((void)race::check(test.sys, opts), std::exception);
  RaceOptions opts2;
  opts2.mode = engine::Strategy::Sample;
  engine::Checkpoint ckpt;
  opts2.resume = &ckpt;
  EXPECT_THROW((void)race::check(test.sys, opts2), std::exception);
}

TEST(Race, ZeroOverheadWhenDetectionOff) {
  // Non-race checkers never pay for the clocks: with the flag off (the
  // default) the state encoding has no clock words and no records are kept.
  const auto test = litmus::race_mp_na();
  EXPECT_FALSE(test.sys.options().race_detection);
  const auto plain = lang::initial_config(test.sys);
  EXPECT_TRUE(plain.mem.race_records().empty());

  System traced = test.sys;
  auto sem = traced.options();
  sem.race_detection = true;
  traced.set_options(sem);
  const auto instrumented = lang::initial_config(traced);
  EXPECT_LT(plain.encode().size(), instrumented.encode().size())
      << "the instrumented encoding must carry extra clock words";

  // And exploration of the racy program is oblivious to races by default:
  // same reachable-state count as the instrumented run (clocks never split
  // states here — they are a function of the sync structure) and no
  // records surface anywhere the explorer looks.
  const auto r = explore::explore(test.sys, {});
  EXPECT_FALSE(r.truncated);
}

TEST(Race, TruncatedRunIsInconclusiveNotClean) {
  const auto test = litmus::race_dcl_broken();
  RaceOptions opts;
  opts.max_states = 3;
  const auto result = race::check(test.sys, opts);
  EXPECT_TRUE(result.truncated);
  EXPECT_FALSE(result.clean());
}

// --- the full-corpus cross-check (RC11_RACE_CROSSCHECK=1; CI race job) ------

TEST(RaceCrosscheck, FullCorpusAgreement) {
  if (!crosscheck_enabled()) {
    GTEST_SKIP() << "set RC11_RACE_CROSSCHECK=1 to run the full corpus";
  }

  // The on-disk race corpus: classification and configuration-independence.
  const std::pair<const char*, bool> programs[] = {
      {"mp_na_racy.rc11", true},    {"mp_na_release.rc11", false},
      {"dcl_broken.rc11", true},    {"dcl_init.rc11", false},
      {"flag_spin_racy.rc11", true}, {"disjoint_na.rc11", false},
  };
  for (const auto& [name, racy] : programs) {
    const auto program = parser::parse_file(std::string(RC11_SRC_DIR) +
                                            "/tools/programs/" + name);
    const auto result = race::check(program.sys, {});
    ASSERT_FALSE(result.truncated) << name;
    EXPECT_EQ(result.racy(), racy) << name;
    expect_race_exact(program.sys, name);
  }

  // The pre-existing sample programs are all-atomic (or object-mediated):
  // the race checker must come back clean on every one of them.
  const char* atomic_corpus[] = {
      "lock_client_abstract.rc11", "mp_stack.rc11", "mp_verified.rc11",
      "sb.rc11",                   "ticket_lock.rc11",
  };
  for (const char* name : atomic_corpus) {
    const auto program = parser::parse_file(std::string(RC11_SRC_DIR) +
                                            "/tools/programs/" + name);
    const auto result = race::check(program.sys, {});
    EXPECT_TRUE(result.clean()) << name << " must be race-free";
  }

  // And the in-memory families again, for one-roof completeness.
  for (const auto& test : litmus::all_race_tests()) {
    expect_race_exact(test.sys, "race " + test.name);
  }
  for (const auto& test : litmus::all_tests()) {
    const auto result = race::check(test.sys, {});
    EXPECT_TRUE(result.clean()) << "litmus " << test.name
                                << " must be race-free (all-atomic)";
  }
}

}  // namespace
