// Experiment RF: execution-graph quotient (--rf-quotient) — visited states,
// transitions and wall-clock keyed by canonical reads-from/modification-order
// data instead of the full concrete encoding, measured against the *better*
// of the two older reductions (--por, --symmetry) on each family.
//
// The targeted families are store-heavy and deliberately asymmetric, so
// neither older reduction bites: every location is shared (no private ample
// steps) and no two threads run identical code (the symmetry quotient is a
// sound no-op).  What does explode concretely is dead view metadata — each
// observation of the pump's generation variable survives only in a tview
// entry the observer can neither use nor export, and in the mview snapshots
// of its later relaxed stores.  The quotient drops both.
//
//   * rf_store_fan: three writer fans observe g once, scrub, then publish
//     3/2/1 relaxed stores into their own locations; a pump generates g and
//     reads the fan locations back.
//   * rf_view_churn: two writers interleave observe-g / scrub / publish
//     rounds, so every publish snapshots a fresh dead view of g — the
//     concrete variant count is exponential in the round count.
//   * rf_mp_release (control): release/acquire message passing — every
//     store is releasing, so its mview is live, the quotient has nothing to
//     drop (factor ~1x) and the numbers cannot be an artifact of anything
//     but dead metadata.
//
// Verdict lines assert the tentpole's headline (>= 5x fewer visited states
// than best-of(--por, --symmetry) on the targeted families) and exactness of
// the final register-outcome set (the quotient keeps one concrete
// representative per class, so raw final configurations are *expected* to
// differ; the outcome set is the semantic object).  With --json the numbers
// become BENCH_rf.json, diffed by CI against bench/baseline_rf.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace rc11;

struct Workload {
  std::string name;
  lang::System sys;
  bool expect_5x;  ///< targeted family: the >= 5x headline applies
};

/// Three asymmetric writer fans (3/2/1 stores) + a generation pump; the
/// programmatic twin of tools/programs/store_fan.rc11.
lang::System store_fan(unsigned pump_stores) {
  lang::System sys;
  const auto g = sys.client_var("g", 0);
  const auto x = sys.client_var("x", 0);
  const auto y = sys.client_var("y", 0);
  const auto z = sys.client_var("z", 0);
  lang::Value v = 1;
  for (const auto [loc, fan] : {std::pair{x, 3u}, {y, 2u}, {z, 1u}}) {
    auto tb = sys.thread();
    const auto t = tb.reg("t");
    tb.load(t, g);
    tb.assign(t, lang::c(0));  // scrub: the observation is dead from here on
    for (unsigned i = 0; i < fan; ++i) tb.store(loc, lang::c(v++));
  }
  auto pump = sys.thread();
  const auto r = pump.reg("r");
  for (unsigned i = 1; i <= pump_stores; ++i) {
    pump.store(g, lang::c(static_cast<lang::Value>(i)));
  }
  pump.load(r, x);
  pump.load(r, y);
  pump.load(r, z);
  return sys;
}

/// Two asymmetric writers interleaving observe-g / scrub / publish rounds
/// (3 vs 2 rounds) + a generation pump reading the published locations.
lang::System view_churn(unsigned pump_stores) {
  lang::System sys;
  const auto g = sys.client_var("g", 0);
  const auto x = sys.client_var("x", 0);
  const auto y = sys.client_var("y", 0);
  for (const auto [loc, rounds] : {std::pair{x, 3u}, {y, 2u}}) {
    auto tb = sys.thread();
    const auto t = tb.reg("t");
    for (unsigned i = 1; i <= rounds; ++i) {
      tb.load(t, g);
      tb.assign(t, lang::c(0));
      tb.store(loc, lang::c(static_cast<lang::Value>(i)));
    }
  }
  auto pump = sys.thread();
  const auto r = pump.reg("r");
  for (unsigned i = 1; i <= pump_stores; ++i) {
    pump.store(g, lang::c(static_cast<lang::Value>(i)));
  }
  pump.load(r, x);
  pump.load(r, y);
  return sys;
}

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  w.push_back({"rf_store_fan", store_fan(4), true});
  w.push_back({"rf_view_churn", view_churn(4), true});
  w.push_back({"rf_mp_release", litmus::mp_release_acquire().sys, false});
  return w;
}

double timed_explore(const lang::System& sys,
                     const explore::ExploreOptions& opts,
                     explore::ExploreResult& result) {
  result = explore::explore(sys, opts);  // warm-up
  double best_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = explore::explore(sys, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

/// All registers of every thread, in declaration order — the outcome tuple.
std::vector<lang::Reg> all_regs(const lang::System& sys) {
  std::vector<lang::Reg> regs;
  for (lang::ThreadId t = 0; t < sys.num_threads(); ++t) {
    for (lang::RegId r = 0; r < sys.num_regs(t); ++r) {
      regs.push_back(lang::Reg{t, r});
    }
  }
  return regs;
}

void report_rf(rc11::bench::JsonReport& json) {
  for (const auto& [name, sys, expect_5x] : workloads()) {
    explore::ExploreOptions por_opts;
    por_opts.por = true;
    explore::ExploreOptions sym_opts;
    sym_opts.symmetry = true;
    explore::ExploreOptions rf_opts;
    rf_opts.rf_quotient = true;

    explore::ExploreResult por_res, sym_res, rf_res;
    const double por_s = timed_explore(sys, por_opts, por_res);
    const double sym_s = timed_explore(sys, sym_opts, sym_res);
    const double rf_s = timed_explore(sys, rf_opts, rf_res);

    const auto best = std::min(por_res.stats.states, sym_res.stats.states);
    const double factor = static_cast<double>(best) /
                          static_cast<double>(rf_res.stats.states);
    // Exactness is judged on the final register-outcome set: the quotient
    // keeps one concrete representative per merged class, so comparing raw
    // final configurations would be wrong by design.
    const auto regs = all_regs(sys);
    const bool exact =
        explore::final_register_values(sys, por_res, regs) ==
        explore::final_register_values(sys, rf_res, regs);
    const bool ok = exact && (!expect_5x || factor >= 5.0);

    std::ostringstream detail;
    detail << name << ": best-of(por " << por_res.stats.states << ", sym "
           << sym_res.stats.states << ") = " << best << " -> "
           << rf_res.stats.states << " states (" << factor << "x, "
           << (expect_5x ? "target >= 5x" : "control") << "), "
           << rf_res.stats.sleep_set_skips << " sleep skips, outcomes "
           << (exact ? "identical" : "DIFFER") << ", best-of "
           << std::min(por_s, sym_s) * 1e3 << " -> " << rf_s * 1e3 << " ms";
    rc11::bench::verdict("RF", ok, detail.str());

    json.add(name + "_por",
             {{"states", static_cast<double>(por_res.stats.states)},
              {"transitions", static_cast<double>(por_res.stats.transitions)},
              {"wall_ms", por_s * 1e3},
              {"states_per_s",
               static_cast<double>(por_res.stats.states) / por_s}});
    json.add(name + "_sym",
             {{"states", static_cast<double>(sym_res.stats.states)},
              {"transitions", static_cast<double>(sym_res.stats.transitions)},
              {"wall_ms", sym_s * 1e3},
              {"states_per_s",
               static_cast<double>(sym_res.stats.states) / sym_s}});
    json.add(name + "_rf",
             {{"states", static_cast<double>(rf_res.stats.states)},
              {"transitions", static_cast<double>(rf_res.stats.transitions)},
              {"wall_ms", rf_s * 1e3},
              {"states_per_s",
               static_cast<double>(rf_res.stats.states) / rf_s},
              {"reduction", factor},
              {"sleep_set_skips",
               static_cast<double>(rf_res.stats.sleep_set_skips)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  rc11::bench::JsonReport json;
  json.parse_args(argc, argv);
  report_rf(json);
  if (!json.write("bench_rf")) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
