# Empty dependencies file for bench_fig6_abstract_lock.
# This may be replaced when dependencies are built.
