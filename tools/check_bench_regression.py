#!/usr/bin/env python3
"""Compare a bench --json report against a checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance F]

Fails (exit 1) when

  * either file is unreadable, malformed, or has no cases (an empty
    baseline would otherwise "pass" while checking nothing),
  * a baseline case is missing from the current report,
  * a case is missing a required field (name/states/states_per_s),
  * the explored state count differs (the state space is deterministic —
    any difference is a semantics bug, not a performance regression), or
  * states_per_s dropped by more than the tolerance (default 30%).

Cases present only in the current report are listed (they don't fail the
check — they just need a baseline refresh to become guarded).  Throughput
above baseline is fine and only reported.  Baselines (bench/baseline_*.json)
are refreshed deliberately, by re-running the bench with --json and
committing the result alongside the change that moved the numbers.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = ("name", "states", "states_per_s")


def load_cases(path):
    """Returns {name: case} or raises SystemExit with a precise message."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("cases"), list):
        sys.exit(f"error: {path}: expected an object with a 'cases' array")
    cases = {}
    for i, case in enumerate(doc["cases"]):
        missing = [k for k in REQUIRED_FIELDS
                   if not isinstance(case, dict) or k not in case]
        if missing:
            sys.exit(f"error: {path}: case #{i} is missing "
                     f"field(s) {', '.join(missing)}")
        if case["name"] in cases:
            sys.exit(f"error: {path}: duplicate case name '{case['name']}'")
        cases[case["name"]] = case
    if not cases:
        sys.exit(f"error: {path} has no cases; an empty baseline would "
                 "vacuously pass — refresh it from a real bench run")
    return cases


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="maximum allowed fractional drop in states_per_s")
    args = parser.parse_args()

    baseline = load_cases(args.baseline)
    current = load_cases(args.current)

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"{name}: MISSING from current report")
            failures.append(f"{name}: missing from current report")
            continue
        base_states, cur_states = int(base["states"]), int(cur["states"])
        if base_states != cur_states:
            print(f"{name}: states {base_states:,} -> {cur_states:,} "
                  f"({cur_states - base_states:+,}) MISMATCH")
            failures.append(
                f"{name}: state count changed {base_states} -> {cur_states} "
                f"(state space must be identical)")
            continue
        base_rate = float(base["states_per_s"])
        cur_rate = float(cur["states_per_s"])
        if base_rate <= 0:
            failures.append(f"{name}: baseline states_per_s is {base_rate}; "
                            "refresh the baseline from a real run")
            continue
        ratio = cur_rate / base_rate
        status = "OK" if ratio >= 1.0 - args.tolerance else "REGRESSION"
        print(f"{name}: {base_states:,} states, {base_rate:,.0f} -> "
              f"{cur_rate:,.0f} states/s ({ratio:.2f}x) {status}")
        if status != "OK":
            failures.append(
                f"{name}: states/s dropped to {ratio:.2f}x of baseline "
                f"(tolerance {1.0 - args.tolerance:.2f}x)")

    only_current = sorted(set(current) - set(baseline))
    for name in only_current:
        print(f"{name}: not in baseline (unguarded; refresh the baseline "
              "to cover it)")

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression check passed "
          f"({len(baseline)} cases, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
