file(REMOVE_RECURSE
  "CMakeFiles/test_og.dir/test_og.cpp.o"
  "CMakeFiles/test_og.dir/test_og.cpp.o.d"
  "test_og"
  "test_og.pdb"
  "test_og[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_og.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
