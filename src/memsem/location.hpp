// rc11lib/memsem/location.hpp
//
// The location table: the set of global variables and abstract objects of a
// combined client-library system, partitioned into components as in Section 3
// of the paper (GVar = GVar_C ∪ GVar_L, plus abstract objects from Obj).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "memsem/types.hpp"
#include "support/diagnostics.hpp"
#include "support/intern.hpp"

namespace rc11::memsem {

/// Static description of one location.
struct LocationInfo {
  std::string name;
  Component component = Component::Client;
  LocKind kind = LocKind::Var;
  Value initial = 0;  ///< initial value (plain variables only)
};

/// Dense registry of all locations of a system.  Immutable once the memory
/// state has been initialised.
class LocationTable {
 public:
  /// Declares a plain global variable with its (mandatory, per the paper's
  /// Init discipline: "each shared variable is initialised exactly once")
  /// initial value.
  LocId add_var(std::string_view name, Component comp, Value initial) {
    return add({std::string{name}, comp, LocKind::Var, initial});
  }

  /// Declares an abstract object (lock or stack).
  LocId add_object(std::string_view name, Component comp, LocKind kind) {
    RC11_REQUIRE(kind != LocKind::Var, "add_object requires an object kind");
    return add({std::string{name}, comp, kind, 0});
  }

  [[nodiscard]] const LocationInfo& info(LocId loc) const { return locs_.at(loc); }
  [[nodiscard]] std::size_t size() const noexcept { return locs_.size(); }

  [[nodiscard]] Component component(LocId loc) const { return info(loc).component; }
  [[nodiscard]] LocKind kind(LocId loc) const { return info(loc).kind; }
  [[nodiscard]] const std::string& name(LocId loc) const { return info(loc).name; }
  [[nodiscard]] bool is_var(LocId loc) const { return kind(loc) == LocKind::Var; }

  /// Looks a location up by name; fails with a user error if absent.
  [[nodiscard]] LocId find(std::string_view name) const {
    for (LocId i = 0; i < locs_.size(); ++i) {
      if (locs_[i].name == name) return i;
    }
    support::fail("unknown location: ", name);
  }

 private:
  LocId add(LocationInfo info) {
    for (const auto& existing : locs_) {
      support::require(existing.name != info.name,
                       "duplicate location name: ", info.name);
    }
    locs_.push_back(std::move(info));
    return static_cast<LocId>(locs_.size() - 1);
  }

  std::vector<LocationInfo> locs_;
};

}  // namespace rc11::memsem
