#include "locks/lock_objects.hpp"

#include "memsem/types.hpp"
#include "support/diagnostics.hpp"

namespace rc11::locks {

using lang::c;
using lang::Expr;
using memsem::Component;

// --- abstract lock -----------------------------------------------------------

void AbstractLock::declare(System& sys) { l_ = sys.library_lock("l"); }

void AbstractLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  tb.acquire(l_, dst, "l.Acquire()");
}

void AbstractLock::emit_release(ThreadBuilder& tb) {
  tb.release(l_, "l.Release()");
}

// --- sequence lock -----------------------------------------------------------

void SeqLock::declare(System& sys) {
  regs_.reset();  // a LockObject may be reused across instantiations
  glb_ = sys.library_var("glb", 0);
}

SeqLock::ThreadRegs& SeqLock::regs_for(ThreadBuilder& tb) {
  return regs_.get(tb, [](ThreadBuilder& b) {
    return ThreadRegs{b.reg("slk_r", 0, Component::Library),
                      b.reg("slk_loc", 0, Component::Library)};
  });
}

void SeqLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.do_until(
      [&] {
        tb.do_until([&] { tb.load_acq(r.r, glb_, "r <-A glb"); },
                    lang::is_even(Expr{r.r}));
        tb.cas(r.loc, glb_, Expr{r.r}, Expr{r.r} + c(1),
               "loc <- CAS(glb, r, r+1)");
      },
      Expr{r.loc});
  // Acquire() returns true — delivered through the client register, which is
  // the refinement-visible rval of Section 4.
  tb.assign(dst, c(1), "return true");
}

void SeqLock::emit_release(ThreadBuilder& tb) {
  auto& r = regs_for(tb);
  if (releasing_release_) {
    tb.store_rel(glb_, Expr{r.r} + c(2), "glb :=R r + 2");
  } else {
    tb.store(glb_, Expr{r.r} + c(2), "glb := r + 2 (BROKEN: relaxed)");
  }
}

// --- ticket lock ---------------------------------------------------------------

void TicketLock::declare(System& sys) {
  regs_.reset();
  nt_ = sys.library_var("nt", 0);
  sn_ = sys.library_var("sn", 0);
}

TicketLock::ThreadRegs& TicketLock::regs_for(ThreadBuilder& tb) {
  return regs_.get(tb, [](ThreadBuilder& b) {
    return ThreadRegs{b.reg("tkt_mt", 0, Component::Library),
                      b.reg("tkt_sn", 0, Component::Library)};
  });
}

void TicketLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.fai(r.my_ticket, nt_, "m_t <- FAI(nt)");
  tb.do_until([&] { tb.load_acq(r.serving, sn_, "s_n <-A sn"); },
              Expr{r.my_ticket} == Expr{r.serving});
  tb.assign(dst, c(1), "return true");
}

void TicketLock::emit_release(ThreadBuilder& tb) {
  auto& r = regs_for(tb);
  if (releasing_release_) {
    tb.store_rel(sn_, Expr{r.serving} + c(1), "sn :=R s_n + 1");
  } else {
    tb.store(sn_, Expr{r.serving} + c(1), "sn := s_n + 1 (BROKEN: relaxed)");
  }
}

// --- CAS spinlock ---------------------------------------------------------------

void CasSpinLock::declare(System& sys) {
  regs_.reset();
  glb_ = sys.library_var("glb", 0);
}

CasSpinLock::ThreadRegs& CasSpinLock::regs_for(ThreadBuilder& tb) {
  return regs_.get(tb, [](ThreadBuilder& b) {
    return ThreadRegs{b.reg("tas_loc", 0, Component::Library)};
  });
}

void CasSpinLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.do_until([&] { tb.cas(r.loc, glb_, c(0), c(1), "loc <- CAS(glb, 0, 1)"); },
              Expr{r.loc});
  tb.assign(dst, c(1), "return true");
}

void CasSpinLock::emit_release(ThreadBuilder& tb) {
  tb.store_rel(glb_, c(0), "glb :=R 0");
}

// --- TTAS lock --------------------------------------------------------------------

void TTASLock::declare(System& sys) {
  regs_.reset();
  glb_ = sys.library_var("glb", 0);
}

TTASLock::ThreadRegs& TTASLock::regs_for(ThreadBuilder& tb) {
  return regs_.get(tb, [](ThreadBuilder& b) {
    return ThreadRegs{b.reg("ttas_r", 0, Component::Library),
                      b.reg("ttas_loc", 0, Component::Library)};
  });
}

void TTASLock::emit_acquire(ThreadBuilder& tb, Reg dst) {
  auto& r = regs_for(tb);
  tb.do_until(
      [&] {
        tb.do_until([&] { tb.load_acq(r.r, glb_, "r <-A glb"); },
                    Expr{r.r} == c(0));
        tb.cas(r.loc, glb_, c(0), c(1), "loc <- CAS(glb, 0, 1)");
      },
      Expr{r.loc});
  tb.assign(dst, c(1), "return true");
}

void TTASLock::emit_release(ThreadBuilder& tb) {
  tb.store_rel(glb_, c(0), "glb :=R 0");
}

// --- instantiation ---------------------------------------------------------------

System instantiate(const ClientProgram& client, LockObject& object) {
  return og::instantiate_object(client, object);
}

}  // namespace rc11::locks
