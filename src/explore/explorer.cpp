#include "explore/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "explore/sharded_visited.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"
#include "support/intern.hpp"
#include "support/parallel.hpp"

namespace rc11::explore {

namespace {

/// Sequential visited set: one interned word set (open-addressing
/// fingerprint table over a varint arena — see support/intern.hpp), kept
/// lock-free for the num_threads == 1 paths.  Exact for the same reason as
/// ShardedVisitedSet: fingerprint hits are confirmed against the full
/// stored encoding.
using VisitedSet = support::InternedWordSet;

/// A frontier entry: the configuration plus its id in the trace sink (the
/// id stays kNoState when no sink is attached).
struct Frontier {
  Config cfg;
  std::uint64_t id = ShardedVisitedSet::kNoState;
};

/// The thread to expand exclusively under local-step fusion, if any.
std::optional<ThreadId> fusible_thread(const System& sys, const Config& cfg) {
  for (ThreadId t = 0; t < sys.num_threads(); ++t) {
    if (cfg.thread_done(sys, t)) continue;
    const auto kind = sys.code(t)[cfg.pc[t]].kind;
    if (kind == lang::IKind::Assign || kind == lang::IKind::Branch ||
        kind == lang::IKind::Jump) {
      return t;
    }
  }
  return std::nullopt;
}

void expand(const System& sys, const Config& cfg, bool fuse_local_steps,
            bool want_labels, lang::StepBuffer& out) {
  if (fuse_local_steps) {
    if (const auto t = fusible_thread(sys, cfg)) {
      lang::thread_successors(sys, cfg, *t, out, want_labels);
      return;
    }
  }
  lang::successors(sys, cfg, out, want_labels);
}

/// A final configuration together with its canonical encoding.  The
/// encoding is computed exactly once — when the config passes final
/// deduplication — and reused as the sort key, fixing the old
/// encode-for-dedup-then-re-encode-for-sort double work.
using KeyedConfig = std::pair<std::vector<std::uint64_t>, Config>;

/// Canonical ordering for deterministic results across thread counts: sort
/// configs by their encodings (equal encodings == semantically identical
/// configurations, so the order is total on deduplicated sets), then strip
/// the keys.
std::vector<Config> sort_keyed_configs(std::vector<KeyedConfig>& keyed) {
  std::sort(keyed.begin(), keyed.end(),
            [](const KeyedConfig& a, const KeyedConfig& b) {
              return a.first < b.first;
            });
  std::vector<Config> sorted;
  sorted.reserve(keyed.size());
  for (auto& [enc, cfg] : keyed) sorted.push_back(std::move(cfg));
  keyed.clear();
  return sorted;
}

void sort_violations(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.what != b.what) return a.what < b.what;
              return a.state_dump < b.state_dump;
            });
}

// --- parallel reachability engine -------------------------------------------

/// Shared frontier of the worker pool.  A single deque behind one mutex is
/// deliberately simple: state *expansion* (successor computation + canonical
/// encoding) dominates queue traffic by orders of magnitude, and workers pop
/// and push in batches, so the lock is cold.  The visited set, where every
/// generated successor lands, is the contended structure — and that one is
/// sharded (see sharded_visited.hpp).
struct SharedFrontier {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frontier> items;
  unsigned working = 0;  ///< workers currently expanding a batch
  bool stop = false;     ///< cooperative stop (visitor veto or truncation)
  std::uint64_t max_size = 0;
};

ReachResult parallel_reach(const System& sys, const ReachOptions& options,
                           const StateVisitor& visitor, unsigned workers) {
  ReachResult result;
  ShardedVisitedSet local_visited;
  // With a trace sink the sink doubles as the visited set, so parent
  // recording and the once-only insert decision are one atomic step.
  ShardedVisitedSet& visited = options.trace ? *options.trace : local_visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  SharedFrontier frontier;
  // Claim budget for max_states: every popped state claims one index; claims
  // at or beyond the cap mark truncation instead of being expanded.  This is
  // the cooperative-parallel analogue of the sequential pre-pop bound check.
  std::atomic<std::uint64_t> claimed{0};
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> finals{0};
  std::atomic<std::uint64_t> blocked{0};
  std::atomic<bool> truncated{false};

  {
    Config init = lang::initial_config(sys);
    std::uint64_t id = ShardedVisitedSet::kNoState;
    if (options.trace) {
      id = options.trace
               ->insert_traced(init.encode(), ShardedVisitedSet::kNoState, 0,
                               "init")
               .id;
    } else {
      visited.insert(init.encode());
    }
    frontier.items.push_back({std::move(init), id});
    frontier.max_size = 1;
  }

  const bool bfs = options.strategy == SearchStrategy::Bfs;
  constexpr std::size_t kMaxBatch = 32;

  const auto worker = [&] {
    std::vector<Frontier> batch;
    std::vector<Frontier> discovered;
    lang::StepBuffer steps;                // pooled successor storage
    std::vector<std::uint64_t> scratch;    // reusable encoding buffer
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(frontier.mu);
        frontier.cv.wait(lock, [&] {
          return frontier.stop || !frontier.items.empty() ||
                 frontier.working == 0;
        });
        if (frontier.stop || (frontier.items.empty() && frontier.working == 0)) {
          frontier.cv.notify_all();
          return;
        }
        // Leave work for idle peers: take at most a 1/workers share.
        const std::size_t take = std::min(
            kMaxBatch,
            std::max<std::size_t>(1, frontier.items.size() / workers));
        for (std::size_t i = 0; i < take && !frontier.items.empty(); ++i) {
          if (bfs) {
            batch.push_back(std::move(frontier.items.front()));
            frontier.items.pop_front();
          } else {
            batch.push_back(std::move(frontier.items.back()));
            frontier.items.pop_back();
          }
        }
        frontier.working += 1;
      }

      discovered.clear();
      bool request_stop = false;
      for (const Frontier& item : batch) {
        const Config& cfg = item.cfg;
        if (claimed.fetch_add(1, std::memory_order_relaxed) >=
            options.max_states) {
          truncated.store(true, std::memory_order_relaxed);
          request_stop = true;
          break;
        }
        states.fetch_add(1, std::memory_order_relaxed);
        expand(sys, cfg, options.fuse_local_steps, want_labels, steps);
        if (steps.empty()) {
          (cfg.all_done(sys) ? finals : blocked)
              .fetch_add(1, std::memory_order_relaxed);
        }
        transitions.fetch_add(steps.size(), std::memory_order_relaxed);
        const bool keep_going = visitor(cfg, item.id, steps.steps());
        for (auto& step : steps.steps()) {
          scratch.clear();
          step.after.encode_into(scratch);
          if (options.trace) {
            const auto ins = options.trace->insert_traced(
                scratch, item.id, step.thread, std::move(step.label));
            if (ins.inserted) {
              discovered.push_back({std::move(step.after), ins.id});
            }
          } else if (visited.insert(scratch)) {
            discovered.push_back(
                {std::move(step.after), ShardedVisitedSet::kNoState});
          }
        }
        if (!keep_going) {
          request_stop = true;
          break;
        }
      }

      {
        std::lock_guard<std::mutex> lock(frontier.mu);
        frontier.working -= 1;
        if (request_stop) frontier.stop = true;
        for (auto& item : discovered) {
          frontier.items.push_back(std::move(item));
        }
        frontier.max_size =
            std::max<std::uint64_t>(frontier.max_size, frontier.items.size());
      }
      frontier.cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  result.stats.states = states.load();
  result.stats.transitions = transitions.load();
  result.stats.finals = finals.load();
  result.stats.blocked = blocked.load();
  result.stats.peak_frontier = frontier.max_size;
  result.stats.visited_bytes = visited.bytes();
  result.truncated = truncated.load();
  return result;
}

ReachResult sequential_reach(const System& sys, const ReachOptions& options,
                             const StateVisitor& visitor) {
  ReachResult result;
  // Untraced runs keep the single lock-free interned set; a trace sink
  // replaces it (insert_traced assigns ids and records parent links).
  VisitedSet visited;
  const bool want_labels = options.want_labels || options.trace != nullptr;
  std::deque<Frontier> frontier;
  lang::StepBuffer steps;
  std::vector<std::uint64_t> scratch;
  {
    Config init = lang::initial_config(sys);
    std::uint64_t id = ShardedVisitedSet::kNoState;
    if (options.trace) {
      id = options.trace
               ->insert_traced(init.encode(), ShardedVisitedSet::kNoState, 0,
                               "init")
               .id;
    } else {
      visited.insert(init.encode());
    }
    frontier.push_back({std::move(init), id});
  }
  const bool bfs = options.strategy == SearchStrategy::Bfs;
  while (!frontier.empty()) {
    if (result.stats.states >= options.max_states) {
      result.truncated = true;
      break;
    }
    result.stats.peak_frontier =
        std::max<std::uint64_t>(result.stats.peak_frontier, frontier.size());
    Frontier item = bfs ? std::move(frontier.front()) : std::move(frontier.back());
    if (bfs) {
      frontier.pop_front();
    } else {
      frontier.pop_back();
    }
    const Config& cfg = item.cfg;
    result.stats.states += 1;
    expand(sys, cfg, options.fuse_local_steps, want_labels, steps);
    if (steps.empty()) {
      if (cfg.all_done(sys)) {
        result.stats.finals += 1;
      } else {
        result.stats.blocked += 1;
      }
    }
    result.stats.transitions += steps.size();
    const bool keep_going = visitor(cfg, item.id, steps.steps());
    for (auto& step : steps.steps()) {
      scratch.clear();
      step.after.encode_into(scratch);
      if (options.trace) {
        const auto ins = options.trace->insert_traced(
            scratch, item.id, step.thread, std::move(step.label));
        if (ins.inserted) {
          frontier.push_back({std::move(step.after), ins.id});
        }
      } else if (visited.insert(scratch)) {
        frontier.push_back({std::move(step.after), ShardedVisitedSet::kNoState});
      }
    }
    if (!keep_going) break;
  }
  result.stats.visited_bytes =
      options.trace ? options.trace->bytes() : visited.bytes();
  return result;
}

}  // namespace

ReachResult visit_reachable(const System& sys, const ReachOptions& options,
                            const StateVisitor& visitor) {
  const unsigned workers = support::resolve_num_threads(options.num_threads);
  if (workers <= 1) return sequential_reach(sys, options, visitor);
  return parallel_reach(sys, options, visitor, workers);
}

ExploreResult explore(const System& sys, const ExploreOptions& options,
                      const Invariant& invariant) {
  // One implementation for every thread count and trace mode, layered on
  // the generic reachability driver: final-config collection, invariant
  // evaluation, and — when track_traces — witness construction from the
  // trace sink's parent links.  The mutexes are uncontended in sequential
  // runs and cold in parallel ones (finals and violations are rare events
  // next to state expansion).
  ExploreResult result;
  std::optional<ShardedVisitedSet> trace_store;
  if (options.track_traces) trace_store.emplace();

  ReachOptions ropts;
  ropts.max_states = options.max_states;
  ropts.num_threads = options.num_threads;
  ropts.strategy = options.strategy;
  ropts.fuse_local_steps = options.fuse_local_steps;
  ropts.trace = trace_store ? &*trace_store : nullptr;

  const std::uint64_t init_digest =
      options.track_traces ? witness::config_digest(lang::initial_config(sys))
                           : 0;

  ShardedVisitedSet final_dedup;
  std::mutex finals_mu;
  std::vector<KeyedConfig> finals;
  std::mutex violations_mu;
  std::vector<Violation> violations;

  const auto reach = visit_reachable(
      sys, ropts,
      [&](const Config& cfg, std::uint64_t id,
          std::span<const Step> steps) -> bool {
        bool keep_going = true;
        if (invariant) {
          if (auto what = invariant(sys, cfg)) {
            Violation v;
            v.what = std::move(*what);
            v.state_dump = cfg.to_string(sys);
            if (trace_store) {
              // path_to is safe against concurrent inserts, so a violating
              // state is reconstructed right here, mid-run.
              const auto edges = trace_store->path_to(id);
              v.trace.reserve(edges.size() + 1);
              v.trace.emplace_back("init");
              witness::Witness w;
              w.kind = "invariant";
              w.source = "explore";
              w.what = v.what;
              w.state_dump = v.state_dump;
              w.initial_digest = init_digest;
              w.steps.reserve(edges.size());
              std::vector<std::uint64_t> enc;
              for (const auto& e : edges) {
                v.trace.push_back(e.label);
                enc.clear();
                trace_store->decode_state(e.state, enc);
                w.steps.push_back({e.thread, e.label, support::hash_words(enc)});
              }
              v.witness = std::move(w);
            }
            std::lock_guard<std::mutex> lock(violations_mu);
            violations.push_back(std::move(v));
            if (options.stop_on_violation) keep_going = false;
          }
        }
        if (options.collect_finals && steps.empty() && cfg.all_done(sys)) {
          // Encode once; the encoding doubles as the dedup key here and the
          // canonical sort key below.
          std::vector<std::uint64_t> enc;
          enc.reserve(64);
          cfg.encode_into(enc);
          if (final_dedup.insert(enc)) {
            std::lock_guard<std::mutex> lock(finals_mu);
            finals.emplace_back(std::move(enc), cfg);
          }
        }
        return keep_going;
      });

  result.stats = reach.stats;
  result.truncated = reach.truncated;
  result.final_configs = sort_keyed_configs(finals);
  result.violations = std::move(violations);
  sort_violations(result.violations);
  return result;
}

std::vector<std::vector<lang::Value>> final_register_values(
    const System& sys, const ExploreResult& result,
    const std::vector<lang::Reg>& regs) {
  std::vector<std::vector<lang::Value>> outcomes;
  outcomes.reserve(result.final_configs.size());
  for (const auto& cfg : result.final_configs) {
    std::vector<lang::Value> tuple;
    tuple.reserve(regs.size());
    for (const auto& r : regs) {
      RC11_REQUIRE(r.thread < cfg.regs.size() && r.id < cfg.regs[r.thread].size(),
                   "register out of range in outcome extraction");
      tuple.push_back(cfg.regs[r.thread][r.id]);
    }
    outcomes.push_back(std::move(tuple));
  }
  // Sort-then-unique instead of a std::find per final config: the old
  // quadratic dedup dominated outcome extraction on large final sets.
  std::sort(outcomes.begin(), outcomes.end());
  outcomes.erase(std::unique(outcomes.begin(), outcomes.end()), outcomes.end());
  (void)sys;
  return outcomes;
}

bool outcome_reachable(const System& sys, const ExploreResult& result,
                       const std::vector<lang::Reg>& regs,
                       const std::vector<lang::Value>& values) {
  const auto outcomes = final_register_values(sys, result, regs);
  return std::binary_search(outcomes.begin(), outcomes.end(), values);
}

}  // namespace rc11::explore
