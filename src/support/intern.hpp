// rc11lib/support/intern.hpp
//
// Interning utilities.
//
//   * SymbolTable — string interning for program identifiers (global
//     variables, registers, objects, method names).  The semantics engine
//     works exclusively with dense integer ids; names are kept only for
//     diagnostics and pretty-printing.
//
//   * InternedWordSet — the state-representation workhorse behind the
//     explorer's visited sets: a set of uint64 word sequences (canonical
//     state encodings) stored as an open-addressing fingerprint table over
//     an append-only byte arena.  Compared with the former
//     unordered_map<digest, vector<index>> + vector<vector<uint64_t>>
//     layout this removes every per-state heap allocation (one flat table,
//     one flat arena) and shrinks the stored form by varint-compressing the
//     encoding words, most of which are tiny (op tags, mo ranks, sizes).
//     Exactness is preserved: a fingerprint hit is only a duplicate after
//     the full stored encoding compares equal, so a digest collision can
//     never drop a genuinely new state — it costs one memcmp.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace rc11::support {

/// Dense id assigned by a SymbolTable.  Ids are table-local.
using SymbolId = std::uint32_t;

inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// Bidirectional name <-> dense-id map.  Not thread-safe by design: each
/// System (lang/program.hpp) owns its own tables, and exploration threads
/// never mutate them after construction.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  SymbolId intern(std::string_view name) {
    if (const auto it = ids_.find(std::string{name}); it != ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` if already interned, kInvalidSymbol otherwise.
  [[nodiscard]] SymbolId lookup(std::string_view name) const {
    const auto it = ids_.find(std::string{name});
    return it == ids_.end() ? kInvalidSymbol : it->second;
  }

  [[nodiscard]] const std::string& name(SymbolId id) const { return names_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const {
    return lookup(name) != kInvalidSymbol;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

/// An exact set of uint64 word sequences, interned into a flat arena.
///
/// Layout: an open-addressing (linear-probe) table of 16-byte entries
/// `(digest, offset | length)` plus one append-only byte arena holding the
/// LEB128-varint serialisation of every distinct sequence, back to back.
/// Membership is decided by digest first and confirmed by comparing the full
/// serialised sequence, so the set is exact for any digest function.
///
/// Not thread-safe: the sharded visited set wraps one instance per shard
/// behind the shard mutex; sequential explorers use one instance directly.
class InternedWordSet {
 public:
  InternedWordSet() { table_.resize(kInitialSlots, Entry{0, kEmptySlot}); }

  /// Inserts the sequence, returning true iff it was not present before.
  /// The digest must be a pure function of `words` (same function for every
  /// insert into this set); use the overload below unless the caller already
  /// computed it for routing.
  bool insert(std::span<const std::uint64_t> words, std::uint64_t digest) {
    scratch_.clear();
    for (const auto w : words) append_varint(scratch_, w);
    RC11_REQUIRE(scratch_.size() < kMaxEncodedBytes,
                 "state encoding exceeds the interned-arena entry limit");
    if ((count_ + 1) * 4 >= table_.size() * 3) grow();
    const std::uint64_t mask = table_.size() - 1;
    for (std::uint64_t i = digest & mask;; i = (i + 1) & mask) {
      Entry& e = table_[i];
      if (e.off_len == kEmptySlot) {
        const std::uint64_t off = arena_.size();
        arena_.insert(arena_.end(), scratch_.begin(), scratch_.end());
        e.digest = digest;
        e.off_len = (off << kLenBits) | scratch_.size();
        count_ += 1;
        return true;
      }
      if (e.digest == digest && equals_scratch(e)) return false;
    }
  }

  /// Convenience overload computing the digest with hash_words.
  bool insert(std::span<const std::uint64_t> words) {
    return insert(words, hash_words(words));
  }

  /// Insert result with the dense id assigned to the sequence.  `id` is only
  /// meaningful when `inserted` is true (duplicates never need ids in the
  /// exploration engine: a state re-entering the visited set never re-enters
  /// the frontier).
  struct IdedInsert {
    bool inserted = false;
    std::uint32_t id = 0;
  };

  /// Like insert(), but assigns the sequence a dense id (0, 1, 2, … in
  /// insertion order) and remembers its arena slot so the full encoding can
  /// be decoded back by id — the hook the witness subsystem's parent-link
  /// trace reconstruction hangs off.  A set must use either insert() or
  /// insert_ided() exclusively; mixing would desynchronise the id → slot
  /// index (enforced below).
  IdedInsert insert_ided(std::span<const std::uint64_t> words,
                         std::uint64_t digest) {
    RC11_REQUIRE(slots_.size() == count_,
                 "insert_ided on a set already used with plain insert");
    if (!insert(words, digest)) return {false, 0};
    // insert() appended the new payload at the end of the arena.
    const auto id = static_cast<std::uint32_t>(count_ - 1);
    const std::uint64_t len = scratch_.size();
    const std::uint64_t off = arena_.size() - len;
    slots_.push_back((off << kLenBits) | len);
    return {true, id};
  }

  IdedInsert insert_ided(std::span<const std::uint64_t> words) {
    return insert_ided(words, hash_words(words));
  }

  /// Like insert_ided(), but duplicates resolve to the id they were assigned
  /// when first interned instead of an invalid one.  The sampling engine
  /// needs this: episodes revisit states constantly, and a revisited state's
  /// id is the parent link for the next sampled step.  Duplicates are found
  /// by re-probing the table and mapping the matching entry's arena slot
  /// back to its id — slots_ stores off_len in id order and arena offsets
  /// are strictly increasing, so slots_ is sorted and the slot is binary-
  /// searchable.  Same exclusivity rule as insert_ided().
  IdedInsert resolve_ided(std::span<const std::uint64_t> words,
                          std::uint64_t digest) {
    const IdedInsert fresh = insert_ided(words, digest);
    if (fresh.inserted) return fresh;
    // Duplicate: scratch_ still holds the serialisation from insert().
    const std::uint64_t mask = table_.size() - 1;
    for (std::uint64_t i = digest & mask;; i = (i + 1) & mask) {
      const Entry& e = table_[i];
      RC11_REQUIRE(e.off_len != kEmptySlot,
                   "resolve_ided: duplicate vanished from the table");
      if (e.digest == digest && equals_scratch(e)) {
        const auto it =
            std::lower_bound(slots_.begin(), slots_.end(), e.off_len);
        RC11_REQUIRE(it != slots_.end() && *it == e.off_len,
                     "resolve_ided: interned slot missing from the id index");
        return {false,
                static_cast<std::uint32_t>(std::distance(slots_.begin(), it))};
      }
    }
  }

  IdedInsert resolve_ided(std::span<const std::uint64_t> words) {
    return resolve_ided(words, hash_words(words));
  }

  /// Decodes the sequence with the given id (assigned by insert_ided) back
  /// into words, appending to `out`.
  void decode(std::uint32_t id, std::vector<std::uint64_t>& out) const {
    RC11_REQUIRE(id < slots_.size(), "decode: id out of range");
    const std::uint64_t off = slots_[id] >> kLenBits;
    const std::uint64_t len = slots_[id] & kMaxEncodedBytes;
    const std::uint8_t* p = arena_.data() + off;
    const std::uint8_t* end = p + len;
    while (p < end) {
      std::uint64_t w = 0;
      unsigned shift = 0;
      while (*p >= 0x80) {
        w |= static_cast<std::uint64_t>(*p & 0x7F) << shift;
        shift += 7;
        ++p;
      }
      w |= static_cast<std::uint64_t>(*p) << shift;
      ++p;
      out.push_back(w);
    }
  }

  /// True iff the sequence is present (no mutation).
  [[nodiscard]] bool contains(std::span<const std::uint64_t> words) const {
    const std::uint64_t digest = hash_words(words);
    std::vector<std::uint8_t> bytes;
    for (const auto w : words) append_varint(bytes, w);
    const std::uint64_t mask = table_.size() - 1;
    for (std::uint64_t i = digest & mask;; i = (i + 1) & mask) {
      const Entry& e = table_[i];
      if (e.off_len == kEmptySlot) return false;
      if (e.digest == digest && e.length() == bytes.size() &&
          (bytes.empty() ||
           std::memcmp(arena_.data() + e.offset(), bytes.data(),
                       bytes.size()) == 0)) {
        return true;
      }
    }
  }

  /// Number of distinct sequences interned.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  /// Heap footprint: arena + table + scratch capacity (+ the id index when
  /// insert_ided is in use).  This is the figure reported as
  /// ExploreStats::visited_bytes.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return arena_.capacity() + table_.capacity() * sizeof(Entry) +
           scratch_.capacity() + slots_.capacity() * sizeof(std::uint64_t);
  }

  /// Bytes of compressed encoding payload (excludes table slack); exposed
  /// for the state-representation benchmarks.
  [[nodiscard]] std::size_t arena_bytes() const noexcept { return arena_.size(); }

 private:
  // offset:40 | length:24 packed into one word; kEmptySlot (all ones) is
  // unreachable because lengths are capped far below 2^24.
  static constexpr unsigned kLenBits = 24;
  static constexpr std::uint64_t kMaxEncodedBytes = (1ULL << kLenBits) - 1;
  static constexpr std::uint64_t kEmptySlot = ~0ULL;
  static constexpr std::size_t kInitialSlots = 16;  // power of two

  struct Entry {
    std::uint64_t digest;
    std::uint64_t off_len;
    [[nodiscard]] std::uint64_t offset() const noexcept {
      return off_len >> kLenBits;
    }
    [[nodiscard]] std::uint64_t length() const noexcept {
      return off_len & kMaxEncodedBytes;
    }
  };

  static void append_varint(std::vector<std::uint8_t>& out, std::uint64_t w) {
    while (w >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(w) | 0x80U);
      w >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(w));
  }

  [[nodiscard]] bool equals_scratch(const Entry& e) const noexcept {
    return e.length() == scratch_.size() &&
           (scratch_.empty() ||
            std::memcmp(arena_.data() + e.offset(), scratch_.data(),
                        scratch_.size()) == 0);
  }

  void grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{0, kEmptySlot});
    const std::uint64_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.off_len == kEmptySlot) continue;
      std::uint64_t i = e.digest & mask;
      while (table_[i].off_len != kEmptySlot) i = (i + 1) & mask;
      table_[i] = e;
    }
  }

  std::vector<Entry> table_;           // open addressing, power-of-two size
  std::vector<std::uint8_t> arena_;    // varint payloads, back to back
  std::vector<std::uint8_t> scratch_;  // serialisation buffer, reused
  std::vector<std::uint64_t> slots_;   // off_len by id (insert_ided only)
  std::size_t count_ = 0;
};

}  // namespace rc11::support
